//! Vendored, API-compatible subset of the `criterion` bench harness.
//!
//! The build environment has no access to a crates registry, so this
//! crate implements just the surface the workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`] (`iter`,
//! `iter_batched`), [`BenchmarkId`], [`Throughput`], [`BatchSize`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Instead of criterion's statistical sampling, each benchmark runs a
//! short warmup followed by a fixed measurement loop and reports the
//! mean wall-clock time per iteration. That keeps `cargo bench` fast
//! and dependency-free while still producing usable relative numbers.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-exported opaque-value hint, same contract as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How much setup output to batch per measurement (accepted for API
/// compatibility; this harness always re-runs setup per iteration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed = measured;
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut measured = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            measured += start.elapsed();
        }
        self.elapsed = measured;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, f: &mut F) {
    // Warmup pass; also gives a time estimate to pick the iteration count.
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let per_iter = warm.elapsed.max(Duration::from_nanos(1));
    // Aim for ~200ms of measurement, capped to keep huge benches bounded.
    let iters =
        (Duration::from_millis(200).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!(" ({:.3e} elem/s)", n as f64 / mean),
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            format!(" ({:.3e} B/s)", n as f64 / mean)
        }
        None => String::new(),
    };
    println!("bench: {name:<50} {:>12.3} us/iter{rate}", mean * 1e6);
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F, I>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
        I: fmt::Display,
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<F, I>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
        I: ?Sized,
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, &mut f);
        self
    }

    pub fn bench_with_input<F, I>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
        I: ?Sized,
    {
        run_one(&id.to_string(), None, &mut |b| f(b, input));
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- --test` / harness smoke-runs still execute
            // the groups; our groups are cheap enough to always run.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_runs_batched() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}

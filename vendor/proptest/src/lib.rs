//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to a crates registry, so this
//! crate implements the slice of proptest the workspace's property
//! tests use: the [`proptest!`] macro over `param in strategy`
//! bindings, [`prop_assert!`] / [`prop_assert_eq!`],
//! `ProptestConfig::with_cases`, range strategies for integers and
//! floats, tuple strategies, and `prop::collection::vec`.
//!
//! Sampling is deterministic: each test derives its RNG seed from the
//! test's module path and case index, so failures reproduce exactly
//! across runs. There is no shrinking — the failing input is printed
//! as-is by the assertion message.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!
//!     // (would normally carry `#[test]`)
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::Range;
    use rand::Rng;

    /// A source of deterministic random values of one type.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// `proptest::collection::vec`-style strategy: `len` drawn from a
    /// range, then `len` independent element samples.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use core::ops::Range;

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-case deterministic RNG handed to strategies.
    pub struct TestRng {
        pub rng: StdRng,
    }

    impl TestRng {
        /// Seed from the fully-qualified test name and case index so
        /// every test gets an independent, reproducible stream.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case number.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37)),
            }
        }
    }

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "prop_assert failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)
     $($(#[$attr:meta])*
       fn $name:ident($($param:ident in $strategy:expr),* $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $param =
                            $crate::strategy::Strategy::sample(&($strategy), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec((0.5f64..3.0, 0.5f64..3.0), 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            for (a, b) in &v {
                prop_assert!((0.5..3.0).contains(a));
                prop_assert!((0.5..3.0).contains(b));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 0);
        assert_eq!((0u64..100).sample(&mut a), (0u64..100).sample(&mut b));
    }

    #[test]
    fn runs_proptest_generated_tests() {
        ranges_stay_in_bounds();
        vec_strategy_respects_size();
    }
}

//! Vendored, API-compatible subset of the `rand` crate (0.8 surface).
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, fully deterministic generator. The bit stream differs
//! from upstream `rand`'s ChaCha-based `StdRng`, which is fine: every
//! consumer in this workspace seeds explicitly and only relies on
//! determinism and statistical quality, never on a specific stream.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(42);
//! let mut b = StdRng::seed_from_u64(42);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! let x: f64 = a.gen();
//! assert!((0.0..1.0).contains(&x));
//! let i = a.gen_range(10usize..20);
//! assert!((10..20).contains(&i));
//! ```

use core::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator seedable from a `u64` (the only
/// constructor this workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled from the "standard" distribution:
/// uniform over all values for integers, uniform in `[0, 1)` for floats.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types that can be sampled uniformly from a half-open `Range`.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift keeps the bias below 2^-64 per draw,
                // more than enough for Monte-Carlo workloads.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        let v = range.start + u * (range.end - range.start);
        // start + u*(end-start) can round up onto `end` itself; keep
        // the contract half-open (start < end ⇒ next_down(end) ≥ start).
        if v < range.end {
            v
        } else {
            range.end.next_down()
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        let v = range.start + u * (range.end - range.start);
        if v < range.end {
            v
        } else {
            range.end.next_down()
        }
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 16);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(-4i32..9);
            assert!((-4..9).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn float_ranges_never_yield_the_upper_bound() {
        // start + u*(end-start) can round exactly onto `end` for ranges
        // like 0.1..0.2; the shim must keep the range half-open.
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200_000 {
            let x = rng.gen_range(0.1f64..0.2);
            assert!(x < 0.2, "f64 draw hit the exclusive bound: {x}");
            let y = rng.gen_range(0.1f32..0.2);
            assert!(y < 0.2, "f32 draw hit the exclusive bound: {y}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}

//! The versioned wire protocol `tdals serve` speaks: newline-delimited
//! JSON frames over any byte stream.
//!
//! # Framing
//!
//! One frame is one JSON value rendered on a single line
//! ([`Json::compact`]) followed by `\n`. Frames longer than the
//! connection's limit are rejected with [`FrameError::Oversized`]
//! (the stream cannot be resynchronized, so the connection closes); a
//! stream that ends mid-line is [`FrameError::Truncated`]; a line that
//! is not valid JSON is [`FrameError::BadJson`] (the stream is still
//! aligned on the next `\n`, so the connection survives).
//!
//! # Versioning
//!
//! Every request, response, and event frame carries a `schema` field,
//! currently [`PROTOCOL_SCHEMA`]. The compatibility rule: a server
//! rejects frames whose schema it does not speak (`bad-schema`); within
//! one schema, fields are only ever *added*, and clients must ignore
//! object keys and event kinds they do not recognize. Renaming or
//! retyping a field requires a schema bump.
//!
//! The request vocabulary is [`Request`]; error replies are built with
//! [`error_frame`] from the closed [`ErrorCode`] set. [`FlowEvent`]s
//! travel as [`event_to_json`]/[`event_from_json`] — the same frames
//! `tdals serve-batch --progress` prints.

use std::io::{self, BufRead, BufReader, Read, Write};

use tdals_bench::json::Json;
use tdals_core::api::{FlowEvent, StopReason};
use tdals_core::{IterationStats, PostOptReport};
use tdals_sim::ErrorMetric;

use crate::job::{u64_from_json, u64_to_json, FlowJob};

/// Wire schema this build speaks. Carried by every frame.
pub const PROTOCOL_SCHEMA: u64 = 1;

/// Default per-frame byte limit: generous enough for a job with a large
/// inline Verilog circuit, small enough that one hostile line cannot
/// balloon the daemon's memory.
pub const DEFAULT_MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Why a frame could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The line exceeded the connection's frame limit. Fatal for the
    /// connection: the stream position is inside the oversized line, so
    /// no later frame boundary can be trusted.
    Oversized {
        /// The limit that was exceeded, bytes.
        limit: usize,
    },
    /// The stream ended mid-line (no terminating `\n`). Fatal: the
    /// peer is gone.
    Truncated {
        /// Bytes of the unterminated line that did arrive.
        bytes: usize,
    },
    /// The line was framed correctly but is not valid JSON. The
    /// connection survives — the next frame starts after the next `\n`.
    BadJson(String),
    /// The underlying transport failed.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
            FrameError::Truncated { bytes } => {
                write!(
                    f,
                    "stream ended mid-frame ({bytes} byte(s) without a newline)"
                )
            }
            FrameError::BadJson(e) => write!(f, "frame is not valid JSON: {e}"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads one newline-terminated frame. `Ok(None)` is a clean
/// end-of-stream (the peer closed between frames).
///
/// # Errors
///
/// [`FrameError::Oversized`] past `max_len` bytes before the newline,
/// [`FrameError::Truncated`] on EOF mid-line, [`FrameError::Io`] on
/// transport failure (including non-UTF-8 bytes).
pub fn read_frame(reader: &mut impl BufRead, max_len: usize) -> Result<Option<String>, FrameError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader
            .fill_buf()
            .map_err(|e| FrameError::Io(e.to_string()))?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(FrameError::Truncated { bytes: line.len() })
            };
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos > max_len {
                    return Err(FrameError::Oversized { limit: max_len });
                }
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                let text = String::from_utf8(line)
                    .map_err(|_| FrameError::Io("frame is not UTF-8".into()))?;
                return Ok(Some(text));
            }
            None => {
                let n = buf.len();
                if line.len() + n > max_len {
                    return Err(FrameError::Oversized { limit: max_len });
                }
                line.extend_from_slice(buf);
                reader.consume(n);
            }
        }
    }
}

/// Writes one frame: the value on a single line, then `\n`, then flush.
///
/// # Errors
///
/// The underlying transport's I/O error.
pub fn write_frame(writer: &mut impl Write, frame: &Json) -> io::Result<()> {
    writeln!(writer, "{}", frame.compact())?;
    writer.flush()
}

/// One framed, length-limited duplex connection: [`read_frame`] /
/// [`write_frame`] over a buffered stream. Both the daemon and the
/// `tdals submit` client speak through this, so the two ends cannot
/// disagree on framing.
#[derive(Debug)]
pub struct Connection<S: Read + Write> {
    reader: BufReader<S>,
    max_frame: usize,
}

impl<S: Read + Write> Connection<S> {
    /// Wraps a stream with the [`DEFAULT_MAX_FRAME_LEN`] limit.
    pub fn new(stream: S) -> Connection<S> {
        Connection::with_max_frame(stream, DEFAULT_MAX_FRAME_LEN)
    }

    /// Wraps a stream with an explicit per-frame byte limit.
    pub fn with_max_frame(stream: S, max_frame: usize) -> Connection<S> {
        Connection {
            reader: BufReader::new(stream),
            max_frame,
        }
    }

    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// The transport's I/O error.
    pub fn send(&mut self, frame: &Json) -> io::Result<()> {
        write_frame(self.reader.get_mut(), frame)
    }

    /// Receives one frame; `Ok(None)` is a clean end-of-stream.
    ///
    /// # Errors
    ///
    /// [`read_frame`]'s errors, plus [`FrameError::BadJson`] for a
    /// well-framed line that does not parse.
    pub fn receive(&mut self) -> Result<Option<Json>, FrameError> {
        match read_frame(&mut self.reader, self.max_frame)? {
            None => Ok(None),
            Some(line) => Json::parse(&line).map(Some).map_err(FrameError::BadJson),
        }
    }

    /// The underlying stream (e.g. to shut it down from another
    /// thread's clone).
    pub fn get_ref(&self) -> &S {
        self.reader.get_ref()
    }
}

// ---------------------------------------------------------------------
// Error codes
// ---------------------------------------------------------------------

/// The closed set of wire error codes (the `error` field of an error
/// frame). Stable: codes are never renamed within a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The frame was not a valid JSON object.
    BadFrame,
    /// The frame exceeded the connection's byte limit (connection
    /// closes).
    OversizedFrame,
    /// The stream ended mid-frame (reported by clients; a server sees
    /// this as a disconnect).
    TruncatedFrame,
    /// The frame's `schema` is missing or not one this server speaks.
    BadSchema,
    /// The request is structurally invalid (missing/mis-typed field,
    /// bad job description).
    BadRequest,
    /// The `verb` is not in the protocol vocabulary.
    UnknownVerb,
    /// The `session` id names no session on this daemon.
    UnknownSession,
    /// Admission control: the daemon's bounded session queue is full —
    /// back off and retry after sessions finish.
    QueueFull,
    /// Admission control: the submitting tenant is at its live-session
    /// quota.
    QuotaExceeded,
    /// The daemon is draining and admits no new work (existing sessions
    /// still serve `status`/`events`/`result`).
    Draining,
    /// The scheduler rejected the job (zero threads, thread ask beyond
    /// the lease cap, …); the message carries the typed detail.
    Rejected,
}

impl ErrorCode {
    /// The wire spelling of this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::OversizedFrame => "oversized-frame",
            ErrorCode::TruncatedFrame => "truncated-frame",
            ErrorCode::BadSchema => "bad-schema",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownVerb => "unknown-verb",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::QuotaExceeded => "quota-exceeded",
            ErrorCode::Draining => "draining",
            ErrorCode::Rejected => "rejected",
        }
    }

    /// Inverse of [`ErrorCode::as_str`]; `None` for unknown spellings.
    pub fn parse(code: &str) -> Option<ErrorCode> {
        [
            ErrorCode::BadFrame,
            ErrorCode::OversizedFrame,
            ErrorCode::TruncatedFrame,
            ErrorCode::BadSchema,
            ErrorCode::BadRequest,
            ErrorCode::UnknownVerb,
            ErrorCode::UnknownSession,
            ErrorCode::QueueFull,
            ErrorCode::QuotaExceeded,
            ErrorCode::Draining,
            ErrorCode::Rejected,
        ]
        .into_iter()
        .find(|c| c.as_str() == code)
    }
}

/// Builds an error reply frame:
/// `{"schema":1,"error":"<code>","message":"…"}`.
pub fn error_frame(code: ErrorCode, message: impl Into<String>) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Num(PROTOCOL_SCHEMA as f64)),
        ("error".into(), Json::Str(code.as_str().into())),
        ("message".into(), Json::Str(message.into())),
    ])
}

/// Reads an error reply back: `Some((code, message))` if `frame` is an
/// error frame.
pub fn as_error(frame: &Json) -> Option<(&str, &str)> {
    let code = frame.get("error")?.as_str()?;
    let message = frame.get("message").and_then(Json::as_str).unwrap_or("");
    Some((code, message))
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// One client request, the payload of one frame. See the module docs
/// for the frame shapes; [`Request::to_json`] and
/// [`Request::from_json`] are exact inverses.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Request {
    /// Admit a job. The job object is the manifest job shape
    /// ([`FlowJob::to_json`]) with circuits inlined — the daemon reads
    /// no files, so a `circuit` path is rejected (`bench:` names are
    /// fine).
    Submit {
        /// The job to run.
        job: FlowJob,
        /// Tenant identity for quota accounting; anonymous submissions
        /// share one bucket.
        tenant: Option<String>,
    },
    /// Report a session's lifecycle status.
    Status {
        /// Daemon-assigned session id.
        session: u64,
    },
    /// Drain the session's buffered [`FlowEvent`]s (each event is
    /// delivered exactly once).
    Events {
        /// Daemon-assigned session id.
        session: u64,
    },
    /// Fetch the session's result record; `wait` blocks until the
    /// session finishes.
    Result {
        /// Daemon-assigned session id.
        session: u64,
        /// Block until done instead of returning `done: false`.
        wait: bool,
    },
    /// Request cooperative cancellation.
    Cancel {
        /// Daemon-assigned session id.
        session: u64,
    },
    /// Stop admitting, wait for every in-flight session to finish, keep
    /// serving results. Irreversible.
    Drain,
    /// Queue depth, slot utilization, per-status session counts,
    /// per-tenant live counts.
    Health,
    /// The process metric registry (counters, gauges, histograms) plus
    /// per-tenant and per-session gauges. Schema-compatible addition:
    /// older daemons answer `unknown-verb` and clients degrade.
    Stats,
    /// [`Request::Drain`], then stop the daemon process.
    Shutdown,
}

impl Request {
    /// The request as its wire frame.
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> =
            vec![("schema".into(), Json::Num(PROTOCOL_SCHEMA as f64))];
        let verb = |v: &str| ("verb".to_owned(), Json::Str(v.into()));
        match self {
            Request::Submit { job, tenant } => {
                members.push(verb("submit"));
                members.push(("job".into(), job.to_json()));
                if let Some(tenant) = tenant {
                    members.push(("tenant".into(), Json::Str(tenant.clone())));
                }
            }
            Request::Status { session } => {
                members.push(verb("status"));
                members.push(("session".into(), u64_to_json(*session)));
            }
            Request::Events { session } => {
                members.push(verb("events"));
                members.push(("session".into(), u64_to_json(*session)));
            }
            Request::Result { session, wait } => {
                members.push(verb("result"));
                members.push(("session".into(), u64_to_json(*session)));
                if *wait {
                    members.push(("wait".into(), Json::Bool(true)));
                }
            }
            Request::Cancel { session } => {
                members.push(verb("cancel"));
                members.push(("session".into(), u64_to_json(*session)));
            }
            Request::Drain => members.push(verb("drain")),
            Request::Health => members.push(verb("health")),
            Request::Stats => members.push(verb("stats")),
            Request::Shutdown => members.push(verb("shutdown")),
        }
        Json::Obj(members)
    }

    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// The [`ErrorCode`] to reply with, plus a human-readable message.
    pub fn from_json(frame: &Json) -> Result<Request, (ErrorCode, String)> {
        let Json::Obj(members) = frame else {
            return Err((ErrorCode::BadFrame, "request is not an object".into()));
        };
        // Strict keys, like the manifest format: a typo'd field must
        // not be silently ignored.
        const KNOWN: [&str; 6] = ["schema", "verb", "job", "tenant", "session", "wait"];
        if let Some((key, _)) = members.iter().find(|(k, _)| !KNOWN.contains(&k.as_str())) {
            return Err((
                ErrorCode::BadRequest,
                format!("unknown field `{key}` (known fields: {})", KNOWN.join(", ")),
            ));
        }
        match frame.get("schema").and_then(u64_from_json) {
            Some(PROTOCOL_SCHEMA) => {}
            Some(other) => {
                return Err((
                    ErrorCode::BadSchema,
                    format!("unsupported schema {other} (this server speaks {PROTOCOL_SCHEMA})"),
                ))
            }
            None => {
                return Err((
                    ErrorCode::BadSchema,
                    format!("missing `schema` (this server speaks {PROTOCOL_SCHEMA})"),
                ))
            }
        }
        let verb = frame
            .get("verb")
            .and_then(Json::as_str)
            .ok_or_else(|| (ErrorCode::BadRequest, "missing string field `verb`".into()))?;
        let session = || -> Result<u64, (ErrorCode, String)> {
            frame.get("session").and_then(u64_from_json).ok_or_else(|| {
                (
                    ErrorCode::BadRequest,
                    format!("verb `{verb}` needs a non-negative integer `session`"),
                )
            })
        };
        match verb {
            "submit" => {
                let job_json = frame
                    .get("job")
                    .ok_or_else(|| (ErrorCode::BadRequest, "submit needs a `job` object".into()))?;
                // The daemon reads no files: a `circuit` path would
                // resolve against the *server's* filesystem, which is
                // both surprising and a read primitive. Clients inline
                // the Verilog instead (`tdals submit` does).
                let job = FlowJob::from_json(job_json, 0, &|path| {
                    Err(format!(
                        "the daemon reads no files; inline the circuit as `verilog` \
                         (got path `{path}`)"
                    ))
                })
                .map_err(|e| (ErrorCode::BadRequest, e.to_string()))?;
                let tenant = match frame.get("tenant") {
                    None => None,
                    Some(v) => Some(
                        v.as_str()
                            .ok_or_else(|| {
                                (ErrorCode::BadRequest, "`tenant` must be a string".into())
                            })?
                            .to_owned(),
                    ),
                };
                Ok(Request::Submit { job, tenant })
            }
            "status" => Ok(Request::Status {
                session: session()?,
            }),
            "events" => Ok(Request::Events {
                session: session()?,
            }),
            "result" => {
                let wait = match frame.get("wait") {
                    None => false,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => {
                        return Err((ErrorCode::BadRequest, "`wait` must be a boolean".into()))
                    }
                };
                Ok(Request::Result {
                    session: session()?,
                    wait,
                })
            }
            "cancel" => Ok(Request::Cancel {
                session: session()?,
            }),
            "drain" => Ok(Request::Drain),
            "health" => Ok(Request::Health),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err((
                ErrorCode::UnknownVerb,
                format!(
                    "unknown verb `{other}` (expected submit|status|events|result|cancel|\
                     drain|health|stats|shutdown)"
                ),
            )),
        }
    }
}

// ---------------------------------------------------------------------
// Event frames
// ---------------------------------------------------------------------

fn stats_to_json(stats: &IterationStats) -> Json {
    Json::Obj(vec![
        ("iteration".into(), Json::Num(stats.iteration as f64)),
        ("constraint".into(), Json::Num(stats.constraint)),
        ("best_fitness".into(), Json::Num(stats.best_fitness)),
        ("best_depth".into(), Json::Num(f64::from(stats.best_depth))),
        ("best_area".into(), Json::Num(stats.best_area)),
        ("feasible".into(), Json::Num(stats.feasible as f64)),
    ])
}

fn report_to_json(report: &PostOptReport) -> Json {
    Json::Obj(vec![
        (
            "gates_removed".into(),
            Json::Num(report.gates_removed as f64),
        ),
        ("cpd_before".into(), Json::Num(report.cpd_before)),
        ("cpd_after_sweep".into(), Json::Num(report.cpd_after_sweep)),
        ("cpd_final".into(), Json::Num(report.cpd_final)),
        ("area_final".into(), Json::Num(report.area_final)),
        ("sizing_moves".into(), Json::Num(report.sizing_moves as f64)),
    ])
}

/// A [`FlowEvent`] as its wire frame:
/// `{"schema":1,"kind":"<FlowEvent::kind>",…fields…}`.
/// [`event_from_json`] round-trips it exactly.
pub fn event_to_json(event: &FlowEvent) -> Json {
    let mut members: Vec<(String, Json)> = vec![
        ("schema".into(), Json::Num(PROTOCOL_SCHEMA as f64)),
        ("kind".into(), Json::Str(event.kind().into())),
    ];
    match event {
        FlowEvent::FlowStarted {
            optimizer,
            gates,
            cpd_ori,
            area_ori,
            metric,
            error_bound,
        } => {
            members.push(("optimizer".into(), Json::Str(optimizer.clone())));
            members.push(("gates".into(), Json::Num(*gates as f64)));
            members.push(("cpd_ori".into(), Json::Num(*cpd_ori)));
            members.push(("area_ori".into(), Json::Num(*area_ori)));
            members.push(("metric".into(), Json::Str(metric.cli_name().into())));
            members.push(("error_bound".into(), Json::Num(*error_bound)));
        }
        FlowEvent::IterationStarted {
            iteration,
            constraint,
        } => {
            members.push(("iteration".into(), Json::Num(*iteration as f64)));
            members.push(("constraint".into(), Json::Num(*constraint)));
        }
        FlowEvent::BestImproved {
            iteration,
            fitness,
            error,
            depth,
            area,
        } => {
            members.push(("iteration".into(), Json::Num(*iteration as f64)));
            members.push(("fitness".into(), Json::Num(*fitness)));
            members.push(("error".into(), Json::Num(*error)));
            members.push(("depth".into(), Json::Num(f64::from(*depth))));
            members.push(("area".into(), Json::Num(*area)));
        }
        FlowEvent::LacAccepted {
            iteration,
            error,
            area,
        } => {
            members.push(("iteration".into(), Json::Num(*iteration as f64)));
            members.push(("error".into(), Json::Num(*error)));
            members.push(("area".into(), Json::Num(*area)));
        }
        FlowEvent::IterationFinished { stats } => {
            members.push(("stats".into(), stats_to_json(stats)));
        }
        FlowEvent::OptimizeFinished { stop, evaluations } => {
            members.push(("stop".into(), Json::Str(stop.wire_name().into())));
            members.push(("evaluations".into(), u64_to_json(*evaluations)));
        }
        FlowEvent::PostOptStarted { area_con } => {
            members.push(("area_con".into(), Json::Num(*area_con)));
        }
        FlowEvent::PostOptFinished { report } => {
            members.push(("report".into(), report_to_json(report)));
        }
        FlowEvent::FlowFinished {
            ratio_cpd,
            error,
            runtime_s,
        } => {
            members.push(("ratio_cpd".into(), Json::Num(*ratio_cpd)));
            members.push(("error".into(), Json::Num(*error)));
            members.push(("runtime_s".into(), Json::Num(*runtime_s)));
        }
        // FlowEvent is non_exhaustive: a variant this build does not
        // know still travels as its kind tag with no fields.
        _ => {}
    }
    Json::Obj(members)
}

fn num(frame: &Json, key: &str) -> Result<f64, String> {
    frame
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("event frame missing numeric field `{key}`"))
}

fn uint(frame: &Json, key: &str) -> Result<usize, String> {
    let n = num(frame, key)?;
    if n.fract() != 0.0 || n < 0.0 {
        return Err(format!(
            "event field `{key}` must be a non-negative integer"
        ));
    }
    Ok(n as usize)
}

fn text<'a>(frame: &'a Json, key: &str) -> Result<&'a str, String> {
    frame
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("event frame missing string field `{key}`"))
}

fn stats_from_json(value: &Json) -> Result<IterationStats, String> {
    Ok(IterationStats {
        iteration: uint(value, "iteration")?,
        constraint: num(value, "constraint")?,
        best_fitness: num(value, "best_fitness")?,
        best_depth: uint(value, "best_depth")? as u32,
        best_area: num(value, "best_area")?,
        feasible: uint(value, "feasible")?,
    })
}

fn report_from_json(value: &Json) -> Result<PostOptReport, String> {
    Ok(PostOptReport {
        gates_removed: uint(value, "gates_removed")?,
        cpd_before: num(value, "cpd_before")?,
        cpd_after_sweep: num(value, "cpd_after_sweep")?,
        cpd_final: num(value, "cpd_final")?,
        area_final: num(value, "area_final")?,
        sizing_moves: uint(value, "sizing_moves")?,
    })
}

/// Parses an event frame back into a [`FlowEvent`]; inverse of
/// [`event_to_json`].
///
/// # Errors
///
/// A human-readable message for a wrong schema, an unknown kind, or a
/// missing/mis-typed field. Per the compatibility rule, a client that
/// merely relays events should treat an unknown `kind` as opaque rather
/// than calling this.
pub fn event_from_json(frame: &Json) -> Result<FlowEvent, String> {
    match frame.get("schema").and_then(u64_from_json) {
        Some(PROTOCOL_SCHEMA) => {}
        Some(other) => return Err(format!("unsupported event schema {other}")),
        None => return Err("event frame missing `schema`".into()),
    }
    let kind = text(frame, "kind")?;
    match kind {
        "flow-started" => Ok(FlowEvent::FlowStarted {
            optimizer: text(frame, "optimizer")?.to_owned(),
            gates: uint(frame, "gates")?,
            cpd_ori: num(frame, "cpd_ori")?,
            area_ori: num(frame, "area_ori")?,
            metric: {
                let name = text(frame, "metric")?;
                ErrorMetric::parse(name).ok_or_else(|| format!("unknown metric `{name}`"))?
            },
            error_bound: num(frame, "error_bound")?,
        }),
        "iteration-started" => Ok(FlowEvent::IterationStarted {
            iteration: uint(frame, "iteration")?,
            constraint: num(frame, "constraint")?,
        }),
        "best-improved" => Ok(FlowEvent::BestImproved {
            iteration: uint(frame, "iteration")?,
            fitness: num(frame, "fitness")?,
            error: num(frame, "error")?,
            depth: uint(frame, "depth")? as u32,
            area: num(frame, "area")?,
        }),
        "lac-accepted" => Ok(FlowEvent::LacAccepted {
            iteration: uint(frame, "iteration")?,
            error: num(frame, "error")?,
            area: num(frame, "area")?,
        }),
        "iteration-finished" => Ok(FlowEvent::IterationFinished {
            stats: stats_from_json(
                frame
                    .get("stats")
                    .ok_or_else(|| "event frame missing `stats`".to_owned())?,
            )?,
        }),
        "optimize-finished" => Ok(FlowEvent::OptimizeFinished {
            stop: {
                let tag = text(frame, "stop")?;
                StopReason::parse_wire_name(tag)
                    .ok_or_else(|| format!("unknown stop reason `{tag}`"))?
            },
            evaluations: frame
                .get("evaluations")
                .and_then(u64_from_json)
                .ok_or_else(|| "event frame missing `evaluations`".to_owned())?,
        }),
        "post-opt-started" => Ok(FlowEvent::PostOptStarted {
            area_con: num(frame, "area_con")?,
        }),
        "post-opt-finished" => Ok(FlowEvent::PostOptFinished {
            report: report_from_json(
                frame
                    .get("report")
                    .ok_or_else(|| "event frame missing `report`".to_owned())?,
            )?,
        }),
        "flow-finished" => Ok(FlowEvent::FlowFinished {
            ratio_cpd: num(frame, "ratio_cpd")?,
            error: num(frame, "error")?,
            runtime_s: num(frame, "runtime_s")?,
        }),
        other => Err(format!("unknown event kind `{other}`")),
    }
}

//! # tdals-server
//!
//! The multi-tenant serving layer: many concurrent approximation flows
//! over one shared, capacity-bounded worker pool.
//!
//! The library crates end at a single [`Flow`](tdals_core::api::Flow)
//! session; this crate turns that into a service. A [`Scheduler`] owns
//! a total thread budget (a [`SlotPool`](tdals_core::par::SlotPool))
//! and admits [`FlowJob`]s into a priority-aware FIFO queue; each job
//! becomes an isolated session that leases a fair share of the pool,
//! runs its flow at exactly that width, and streams
//! [`FlowEvent`](tdals_core::api::FlowEvent)s through its
//! [`SessionHandle`]. Because every optimizer is bit-identical at any
//! thread count, scheduling decisions can never change a tenant's
//! result — the property `tdals serve-batch` turns into byte-identical
//! results files at any `--total-threads`.
//!
//! # Example
//!
//! ```
//! use tdals_circuits::Benchmark;
//! use tdals_server::{FlowJob, Scheduler, SchedulerConfig};
//!
//! let scheduler = Scheduler::new(SchedulerConfig::new(2)).expect("non-zero budget");
//! let job = FlowJob::benchmark(Benchmark::Int2float)
//!     .with_bound(0.05)
//!     .with_scale(6, 2)
//!     .with_vectors(256);
//! let solo = job.run_direct(1).expect("valid job");
//! let session = scheduler.submit(job).expect("admitted");
//! let outcome = session.result().expect("completed");
//! scheduler.drain();
//! assert_eq!(outcome.netlist, solo.netlist); // co-tenancy changes nothing
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod daemon;
pub mod job;
pub mod protocol;
pub mod scheduler;

pub use batch::{BatchOptions, BatchReport, BatchRun};
pub use daemon::{connect, connect_retry, ConnectError, Daemon, DaemonConfig, Listener, Stream};
pub use job::{
    check_bound, parse_worker_count, results_document, results_document_from_records,
    session_record, session_record_fields, FlowJob, JobBudget, JobSource, Manifest, ManifestError,
};
pub use protocol::{
    as_error, error_frame, event_from_json, event_to_json, read_frame, write_frame, Connection,
    ErrorCode, FrameError, Request, DEFAULT_MAX_FRAME_LEN, PROTOCOL_SCHEMA,
};
pub use scheduler::{
    Scheduler, SchedulerConfig, ServerError, SessionError, SessionHandle, SessionStatus,
};

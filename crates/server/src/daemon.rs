//! `tdals serve`: a long-lived daemon that speaks the
//! [`protocol`](crate::protocol) over TCP or unix-domain sockets.
//!
//! The daemon wraps one [`Scheduler`] with the service concerns the
//! library layer deliberately does not have: admission control (a
//! bounded live-session registry, [`ErrorCode::QueueFull`]), per-tenant
//! quotas layered on the scheduler's priority queue
//! ([`ErrorCode::QuotaExceeded`]), graceful drain (stop admitting,
//! finish in-flight work, keep serving results), and a health endpoint.
//!
//! Determinism carries through: a session record served over the wire
//! is field-for-field the record `tdals serve-batch` writes
//! ([`session_record_fields`]), so a client that prepends its own
//! submission indices reassembles a byte-identical results document —
//! the property the CI daemon-soak job diffs.
//!
//! [`Daemon::handle`] is transport-free (a request frame in, a response
//! frame out), so the whole verb surface is unit-testable without
//! sockets; [`Daemon::serve`] adds the accept loop, one thread per
//! connection.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use tdals_bench::json::Json;

use crate::job::{session_record_fields, u64_to_json, FlowJob};
use crate::protocol::{error_frame, event_to_json, Connection, ErrorCode, FrameError, Request};
use crate::protocol::{DEFAULT_MAX_FRAME_LEN, PROTOCOL_SCHEMA};
use crate::scheduler::{Scheduler, SchedulerConfig, ServerError, SessionHandle, SessionStatus};

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Daemon configuration: the scheduler's pool shape plus the service
/// limits the scheduler itself does not police.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct DaemonConfig {
    /// Total worker slots shared by every session.
    pub total_threads: usize,
    /// Most slots one session may lease; `None` means the whole pool.
    pub session_cap: Option<usize>,
    /// Most sessions live (queued + running) at once across all
    /// tenants; submissions beyond it get [`ErrorCode::QueueFull`].
    pub max_sessions: usize,
    /// Most sessions one tenant may have live at once; `None` disables
    /// quotas. Anonymous submissions share one bucket.
    pub tenant_quota: Option<usize>,
    /// Per-connection frame byte limit.
    pub max_frame_len: usize,
}

impl DaemonConfig {
    /// A daemon over `total_threads` worker slots with default limits:
    /// 1024 live sessions, no tenant quota,
    /// [`DEFAULT_MAX_FRAME_LEN`]-byte frames.
    pub fn new(total_threads: usize) -> DaemonConfig {
        DaemonConfig {
            total_threads,
            session_cap: None,
            max_sessions: 1024,
            tenant_quota: None,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }

    /// Caps how many slots one session may lease.
    pub fn with_session_cap(mut self, cap: usize) -> DaemonConfig {
        self.session_cap = Some(cap);
        self
    }

    /// Bounds the live-session registry (admission control).
    pub fn with_max_sessions(mut self, max: usize) -> DaemonConfig {
        self.max_sessions = max;
        self
    }

    /// Caps live sessions per tenant.
    pub fn with_tenant_quota(mut self, quota: usize) -> DaemonConfig {
        self.tenant_quota = Some(quota);
        self
    }

    /// Sets the per-connection frame byte limit.
    pub fn with_max_frame_len(mut self, len: usize) -> DaemonConfig {
        self.max_frame_len = len;
        self
    }
}

// ---------------------------------------------------------------------
// Session registry
// ---------------------------------------------------------------------

enum SessionEntry {
    /// Queued or running; the handle is live and owns event delivery.
    Live {
        handle: SessionHandle,
        job: FlowJob,
        tenant: Option<String>,
    },
    /// Finished and reaped: the handle (and the outcome's netlists) are
    /// dropped, only the wire-sized record and undelivered events stay.
    Done {
        tenant: Option<String>,
        status: SessionStatus,
        record: Json,
        pending_events: Vec<Json>,
    },
}

impl SessionEntry {
    fn tenant(&self) -> Option<&str> {
        match self {
            SessionEntry::Live { tenant, .. } | SessionEntry::Done { tenant, .. } => {
                tenant.as_deref()
            }
        }
    }

    fn status(&self) -> SessionStatus {
        match self {
            SessionEntry::Live { handle, .. } => handle.status(),
            SessionEntry::Done { status, .. } => *status,
        }
    }

    fn is_live(&self) -> bool {
        matches!(self, SessionEntry::Live { .. })
    }
}

struct Registry {
    next_id: u64,
    sessions: BTreeMap<u64, SessionEntry>,
}

struct DaemonState {
    registry: Mutex<Registry>,
    /// Once set the daemon admits nothing, ever again (drain is
    /// irreversible); existing sessions still serve reads.
    draining: AtomicBool,
    /// Set by `shutdown`: the accept loop exits after its next wake.
    stop: AtomicBool,
}

impl DaemonState {
    fn registry(&self) -> std::sync::MutexGuard<'_, Registry> {
        self.registry.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

// ---------------------------------------------------------------------
// Daemon
// ---------------------------------------------------------------------

/// The serving daemon behind `tdals serve`. Cheap to clone (one clone
/// per connection thread); clones share the scheduler and the session
/// registry.
#[derive(Clone)]
pub struct Daemon {
    scheduler: Scheduler,
    config: DaemonConfig,
    state: Arc<DaemonState>,
}

impl Daemon {
    /// Builds the daemon and its scheduler.
    ///
    /// # Errors
    ///
    /// The scheduler's configuration errors ([`ServerError::NoWorkers`],
    /// [`ServerError::ZeroSessionCap`](crate::scheduler::ServerError)).
    pub fn new(config: DaemonConfig) -> Result<Daemon, ServerError> {
        let mut sched = SchedulerConfig::new(config.total_threads);
        if let Some(cap) = config.session_cap {
            sched = sched.with_session_cap(cap);
        }
        Ok(Daemon {
            scheduler: Scheduler::new(sched)?,
            config,
            state: Arc::new(DaemonState {
                registry: Mutex::new(Registry {
                    next_id: 0,
                    sessions: BTreeMap::new(),
                }),
                draining: AtomicBool::new(false),
                stop: AtomicBool::new(false),
            }),
        })
    }

    /// Whether `drain` (or `shutdown`) has been requested.
    pub fn is_draining(&self) -> bool {
        self.state.draining.load(Ordering::SeqCst)
    }

    /// Whether `shutdown` has been requested.
    pub fn is_stopping(&self) -> bool {
        self.state.stop.load(Ordering::SeqCst)
    }

    /// Converts every finished `Live` entry to `Done`: builds its wire
    /// record, drains its remaining events, and drops its handle (and
    /// with it the outcome's netlists). Called before every read so the
    /// registry's live count tracks the scheduler.
    fn reap(&self, registry: &mut Registry) {
        let finished: Vec<u64> = registry
            .sessions
            .iter()
            .filter_map(|(id, entry)| match entry {
                SessionEntry::Live { handle, .. } => handle.try_result().map(|_| *id),
                SessionEntry::Done { .. } => None,
            })
            .collect();
        for id in finished {
            tdals_obs::metrics().sessions_reaped.incr();
            let Some(SessionEntry::Live {
                handle,
                job,
                tenant,
            }) = registry.sessions.remove(&id)
            else {
                unreachable!("id was collected from a Live entry under this lock");
            };
            let result = handle
                .try_result()
                .expect("entry was collected because its result is ready");
            let record = Json::Obj(session_record_fields(&job, &result));
            let pending_events = handle.poll_events().iter().map(event_to_json).collect();
            registry.sessions.insert(
                id,
                SessionEntry::Done {
                    tenant,
                    status: handle.status(),
                    record,
                    pending_events,
                },
            );
        }
    }

    /// Handles one request frame and returns the response frame. This
    /// is the entire verb surface — transports just move frames in and
    /// out. A `result` request with `wait: true` blocks until the
    /// session finishes (the registry lock is released while waiting).
    pub fn handle(&self, frame: &Json) -> Json {
        let request = match Request::from_json(frame) {
            Ok(request) => request,
            Err((code, message)) => return error_frame(code, message),
        };
        match request {
            Request::Submit { job, tenant } => self.submit(job, tenant),
            Request::Status { session } => self.status(session),
            Request::Events { session } => self.events(session),
            Request::Result { session, wait } => self.result(session, wait),
            Request::Cancel { session } => self.cancel(session),
            Request::Drain => self.drain(),
            Request::Health => self.health(),
            Request::Stats => self.stats(),
            Request::Shutdown => {
                let reply = self.drain();
                self.state.stop.store(true, Ordering::SeqCst);
                reply
            }
        }
    }

    fn submit(&self, mut job: FlowJob, tenant: Option<String>) -> Json {
        if self.is_draining() {
            return error_frame(ErrorCode::Draining, "daemon is draining; no new work");
        }
        let mut registry = self.state.registry();
        self.reap(&mut registry);
        let live = registry.sessions.values().filter(|e| e.is_live()).count();
        if live >= self.config.max_sessions {
            return error_frame(
                ErrorCode::QueueFull,
                format!(
                    "{live} live session(s) at the {} cap; retry after some finish",
                    self.config.max_sessions
                ),
            );
        }
        if let Some(quota) = self.config.tenant_quota {
            let mine = registry
                .sessions
                .values()
                .filter(|e| e.is_live() && e.tenant() == tenant.as_deref())
                .count();
            if mine >= quota {
                return error_frame(
                    ErrorCode::QuotaExceeded,
                    format!("tenant has {mine} live session(s) at the {quota} quota"),
                );
            }
        }
        // A thread ask beyond the lease cap is clamped, not rejected —
        // a manifest tuned for a bigger daemon still runs (outcomes are
        // width-invariant). An explicit 0 stays, so the scheduler's
        // typed ZeroThreads error reaches the client.
        if let Some(t) = job.threads {
            if t > 0 {
                job.threads = Some(t.min(self.scheduler.lease_cap()));
            }
        }
        let name = job.name.clone();
        let handle = match self.scheduler.submit(job.clone()) {
            Ok(handle) => handle,
            Err(e) => return error_frame(ErrorCode::Rejected, e.to_string()),
        };
        let id = registry.next_id;
        registry.next_id += 1;
        registry.sessions.insert(
            id,
            SessionEntry::Live {
                handle,
                job,
                tenant,
            },
        );
        Json::Obj(vec![
            schema_field(),
            ok_field("submitted"),
            ("session".into(), u64_to_json(id)),
            ("name".into(), Json::Str(name)),
        ])
    }

    fn status(&self, id: u64) -> Json {
        let mut registry = self.state.registry();
        self.reap(&mut registry);
        let Some(entry) = registry.sessions.get(&id) else {
            return unknown_session(id);
        };
        let status = entry.status();
        let mut members = vec![
            schema_field(),
            ok_field("status"),
            ("session".into(), u64_to_json(id)),
            ("status".into(), Json::Str(status_label(status).into())),
        ];
        if let SessionStatus::Running { threads } = status {
            members.push(("threads".into(), Json::Num(threads as f64)));
        }
        Json::Obj(members)
    }

    fn events(&self, id: u64) -> Json {
        let mut registry = self.state.registry();
        self.reap(&mut registry);
        let Some(entry) = registry.sessions.get_mut(&id) else {
            return unknown_session(id);
        };
        let (events, done) = match entry {
            SessionEntry::Live { handle, .. } => (
                handle.poll_events().iter().map(event_to_json).collect(),
                false,
            ),
            SessionEntry::Done { pending_events, .. } => (std::mem::take(pending_events), true),
        };
        Json::Obj(vec![
            schema_field(),
            ok_field("events"),
            ("session".into(), u64_to_json(id)),
            ("done".into(), Json::Bool(done)),
            ("events".into(), Json::Arr(events)),
        ])
    }

    fn result(&self, id: u64, wait: bool) -> Json {
        let mut registry = self.state.registry();
        self.reap(&mut registry);
        match registry.sessions.get(&id) {
            None => return unknown_session(id),
            Some(SessionEntry::Done { .. }) => {}
            Some(SessionEntry::Live { handle, .. }) => {
                if !wait {
                    return Json::Obj(vec![
                        schema_field(),
                        ok_field("result"),
                        ("session".into(), u64_to_json(id)),
                        ("done".into(), Json::Bool(false)),
                    ]);
                }
                // Block outside the registry lock: co-tenants must keep
                // submitting and polling while this waiter sleeps. The
                // handle clone shares the session's event buffer, so no
                // event is lost or duplicated by waiting.
                let waiter = handle.clone();
                drop(registry);
                let _ = waiter.result();
                registry = self.state.registry();
                self.reap(&mut registry);
            }
        }
        let Some(SessionEntry::Done { status, record, .. }) = registry.sessions.get(&id) else {
            return unknown_session(id);
        };
        Json::Obj(vec![
            schema_field(),
            ok_field("result"),
            ("session".into(), u64_to_json(id)),
            ("done".into(), Json::Bool(true)),
            ("status".into(), Json::Str(status_label(*status).into())),
            ("record".into(), record.clone()),
        ])
    }

    fn cancel(&self, id: u64) -> Json {
        let mut registry = self.state.registry();
        self.reap(&mut registry);
        let Some(entry) = registry.sessions.get(&id) else {
            return unknown_session(id);
        };
        // Cancelling a finished session is an idempotent no-op.
        if let SessionEntry::Live { handle, .. } = entry {
            handle.cancel();
        }
        Json::Obj(vec![
            schema_field(),
            ok_field("cancelled"),
            ("session".into(), u64_to_json(id)),
        ])
    }

    fn drain(&self) -> Json {
        self.state.draining.store(true, Ordering::SeqCst);
        // With admissions closed, this converges: finish in-flight
        // sessions, then flush their records into the registry.
        self.scheduler.drain();
        let mut registry = self.state.registry();
        self.reap(&mut registry);
        let sessions = registry.sessions.len();
        Json::Obj(vec![
            schema_field(),
            ok_field("drained"),
            ("sessions".into(), Json::Num(sessions as f64)),
        ])
    }

    fn health(&self) -> Json {
        let mut registry = self.state.registry();
        self.reap(&mut registry);
        let mut by_status: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut by_tenant: BTreeMap<String, usize> = BTreeMap::new();
        for entry in registry.sessions.values() {
            *by_status.entry(status_label(entry.status())).or_default() += 1;
            if entry.is_live() {
                *by_tenant
                    .entry(entry.tenant().unwrap_or("").to_owned())
                    .or_default() += 1;
            }
        }
        let counts = |labels: &[&str]| {
            Json::Obj(
                labels
                    .iter()
                    .map(|l| {
                        (
                            (*l).to_owned(),
                            Json::Num(by_status.get(l).copied().unwrap_or(0) as f64),
                        )
                    })
                    .collect(),
            )
        };
        Json::Obj(vec![
            schema_field(),
            ok_field("health"),
            ("draining".into(), Json::Bool(self.is_draining())),
            (
                "queue_depth".into(),
                Json::Num(self.scheduler.waiting_sessions() as f64),
            ),
            (
                "slots".into(),
                Json::Obj(vec![
                    (
                        "total".into(),
                        Json::Num(self.scheduler.total_threads() as f64),
                    ),
                    (
                        "available".into(),
                        Json::Num(self.scheduler.available_threads() as f64),
                    ),
                    (
                        "lease_cap".into(),
                        Json::Num(self.scheduler.lease_cap() as f64),
                    ),
                ]),
            ),
            (
                "sessions".into(),
                counts(&["queued", "running", "completed", "failed", "panicked"]),
            ),
            // Live sessions per tenant, tenant-name order; anonymous
            // submissions count under "".
            (
                "tenants".into(),
                Json::Obj(
                    by_tenant
                        .into_iter()
                        .map(|(t, n)| (t, Json::Num(n as f64)))
                        .collect(),
                ),
            ),
        ])
    }

    fn stats(&self) -> Json {
        let mut registry = self.state.registry();
        self.reap(&mut registry);
        let mut by_status: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut by_tenant: BTreeMap<String, usize> = BTreeMap::new();
        for entry in registry.sessions.values() {
            *by_status.entry(status_label(entry.status())).or_default() += 1;
            if entry.is_live() {
                *by_tenant
                    .entry(entry.tenant().unwrap_or("").to_owned())
                    .or_default() += 1;
            }
        }
        drop(registry);
        // The process-wide registry is one shared instance, so a daemon
        // embedded next to other work reports that work's counters too
        // — by design: the counters describe the process.
        let metrics = tdals_bench::obs_report::snapshot_to_json(&tdals_obs::metrics().snapshot());
        Json::Obj(vec![
            schema_field(),
            ok_field("stats"),
            ("metrics".into(), metrics),
            (
                "sessions".into(),
                Json::Obj(
                    by_status
                        .into_iter()
                        .map(|(s, n)| (s.to_owned(), Json::Num(n as f64)))
                        .collect(),
                ),
            ),
            (
                "tenants".into(),
                Json::Obj(
                    by_tenant
                        .into_iter()
                        .map(|(t, n)| (t, Json::Num(n as f64)))
                        .collect(),
                ),
            ),
            (
                "queue_depth".into(),
                Json::Num(self.scheduler.waiting_sessions() as f64),
            ),
        ])
    }

    // -----------------------------------------------------------------
    // Socket serving
    // -----------------------------------------------------------------

    /// Serves connections until a `shutdown` request: one thread per
    /// connection, each speaking the frame protocol through
    /// [`Daemon::handle`]. Blocks; returns once every connection thread
    /// has exited after shutdown. A client disconnect does *not* cancel
    /// its sessions — they run to completion and their slots return to
    /// the pool (another connection can still fetch the results).
    ///
    /// # Errors
    ///
    /// The accept loop's I/O errors.
    pub fn serve(&self, listener: Listener) -> io::Result<()> {
        let wake_spec = listener.local_spec();
        let threads = Arc::new((Mutex::new(0usize), Condvar::new()));
        loop {
            let stream = listener.accept()?;
            if self.is_stopping() {
                break;
            }
            let daemon = self.clone();
            let wake = wake_spec.clone();
            let counter = Arc::clone(&threads);
            *counter.0.lock().unwrap_or_else(PoisonError::into_inner) += 1;
            let spawned = std::thread::Builder::new()
                .name("tdals-conn".into())
                .spawn(move || {
                    daemon.serve_connection(stream);
                    if daemon.is_stopping() {
                        // The accept loop is blocked in accept(); poke
                        // it with a throwaway connection so it observes
                        // the stop flag.
                        let _ = connect(&wake);
                    }
                    let (lock, cv) = &*counter;
                    *lock.lock().unwrap_or_else(PoisonError::into_inner) -= 1;
                    cv.notify_all();
                });
            if spawned.is_err() {
                *threads.0.lock().unwrap_or_else(PoisonError::into_inner) -= 1;
            }
        }
        let (lock, cv) = &*threads;
        let mut active = lock.lock().unwrap_or_else(PoisonError::into_inner);
        while *active > 0 {
            active = cv.wait(active).unwrap_or_else(PoisonError::into_inner);
        }
        drop(active);
        listener.cleanup();
        Ok(())
    }

    /// One connection's request/response loop. Survives `bad-frame`
    /// lines (the stream is still aligned); closes on oversized frames
    /// (alignment is lost) and on transport errors.
    fn serve_connection(&self, stream: Stream) {
        let mut conn = Connection::with_max_frame(stream, self.config.max_frame_len);
        loop {
            match conn.receive() {
                Ok(None) => break,
                Ok(Some(frame)) => {
                    tdals_obs::metrics().frames_read.incr();
                    let reply = self.handle(&frame);
                    if conn.send(&reply).is_err() {
                        break;
                    }
                    tdals_obs::metrics().frames_written.incr();
                    if self.is_stopping() {
                        break;
                    }
                }
                Err(FrameError::BadJson(e)) => {
                    if conn.send(&error_frame(ErrorCode::BadFrame, e)).is_err() {
                        break;
                    }
                }
                Err(FrameError::Oversized { limit }) => {
                    let _ = conn.send(&error_frame(
                        ErrorCode::OversizedFrame,
                        format!("frame exceeds the {limit}-byte limit"),
                    ));
                    break;
                }
                Err(_) => break,
            }
        }
    }
}

fn schema_field() -> (String, Json) {
    ("schema".into(), Json::Num(PROTOCOL_SCHEMA as f64))
}

fn ok_field(verb: &str) -> (String, Json) {
    ("ok".into(), Json::Str(verb.into()))
}

fn unknown_session(id: u64) -> Json {
    error_frame(
        ErrorCode::UnknownSession,
        format!("no session {id} on this daemon"),
    )
}

/// The wire spelling of a [`SessionStatus`].
fn status_label(status: SessionStatus) -> &'static str {
    match status {
        SessionStatus::Queued => "queued",
        SessionStatus::Running { .. } => "running",
        SessionStatus::Completed => "completed",
        SessionStatus::Failed => "failed",
        SessionStatus::Panicked => "panicked",
    }
}

// ---------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------

/// Interprets a listen/connect spec: anything containing `/` (or
/// prefixed `unix:`) is a unix-socket path, everything else a TCP
/// `host:port`.
fn unix_path(spec: &str) -> Option<&str> {
    if let Some(path) = spec.strip_prefix("unix:") {
        return Some(path);
    }
    spec.contains('/').then_some(spec)
}

/// A bound listening socket: TCP (`host:port`) or unix-domain (a path,
/// or `unix:<path>`).
#[derive(Debug)]
pub enum Listener {
    /// TCP socket.
    Tcp(TcpListener),
    /// Unix-domain socket plus its filesystem path (removed by
    /// [`Daemon::serve`] on exit).
    #[cfg(unix)]
    Unix(UnixListener, String),
}

impl Listener {
    /// Binds per the spec rule above.
    ///
    /// # Errors
    ///
    /// The OS bind error.
    pub fn bind(spec: &str) -> io::Result<Listener> {
        match unix_path(spec) {
            #[cfg(unix)]
            Some(path) => Ok(Listener::Unix(UnixListener::bind(path)?, path.to_owned())),
            #[cfg(not(unix))]
            Some(path) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("unix sockets are unavailable on this platform: {path}"),
            )),
            None => Ok(Listener::Tcp(TcpListener::bind(spec)?)),
        }
    }

    /// The spec a client on this machine can [`connect`] to — the
    /// actual bound address, so binding port 0 reports the real port.
    pub fn local_spec(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "127.0.0.1:0".into()),
            #[cfg(unix)]
            Listener::Unix(_, path) => path.clone(),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => Ok(Stream::Tcp(l.accept()?.0)),
            #[cfg(unix)]
            Listener::Unix(l, _) => Ok(Stream::Unix(l.accept()?.0)),
        }
    }

    fn cleanup(&self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One accepted or dialed connection; [`Read`] + [`Write`], so it slots
/// into [`Connection`].
#[derive(Debug)]
pub enum Stream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

/// Dials a daemon using the same spec rule as [`Listener::bind`].
///
/// # Errors
///
/// The OS connect error.
pub fn connect(spec: &str) -> io::Result<Stream> {
    match unix_path(spec) {
        #[cfg(unix)]
        Some(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
        #[cfg(not(unix))]
        Some(path) => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!("unix sockets are unavailable on this platform: {path}"),
        )),
        None => Ok(Stream::Tcp(TcpStream::connect(spec)?)),
    }
}

/// Why a dial (with retries) gave up. The variant matters to callers:
/// `Refused` means nothing was listening — the retryable condition a
/// daemon that is still binding its socket produces — while `Other`
/// wraps every error retrying cannot fix (bad address, permission,
/// unsupported transport).
#[derive(Debug)]
#[non_exhaustive]
pub enum ConnectError {
    /// Nothing accepted on the spec after every attempt (TCP
    /// `ConnectionRefused`, or a unix socket path not created yet).
    Refused {
        /// The spec that was dialed.
        spec: String,
        /// How many connection attempts were made (retries + 1).
        attempts: usize,
        /// The last OS error.
        error: io::Error,
    },
    /// A non-retryable dial error.
    Other {
        /// The spec that was dialed.
        spec: String,
        /// The OS error.
        error: io::Error,
    },
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectError::Refused {
                spec,
                attempts,
                error,
            } => write!(
                f,
                "connection-refused: nothing is listening on {spec} \
                 (after {attempts} attempt(s)): {error}"
            ),
            ConnectError::Other { spec, error } => write!(f, "connecting to {spec}: {error}"),
        }
    }
}

impl std::error::Error for ConnectError {}

/// Whether retrying the dial can possibly succeed: the daemon may still
/// be binding. `NotFound` covers a unix socket whose path does not
/// exist yet.
fn dial_retryable(error: &io::Error) -> bool {
    matches!(
        error.kind(),
        io::ErrorKind::ConnectionRefused | io::ErrorKind::NotFound
    )
}

/// Dials like [`connect`], retrying a refused connection up to
/// `retries` extra times with bounded backoff (50 ms doubling to a
/// 1 s ceiling — a fixed schedule, no wall-clock reads, so the retry
/// loop is determinism-lint clean). `retries == 0` is a single plain
/// dial with the typed error.
///
/// # Errors
///
/// [`ConnectError::Refused`] once the attempts are exhausted;
/// [`ConnectError::Other`] immediately for anything retrying cannot
/// fix.
pub fn connect_retry(spec: &str, retries: usize) -> Result<Stream, ConnectError> {
    let mut attempt = 0usize;
    loop {
        match connect(spec) {
            Ok(stream) => return Ok(stream),
            Err(error) if !dial_retryable(&error) => {
                return Err(ConnectError::Other {
                    spec: spec.to_owned(),
                    error,
                })
            }
            Err(error) => {
                if attempt >= retries {
                    return Err(ConnectError::Refused {
                        spec: spec.to_owned(),
                        attempts: attempt + 1,
                        error,
                    });
                }
                let backoff = 50u64.saturating_mul(1 << attempt.min(5)).min(1000);
                std::thread::sleep(std::time::Duration::from_millis(backoff));
                attempt += 1;
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

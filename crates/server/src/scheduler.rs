//! The session scheduler: N concurrent [`FlowJob`]s over one shared,
//! capacity-bounded worker pool.
//!
//! # Architecture
//!
//! The scheduler owns a [`SlotPool`] sized to its total thread budget.
//! Every submitted job becomes a *session* on its own OS thread; the
//! session first leases 1..=cap slots from the pool (queueing in
//! priority-then-FIFO order — the pool grants only the head of the
//! line, so nothing starves), then runs its flow at exactly
//! `lease.width()` worker threads, then returns the slots. Because
//! every optimizer produces a bit-identical [`FlowOutcome`] at any
//! thread count,
//! lease widths are purely a throughput decision: co-tenancy can never
//! leak into a session's result.
//!
//! # Isolation
//!
//! Sessions share nothing but the slot budget. A session that panics is
//! caught on its own thread (the lease returns by drop, the failure is
//! reported as a typed [`SessionError::Panicked`]); a cancelled or
//! deadline-expired session stops within one optimizer iteration and
//! frees its slots; none of it perturbs a co-tenant's outcome — the
//! determinism suite in `tests/server.rs` holds digests bit-identical
//! to solo runs under exactly these mixes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use tdals_core::api::{CancelFlag, FlowError, FlowEvent, FlowOutcome, Observer};
use tdals_core::par::SlotPool;

use crate::job::FlowJob;

/// Typed admission/configuration errors of the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServerError {
    /// The scheduler was configured with a zero total thread budget.
    NoWorkers,
    /// The per-session slot cap is zero: no session could ever run.
    ZeroSessionCap,
    /// A job requested zero worker threads.
    ZeroThreads {
        /// Name of the rejected job.
        job: String,
    },
    /// A job requested more per-session threads than any lease can
    /// grant (the per-session cap bounded by the pool total).
    ThreadsExceedLease {
        /// Name of the rejected job.
        job: String,
        /// Threads the job asked for.
        requested: usize,
        /// Largest lease the scheduler will ever grant one session.
        lease_cap: usize,
    },
    /// The OS refused to spawn the session thread.
    Spawn {
        /// The underlying error.
        error: String,
    },
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::NoWorkers => {
                f.write_str("scheduler has a zero thread budget; configure 1 or more")
            }
            ServerError::ZeroSessionCap => {
                f.write_str("per-session slot cap is zero; no session could run")
            }
            ServerError::ZeroThreads { job } => {
                write!(f, "job `{job}`: 0 worker threads cannot evaluate anything")
            }
            ServerError::ThreadsExceedLease {
                job,
                requested,
                lease_cap,
            } => write!(
                f,
                "job `{job}`: requested {requested} thread(s) but the lease cap is {lease_cap}"
            ),
            ServerError::Spawn { error } => write!(f, "spawning session thread: {error}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Why a session produced no [`FlowOutcome`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SessionError {
    /// The flow rejected the job's configuration.
    Flow(FlowError),
    /// The session panicked; the panic was contained on the session's
    /// own thread and its slots were returned.
    Panicked(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Flow(e) => write!(f, "flow error: {e}"),
            SessionError::Panicked(message) => write!(f, "session panicked: {message}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Flow(e) => Some(e),
            SessionError::Panicked(_) => None,
        }
    }
}

/// A session's lifecycle phase, as reported by
/// [`SessionHandle::status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionStatus {
    /// Waiting in line for a slot lease.
    Queued,
    /// Holding a lease and running its flow.
    Running {
        /// Worker threads the session's lease granted — `0` for the
        /// unleased wind-down of a cancelled-while-queued session, so
        /// summing `Running` widths never exceeds the pool budget.
        threads: usize,
    },
    /// Finished with a [`FlowOutcome`].
    Completed,
    /// Finished with a typed [`FlowError`].
    Failed,
    /// The session panicked (contained; see [`SessionError::Panicked`]).
    Panicked,
}

/// Scheduler configuration: the shared pool budget and the per-session
/// lease cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct SchedulerConfig {
    /// Total worker slots shared by every session.
    pub total_threads: usize,
    /// Most slots one session may lease; `None` means the whole pool
    /// (a lone session uses every core; co-tenants split evenly).
    pub session_cap: Option<usize>,
}

impl SchedulerConfig {
    /// A scheduler over `total_threads` shared worker slots.
    pub fn new(total_threads: usize) -> SchedulerConfig {
        SchedulerConfig {
            total_threads,
            session_cap: None,
        }
    }

    /// Caps how many slots one session may lease.
    pub fn with_session_cap(mut self, cap: usize) -> SchedulerConfig {
        self.session_cap = Some(cap);
        self
    }
}

enum SessionState {
    Queued,
    Running {
        threads: usize,
        admitted: Option<usize>,
    },
    Done {
        // Boxed: a FlowOutcome carries whole netlists, and the other
        // variants are a few words.
        result: Box<Result<FlowOutcome, SessionError>>,
        admitted: Option<usize>,
    },
}

struct SessionShared {
    name: String,
    cancel: CancelFlag,
    events: Mutex<Vec<FlowEvent>>,
    state: Mutex<SessionState>,
    cv: Condvar,
}

impl SessionShared {
    fn state(&self) -> std::sync::MutexGuard<'_, SessionState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One tenant's view of its submitted session: `status` / `poll_events`
/// / `cancel` / `result`, fully isolated from every co-tenant. Cloning
/// yields another handle to the same session (the daemon clones one per
/// blocked waiter); clones share the one event buffer, so each event is
/// delivered to exactly one [`SessionHandle::poll_events`] caller.
#[derive(Clone)]
pub struct SessionHandle {
    shared: Arc<SessionShared>,
    index: usize,
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("name", &self.shared.name)
            .field("index", &self.index)
            .field("status", &self.status())
            .finish()
    }
}

impl SessionHandle {
    /// The job's display name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Submission index within this scheduler (0-based).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Current lifecycle phase.
    pub fn status(&self) -> SessionStatus {
        match &*self.shared.state() {
            SessionState::Queued => SessionStatus::Queued,
            SessionState::Running { threads, .. } => SessionStatus::Running { threads: *threads },
            SessionState::Done { result, .. } => match &**result {
                Ok(_) => SessionStatus::Completed,
                Err(SessionError::Flow(_)) => SessionStatus::Failed,
                Err(SessionError::Panicked(_)) => SessionStatus::Panicked,
            },
        }
    }

    /// Order in which this session was granted its lease, if it has
    /// been admitted yet: the observable face of the priority-then-FIFO
    /// queue.
    pub fn admission_index(&self) -> Option<usize> {
        match &*self.shared.state() {
            SessionState::Queued => None,
            SessionState::Running { admitted, .. } => *admitted,
            SessionState::Done { admitted, .. } => *admitted,
        }
    }

    /// Requests cooperative cancellation: a running session stops
    /// within one optimizer iteration, and a *queued* session abandons
    /// its place in line promptly (it never waits for a co-tenant to
    /// free a slot) and winds down unleased — either way the session
    /// still reports a feasible best with
    /// [`StopReason::Cancelled`](tdals_core::api::StopReason::Cancelled).
    pub fn cancel(&self) {
        self.shared.cancel.cancel();
    }

    /// Drains the [`FlowEvent`]s emitted since the last poll, in
    /// emission order. The session's stream is monotone and ends with
    /// the same terminal events a solo flow emits.
    ///
    /// Events buffer until polled, so a long-lived caller that never
    /// polls pays memory proportional to the session's iteration
    /// count; poll periodically (or once after [`SessionHandle::result`])
    /// to keep it flat.
    pub fn poll_events(&self) -> Vec<FlowEvent> {
        std::mem::take(
            &mut *self
                .shared
                .events
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// The session's result if it has finished.
    pub fn try_result(&self) -> Option<Result<FlowOutcome, SessionError>> {
        match &*self.shared.state() {
            SessionState::Done { result, .. } => Some((**result).clone()),
            _ => None,
        }
    }

    /// Blocks until the session finishes and returns its result.
    pub fn result(&self) -> Result<FlowOutcome, SessionError> {
        let mut state = self.shared.state();
        loop {
            if let SessionState::Done { result, .. } = &*state {
                return (**result).clone();
            }
            state = self
                .shared
                .cv
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct SchedCounters {
    active: usize,
}

struct SchedShared {
    counters: Mutex<SchedCounters>,
    cv: Condvar,
    /// Serializes the unleased wind-downs of cancelled-while-queued
    /// sessions: each still runs its (immediately-stopping) flow to
    /// produce the contract outcome, and holding this lock caps that
    /// off-budget work at one thread, however many tenants cancel.
    winddown: Mutex<()>,
}

/// The multi-tenant session scheduler (see the module docs). Cloning
/// yields another handle to the same scheduler.
#[derive(Clone)]
pub struct Scheduler {
    pool: SlotPool,
    lease_cap: usize,
    shared: Arc<SchedShared>,
    next_index: Arc<Mutex<usize>>,
}

impl Scheduler {
    /// Builds a scheduler from `config`.
    ///
    /// # Errors
    ///
    /// [`ServerError::NoWorkers`] for a zero thread budget,
    /// [`ServerError::ZeroSessionCap`] for a zero per-session cap.
    pub fn new(config: SchedulerConfig) -> Result<Scheduler, ServerError> {
        if config.total_threads == 0 {
            return Err(ServerError::NoWorkers);
        }
        let session_cap = config.session_cap.unwrap_or(config.total_threads);
        if session_cap == 0 {
            return Err(ServerError::ZeroSessionCap);
        }
        Ok(Scheduler {
            pool: SlotPool::new(config.total_threads),
            lease_cap: session_cap.min(config.total_threads),
            shared: Arc::new(SchedShared {
                counters: Mutex::new(SchedCounters { active: 0 }),
                cv: Condvar::new(),
                winddown: Mutex::new(()),
            }),
            next_index: Arc::new(Mutex::new(0)),
        })
    }

    /// Total worker slots the scheduler shares across sessions.
    pub fn total_threads(&self) -> usize {
        self.pool.total()
    }

    /// Slots not currently leased to any session.
    pub fn available_threads(&self) -> usize {
        self.pool.available()
    }

    /// Largest lease one session can ever be granted.
    pub fn lease_cap(&self) -> usize {
        self.lease_cap
    }

    /// Sessions currently waiting in line for a lease.
    pub fn waiting_sessions(&self) -> usize {
        self.pool.waiting()
    }

    /// Sessions submitted but not yet finished (queued or running).
    pub fn active_sessions(&self) -> usize {
        self.shared
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .active
    }

    /// Checks a job against this scheduler's admission rules without
    /// submitting it.
    ///
    /// # Errors
    ///
    /// The same typed [`ServerError`]s [`Scheduler::submit`] reports.
    pub fn validate(&self, job: &FlowJob) -> Result<(), ServerError> {
        match job.threads {
            Some(0) => Err(ServerError::ZeroThreads {
                job: job.name.clone(),
            }),
            Some(n) if n > self.lease_cap => Err(ServerError::ThreadsExceedLease {
                job: job.name.clone(),
                requested: n,
                lease_cap: self.lease_cap,
            }),
            _ => Ok(()),
        }
    }

    /// Admits a job: it queues for a slot lease (priority first, FIFO
    /// within a priority) and runs on its own session thread once
    /// granted. Returns immediately with the session's handle.
    ///
    /// # Errors
    ///
    /// [`Scheduler::validate`]'s typed errors, or
    /// [`ServerError::Spawn`] if the OS refuses a thread.
    pub fn submit(&self, job: FlowJob) -> Result<SessionHandle, ServerError> {
        self.submit_inner(job, None)
    }

    /// [`Scheduler::submit`] with an extra observer that receives the
    /// session's events synchronously on the session thread (the
    /// buffered [`SessionHandle::poll_events`] stream is fed either
    /// way). A panicking observer is contained like any other session
    /// panic.
    pub fn submit_observed(
        &self,
        job: FlowJob,
        observer: impl Observer + Send + 'static,
    ) -> Result<SessionHandle, ServerError> {
        self.submit_inner(job, Some(Box::new(observer)))
    }

    fn submit_inner(
        &self,
        job: FlowJob,
        extra: Option<Box<dyn Observer + Send>>,
    ) -> Result<SessionHandle, ServerError> {
        self.validate(&job)?;
        let index = {
            let mut next = self
                .next_index
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let i = *next;
            *next += 1;
            i
        };
        let budget = job.budget.to_budget();
        let shared = Arc::new(SessionShared {
            name: job.name.clone(),
            cancel: budget.cancel_flag(),
            events: Mutex::new(Vec::new()),
            state: Mutex::new(SessionState::Queued),
            cv: Condvar::new(),
        });
        {
            let mut counters = self
                .shared
                .counters
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            counters.active += 1;
        }
        let width_max = job.threads.unwrap_or(self.lease_cap).min(self.lease_cap);
        let pool = self.pool.clone();
        let sched = Arc::clone(&self.shared);
        let session = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name(format!("tdals-session-{index}"))
            .spawn(move || {
                // A raised cancel flag withdraws a *queued* session
                // from the lease line promptly; it then winds down
                // unleased at width 1 — the pre-raised flag stops the
                // flow before its first iteration, so the only cost is
                // the context build, and a cancelled tenant never sits
                // blocked behind a long-running co-tenant just to learn
                // it should stop.
                let cancel = session.cancel.clone();
                let lease = pool
                    .lease_or_abort(1, width_max, job.priority, &move || cancel.is_cancelled())
                    .expect("admission validated the lease range");
                // Cancelled while queued: the wind-down run is unleased
                // (it must not wait on co-tenants), so serialize those
                // runs — the off-budget cost is capped at one thread
                // however many tenants cancel at once.
                let winddown = match &lease {
                    Some(_) => None,
                    None => Some(
                        sched
                            .winddown
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner),
                    ),
                };
                let width = lease.as_ref().map_or(1, |l| l.width());
                // Admission order is the pool's grant sequence, stamped
                // under the pool lock — anything assigned after the
                // grant returns would race concurrent grants. A
                // cancelled-while-queued session was never admitted,
                // and its status reports 0 threads: it holds no pool
                // slots, so Running widths always sum within the
                // budget (the wind-down itself runs at width 1).
                let admitted = lease.as_ref().map(|l| l.sequence() as usize);
                *session.state() = SessionState::Running {
                    threads: lease.as_ref().map_or(0, |l| l.width()),
                    admitted,
                };
                let mut obs = SessionObserver {
                    events: &session.events,
                    extra,
                };
                let ran = catch_unwind(AssertUnwindSafe(|| job.run_with(width, budget, &mut obs)));
                drop(obs);
                // Slots return before the result is published, so an
                // observer that sees `Done` can also rely on the pool
                // being drained of this session.
                drop(lease);
                drop(winddown);
                let result = match ran {
                    Ok(Ok(outcome)) => Ok(outcome),
                    Ok(Err(e)) => Err(SessionError::Flow(e)),
                    // `&*payload`, not `&payload`: the latter would
                    // unsize the Box itself into `dyn Any` and every
                    // downcast would miss.
                    Err(payload) => Err(SessionError::Panicked(panic_message(&*payload))),
                };
                *session.state() = SessionState::Done {
                    result: Box::new(result),
                    admitted,
                };
                session.cv.notify_all();
                let mut counters = sched
                    .counters
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                counters.active -= 1;
                sched.cv.notify_all();
            });
        if let Err(e) = spawned {
            let mut counters = self
                .shared
                .counters
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            counters.active -= 1;
            return Err(ServerError::Spawn {
                error: e.to_string(),
            });
        }
        Ok(SessionHandle { shared, index })
    }

    /// Blocks until every submitted session has finished (the pool is
    /// idle and all slots are back).
    pub fn drain(&self) {
        let mut counters = self
            .shared
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while counters.active > 0 {
            counters = self
                .shared
                .cv
                .wait(counters)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Feeds a session's events into its poll buffer and the optional
/// tenant observer.
struct SessionObserver<'a> {
    events: &'a Mutex<Vec<FlowEvent>>,
    extra: Option<Box<dyn Observer + Send>>,
}

impl Observer for SessionObserver<'_> {
    fn on_event(&mut self, event: &FlowEvent) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
        if let Some(extra) = self.extra.as_mut() {
            extra.on_event(event);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

//! Job descriptions and their serializable records.
//!
//! A [`FlowJob`] is everything one tenant asks of the service: a
//! circuit (named benchmark or structural Verilog), a method, an error
//! bound, evaluation knobs, a scheduling priority, and a resource
//! budget. Jobs round-trip through the same hand-rolled JSON value type
//! the benchmark pipeline uses ([`tdals_bench::json::Json`] — the build
//! environment has no registry access, so no serde), which is what the
//! `tdals serve-batch` manifest format and the deterministic results
//! file are made of.
//!
//! Determinism contract: [`FlowJob::run_direct`] defines the reference
//! semantics of a job — the scheduler runs the *same* code path, so a
//! session's [`FlowOutcome`] is bit-identical to its solo run whatever
//! the co-tenant mix or lease width (see `tests/server.rs`).

use std::time::Duration;

use tdals_baselines::{Method, MethodConfig};
use tdals_bench::json::Json;
use tdals_circuits::{Benchmark, ALL_BENCHMARKS};
use tdals_core::api::{Budget, Flow, FlowError, FlowOutcome, Observer};
use tdals_core::OptimizerConfig;
use tdals_sim::ErrorMetric;

use crate::scheduler::SessionError;

/// The circuit a job runs on.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSource {
    /// One of the paper's regenerated benchmarks.
    Benchmark(Benchmark),
    /// Structural Verilog text (parsed when the job runs).
    Verilog(String),
}

/// Resource limits carried by a job; mirrors [`Budget`] minus the
/// cancellation flag, which belongs to the session, not the job
/// description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobBudget {
    /// Iteration cap, if any.
    pub max_iterations: Option<usize>,
    /// Candidate-evaluation cap, if any.
    pub max_evaluations: Option<u64>,
    /// Wall-clock deadline, if any. The manifest format carries whole
    /// milliseconds (`deadline_ms`), so a sub-millisecond remainder set
    /// programmatically is rounded down by [`FlowJob::to_json`].
    pub deadline: Option<Duration>,
}

impl JobBudget {
    /// Builds a fresh [`Budget`] (with its own cancellation flag) from
    /// these limits.
    pub fn to_budget(self) -> Budget {
        let mut budget = Budget::unlimited();
        if let Some(n) = self.max_iterations {
            budget = budget.with_max_iterations(n);
        }
        if let Some(n) = self.max_evaluations {
            budget = budget.with_max_evaluations(n);
        }
        if let Some(d) = self.deadline {
            budget = budget.with_deadline(d);
        }
        budget
    }
}

/// One tenant's complete request: circuit + method + bound + knobs +
/// priority + budget. Construct with [`FlowJob::benchmark`] /
/// [`FlowJob::verilog`] and refine with the `with_*` setters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct FlowJob {
    /// Display name (defaults to the circuit's name).
    pub name: String,
    /// The circuit to approximate.
    pub source: JobSource,
    /// Which of the five optimizers runs.
    pub method: Method,
    /// Error metric in force.
    pub metric: ErrorMetric,
    /// User error budget under the metric.
    pub bound: f64,
    /// Population size for the population-based methods.
    pub population: usize,
    /// Iterations / generations / greedy-round budget.
    pub iterations: usize,
    /// Monte-Carlo vectors per evaluation.
    pub vectors: usize,
    /// RNG + stimulus seed (the determinism anchor).
    pub seed: u64,
    /// Scheduling priority: higher is admitted first, FIFO within.
    pub priority: u8,
    /// Requested per-session worker-thread cap; `None` takes whatever
    /// the scheduler's lease grants. `Some(n)` beyond the lease cap is
    /// rejected at submission with a typed error.
    pub threads: Option<usize>,
    /// Post-optimization area constraint; `None` means the accurate
    /// circuit's area.
    pub area_con: Option<f64>,
    /// Resource limits for the optimizer phase.
    pub budget: JobBudget,
}

impl FlowJob {
    fn with_source(name: String, source: JobSource) -> FlowJob {
        FlowJob {
            name,
            source,
            method: Method::Dcgwo,
            metric: ErrorMetric::ErrorRate,
            bound: 0.05,
            population: 30,
            iterations: 20,
            vectors: 4096,
            seed: 1,
            priority: 0,
            threads: None,
            area_con: None,
            budget: JobBudget::default(),
        }
    }

    /// A job on one of the paper's benchmarks (the paper's defaults:
    /// DCGWO, ER, population 30, 20 iterations, 4096 vectors, seed 1).
    pub fn benchmark(bench: Benchmark) -> FlowJob {
        FlowJob::with_source(bench.name().to_owned(), JobSource::Benchmark(bench))
    }

    /// A job on structural Verilog text (parsed when the job runs; a
    /// parse failure surfaces as the session's typed
    /// [`FlowError::Verilog`]).
    pub fn verilog(name: impl Into<String>, text: impl Into<String>) -> FlowJob {
        FlowJob::with_source(name.into(), JobSource::Verilog(text.into()))
    }

    /// Sets the display name. Names identify result records (and shard
    /// assignments), so [`Manifest::parse`] rejects duplicates — give
    /// programmatic jobs on the same circuit distinct names.
    pub fn with_name(mut self, name: impl Into<String>) -> FlowJob {
        self.name = name.into();
        self
    }

    /// Sets the optimizer method.
    pub fn with_method(mut self, method: Method) -> FlowJob {
        self.method = method;
        self
    }

    /// Sets the error metric.
    pub fn with_metric(mut self, metric: ErrorMetric) -> FlowJob {
        self.metric = metric;
        self
    }

    /// Sets the error bound.
    pub fn with_bound(mut self, bound: f64) -> FlowJob {
        self.bound = bound;
        self
    }

    /// Sets population and iteration counts.
    pub fn with_scale(mut self, population: usize, iterations: usize) -> FlowJob {
        self.population = population;
        self.iterations = iterations;
        self
    }

    /// Sets the Monte-Carlo vector count.
    pub fn with_vectors(mut self, vectors: usize) -> FlowJob {
        self.vectors = vectors;
        self
    }

    /// Sets the RNG + stimulus seed.
    pub fn with_seed(mut self, seed: u64) -> FlowJob {
        self.seed = seed;
        self
    }

    /// Sets the scheduling priority (higher is admitted first).
    pub fn with_priority(mut self, priority: u8) -> FlowJob {
        self.priority = priority;
        self
    }

    /// Sets the requested per-session thread cap.
    pub fn with_threads(mut self, threads: impl Into<Option<usize>>) -> FlowJob {
        self.threads = threads.into();
        self
    }

    /// Sets the post-optimization area constraint.
    pub fn with_area_con(mut self, area_con: impl Into<Option<f64>>) -> FlowJob {
        self.area_con = area_con.into();
        self
    }

    /// Sets the job's resource limits.
    pub fn with_budget(mut self, budget: JobBudget) -> FlowJob {
        self.budget = budget;
        self
    }

    /// Runs this job on the calling thread at `threads` workers with an
    /// explicit budget and observer. This is the one code path both the
    /// scheduler and [`FlowJob::run_direct`] use, which is what makes
    /// the scheduler-vs-solo digests bit-identical.
    ///
    /// # Errors
    ///
    /// Whatever [`Flow::run`] reports for this job's knobs.
    pub fn run_with(
        &self,
        threads: usize,
        budget: Budget,
        obs: &mut dyn Observer,
    ) -> Result<FlowOutcome, FlowError> {
        let cfg = MethodConfig::default()
            .with_population(self.population)
            .with_iterations(self.iterations)
            .with_level_we(OptimizerConfig::paper_level_we(self.metric))
            .with_seed(self.seed)
            .with_threads(threads);
        let built;
        let flow = match &self.source {
            JobSource::Benchmark(bench) => {
                built = bench.build();
                Flow::for_netlist(&built)
            }
            JobSource::Verilog(text) => Flow::for_verilog(text)?,
        };
        flow.metric(self.metric)
            .error_bound(self.bound)
            .vectors(self.vectors)
            .pattern_seed(self.seed)
            .area_constraint(self.area_con)
            .budget(budget)
            .optimizer(self.method.optimizer(&cfg))
            .observer(obs)
            .run()
    }

    /// The reference semantics of this job: a solo run on the calling
    /// thread, no scheduler involved. A scheduled session's outcome is
    /// bit-identical to this for any lease width and co-tenant mix.
    ///
    /// # Errors
    ///
    /// Whatever [`Flow::run`] reports for this job's knobs.
    pub fn run_direct(&self, threads: usize) -> Result<FlowOutcome, FlowError> {
        let mut obs = tdals_core::api::NopObserver;
        self.run_with(threads, self.budget.to_budget(), &mut obs)
    }

    /// The job as a manifest-format JSON object ([`FlowJob::from_json`]
    /// round-trips it).
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![("name".into(), Json::Str(self.name.clone()))];
        match &self.source {
            JobSource::Benchmark(bench) => members.push((
                "circuit".into(),
                Json::Str(format!("bench:{}", bench.name())),
            )),
            JobSource::Verilog(text) => members.push(("verilog".into(), Json::Str(text.clone()))),
        }
        members.push(("method".into(), Json::Str(self.method.cli_name().into())));
        members.push(("metric".into(), Json::Str(self.metric.cli_name().into())));
        members.push(("bound".into(), Json::Num(self.bound)));
        members.push(("population".into(), Json::Num(self.population as f64)));
        members.push(("iterations".into(), Json::Num(self.iterations as f64)));
        members.push(("vectors".into(), Json::Num(self.vectors as f64)));
        // Seeds are the determinism anchor, so they must survive the
        // round-trip exactly; big ones travel as strings (`u64_to_json`).
        members.push(("seed".into(), u64_to_json(self.seed)));
        members.push(("priority".into(), Json::Num(f64::from(self.priority))));
        if let Some(threads) = self.threads {
            members.push(("threads".into(), Json::Num(threads as f64)));
        }
        if let Some(area_con) = self.area_con {
            members.push(("area_con".into(), Json::Num(area_con)));
        }
        if let Some(n) = self.budget.max_iterations {
            members.push(("max_iterations".into(), Json::Num(n as f64)));
        }
        if let Some(n) = self.budget.max_evaluations {
            members.push(("max_evaluations".into(), u64_to_json(n)));
        }
        if let Some(d) = self.budget.deadline {
            members.push(("deadline_ms".into(), Json::Num(d.as_millis() as f64)));
        }
        Json::Obj(members)
    }

    /// Parses one manifest job object. `index` is the job's position in
    /// the manifest (for error messages); `read` resolves a non-`bench:`
    /// circuit string (a file path) to Verilog text.
    ///
    /// # Errors
    ///
    /// [`ManifestError`] naming the offending job and field.
    pub fn from_json(
        value: &Json,
        index: usize,
        read: &dyn Fn(&str) -> Result<String, String>,
    ) -> Result<FlowJob, ManifestError> {
        let Json::Obj(members) = value else {
            return Err(ManifestError::Shape {
                what: format!("job {index} is not an object"),
            });
        };
        // Strict keys: a typo'd knob (`max_iteration`, `deadline`)
        // must not silently run an unbudgeted default session.
        const KNOWN: [&str; 16] = [
            "name",
            "circuit",
            "verilog",
            "method",
            "metric",
            "bound",
            "population",
            "iterations",
            "vectors",
            "seed",
            "priority",
            "threads",
            "area_con",
            "max_iterations",
            "max_evaluations",
            "deadline_ms",
        ];
        if let Some((key, _)) = members.iter().find(|(k, _)| !KNOWN.contains(&k.as_str())) {
            return Err(ManifestError::Shape {
                what: format!(
                    "job {index}: unknown field `{key}` (known fields: {})",
                    KNOWN.join(", ")
                ),
            });
        }
        let (name_hint, source) = match (value.get("circuit"), value.get("verilog")) {
            (Some(circuit), None) => {
                let spec = circuit.as_str().ok_or_else(|| ManifestError::Shape {
                    what: format!("job {index}: `circuit` must be a string"),
                })?;
                if let Some(name) = spec.strip_prefix("bench:") {
                    let bench = ALL_BENCHMARKS
                        .into_iter()
                        .find(|b| b.name().eq_ignore_ascii_case(name))
                        .ok_or_else(|| ManifestError::UnknownBenchmark {
                            job: index,
                            name: name.to_owned(),
                        })?;
                    (bench.name().to_owned(), JobSource::Benchmark(bench))
                } else {
                    let text = read(spec).map_err(|error| ManifestError::Read {
                        job: index,
                        path: spec.to_owned(),
                        error,
                    })?;
                    (spec.to_owned(), JobSource::Verilog(text))
                }
            }
            (None, Some(verilog)) => {
                let text = verilog.as_str().ok_or_else(|| ManifestError::Shape {
                    what: format!("job {index}: `verilog` must be a string"),
                })?;
                (format!("job{index}"), JobSource::Verilog(text.to_owned()))
            }
            (Some(_), Some(_)) => {
                return Err(ManifestError::Shape {
                    what: format!("job {index}: give `circuit` or `verilog`, not both"),
                })
            }
            (None, None) => {
                return Err(ManifestError::Shape {
                    what: format!("job {index}: missing `circuit` (or inline `verilog`)"),
                })
            }
        };

        let method_name = req_str(value, "method", index)?;
        let method = Method::parse(method_name).ok_or_else(|| ManifestError::UnknownMethod {
            job: index,
            name: method_name.to_owned(),
        })?;
        let metric_str = req_str(value, "metric", index)?;
        let metric =
            ErrorMetric::parse(metric_str).ok_or_else(|| ManifestError::UnknownMetric {
                job: index,
                name: metric_str.to_owned(),
            })?;
        let bound =
            check_bound(req_num(value, "bound", index)?).map_err(|msg| ManifestError::Shape {
                what: format!("job {index}: `bound` {msg}"),
            })?;

        let mut job = FlowJob::with_source(name_hint, source);
        if let Some(name) = value.get("name") {
            job.name = name
                .as_str()
                .ok_or_else(|| ManifestError::Shape {
                    what: format!("job {index}: `name` must be a string"),
                })?
                .to_owned();
        }
        job.method = method;
        job.metric = metric;
        job.bound = bound;
        job.population = opt_uint(value, "population", index, job.population)?;
        job.iterations = opt_uint(value, "iterations", index, job.iterations)?;
        job.vectors = opt_uint(value, "vectors", index, job.vectors)?;
        job.seed = match value.get("seed") {
            None => job.seed,
            // Large seeds travel as strings (see `to_json`).
            Some(Json::Str(s)) => s.parse().map_err(|_| ManifestError::Shape {
                what: format!("job {index}: `seed` string `{s}` is not a u64"),
            })?,
            Some(v) => json_uint(v).ok_or_else(|| ManifestError::Shape {
                what: format!("job {index}: `seed` must be a non-negative integer"),
            })? as u64,
        };
        let priority = opt_uint(value, "priority", index, usize::from(job.priority))?;
        job.priority = u8::try_from(priority).map_err(|_| ManifestError::Shape {
            what: format!("job {index}: `priority` must be 0..=255, got {priority}"),
        })?;
        if value.get("threads").is_some() {
            job.threads = Some(opt_uint(value, "threads", index, 0)?);
        }
        if let Some(v) = value.get("area_con") {
            job.area_con = Some(v.as_f64().ok_or_else(|| ManifestError::Shape {
                what: format!("job {index}: `area_con` must be a number"),
            })?);
        }
        if value.get("max_iterations").is_some() {
            job.budget.max_iterations = Some(opt_uint(value, "max_iterations", index, 0)?);
        }
        job.budget.max_evaluations = match value.get("max_evaluations") {
            None => None,
            // Large caps travel as strings (see `to_json`).
            Some(Json::Str(s)) => Some(s.parse().map_err(|_| ManifestError::Shape {
                what: format!("job {index}: `max_evaluations` string `{s}` is not a u64"),
            })?),
            Some(v) => Some(json_uint(v).ok_or_else(|| ManifestError::Shape {
                what: format!("job {index}: `max_evaluations` must be a non-negative integer"),
            })? as u64),
        };
        if value.get("deadline_ms").is_some() {
            let ms = opt_uint(value, "deadline_ms", index, 0)?;
            job.budget.deadline = Some(Duration::from_millis(ms as u64));
        }
        Ok(job)
    }

    /// Short human description of the circuit (benchmark name or
    /// `verilog`), used in result records.
    pub fn circuit_label(&self) -> String {
        match &self.source {
            JobSource::Benchmark(bench) => format!("bench:{}", bench.name()),
            JobSource::Verilog(_) => "verilog".into(),
        }
    }
}

/// A batch of jobs plus batch-level defaults: the `serve-batch` input
/// format.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Manifest {
    /// The jobs, in manifest order (which is also the order of the
    /// results file).
    pub jobs: Vec<FlowJob>,
    /// Pool budget suggested by the manifest; the CLI flag wins.
    pub total_threads: Option<usize>,
}

impl Manifest {
    /// Wraps a job list (no suggested pool budget).
    pub fn new(jobs: Vec<FlowJob>) -> Manifest {
        Manifest {
            jobs,
            total_threads: None,
        }
    }

    /// Suggests a pool budget (the CLI `--total-threads` flag wins).
    pub fn with_total_threads(mut self, total: usize) -> Manifest {
        self.total_threads = Some(total);
        self
    }

    /// Parses a manifest document. `read` resolves job circuit paths to
    /// Verilog text ([`FlowJob::from_json`]).
    ///
    /// # Errors
    ///
    /// [`ManifestError`] for syntax errors, structural problems, or any
    /// invalid job.
    pub fn parse(
        text: &str,
        read: &dyn Fn(&str) -> Result<String, String>,
    ) -> Result<Manifest, ManifestError> {
        let doc = Json::parse(text).map_err(ManifestError::Syntax)?;
        if let Json::Obj(members) = &doc {
            if let Some((key, _)) = members
                .iter()
                .find(|(k, _)| k != "jobs" && k != "total_threads")
            {
                return Err(ManifestError::Shape {
                    what: format!(
                        "unknown top-level field `{key}` (known fields: jobs, total_threads)"
                    ),
                });
            }
        }
        let jobs_json =
            doc.get("jobs")
                .and_then(Json::as_array)
                .ok_or_else(|| ManifestError::Shape {
                    what: "manifest has no `jobs` array".into(),
                })?;
        if jobs_json.is_empty() {
            return Err(ManifestError::Empty);
        }
        let jobs = jobs_json
            .iter()
            .enumerate()
            .map(|(i, j)| FlowJob::from_json(j, i, read))
            .collect::<Result<Vec<_>, _>>()?;
        // Names identify result records (and shard-map entries), so a
        // duplicate would make two records indistinguishable downstream;
        // reject it at parse time with the colliding indices named.
        for (second, job) in jobs.iter().enumerate() {
            if let Some(first) = jobs[..second].iter().position(|j| j.name == job.name) {
                return Err(ManifestError::DuplicateName {
                    name: job.name.clone(),
                    first,
                    second,
                });
            }
        }
        let total_threads = match doc.get("total_threads") {
            Some(v) => {
                let n = json_uint(v).ok_or_else(|| ManifestError::Shape {
                    what: "`total_threads` must be a non-negative integer".into(),
                })?;
                // Zero workers gets the same typed rejection the CLI
                // flag and SchedulerConfig give it, not a silent 1.
                if n == 0 {
                    return Err(ManifestError::Shape {
                        what: "`total_threads` is 0; a pool needs at least 1 worker slot".into(),
                    });
                }
                Some(n)
            }
            None => None,
        };
        Ok(Manifest {
            jobs,
            total_threads,
        })
    }

    /// The sub-manifest holding the jobs at `indices`, in the order
    /// given, with the batch-level defaults carried over. This is the
    /// shard-split primitive: a shard planner picks index sets, and each
    /// shard's manifest is `subset` of the original, so a shard job is
    /// field-for-field the original job and its result record cannot
    /// differ from the unsharded run's.
    ///
    /// Out-of-range indices are skipped (a validated shard map never
    /// contains any).
    pub fn subset(&self, indices: &[usize]) -> Manifest {
        Manifest {
            jobs: indices
                .iter()
                .filter_map(|&i| self.jobs.get(i).cloned())
                .collect(),
            total_threads: self.total_threads,
        }
    }

    /// The manifest as a JSON document ([`Manifest::parse`] round-trips
    /// it).
    pub fn to_json(&self) -> Json {
        let mut members = Vec::new();
        if let Some(total) = self.total_threads {
            members.push(("total_threads".into(), Json::Num(total as f64)));
        }
        members.push((
            "jobs".into(),
            Json::Arr(self.jobs.iter().map(FlowJob::to_json).collect()),
        ));
        Json::Obj(members)
    }
}

/// Why a manifest was rejected.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ManifestError {
    /// The document is not valid JSON.
    Syntax(String),
    /// The document parsed but a required field is missing or
    /// mis-typed.
    Shape {
        /// What is wrong, naming the job index and field.
        what: String,
    },
    /// The `jobs` array is empty — there is nothing to run, and an
    /// empty batch would write a results file with zero records.
    Empty,
    /// Two jobs share a name. Names identify result records (and shard
    /// assignments), so duplicates would be ambiguous downstream.
    DuplicateName {
        /// The colliding name.
        name: String,
        /// Manifest index of the first job with the name.
        first: usize,
        /// Manifest index of the later duplicate.
        second: usize,
    },
    /// A job names a method outside the five supported ones.
    UnknownMethod {
        /// Manifest index of the offending job.
        job: usize,
        /// The unrecognized method name.
        name: String,
    },
    /// A job names a metric other than `er`/`nmed`.
    UnknownMetric {
        /// Manifest index of the offending job.
        job: usize,
        /// The unrecognized metric name.
        name: String,
    },
    /// A `bench:` circuit names no known benchmark.
    UnknownBenchmark {
        /// Manifest index of the offending job.
        job: usize,
        /// The unrecognized benchmark name.
        name: String,
    },
    /// A circuit path could not be read.
    Read {
        /// Manifest index of the offending job.
        job: usize,
        /// The path that failed.
        path: String,
        /// The underlying error.
        error: String,
    },
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Syntax(e) => write!(f, "manifest is not valid JSON: {e}"),
            ManifestError::Shape { what } => write!(f, "manifest: {what}"),
            ManifestError::Empty => write!(f, "manifest `jobs` array is empty"),
            ManifestError::DuplicateName {
                name,
                first,
                second,
            } => write!(
                f,
                "jobs {first} and {second} share the name `{name}`; names identify \
                 result records, give each job a unique `name`"
            ),
            ManifestError::UnknownMethod { job, name } => write!(
                f,
                "job {job}: unknown method `{name}` (expected dcgwo|gwo|hedals|greedy|vaacs)"
            ),
            ManifestError::UnknownMetric { job, name } => {
                write!(f, "job {job}: unknown metric `{name}` (expected er|nmed)")
            }
            ManifestError::UnknownBenchmark { job, name } => {
                write!(
                    f,
                    "job {job}: unknown benchmark `{name}` (try `tdals list`)"
                )
            }
            ManifestError::Read { job, path, error } => {
                write!(f, "job {job}: reading {path}: {error}")
            }
        }
    }
}

impl std::error::Error for ManifestError {}

/// Largest integer `f64` (and therefore a JSON number) represents
/// exactly: 2^53.
const MAX_EXACT_JSON_INT: u64 = 1 << 53;

/// A `u64` as JSON that survives the round-trip exactly: a number up to
/// 2^53, a decimal string beyond (JSON numbers are f64 and lose integer
/// precision past that). Used for seeds, evaluation budgets and counts,
/// and wire-protocol session ids.
pub(crate) fn u64_to_json(n: u64) -> Json {
    if n <= MAX_EXACT_JSON_INT {
        Json::Num(n as f64)
    } else {
        Json::Str(n.to_string())
    }
}

/// Inverse of [`u64_to_json`]: accepts an exact non-negative integer
/// number or a decimal string.
pub(crate) fn u64_from_json(value: &Json) -> Option<u64> {
    match value {
        Json::Num(n) => {
            if n.fract() != 0.0 || !(0.0..=MAX_EXACT_JSON_INT as f64).contains(n) {
                return None;
            }
            Some(*n as u64)
        }
        Json::Str(s) => s.parse().ok(),
        _ => None,
    }
}

/// Validates an error bound: finite and in `[0, 1]` (both ER and NMED
/// are normalized). The one rule both front ends use — the CLI `--bound`
/// flag and [`FlowJob::from_json`] both call this, so the wording and
/// the accepted range cannot drift between them.
///
/// # Errors
///
/// A human-readable message (no flag/field prefix — the caller adds its
/// own context).
pub fn check_bound(bound: f64) -> Result<f64, String> {
    // `contains` rejects NaN too: NaN compares false against both ends.
    if !(0.0..=1.0).contains(&bound) {
        return Err(format!(
            "{bound} is out of range (error bounds are in [0, 1])"
        ));
    }
    Ok(bound)
}

/// Parses a worker count: a positive integer. Shared by every CLI
/// worker-count flag (`--threads`, `--total-threads`, …) so the typed
/// error wording cannot drift between them.
///
/// # Errors
///
/// A human-readable message (no flag/field prefix — the caller adds its
/// own context).
pub fn parse_worker_count(raw: &str) -> Result<usize, String> {
    let n: usize = raw
        .parse()
        .map_err(|_| format!("`{raw}` is not a number (expected a worker count like 4)"))?;
    if n == 0 {
        return Err("0 workers cannot run anything; pass 1 or more".into());
    }
    Ok(n)
}

fn json_uint(value: &Json) -> Option<usize> {
    let n = value.as_f64()?;
    if n.fract() != 0.0 || !(0.0..=MAX_EXACT_JSON_INT as f64).contains(&n) {
        return None;
    }
    Some(n as usize)
}

fn req_str<'a>(obj: &'a Json, key: &str, job: usize) -> Result<&'a str, ManifestError> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ManifestError::Shape {
            what: format!("job {job}: missing string field `{key}`"),
        })
}

fn req_num(obj: &Json, key: &str, job: usize) -> Result<f64, ManifestError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| ManifestError::Shape {
            what: format!("job {job}: missing numeric field `{key}`"),
        })
}

fn opt_uint(obj: &Json, key: &str, job: usize, default: usize) -> Result<usize, ManifestError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => json_uint(v).ok_or_else(|| ManifestError::Shape {
            what: format!("job {job}: `{key}` must be a non-negative integer"),
        }),
    }
}

// ---------------------------------------------------------------------
// Deterministic result records
// ---------------------------------------------------------------------

/// One session's result as a JSON record: job identity plus either the
/// outcome's numbers or the typed failure. Deliberately excludes every
/// wall-clock quantity (`runtime_s`), so a results file is byte-for-byte
/// reproducible for any pool width — the property the CI soak job
/// diffs. The one input that can break it is a *binding*
/// `deadline_ms`: a deadline that actually fires stops the session at
/// a load-dependent iteration, which is inherent to wall-clock
/// budgets, not to the scheduler.
pub fn session_record(
    index: usize,
    job: &FlowJob,
    result: &Result<FlowOutcome, SessionError>,
) -> Json {
    let mut members: Vec<(String, Json)> = vec![("job".into(), Json::Num(index as f64))];
    members.extend(session_record_fields(job, result));
    Json::Obj(members)
}

/// The body of a [`session_record`] minus the leading `job` index: what
/// the daemon ships over the wire, so a client that knows its own
/// submission order can prepend the index and reassemble a document
/// byte-identical to `serve-batch`'s.
pub fn session_record_fields(
    job: &FlowJob,
    result: &Result<FlowOutcome, SessionError>,
) -> Vec<(String, Json)> {
    let mut members: Vec<(String, Json)> = vec![
        ("name".into(), Json::Str(job.name.clone())),
        ("circuit".into(), Json::Str(job.circuit_label())),
        ("method".into(), Json::Str(job.method.cli_name().into())),
        ("metric".into(), Json::Str(job.metric.cli_name().into())),
        ("bound".into(), Json::Num(job.bound)),
        ("seed".into(), u64_to_json(job.seed)),
    ];
    match result {
        Ok(outcome) => {
            members.push(("status".into(), Json::Str("completed".into())));
            members.push(("stop".into(), Json::Str(outcome.stop().to_string())));
            members.push((
                "gates".into(),
                Json::Num(outcome.netlist.logic_gate_count() as f64),
            ));
            members.push(("cpd_ori".into(), Json::Num(outcome.cpd_ori)));
            members.push(("cpd_fac".into(), Json::Num(outcome.cpd_fac)));
            members.push(("ratio_cpd".into(), Json::Num(outcome.ratio_cpd)));
            members.push(("error".into(), Json::Num(outcome.error)));
            members.push(("area".into(), Json::Num(outcome.area)));
            members.push((
                "evaluations".into(),
                Json::Num(outcome.optimize.evaluations as f64),
            ));
            members.push((
                "iterations".into(),
                Json::Num(outcome.optimize.history.len() as f64),
            ));
        }
        // "failure", not "error": completed records use "error" for the
        // measured metric (a number), and one key must keep one type
        // across the schema.
        Err(SessionError::Flow(e)) => {
            members.push(("status".into(), Json::Str("failed".into())));
            members.push(("failure".into(), Json::Str(e.to_string())));
        }
        Err(SessionError::Panicked(message)) => {
            members.push(("status".into(), Json::Str("panicked".into())));
            members.push(("failure".into(), Json::Str(message.clone())));
        }
    }
    members
}

/// The whole batch's results as one JSON document, in submission order.
pub fn results_document<'a>(
    entries: impl IntoIterator<Item = (&'a FlowJob, &'a Result<FlowOutcome, SessionError>)>,
) -> Json {
    results_document_from_records(
        entries
            .into_iter()
            .enumerate()
            .map(|(i, (job, result))| session_record(i, job, result))
            .collect(),
    )
}

/// Wraps pre-built [`session_record`]s (each already carrying its `job`
/// index) in the schema-1 results document. The daemon client uses this
/// to reassemble results collected over the wire.
pub fn results_document_from_records(records: Vec<Json>) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Num(1.0)),
        ("results".into(), Json::Arr(records)),
    ])
}

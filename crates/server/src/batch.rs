//! The `serve-batch` engine as a library: run every job of a
//! [`Manifest`] as concurrent sessions over one shared pool and produce
//! the deterministic results document.
//!
//! `tdals serve-batch` is a thin shell over this module, and the shard
//! coordinator (`tdals-cluster`) runs the *same* engine inside each
//! worker process — which is what makes a sharded run's merged results
//! file byte-identical to the unsharded run by construction: every
//! record is produced by this one code path, and the pool shape
//! (`total`/`session_cap`) is width-invariant by the PR 4/5 contract.
//!
//! The two-step shape ([`BatchRun::prepare`] then [`BatchRun::run`])
//! exists so a front end can announce the computed pool shape before
//! any session starts, and so the whole batch is validated before any
//! of it runs — one inadmissible job never produces a partial results
//! file.

use std::time::Duration;

use tdals_bench::json::Json;
use tdals_core::api::{FlowEvent, FlowOutcome};

use crate::job::{results_document, FlowJob, Manifest};
use crate::scheduler::{Scheduler, SchedulerConfig, ServerError, SessionError};

/// Pool-shape overrides for one batch run: the CLI flags. Manifest
/// hints fill whatever is `None`, and the machine's core count backs
/// the rest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct BatchOptions {
    /// Total worker slots (`--total-threads`); wins over the manifest's
    /// `total_threads` hint.
    pub total_threads: Option<usize>,
    /// Per-session lease cap (`--session-threads`); default is an even
    /// static split across the batch.
    pub session_threads: Option<usize>,
}

impl BatchOptions {
    /// Options taking every default (manifest hint, then core count).
    pub fn new() -> BatchOptions {
        BatchOptions::default()
    }

    /// Sets the total worker-slot count.
    pub fn with_total_threads(mut self, total: impl Into<Option<usize>>) -> BatchOptions {
        self.total_threads = total.into();
        self
    }

    /// Sets the per-session lease cap.
    pub fn with_session_threads(mut self, cap: impl Into<Option<usize>>) -> BatchOptions {
        self.session_threads = cap.into();
        self
    }
}

/// A validated, ready-to-run batch: the jobs (thread hints clamped to
/// the pool) plus the computed pool shape.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct BatchRun {
    /// The jobs in manifest order, per-job `threads` hints clamped to
    /// the pool.
    pub jobs: Vec<FlowJob>,
    /// Total worker slots the pool will hold.
    pub total_threads: usize,
    /// Most slots one session may lease.
    pub session_cap: usize,
}

/// One finished batch: per-job results in manifest order plus the
/// completed/failed tally.
#[derive(Debug)]
#[non_exhaustive]
pub struct BatchReport {
    /// The jobs, exactly as run (manifest order).
    pub jobs: Vec<FlowJob>,
    /// Each job's outcome or typed failure, in manifest order.
    pub results: Vec<Result<FlowOutcome, SessionError>>,
    /// How many sessions completed.
    pub completed: usize,
    /// How many sessions failed or panicked.
    pub failed: usize,
}

impl BatchReport {
    /// The schema-1 results document, in manifest order — the exact
    /// bytes-modulo-trailing-newline `tdals serve-batch` writes.
    pub fn document(&self) -> Json {
        results_document(self.jobs.iter().zip(self.results.iter()))
    }
}

impl BatchRun {
    /// Computes the pool shape and validates every job against it.
    ///
    /// The shape rules are the CLI's: `options.total_threads` wins over
    /// the manifest's hint, which wins over the machine's core count;
    /// per-job `threads` hints are clamped to the pool (results are
    /// width-invariant, so clamping cannot change them, and the same
    /// manifest stays admissible at every pool width); the default
    /// per-session cap is an even static split across the batch,
    /// widened to the largest per-job hint.
    ///
    /// # Errors
    ///
    /// The scheduler's typed configuration/admission errors — reported
    /// for the whole batch before any session starts.
    pub fn prepare(manifest: &Manifest, options: &BatchOptions) -> Result<BatchRun, ServerError> {
        let total = options
            .total_threads
            .or(manifest.total_threads)
            .unwrap_or_else(tdals_core::par::available_threads)
            .max(1);
        // `0` stays 0 so the scheduler's typed ZeroThreads error still
        // reaches the caller.
        let mut jobs = manifest.jobs.clone();
        for job in &mut jobs {
            if let Some(t) = job.threads {
                job.threads = Some(t.min(total));
            }
        }
        let concurrency = jobs.len().min(total).max(1);
        let session_cap = match options.session_threads {
            Some(cap) => cap,
            None => {
                let hinted = jobs.iter().filter_map(|j| j.threads).max().unwrap_or(1);
                total.div_ceil(concurrency).max(hinted).min(total)
            }
        };
        let scheduler = Scheduler::new(SchedulerConfig::new(total).with_session_cap(session_cap))?;
        // Reject the whole batch before running any of it.
        for job in &jobs {
            scheduler.validate(job)?;
        }
        Ok(BatchRun {
            jobs,
            total_threads: total,
            session_cap,
        })
    }

    /// Runs the batch to completion, streaming every session's events
    /// through `on_event` as `(submission index, job name, event)`.
    /// Events are drained even when the callback ignores them, so
    /// session buffers stay flat over long batches; results land in
    /// submission order whatever order sessions finish.
    ///
    /// # Errors
    ///
    /// Admission errors from submission (prepare already validated the
    /// batch, so these indicate a shape change between the two calls).
    pub fn run(
        &self,
        on_event: &mut dyn FnMut(usize, &str, &FlowEvent),
    ) -> Result<BatchReport, ServerError> {
        let scheduler = Scheduler::new(
            SchedulerConfig::new(self.total_threads).with_session_cap(self.session_cap),
        )?;
        let handles = self
            .jobs
            .iter()
            .cloned()
            .map(|job| scheduler.submit(job))
            .collect::<Result<Vec<_>, _>>()?;

        let mut results: Vec<Option<Result<FlowOutcome, SessionError>>> = Vec::new();
        results.resize_with(handles.len(), || None);
        loop {
            let mut pending = false;
            for (i, handle) in handles.iter().enumerate() {
                for ev in handle.poll_events() {
                    on_event(i, handle.name(), &ev);
                }
                if results[i].is_none() {
                    match handle.try_result() {
                        Some(result) => results[i] = Some(result),
                        None => pending = true,
                    }
                }
            }
            if !pending {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        scheduler.drain();
        // Final drain: events that landed between the last poll and the
        // session's completion.
        for (i, handle) in handles.iter().enumerate() {
            for ev in handle.poll_events() {
                on_event(i, handle.name(), &ev);
            }
        }

        let results: Vec<Result<FlowOutcome, SessionError>> =
            results.into_iter().map(|r| r.expect("all done")).collect();
        let completed = results.iter().filter(|r| r.is_ok()).count();
        Ok(BatchReport {
            jobs: self.jobs.clone(),
            failed: results.len() - completed,
            completed,
            results,
        })
    }
}

//! Human-readable timing reports (the `report_timing` view a signoff
//! tool prints).

use std::fmt::Write as _;

use tdals_netlist::{Netlist, SignalRef};

use crate::analysis::{critical_path_to_po, TimingReport};

/// Options for [`timing_report_text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportOptions {
    /// How many worst primary outputs to detail.
    pub path_count: usize,
    /// Maximum gates printed per path (tail is elided).
    pub max_gates_per_path: usize,
}

impl Default for ReportOptions {
    fn default() -> ReportOptions {
        ReportOptions {
            path_count: 3,
            max_gates_per_path: 32,
        }
    }
}

/// Renders a PrimeTime-style text report: summary line plus the worst
/// `path_count` PO paths with per-stage arrival, load, and cell.
///
/// # Examples
///
/// ```
/// use tdals_netlist::builder::Builder;
/// use tdals_sta::{analyze, timing_report_text, ReportOptions, TimingConfig};
///
/// let mut b = Builder::new("t");
/// let a = b.input("a");
/// let g = b.not(a);
/// b.output("y", g);
/// let n = b.finish();
/// let report = analyze(&n, &TimingConfig::default());
/// let text = timing_report_text(&n, &report, &ReportOptions::default());
/// assert!(text.contains("critical path delay"));
/// assert!(text.contains("y"));
/// ```
pub fn timing_report_text(
    netlist: &Netlist,
    report: &TimingReport,
    options: &ReportOptions,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "timing report for module `{}`", netlist.name());
    let _ = writeln!(
        out,
        "  critical path delay : {:.2} ps (depth {} levels)",
        report.critical_path_delay(),
        report.max_depth()
    );
    let _ = writeln!(
        out,
        "  live area           : {:.2} um2",
        netlist.area_live()
    );

    // Rank POs by arrival, worst first.
    let mut pos: Vec<usize> = (0..netlist.output_count()).collect();
    pos.sort_by(|&a, &b| report.po_arrival(b).total_cmp(&report.po_arrival(a)));
    for &po in pos.iter().take(options.path_count) {
        let _ = writeln!(
            out,
            "\n  path to PO `{}` — arrival {:.2} ps, depth {}",
            netlist.output_name(po),
            report.po_arrival(po),
            report.po_depth(po)
        );
        let _ = writeln!(
            out,
            "    {:>10}  {:>8}  {:<10}  instance",
            "arrival", "load fF", "cell"
        );
        let path = critical_path_to_po(netlist, report, po);
        let shown = path.len().min(options.max_gates_per_path);
        for &gate in path.iter().rev().take(shown) {
            let g = netlist.gate(gate);
            let _ = writeln!(
                out,
                "    {:>10.2}  {:>8.2}  {:<10}  {}",
                report.arrival(gate),
                report.load(gate),
                g.cell().lib_name(),
                g.name()
            );
        }
        if path.len() > shown {
            let _ = writeln!(out, "    ... {} earlier stages elided", path.len() - shown);
        }
        if let SignalRef::Const0 | SignalRef::Const1 = netlist.output_driver(po) {
            let _ = writeln!(out, "    (constant output)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, TimingConfig};
    use tdals_netlist::builder::Builder;

    fn sample() -> Netlist {
        let mut b = Builder::new("sample");
        let a = b.inputs("a", 3);
        let g1 = b.and(a[0], a[1]);
        let g2 = b.xor(g1, a[2]);
        let g3 = b.or(g2, a[0]);
        b.output("fast", g1);
        b.output("slow", g3);
        b.finish()
    }

    #[test]
    fn report_contains_worst_pos_in_order() {
        let n = sample();
        let r = analyze(&n, &TimingConfig::default());
        let text = timing_report_text(&n, &r, &ReportOptions::default());
        let slow_pos = text.find("PO `slow`").expect("slow PO listed");
        let fast_pos = text.find("PO `fast`").expect("fast PO listed");
        assert!(slow_pos < fast_pos, "worst PO first");
    }

    #[test]
    fn path_count_limits_output() {
        let n = sample();
        let r = analyze(&n, &TimingConfig::default());
        let opts = ReportOptions {
            path_count: 1,
            ..ReportOptions::default()
        };
        let text = timing_report_text(&n, &r, &opts);
        assert!(text.contains("PO `slow`"));
        assert!(!text.contains("PO `fast`"));
    }

    #[test]
    fn long_paths_are_elided() {
        let mut b = Builder::new("deep");
        let a = b.input("a");
        let mut s = a;
        for _ in 0..40 {
            s = b.not(s);
        }
        b.output("y", s);
        let n = b.finish();
        let r = analyze(&n, &TimingConfig::default());
        let opts = ReportOptions {
            path_count: 1,
            max_gates_per_path: 8,
        };
        let text = timing_report_text(&n, &r, &opts);
        assert!(text.contains("elided"));
    }
}

//! Arrival-time propagation, logic depth, and critical-path extraction.

use tdals_netlist::{GateId, Netlist, SignalRef};

/// Parasitics and boundary conditions for timing analysis.
///
/// The defaults model a 28nm-class net: roughly a femtofarad of routed
/// wire per fan-out branch, and a register/pad load on every primary
/// output. Wire capacitance at this scale is what makes drive-strength
/// selection consequential — with near-zero wire load, sizing barely
/// moves delay and the paper's post-optimization would have no lever.
///
/// # Examples
///
/// ```
/// use tdals_sta::TimingConfig;
/// let cfg = TimingConfig::default();
/// assert!(cfg.wire_cap_per_fanout > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct TimingConfig {
    /// Wire capacitance in fF added per fan-out branch.
    pub wire_cap_per_fanout: f64,
    /// Capacitive load in fF on each primary output.
    pub po_load: f64,
}

impl Default for TimingConfig {
    fn default() -> TimingConfig {
        TimingConfig {
            wire_cap_per_fanout: 1.0,
            po_load: 3.0,
        }
    }
}

impl TimingConfig {
    /// Creates a config with explicit parasitics.
    pub fn new(wire_cap_per_fanout: f64, po_load: f64) -> TimingConfig {
        TimingConfig {
            wire_cap_per_fanout,
            po_load,
        }
    }

    /// Sets the wire capacitance added per fan-out branch, fF.
    pub fn with_wire_cap_per_fanout(mut self, wire_cap_per_fanout: f64) -> TimingConfig {
        self.wire_cap_per_fanout = wire_cap_per_fanout;
        self
    }

    /// Sets the capacitive load on each primary output, fF.
    pub fn with_po_load(mut self, po_load: f64) -> TimingConfig {
        self.po_load = po_load;
        self
    }
}

/// Static-timing-analysis result for one netlist (the data the paper
/// obtains from PrimeTime).
///
/// Arrival times are in ps; depth counts logic levels from the primary
/// inputs. Only paths that reach a primary output matter for the summary
/// quantities: dangling gates have arrival times (they still load their
/// drivers) but never define [`TimingReport::critical_path_delay`].
///
/// # Examples
///
/// ```
/// use tdals_netlist::Netlist;
/// use tdals_netlist::cell::{Cell, CellFunc, Drive};
/// use tdals_sta::{analyze, TimingConfig};
///
/// let mut n = Netlist::new("chain");
/// let a = n.add_input("a");
/// let g1 = n.add_gate("g1", Cell::new(CellFunc::Inv, Drive::X1), vec![a.into()])?;
/// let g2 = n.add_gate("g2", Cell::new(CellFunc::Inv, Drive::X1), vec![g1.into()])?;
/// n.add_output("y", g2.into());
///
/// let report = analyze(&n, &TimingConfig::default());
/// assert_eq!(report.max_depth(), 2);
/// assert!(report.critical_path_delay() > 0.0);
/// # Ok::<(), tdals_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TimingReport {
    arrival: Vec<f64>,
    depth: Vec<u32>,
    load: Vec<f64>,
    po_arrival: Vec<f64>,
    po_depth: Vec<u32>,
}

impl TimingReport {
    /// Assembles a report from raw per-gate and per-PO arrays (used by
    /// the incremental engine to snapshot its state).
    pub(crate) fn from_parts(
        arrival: Vec<f64>,
        depth: Vec<u32>,
        load: Vec<f64>,
        po_arrival: Vec<f64>,
        po_depth: Vec<u32>,
    ) -> TimingReport {
        TimingReport {
            arrival,
            depth,
            load,
            po_arrival,
            po_depth,
        }
    }

    /// Output arrival time of a gate in ps.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn arrival(&self, id: GateId) -> f64 {
        self.arrival[id.index()]
    }

    /// Logic depth (levels from the primary inputs) of a gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn depth(&self, id: GateId) -> u32 {
        self.depth[id.index()]
    }

    /// Capacitive load in fF seen by a gate's output.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn load(&self, id: GateId) -> f64 {
        self.load[id.index()]
    }

    /// Arrival time at primary output `po` in ps (`Ta(PO_i)` in Eq. 3).
    ///
    /// # Panics
    ///
    /// Panics if `po` is out of bounds.
    pub fn po_arrival(&self, po: usize) -> f64 {
        self.po_arrival[po]
    }

    /// All PO arrival times.
    pub fn po_arrivals(&self) -> &[f64] {
        &self.po_arrival
    }

    /// Logic depth at primary output `po`.
    ///
    /// # Panics
    ///
    /// Panics if `po` is out of bounds.
    pub fn po_depth(&self, po: usize) -> u32 {
        self.po_depth[po]
    }

    /// Critical path delay: the maximum arrival over primary outputs
    /// (`CPD` in the paper). Zero for a circuit whose outputs are all
    /// constants.
    pub fn critical_path_delay(&self) -> f64 {
        self.po_arrival.iter().copied().fold(0.0, f64::max)
    }

    /// Maximum logic depth over primary outputs (`Depth` in Eq. 8).
    pub fn max_depth(&self) -> u32 {
        self.po_depth.iter().copied().max().unwrap_or(0)
    }

    /// Index of the primary output with the worst arrival time.
    pub fn critical_po(&self) -> usize {
        self.po_arrival
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Runs static timing analysis on a netlist.
///
/// Gates are visited in id order (valid topological order by the
/// netlist's invariant). The load of each gate output is the sum of the
/// input capacitances of its reader pins, plus wire capacitance per
/// fan-out branch, plus the PO load where applicable; the gate delay is
/// the cell's linear delay into that load.
pub fn analyze(netlist: &Netlist, cfg: &TimingConfig) -> TimingReport {
    let n = netlist.gate_count();
    let mut load = vec![0.0f64; n];

    for (_, gate) in netlist.iter() {
        let cap = gate.cell().input_cap();
        for fanin in gate.fanins() {
            if let SignalRef::Gate(src) = fanin {
                load[src.index()] += cap + cfg.wire_cap_per_fanout;
            }
        }
    }
    for (_, driver) in netlist.outputs() {
        if let SignalRef::Gate(src) = driver {
            load[src.index()] += cfg.po_load + cfg.wire_cap_per_fanout;
        }
    }

    let mut arrival = vec![0.0f64; n];
    let mut depth = vec![0u32; n];
    for (id, gate) in netlist.iter() {
        if gate.is_input() {
            continue;
        }
        let mut worst_arrival = 0.0f64;
        let mut worst_depth = 0u32;
        for fanin in gate.fanins() {
            if let SignalRef::Gate(src) = fanin {
                worst_arrival = worst_arrival.max(arrival[src.index()]);
                worst_depth = worst_depth.max(depth[src.index()]);
            }
        }
        arrival[id.index()] = worst_arrival + gate.cell().delay(load[id.index()]);
        depth[id.index()] = worst_depth + 1;
    }

    let mut po_arrival = Vec::with_capacity(netlist.output_count());
    let mut po_depth = Vec::with_capacity(netlist.output_count());
    for (_, driver) in netlist.outputs() {
        match driver {
            SignalRef::Gate(src) => {
                po_arrival.push(arrival[src.index()]);
                po_depth.push(depth[src.index()]);
            }
            _ => {
                po_arrival.push(0.0);
                po_depth.push(0);
            }
        }
    }

    TimingReport {
        arrival,
        depth,
        load,
        po_arrival,
        po_depth,
    }
}

/// Gates on the single worst path feeding primary output `po`, from the
/// earliest gate (nearest the inputs) to the PO driver.
///
/// Ties are broken toward the lower gate id; primary-input pseudo-gates
/// are not included.
pub fn critical_path_to_po(netlist: &Netlist, report: &TimingReport, po: usize) -> Vec<GateId> {
    let mut path = Vec::new();
    let mut cursor = match netlist.output_driver(po) {
        SignalRef::Gate(g) => g,
        _ => return path,
    };
    loop {
        let gate = netlist.gate(cursor);
        if gate.is_input() {
            break;
        }
        path.push(cursor);
        let mut next: Option<GateId> = None;
        let mut best = f64::NEG_INFINITY;
        for fanin in gate.fanins() {
            if let SignalRef::Gate(src) = fanin {
                let t = report.arrival(*src);
                if t > best {
                    best = t;
                    next = Some(*src);
                }
            }
        }
        match next {
            Some(g) => cursor = g,
            None => break,
        }
    }
    path.reverse();
    path
}

/// Gates on the global critical path (worst PO).
pub fn critical_path(netlist: &Netlist, report: &TimingReport) -> Vec<GateId> {
    critical_path_to_po(netlist, report, report.critical_po())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::cell::{Cell, CellFunc, Drive};

    fn x1(func: CellFunc) -> Cell {
        Cell::new(func, Drive::X1)
    }

    fn chain(len: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let mut prev: SignalRef = a.into();
        for i in 0..len {
            let g = n
                .add_gate(format!("g{i}"), x1(CellFunc::Inv), vec![prev])
                .expect("gate");
            prev = g.into();
        }
        n.add_output("y", prev);
        n
    }

    #[test]
    fn chain_depth_and_delay_scale_with_length() {
        let cfg = TimingConfig::default();
        let short = analyze(&chain(3), &cfg);
        let long = analyze(&chain(9), &cfg);
        assert_eq!(short.max_depth(), 3);
        assert_eq!(long.max_depth(), 9);
        assert!(long.critical_path_delay() > short.critical_path_delay());
        // Middle stages are identical (INV driving INV): adding 6 stages
        // adds exactly 6 middle-stage delays.
        let inv = x1(CellFunc::Inv);
        let mid_delay = inv.delay(inv.input_cap() + cfg.wire_cap_per_fanout);
        let grew = long.critical_path_delay() - short.critical_path_delay();
        assert!((grew - 6.0 * mid_delay).abs() < 1e-9);
    }

    #[test]
    fn hand_computed_two_gate_delay() {
        // a -> INV(g0) -> INV(g1) -> y.
        let cfg = TimingConfig::new(0.5, 2.0);
        let n = chain(2);
        let r = analyze(&n, &cfg);
        let inv = x1(CellFunc::Inv);
        // g0 load: g1's pin cap + wire. g1 load: PO + wire.
        let g0_load = inv.input_cap() + 0.5;
        let g1_load = 2.0 + 0.5;
        let expect = inv.delay(g0_load) + inv.delay(g1_load);
        assert!((r.critical_path_delay() - expect).abs() < 1e-9);
        assert_eq!(r.load(GateId::new(1)), g0_load);
        assert_eq!(r.load(GateId::new(2)), g1_load);
    }

    #[test]
    fn arrival_is_monotone_along_fanin_edges() {
        let n = fanout_tree();
        let r = analyze(&n, &TimingConfig::default());
        for (id, gate) in n.iter() {
            for fanin in gate.fanins() {
                if let SignalRef::Gate(src) = fanin {
                    assert!(
                        r.arrival(*src) < r.arrival(id),
                        "arrival must increase along edges"
                    );
                }
            }
        }
    }

    fn fanout_tree() -> Netlist {
        let mut n = Netlist::new("tree");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n
            .add_gate("g1", x1(CellFunc::And2), vec![a.into(), b.into()])
            .expect("gate");
        let g2 = n
            .add_gate("g2", x1(CellFunc::Or2), vec![g1.into(), c.into()])
            .expect("gate");
        let g3 = n
            .add_gate("g3", x1(CellFunc::Xor2), vec![g1.into(), g2.into()])
            .expect("gate");
        n.add_output("y1", g2.into());
        n.add_output("y2", g3.into());
        n
    }

    #[test]
    fn critical_po_and_path() {
        let n = fanout_tree();
        let r = analyze(&n, &TimingConfig::default());
        // g3 depends on g2, so y2 must be the critical PO.
        assert_eq!(r.critical_po(), 1);
        let path = critical_path(&n, &r);
        let names: Vec<&str> = path.iter().map(|&g| n.gate(g).name()).collect();
        assert_eq!(names, ["g1", "g2", "g3"]);
    }

    #[test]
    fn per_po_arrivals_ordered() {
        let n = fanout_tree();
        let r = analyze(&n, &TimingConfig::default());
        assert!(r.po_arrival(1) > r.po_arrival(0));
        assert_eq!(r.po_depth(0), 2);
        assert_eq!(r.po_depth(1), 3);
    }

    #[test]
    fn constant_output_has_zero_timing() {
        let mut n = chain(2);
        n.add_output("k", SignalRef::Const1);
        let r = analyze(&n, &TimingConfig::default());
        assert_eq!(r.po_arrival(1), 0.0);
        assert_eq!(r.po_depth(1), 0);
    }

    #[test]
    fn dangling_gate_loads_driver_but_not_cpd() {
        // A dangling reader on g0 increases g0's load and hence CPD,
        // but the dangling gate's own arrival never defines the CPD.
        let mut n = chain(2);
        let g0 = n.find_gate("g0").expect("g0");
        let before = analyze(&n, &TimingConfig::default()).critical_path_delay();
        let heavy = Cell::new(CellFunc::Xor2, Drive::X8);
        let _dangler = n
            .add_gate("dangler", heavy, vec![g0.into(), g0.into()])
            .expect("gate");
        let after = analyze(&n, &TimingConfig::default()).critical_path_delay();
        assert!(after > before, "dangling reader adds load");
    }

    #[test]
    fn upsizing_heavily_loaded_gate_reduces_cpd() {
        // A gate driving a big fan-out benefits from upsizing: the
        // resistance drop on the large load outweighs the extra pin
        // capacitance presented to its driver.
        let mut n = chain(2);
        let g1 = n.find_gate("g1").expect("g1");
        for j in 0..12 {
            let s = n
                .add_gate(format!("load{j}"), x1(CellFunc::Buf), vec![g1.into()])
                .expect("gate");
            n.add_output(format!("z{j}"), s.into());
        }
        let mut sized = n.clone();
        sized.set_drive(g1, Drive::X4);
        let cfg = TimingConfig::default();
        let base = analyze(&n, &cfg).critical_path_delay();
        let faster = analyze(&sized, &cfg).critical_path_delay();
        assert!(
            faster < base,
            "upsizing under heavy load helps: {base} -> {faster}"
        );
    }

    #[test]
    fn substitution_shortens_critical_path() {
        // Replicates the paper's premise: a wire-by-constant LAC on the
        // critical path lowers both depth and delay.
        let mut n = chain(6);
        let g3 = n.find_gate("g3").expect("g3");
        let cfg = TimingConfig::default();
        let before = analyze(&n, &cfg);
        n.substitute(g3, SignalRef::Const0).expect("lac");
        let after = analyze(&n, &cfg);
        assert!(after.max_depth() < before.max_depth());
        assert!(after.critical_path_delay() < before.critical_path_delay());
    }
}

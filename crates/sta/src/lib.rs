//! # tdals-sta
//!
//! Static timing analysis and timing-driven gate sizing — the workspace's
//! substitute for the Synopsys PrimeTime (analysis) and Design Compiler
//! (re-sizing) calls in the paper's flow.
//!
//! * [`analyze`] propagates arrival times and logic depth through a
//!   netlist under a linear delay model, producing a [`TimingReport`]
//!   with per-gate and per-PO timing, the critical path delay (`CPD`),
//!   and the maximum depth (`Depth` in the paper's fitness, Eq. 8);
//! * [`critical_path`] / [`critical_path_to_po`] extract the worst paths
//!   that circuit searching targets;
//! * [`size_for_timing`] implements the post-optimization sizing step
//!   (§III-C): greedy drive-strength upsizing under an area constraint.
//!
//! # Examples
//!
//! ```
//! use tdals_netlist::Netlist;
//! use tdals_netlist::cell::{Cell, CellFunc, Drive};
//! use tdals_sta::{analyze, critical_path, TimingConfig};
//!
//! let mut n = Netlist::new("mini");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let g1 = n.add_gate("g1", Cell::new(CellFunc::And2, Drive::X1),
//!                     vec![a.into(), b.into()])?;
//! let g2 = n.add_gate("g2", Cell::new(CellFunc::Xor2, Drive::X1),
//!                     vec![g1.into(), b.into()])?;
//! n.add_output("y", g2.into());
//!
//! let report = analyze(&n, &TimingConfig::default());
//! assert_eq!(report.max_depth(), 2);
//! assert_eq!(critical_path(&n, &report).len(), 2);
//! # Ok::<(), tdals_netlist::NetlistError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod incremental;
mod report;
mod sizing;

pub use analysis::{analyze, critical_path, critical_path_to_po, TimingConfig, TimingReport};
pub use incremental::{IncrementalSta, TimingDelta};
pub use report::{timing_report_text, ReportOptions};
pub use sizing::{size_for_timing, SizingConfig, SizingResult};

//! Timing-driven gate sizing under an area constraint.
//!
//! This is the workspace's substitute for the paper's post-optimization
//! call into Design Compiler: "resize its remaining gates without
//! adjusting any circuit structure under area constraints `Area_con`"
//! (§III-C). The approximate circuit is smaller than the accurate one,
//! so the freed area budget is spent upsizing gates on (near-)critical
//! paths, converting area reduction into drive-strength — and hence
//! critical-path-delay — improvement.
//!
//! The algorithm is a classic greedy TILOS-style sizer:
//!
//! 1. run STA, extract the critical path;
//! 2. for every gate on it, locally estimate the CPD change of a one-step
//!    upsize (self speeds up, its drivers slow down under the higher pin
//!    capacitance);
//! 3. apply the best estimated move that fits the area budget, re-run
//!    STA, and keep the move only if the measured CPD improved;
//! 4. stop when no move fits or helps.

use tdals_netlist::cell::Drive;
use tdals_netlist::{GateId, Netlist, SignalRef};

use crate::analysis::{analyze, critical_path, TimingConfig, TimingReport};

/// Options for [`size_for_timing`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizingConfig {
    /// Upper bound on accepted sizing moves (safety valve; the greedy
    /// loop normally stops on its own).
    pub max_moves: usize,
    /// Also consider upsizing the fan-ins of critical-path gates (their
    /// delay is on the path through the loading term).
    pub include_fanins: bool,
}

impl Default for SizingConfig {
    fn default() -> SizingConfig {
        SizingConfig {
            max_moves: 10_000,
            include_fanins: true,
        }
    }
}

/// Outcome of a sizing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizingResult {
    /// Critical path delay before sizing, ps.
    pub cpd_before: f64,
    /// Critical path delay after sizing, ps.
    pub cpd_after: f64,
    /// Live area after sizing, µm².
    pub area_after: f64,
    /// Number of accepted upsize moves.
    pub moves: usize,
}

/// Estimated CPD benefit of upsizing `gate` one step, using local delay
/// arithmetic only (no full STA).
///
/// Negative values predict improvement. The estimate sums the gate's own
/// delay change at its current load with the slowdown of each fan-in
/// driver caused by the increased pin capacitance.
fn estimate_upsize_delta(
    netlist: &Netlist,
    report: &TimingReport,
    gate: GateId,
) -> Option<(Drive, f64)> {
    let g = netlist.gate(gate);
    if g.is_input() {
        return None;
    }
    let cell = g.cell();
    let up = cell.drive().upsize()?;
    let bigger = cell.with_drive(up);
    let load = report.load(gate);
    let mut delta = bigger.delay(load) - cell.delay(load);
    let cap_increase = bigger.input_cap() - cell.input_cap();
    for fanin in g.fanins() {
        if let SignalRef::Gate(src) = fanin {
            let drv = netlist.gate(*src);
            if !drv.is_input() {
                delta += drv.cell().resistance() * cap_increase;
            }
        }
    }
    Some((up, delta))
}

/// Greedily upsizes gates to minimize critical path delay while keeping
/// the live area at or below `area_con` µm².
///
/// The circuit structure is never modified — only drive strengths change
/// — so the function is function-preserving by construction. If the
/// circuit already exceeds `area_con`, no upsizing is performed (the
/// paper never encounters this case because approximate circuits shrink).
///
/// # Examples
///
/// ```
/// use tdals_netlist::Netlist;
/// use tdals_netlist::cell::{Cell, CellFunc, Drive};
/// use tdals_sta::{analyze, size_for_timing, SizingConfig, TimingConfig};
///
/// let mut n = Netlist::new("chain");
/// let a = n.add_input("a");
/// let mut prev = a.into();
/// for i in 0..6 {
///     prev = n.add_gate(format!("g{i}"), Cell::new(CellFunc::Nand2, Drive::X0),
///                       vec![prev, a.into()])?.into();
/// }
/// n.add_output("y", prev);
///
/// let cfg = TimingConfig::default();
/// let budget = n.area_live() * 2.0;
/// let result = size_for_timing(&mut n, &cfg, budget, &SizingConfig::default());
/// assert!(result.cpd_after <= result.cpd_before);
/// assert!(result.area_after <= budget);
/// # Ok::<(), tdals_netlist::NetlistError>(())
/// ```
pub fn size_for_timing(
    netlist: &mut Netlist,
    cfg: &TimingConfig,
    area_con: f64,
    sizing: &SizingConfig,
) -> SizingResult {
    let mut report = analyze(netlist, cfg);
    let cpd_before = report.critical_path_delay();
    let mut cpd = cpd_before;
    let mut area = netlist.area_live();
    let mut moves = 0usize;
    let live = netlist.live_mask();
    // Gates whose last attempted upsize failed validation at the drive
    // recorded here; retried only after they change drive via another
    // accepted move.
    let mut rejected: std::collections::HashMap<GateId, Drive> = std::collections::HashMap::new();

    while moves < sizing.max_moves {
        // Candidate set: gates on the critical path (plus optionally
        // their live fan-ins, whose drive shows up in the path delay).
        let path = critical_path(netlist, &report);
        if path.is_empty() {
            break;
        }
        let mut candidates: Vec<GateId> = path.clone();
        if sizing.include_fanins {
            for &g in &path {
                for fanin in netlist.gate(g).fanins() {
                    if let SignalRef::Gate(src) = fanin {
                        if live[src.index()] && !netlist.gate(*src).is_input() {
                            candidates.push(*src);
                        }
                    }
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();

        // Rank by locally-estimated benefit per area.
        let mut best: Option<(GateId, Drive, f64, f64)> = None;
        for &g in &candidates {
            if rejected.get(&g) == Some(&netlist.gate(g).cell().drive()) {
                continue;
            }
            let Some((up, delta)) = estimate_upsize_delta(netlist, &report, g) else {
                continue;
            };
            if delta >= 0.0 {
                continue;
            }
            let cell = netlist.gate(g).cell();
            let extra_area = cell.with_drive(up).area() - cell.area();
            if area + extra_area > area_con {
                continue;
            }
            let score = delta / extra_area.max(1e-9);
            if best.is_none_or(|(_, _, _, s)| score < s) {
                best = Some((g, up, extra_area, score));
            }
        }
        let Some((g, up, extra_area, _)) = best else {
            break;
        };

        let old_drive = netlist.gate(g).cell().drive();
        netlist.set_drive(g, up);
        let new_report = analyze(netlist, cfg);
        let new_cpd = new_report.critical_path_delay();
        if new_cpd < cpd {
            cpd = new_cpd;
            area += extra_area;
            report = new_report;
            moves += 1;
        } else {
            // Local estimate was optimistic; revert, remember the
            // failure at this drive, and let other candidates compete.
            netlist.set_drive(g, old_drive);
            rejected.insert(g, old_drive);
        }
    }

    SizingResult {
        cpd_before,
        cpd_after: cpd,
        area_after: netlist.area_live(),
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::cell::{Cell, CellFunc};

    fn weak_chain(len: usize, width: usize) -> Netlist {
        // A chain of NAND2X0 gates with `width` parallel side-loads per
        // stage, so upsizing has real work to do.
        let mut n = Netlist::new("weak");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let mut prev: SignalRef = a.into();
        for i in 0..len {
            let g = n
                .add_gate(
                    format!("g{i}"),
                    Cell::new(CellFunc::Nand2, Drive::X0),
                    vec![prev, b.into()],
                )
                .expect("gate");
            for j in 0..width {
                let s = n
                    .add_gate(
                        format!("side{i}_{j}"),
                        Cell::new(CellFunc::Inv, Drive::X1),
                        vec![g.into()],
                    )
                    .expect("gate");
                n.add_output(format!("o{i}_{j}"), s.into());
            }
            prev = g.into();
        }
        n.add_output("y", prev);
        n
    }

    #[test]
    fn sizing_improves_cpd_within_budget() {
        let mut n = weak_chain(8, 2);
        let cfg = TimingConfig::default();
        let budget = n.area_live() * 1.5;
        let r = size_for_timing(&mut n, &cfg, budget, &SizingConfig::default());
        assert!(r.moves > 0, "expected at least one accepted move");
        assert!(r.cpd_after < r.cpd_before);
        assert!(r.area_after <= budget + 1e-9);
        n.check_invariants().expect("structure untouched");
    }

    #[test]
    fn sizing_is_function_preserving() {
        use tdals_sim::{simulate, Patterns};
        let mut n = weak_chain(4, 1);
        let p = Patterns::random(2, 512, 5);
        let before = simulate(&n, &p);
        let cfg = TimingConfig::default();
        let budget = n.area_live() * 2.0;
        size_for_timing(&mut n, &cfg, budget, &SizingConfig::default());
        let after = simulate(&n, &p);
        for po in 0..n.output_count() {
            for w in 0..p.word_count() {
                assert_eq!(before.po_word(po, w), after.po_word(po, w));
            }
        }
    }

    #[test]
    fn zero_headroom_budget_means_no_moves() {
        let mut n = weak_chain(4, 1);
        let cfg = TimingConfig::default();
        let area = n.area_live();
        let r = size_for_timing(&mut n, &cfg, area, &SizingConfig::default());
        assert_eq!(r.moves, 0);
        assert_eq!(r.cpd_after, r.cpd_before);
    }

    #[test]
    fn larger_budget_never_hurts() {
        let cfg = TimingConfig::default();
        let base = weak_chain(8, 2);
        let mut tight = base.clone();
        let mut loose = base.clone();
        let area = base.area_live();
        let rt = size_for_timing(&mut tight, &cfg, area * 1.1, &SizingConfig::default());
        let rl = size_for_timing(&mut loose, &cfg, area * 2.0, &SizingConfig::default());
        assert!(rl.cpd_after <= rt.cpd_after + 1e-9);
    }

    #[test]
    fn move_cap_is_respected() {
        let mut n = weak_chain(8, 2);
        let cfg = TimingConfig::default();
        let sizing = SizingConfig {
            max_moves: 1,
            ..SizingConfig::default()
        };
        let budget = n.area_live() * 3.0;
        let r = size_for_timing(&mut n, &cfg, budget, &sizing);
        assert!(r.moves <= 1);
    }
}

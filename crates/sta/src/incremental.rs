//! Event-driven incremental timing analysis.
//!
//! DCGWO runs one STA per candidate circuit; each candidate differs
//! from its parent by a single substitution, so almost all arrival
//! times are unchanged. [`IncrementalSta`] keeps the timing state of
//! one netlist and updates it in place when a substitution is applied,
//! re-propagating arrivals only through the affected fan-out cones —
//! the classic PrimeTime-style incremental update.
//!
//! # Examples
//!
//! ```
//! use tdals_netlist::builder::Builder;
//! use tdals_netlist::SignalRef;
//! use tdals_sta::{analyze, IncrementalSta, TimingConfig};
//!
//! let mut b = Builder::new("t");
//! let a = b.input("a");
//! let g1 = b.not(a);
//! let g2 = b.not(g1);
//! let g3 = b.not(g2);
//! b.output("y", g3);
//! let mut n = b.finish();
//!
//! let cfg = TimingConfig::default();
//! let mut inc = IncrementalSta::new(&n, cfg);
//! // Substitute g2 with constant 0 through the engine...
//! inc.substitute(&mut n, g2.gate().expect("gate"), SignalRef::Const0)?;
//! // ...and the state matches a from-scratch analysis.
//! let full = analyze(&n, &cfg);
//! assert!((inc.critical_path_delay(&n) - full.critical_path_delay()).abs() < 1e-9);
//! # Ok::<(), tdals_netlist::NetlistError>(())
//! ```

use std::collections::BinaryHeap;

use tdals_netlist::{GateId, Netlist, NetlistError, SignalRef};

use crate::analysis::TimingConfig;

/// Timing summary of a previewed (uncommitted) substitution: the
/// post-mutation PO arrivals and depths, from which the fitness terms
/// (`CPD`, `Depth`) derive.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingDelta {
    /// How many gates the preview re-timed (diagnostics).
    pub retimed: usize,
    /// Arrival time per primary output in ps.
    pub po_arrivals: Vec<f64>,
    /// Logic depth per primary output.
    pub po_depths: Vec<u32>,
}

impl TimingDelta {
    /// Critical path delay of the mutated circuit (max PO arrival).
    pub fn critical_path_delay(&self) -> f64 {
        self.po_arrivals.iter().copied().fold(0.0, f64::max)
    }

    /// Maximum logic depth over primary outputs.
    pub fn max_depth(&self) -> u32 {
        self.po_depths.iter().copied().max().unwrap_or(0)
    }
}

/// Incrementally-maintained timing state for one netlist.
///
/// The engine must observe every mutation: apply substitutions through
/// [`IncrementalSta::substitute`] and drive changes through
/// [`IncrementalSta::set_drive`]. Mutating the netlist behind the
/// engine's back leaves it stale (re-create it in that case).
#[derive(Debug, Clone)]
pub struct IncrementalSta {
    cfg: TimingConfig,
    arrival: Vec<f64>,
    depth: Vec<u32>,
    load: Vec<f64>,
    /// Gate fan-out adjacency (reader gates only; PO loads are part of
    /// `load` directly).
    fanouts: Vec<Vec<GateId>>,
    /// Scratch: dirty flags for the propagation queue.
    queued: Vec<bool>,
}

impl IncrementalSta {
    /// Builds the initial state with a full analysis pass.
    pub fn new(netlist: &Netlist, cfg: TimingConfig) -> IncrementalSta {
        let n = netlist.gate_count();
        let mut engine = IncrementalSta {
            cfg,
            arrival: vec![0.0; n],
            depth: vec![0; n],
            load: vec![0.0; n],
            fanouts: netlist.fanout_lists(),
            queued: vec![false; n],
        };
        for (_, gate) in netlist.iter() {
            let cap = gate.cell().input_cap();
            for fanin in gate.fanins() {
                if let SignalRef::Gate(src) = fanin {
                    engine.load[src.index()] += cap + cfg.wire_cap_per_fanout;
                }
            }
        }
        for (_, driver) in netlist.outputs() {
            if let SignalRef::Gate(src) = driver {
                engine.load[src.index()] += cfg.po_load + cfg.wire_cap_per_fanout;
            }
        }
        for (id, gate) in netlist.iter() {
            if !gate.is_input() {
                engine.refresh_gate(netlist, id);
            }
        }
        engine
    }

    fn refresh_gate(&mut self, netlist: &Netlist, id: GateId) -> bool {
        let gate = netlist.gate(id);
        let mut worst_arrival = 0.0f64;
        let mut worst_depth = 0u32;
        for fanin in gate.fanins() {
            if let SignalRef::Gate(src) = fanin {
                worst_arrival = worst_arrival.max(self.arrival[src.index()]);
                worst_depth = worst_depth.max(self.depth[src.index()]);
            }
        }
        let arrival = worst_arrival + gate.cell().delay(self.load[id.index()]);
        let depth = worst_depth + 1;
        let changed =
            (arrival - self.arrival[id.index()]).abs() > 1e-12 || depth != self.depth[id.index()];
        self.arrival[id.index()] = arrival;
        self.depth[id.index()] = depth;
        changed
    }

    /// Re-propagates arrivals from the given seed gates through their
    /// fan-out cones, stopping wherever values settle.
    fn propagate(&mut self, netlist: &Netlist, seeds: impl IntoIterator<Item = GateId>) {
        // Min-heap on gate id: ids are topological, so processing in id
        // order visits every gate at most once per call.
        let mut heap: BinaryHeap<std::cmp::Reverse<GateId>> = BinaryHeap::new();
        for seed in seeds {
            if !self.queued[seed.index()] {
                self.queued[seed.index()] = true;
                heap.push(std::cmp::Reverse(seed));
            }
        }
        while let Some(std::cmp::Reverse(id)) = heap.pop() {
            self.queued[id.index()] = false;
            if netlist.gate(id).is_input() {
                continue;
            }
            if self.refresh_gate(netlist, id) {
                for &reader in &self.fanouts[id.index()] {
                    if !self.queued[reader.index()] {
                        self.queued[reader.index()] = true;
                        heap.push(std::cmp::Reverse(reader));
                    }
                }
            }
        }
    }

    /// Applies a wire substitution through the engine: mutates the
    /// netlist exactly like [`Netlist::substitute`] and repairs loads,
    /// fan-out lists, and all affected arrivals.
    ///
    /// Returns the number of rewritten references.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::FaninOrder`] under the same conditions as
    /// [`Netlist::substitute`]; the timing state is untouched on error.
    pub fn substitute(
        &mut self,
        netlist: &mut Netlist,
        target: GateId,
        switch: SignalRef,
    ) -> Result<usize, NetlistError> {
        // Collect the readers (gates and their pin caps) before mutating.
        let old = SignalRef::Gate(target);
        let readers: Vec<GateId> = self.fanouts[target.index()].clone();
        let po_reader_count = netlist.outputs().filter(|(_, d)| *d == old).count();
        let rewritten = netlist.substitute(target, switch)?;

        // Load transfer: every reader pin (plus PO loads) moves from the
        // target to the switch gate.
        let mut moved_cap = 0.0;
        for &reader in &readers {
            moved_cap += netlist.gate(reader).cell().input_cap() + self.cfg.wire_cap_per_fanout;
        }
        moved_cap += po_reader_count as f64 * (self.cfg.po_load + self.cfg.wire_cap_per_fanout);
        self.load[target.index()] -= moved_cap;

        let mut seeds: Vec<GateId> = Vec::with_capacity(readers.len() + 2);
        if let SignalRef::Gate(sw) = switch {
            self.load[sw.index()] += moved_cap;
            self.fanouts[sw.index()].extend(readers.iter().copied());
            seeds.push(sw); // its own delay changed with the new load
        }
        self.fanouts[target.index()].clear();
        // The target's delay changed too (it lost load); it is dangling
        // but keeps consistent timing data.
        seeds.push(target);
        seeds.extend(readers);
        self.propagate(netlist, seeds);
        Ok(rewritten)
    }

    /// Changes a gate's drive strength through the engine, repairing the
    /// loads its input pins present and all affected arrivals.
    ///
    /// # Panics
    ///
    /// Panics if `gate` names a primary input.
    pub fn set_drive(
        &mut self,
        netlist: &mut Netlist,
        gate: GateId,
        drive: tdals_netlist::cell::Drive,
    ) {
        let old_cap = netlist.gate(gate).cell().input_cap();
        netlist.set_drive(gate, drive);
        let new_cap = netlist.gate(gate).cell().input_cap();
        let delta = new_cap - old_cap;
        let mut seeds: Vec<GateId> = vec![gate];
        for fanin in netlist.gate(gate).fanins() {
            if let SignalRef::Gate(src) = fanin {
                self.load[src.index()] += delta;
                seeds.push(*src);
            }
        }
        self.propagate(netlist, seeds);
    }

    /// Scores the substitution `target := switch` **without committing
    /// it**: re-propagates arrivals and depths through the affected
    /// cone into a scratch overlay and returns the mutated circuit's
    /// timing summary. The engine and netlist are unchanged.
    ///
    /// The result matches a from-scratch [`analyze`](crate::analyze) of
    /// the mutated netlist (same event-driven settle rules as
    /// [`IncrementalSta::substitute`]).
    ///
    /// # Panics
    ///
    /// Panics if `switch` is a gate with id ≥ `target` (which would
    /// break the topological id invariant).
    pub fn preview_substitute(
        &self,
        netlist: &Netlist,
        target: GateId,
        switch: SignalRef,
    ) -> TimingDelta {
        if let SignalRef::Gate(s) = switch {
            assert!(
                s < target,
                "switch {s} must precede target {target} in id order"
            );
        }
        let readers = &self.fanouts[target.index()];
        let po_reader_count = netlist
            .outputs()
            .filter(|(_, d)| *d == SignalRef::Gate(target))
            .count();
        let mut moved_cap = 0.0;
        for &reader in readers {
            moved_cap += netlist.gate(reader).cell().input_cap() + self.cfg.wire_cap_per_fanout;
        }
        moved_cap += po_reader_count as f64 * (self.cfg.po_load + self.cfg.wire_cap_per_fanout);

        // Flat overlay of (arrival, depth) for re-timed gates; the
        // target is left untouched (it dangles after the substitution
        // and defines no PO summary).
        let n = netlist.gate_count();
        let mut in_ovl = vec![false; n];
        let mut ovl_arrival = vec![0.0f64; n];
        let mut ovl_depth = vec![0u32; n];
        let mut retimed = 0usize;
        // Pending-flag scan instead of a priority queue: fan-outs
        // always have larger ids than their drivers, so one ascending
        // pass over the id space visits every affected gate after all
        // of its fan-ins have settled.
        let mut pending = vec![false; n];
        let mut lo = n;
        // The switch gate's own delay changes with its increased load.
        if let SignalRef::Gate(sw) = switch {
            pending[sw.index()] = true;
            lo = lo.min(sw.index());
        }
        for &reader in readers {
            pending[reader.index()] = true;
            lo = lo.min(reader.index());
        }

        for i in lo..n {
            if !pending[i] {
                continue;
            }
            let id = GateId::new(i);
            let gate = netlist.gate(id);
            if gate.is_input() {
                continue;
            }
            let mut worst_arrival = 0.0f64;
            let mut worst_depth = 0u32;
            for fanin in gate.fanins() {
                // Pending substitution: readers of `target` see `switch`.
                let src = if *fanin == SignalRef::Gate(target) {
                    switch
                } else {
                    *fanin
                };
                if let SignalRef::Gate(src) = src {
                    let i = src.index();
                    let (a, d) = if in_ovl[i] {
                        (ovl_arrival[i], ovl_depth[i])
                    } else {
                        (self.arrival[i], self.depth[i])
                    };
                    worst_arrival = worst_arrival.max(a);
                    worst_depth = worst_depth.max(d);
                }
            }
            let mut load = self.load[id.index()];
            if SignalRef::Gate(id) == switch {
                load += moved_cap;
            }
            let arrival = worst_arrival + gate.cell().delay(load);
            let depth = worst_depth + 1;
            let changed = (arrival - self.arrival[id.index()]).abs() > 1e-12
                || depth != self.depth[id.index()];
            if changed {
                in_ovl[i] = true;
                ovl_arrival[i] = arrival;
                ovl_depth[i] = depth;
                retimed += 1;
                for &reader in &self.fanouts[i] {
                    pending[reader.index()] = true;
                }
            }
        }

        let mut po_arrivals = Vec::with_capacity(netlist.output_count());
        let mut po_depths = Vec::with_capacity(netlist.output_count());
        for (_, driver) in netlist.outputs() {
            let driver = if driver == SignalRef::Gate(target) {
                switch
            } else {
                driver
            };
            match driver {
                SignalRef::Gate(src) => {
                    let i = src.index();
                    if in_ovl[i] {
                        po_arrivals.push(ovl_arrival[i]);
                        po_depths.push(ovl_depth[i]);
                    } else {
                        po_arrivals.push(self.arrival[i]);
                        po_depths.push(self.depth[i]);
                    }
                }
                _ => {
                    po_arrivals.push(0.0);
                    po_depths.push(0);
                }
            }
        }
        TimingDelta {
            retimed,
            po_arrivals,
            po_depths,
        }
    }

    /// Snapshot of the engine's state as a
    /// [`TimingReport`](crate::TimingReport) (O(gates) copies of the
    /// arrival/depth/load arrays).
    pub fn to_report(&self, netlist: &Netlist) -> crate::analysis::TimingReport {
        let mut po_arrival = Vec::with_capacity(netlist.output_count());
        let mut po_depth = Vec::with_capacity(netlist.output_count());
        for (_, driver) in netlist.outputs() {
            match driver {
                SignalRef::Gate(src) => {
                    po_arrival.push(self.arrival[src.index()]);
                    po_depth.push(self.depth[src.index()]);
                }
                _ => {
                    po_arrival.push(0.0);
                    po_depth.push(0);
                }
            }
        }
        crate::analysis::TimingReport::from_parts(
            self.arrival.clone(),
            self.depth.clone(),
            self.load.clone(),
            po_arrival,
            po_depth,
        )
    }

    /// Output arrival time of a gate in ps.
    pub fn arrival(&self, id: GateId) -> f64 {
        self.arrival[id.index()]
    }

    /// Logic depth of a gate.
    pub fn depth(&self, id: GateId) -> u32 {
        self.depth[id.index()]
    }

    /// Load seen by a gate's output in fF.
    pub fn load(&self, id: GateId) -> f64 {
        self.load[id.index()]
    }

    /// Critical path delay over the netlist's primary outputs.
    pub fn critical_path_delay(&self, netlist: &Netlist) -> f64 {
        netlist
            .outputs()
            .map(|(_, driver)| match driver {
                SignalRef::Gate(src) => self.arrival[src.index()],
                _ => 0.0,
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tdals_netlist::builder::Builder;
    use tdals_netlist::cell::Drive;

    fn random_dag(seed: u64) -> Netlist {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Builder::new("dag");
        let mut pool: Vec<SignalRef> = (0..5).map(|i| b.input(format!("x{i}"))).collect();
        for _ in 0..60 {
            let i = rng.gen_range(0..pool.len());
            let j = rng.gen_range(0..pool.len());
            let g = match rng.gen_range(0..4) {
                0 => b.raw_gate(tdals_netlist::cell::CellFunc::Nand2, &[pool[i], pool[j]]),
                1 => b.raw_gate(tdals_netlist::cell::CellFunc::Xor2, &[pool[i], pool[j]]),
                2 => b.raw_gate(tdals_netlist::cell::CellFunc::Nor2, &[pool[i], pool[j]]),
                _ => b.raw_gate(tdals_netlist::cell::CellFunc::Inv, &[pool[i]]),
            };
            pool.push(g);
        }
        let len = pool.len();
        for (k, &s) in pool[len - 6..].iter().enumerate() {
            b.output(format!("y{k}"), s);
        }
        b.finish()
    }

    fn assert_matches_full(netlist: &Netlist, inc: &IncrementalSta, cfg: &TimingConfig) {
        let full = analyze(netlist, cfg);
        for (id, _) in netlist.iter() {
            assert!(
                (inc.arrival(id) - full.arrival(id)).abs() < 1e-9,
                "arrival mismatch at {id}: {} vs {}",
                inc.arrival(id),
                full.arrival(id)
            );
            assert_eq!(inc.depth(id), full.depth(id), "depth mismatch at {id}");
            assert!(
                (inc.load(id) - full.load(id)).abs() < 1e-9,
                "load mismatch at {id}"
            );
        }
    }

    #[test]
    fn fresh_engine_matches_full_analysis() {
        let cfg = TimingConfig::default();
        for seed in 0..5 {
            let n = random_dag(seed);
            let inc = IncrementalSta::new(&n, cfg);
            assert_matches_full(&n, &inc, &cfg);
        }
    }

    #[test]
    fn substitutions_keep_engine_in_sync() {
        let cfg = TimingConfig::default();
        let mut rng = StdRng::seed_from_u64(42);
        for seed in 0..5 {
            let mut n = random_dag(seed);
            let mut inc = IncrementalSta::new(&n, cfg);
            for _ in 0..8 {
                // Random legal LAC: gate target, switch from its TFI or const.
                let logic: Vec<GateId> = n
                    .iter()
                    .filter(|(_, g)| !g.is_input())
                    .map(|(id, _)| id)
                    .collect();
                let target = logic[rng.gen_range(0..logic.len())];
                let tfi = n.tfi_mask(target);
                let mut candidates: Vec<SignalRef> = tfi
                    .iter()
                    .enumerate()
                    .filter(|&(_, &m)| m)
                    .map(|(i, _)| SignalRef::Gate(GateId::new(i)))
                    .collect();
                candidates.push(SignalRef::Const0);
                let switch = candidates[rng.gen_range(0..candidates.len())];
                inc.substitute(&mut n, target, switch).expect("legal LAC");
                assert_matches_full(&n, &inc, &cfg);
            }
        }
    }

    #[test]
    fn preview_matches_full_analysis_of_mutated_netlist() {
        let cfg = TimingConfig::default();
        let mut rng = StdRng::seed_from_u64(11);
        for seed in 0..5 {
            let n = random_dag(seed);
            let inc = IncrementalSta::new(&n, cfg);
            for _ in 0..8 {
                let logic: Vec<GateId> = n
                    .iter()
                    .filter(|(_, g)| !g.is_input())
                    .map(|(id, _)| id)
                    .collect();
                let target = logic[rng.gen_range(0..logic.len())];
                let tfi = n.tfi_mask(target);
                let mut candidates: Vec<SignalRef> = tfi
                    .iter()
                    .enumerate()
                    .filter(|&(_, &m)| m)
                    .map(|(i, _)| SignalRef::Gate(GateId::new(i)))
                    .collect();
                candidates.push(SignalRef::Const1);
                let switch = candidates[rng.gen_range(0..candidates.len())];

                let delta = inc.preview_substitute(&n, target, switch);
                let mut mutated = n.clone();
                mutated.substitute(target, switch).expect("legal LAC");
                let full = analyze(&mutated, &cfg);
                assert_eq!(delta.max_depth(), full.max_depth());
                assert!(
                    (delta.critical_path_delay() - full.critical_path_delay()).abs() < 1e-9,
                    "cpd {} vs {}",
                    delta.critical_path_delay(),
                    full.critical_path_delay()
                );
                for po in 0..mutated.output_count() {
                    assert!(
                        (delta.po_arrivals[po] - full.po_arrival(po)).abs() < 1e-9,
                        "po {po} arrival"
                    );
                    assert_eq!(delta.po_depths[po], full.po_depth(po), "po {po} depth");
                }
            }
        }
    }

    #[test]
    fn to_report_matches_full_analysis() {
        let cfg = TimingConfig::default();
        let n = random_dag(2);
        let inc = IncrementalSta::new(&n, cfg);
        let snap = inc.to_report(&n);
        let full = analyze(&n, &cfg);
        assert_eq!(snap.max_depth(), full.max_depth());
        assert!((snap.critical_path_delay() - full.critical_path_delay()).abs() < 1e-9);
        for (id, _) in n.iter() {
            assert!((snap.arrival(id) - full.arrival(id)).abs() < 1e-9);
            assert_eq!(snap.depth(id), full.depth(id));
        }
        for po in 0..n.output_count() {
            assert!((snap.po_arrival(po) - full.po_arrival(po)).abs() < 1e-9);
        }
    }

    #[test]
    fn drive_changes_keep_engine_in_sync() {
        let cfg = TimingConfig::default();
        let mut rng = StdRng::seed_from_u64(7);
        let mut n = random_dag(3);
        let mut inc = IncrementalSta::new(&n, cfg);
        let logic: Vec<GateId> = n
            .iter()
            .filter(|(_, g)| !g.is_input())
            .map(|(id, _)| id)
            .collect();
        for _ in 0..10 {
            let gate = logic[rng.gen_range(0..logic.len())];
            let drive =
                [Drive::X0, Drive::X1, Drive::X2, Drive::X4, Drive::X8][rng.gen_range(0..5)];
            inc.set_drive(&mut n, gate, drive);
            assert_matches_full(&n, &inc, &cfg);
        }
    }

    #[test]
    fn substitute_error_leaves_state_untouched() {
        let cfg = TimingConfig::default();
        let mut n = random_dag(1);
        let mut inc = IncrementalSta::new(&n, cfg);
        // Illegal: switch downstream of target.
        let target = GateId::new(6);
        let downstream = GateId::new(n.gate_count() - 1);
        let err = inc.substitute(&mut n, target, downstream.into());
        assert!(err.is_err());
        assert_matches_full(&n, &inc, &cfg);
    }
}

//! Process-wide metric registry: sharded atomic counters, gauges, and
//! fixed-bucket histograms.
//!
//! The registry is a fixed struct of named metrics — no dynamic
//! registration, no locks, no allocation on the hot path. A counter
//! increment is one relaxed `fetch_add` on a thread-striped shard
//! (16 cache-line-padded cells, so concurrent workers do not bounce
//! one cache line); a histogram record is two. Everything is
//! monotone-write / racy-read: [`Metrics::snapshot`] sums the shards
//! without stopping writers, which is exactly the consistency a stats
//! endpoint needs and all it promises.
//!
//! Nothing here reads the clock and nothing feeds back into
//! computation, so the counters can stay **always on** without
//! touching the determinism contract. The one escape hatch is
//! [`set_counters_enabled`], which exists solely so the overhead
//! benchmark (`bench_parallel`'s `obs` section) can measure the instrumented
//! hot paths against a disarmed registry in one process.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Number of counter stripes. A power of two around the worker-thread
/// counts the pool actually runs.
const SHARDS: usize = 16;

/// Histogram bucket count: upper bounds 2^0 .. 2^20, plus overflow.
const BUCKETS: usize = 22;

/// Global arm switch for the whole registry (counters *and* histogram
/// records). On by default; only the observability overhead benchmark
/// flips it, to time the hot paths with the registry disarmed.
static COUNTERS_ENABLED: AtomicBool = AtomicBool::new(true);

/// Arms or disarms every counter and histogram in the process.
/// Testing/benchmarking hook — production paths never call this.
pub fn set_counters_enabled(enabled: bool) {
    COUNTERS_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Monotonically increasing stripe index per thread: spreads writers
/// over counter shards without hashing opaque `ThreadId`s.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// One cache line per shard so concurrent increments from different
/// workers do not false-share.
#[repr(align(64))]
#[derive(Debug)]
struct PaddedCell(AtomicU64);

impl PaddedCell {
    const fn zero() -> PaddedCell {
        PaddedCell(AtomicU64::new(0))
    }
}

/// A monotone counter striped over `SHARDS` padded atomics.
#[derive(Debug)]
pub struct Counter {
    shards: [PaddedCell; SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter {
            shards: [const { PaddedCell::zero() }; SHARDS],
        }
    }

    /// Adds `n` on the calling thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        if !COUNTERS_ENABLED.load(Ordering::Relaxed) {
            return;
        }
        STRIPE.with(|&s| self.shards[s].0.fetch_add(n, Ordering::Relaxed));
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Racy-read total over all stripes.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

/// A last-write-wins instantaneous value (e.g. queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    /// Stores the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        if !COUNTERS_ENABLED.load(Ordering::Relaxed) {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    /// Reads the last stored value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket power-of-two histogram: upper bounds
/// 1, 2, 4, …, 2^20, plus an overflow bucket, with a running count and
/// sum. Bucket boundaries are compiled in, so recording is two relaxed
/// atomic adds and a `leading_zeros`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A zeroed histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Index of the first bucket whose upper bound holds `v`.
    fn bucket_of(v: u64) -> usize {
        if v <= 1 {
            return 0;
        }
        // Smallest i with 2^i >= v.
        let ceil_log2 = 64 - (v - 1).leading_zeros() as usize;
        ceil_log2.min(BUCKETS - 1)
    }

    /// Upper bound of bucket `i`, `None` for the overflow bucket.
    fn bound_of(i: usize) -> Option<u64> {
        (i < BUCKETS - 1).then(|| 1u64 << i)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if !COUNTERS_ENABLED.load(Ordering::Relaxed) {
            return;
        }
        self.buckets[Histogram::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Racy-read snapshot of this histogram.
    pub fn snapshot(&self, name: &'static str) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((Histogram::bound_of(i), n))
            })
            .collect();
        HistogramSnapshot {
            name,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// The fixed registry: every metric the stack maintains, named here
/// once so the snapshot order (and therefore every serialized stats
/// frame) is stable.
#[derive(Debug)]
#[non_exhaustive]
pub struct Metrics {
    /// Candidate evaluations recorded by budget trackers.
    pub evaluations: Counter,
    /// LACs accepted by an optimizer (the `lac-accepted` flow event).
    pub lacs_accepted: Counter,
    /// `DeltaSim` cone previews.
    pub delta_previews: Counter,
    /// `DeltaSim` incremental commits.
    pub delta_commits: Counter,
    /// `DeltaSim` full-resimulation re-bases.
    pub delta_rebases: Counter,
    /// `SlotPool` lease requests that had to wait in line.
    pub lease_waits: Counter,
    /// Wire frames read by the daemon.
    pub frames_read: Counter,
    /// Wire frames written by the daemon.
    pub frames_written: Counter,
    /// Finished sessions converted to reaped records by the daemon.
    pub sessions_reaped: Counter,
    /// Crashed shard workers restarted by the cluster supervisor.
    pub shard_restarts: Counter,
    /// Sessions currently waiting in the slot-pool line.
    pub queue_depth: Gauge,
    /// Affected-cone sizes (changed gates) per delta preview/commit.
    pub delta_cone_gates: Histogram,
    /// Slot widths granted by the pool.
    pub grant_width: Histogram,
    /// Microseconds a granted lease spent waiting in line.
    pub lease_wait_us: Histogram,
}

impl Metrics {
    const fn new() -> Metrics {
        Metrics {
            evaluations: Counter::new(),
            lacs_accepted: Counter::new(),
            delta_previews: Counter::new(),
            delta_commits: Counter::new(),
            delta_rebases: Counter::new(),
            lease_waits: Counter::new(),
            frames_read: Counter::new(),
            frames_written: Counter::new(),
            sessions_reaped: Counter::new(),
            shard_restarts: Counter::new(),
            queue_depth: Gauge::new(),
            delta_cone_gates: Histogram::new(),
            grant_width: Histogram::new(),
            lease_wait_us: Histogram::new(),
        }
    }

    /// Racy-read snapshot of every metric, in registry order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("evaluations", self.evaluations.get()),
                ("lacs_accepted", self.lacs_accepted.get()),
                ("delta_previews", self.delta_previews.get()),
                ("delta_commits", self.delta_commits.get()),
                ("delta_rebases", self.delta_rebases.get()),
                ("lease_waits", self.lease_waits.get()),
                ("frames_read", self.frames_read.get()),
                ("frames_written", self.frames_written.get()),
                ("sessions_reaped", self.sessions_reaped.get()),
                ("shard_restarts", self.shard_restarts.get()),
            ],
            gauges: vec![("queue_depth", self.queue_depth.get())],
            histograms: vec![
                self.delta_cone_gates.snapshot("delta_cone_gates"),
                self.grant_width.snapshot("grant_width"),
                self.lease_wait_us.snapshot("lease_wait_us"),
            ],
        }
    }
}

/// The process registry. Counters are striped atomics, so handing out
/// a shared reference everywhere is the whole synchronization story.
pub fn metrics() -> &'static Metrics {
    static METRICS: Metrics = Metrics::new();
    &METRICS
}

/// One histogram's racy-read state: name, totals, and the non-empty
/// buckets as `(upper bound, count)` — `None` is the overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry name.
    pub name: &'static str,
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Non-empty `(upper bound, count)` buckets, ascending; a `None`
    /// bound is the overflow bucket.
    pub buckets: Vec<(Option<u64>, u64)>,
}

/// Every metric's value at one racy-read instant, in registry order —
/// the neutral shape downstream layers (the `stats` wire verb, the
/// CLI) serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, total)` for every counter.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(&'static str, u64)>,
    /// Every histogram's snapshot.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter named `name`, if the snapshot has it.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two_with_overflow() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(5), 3);
        assert_eq!(Histogram::bucket_of(1 << 20), 20);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(Histogram::bound_of(0), Some(1));
        assert_eq!(Histogram::bound_of(20), Some(1 << 20));
        assert_eq!(Histogram::bound_of(BUCKETS - 1), None);
    }

    #[test]
    fn histogram_snapshot_keeps_totals() {
        let h = Histogram::new();
        for v in [0, 1, 2, 700, u64::MAX / 2] {
            h.record(v);
        }
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 703 + u64::MAX / 2);
        assert_eq!(snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 5);
        assert_eq!(snap.buckets.last().expect("overflow hit").0, None);
    }

    #[test]
    fn registry_snapshot_is_stably_ordered() {
        let a = metrics().snapshot();
        let b = metrics().snapshot();
        let names = |s: &MetricsSnapshot| s.counters.iter().map(|&(n, _)| n).collect::<Vec<_>>();
        assert_eq!(names(&a), names(&b));
        assert_eq!(a.counters[0].0, "evaluations");
        assert!(a.counter("no-such-metric").is_none());
    }
}

//! Ring-buffered hierarchical span recorder.
//!
//! A [`Span`] is an RAII guard: opening one stamps a start timestamp
//! (through the [`crate::clock`] facade — the recorder owns no clock
//! reads of its own), dropping it records a completed
//! `(ts, dur, thread)` interval into a bounded ring. Guards on one
//! thread drop LIFO, so a parent interval always encloses its
//! children — exactly the containment rule Chrome's trace viewer (and
//! Perfetto) uses to rebuild the hierarchy, no explicit parent ids
//! needed.
//!
//! The recorder is **off by default**: `span()` then returns a
//! disarmed guard after one relaxed atomic load, and no timestamp is
//! read at all. `--trace out.json` on the CLI enables it for the run
//! and drains the ring into a Chrome trace-event artifact afterwards
//! (serialization lives downstream in `tdals_bench::obs_report`; this
//! crate stays dependency-free).
//!
//! The ring is bounded: when full, the **oldest** record is dropped
//! and counted, so a long daemon run keeps its most recent window
//! instead of growing without limit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::clock;

/// Span category tags: the four levels of the tdals hierarchy.
pub mod cat {
    /// A whole `Flow::run`.
    pub const FLOW: &str = "flow";
    /// A flow phase (optimize, post-opt, …).
    pub const PHASE: &str = "phase";
    /// One optimizer iteration.
    pub const ITERATION: &str = "iteration";
    /// One parallel batch fanned over the worker pool.
    pub const PAR: &str = "par";
}

/// One completed span: a closed interval on one thread's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Display name (e.g. the optimizer or phase name).
    pub name: String,
    /// Category tag (one of [`cat`]'s constants).
    pub cat: &'static str,
    /// Start, microseconds since the process trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Recording thread's stable small id.
    pub tid: u64,
    /// Small key/value details (counts, widths — never timestamps).
    pub args: Vec<(&'static str, u64)>,
}

/// Default ring capacity when [`enable`] is called with 0.
const DEFAULT_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

struct Ring {
    records: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: Mutex<Ring> = Mutex::new(Ring {
        records: VecDeque::new(),
        capacity: DEFAULT_CAPACITY,
        dropped: 0,
    });
    &RING
}

/// Turns the recorder on with the given ring capacity (0 takes the
/// default, 64Ki records). Clears any previous contents.
pub fn enable(capacity: usize) {
    let mut ring = ring().lock().unwrap_or_else(PoisonError::into_inner);
    ring.records.clear();
    ring.capacity = if capacity == 0 {
        DEFAULT_CAPACITY
    } else {
        capacity
    };
    ring.dropped = 0;
    ENABLED.store(true, Ordering::Release);
}

/// Turns the recorder off; already-recorded spans stay drainable.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether spans are currently being recorded.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Removes and returns every recorded span, oldest first (and within
/// one instant, in recording order).
pub fn drain() -> Vec<SpanRecord> {
    let mut ring = ring().lock().unwrap_or_else(PoisonError::into_inner);
    let mut records: Vec<SpanRecord> = ring.records.drain(..).collect();
    records.sort_by_key(|r| r.ts_us);
    records
}

/// Spans the ring had to discard (oldest-first) since [`enable`].
pub fn dropped() -> u64 {
    ring()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .dropped
}

/// Opens a span. When the recorder is disabled this is one relaxed
/// atomic load — no clock read, no allocation beyond the name the
/// caller already built.
pub fn span(category: &'static str, name: impl Into<String>) -> Span {
    if !enabled() {
        return Span { open: None };
    }
    Span {
        open: Some(OpenSpan {
            name: name.into(),
            cat: category,
            start_us: clock::micros_since_epoch(),
            args: Vec::new(),
        }),
    }
}

#[derive(Debug)]
struct OpenSpan {
    name: String,
    cat: &'static str,
    start_us: u64,
    args: Vec<(&'static str, u64)>,
}

/// An in-flight span; records itself on drop. Obtained from [`span`].
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; binding it to _ drops it immediately"]
pub struct Span {
    open: Option<OpenSpan>,
}

impl Span {
    /// Attaches a small numeric detail (no-op when disarmed).
    pub fn arg(mut self, key: &'static str, value: u64) -> Span {
        if let Some(open) = &mut self.open {
            open.args.push((key, value));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let end_us = clock::micros_since_epoch();
        let record = SpanRecord {
            name: open.name,
            cat: open.cat,
            ts_us: open.start_us,
            dur_us: end_us.saturating_sub(open.start_us),
            tid: TID.with(|&t| t),
            args: open.args,
        };
        let mut ring = ring().lock().unwrap_or_else(PoisonError::into_inner);
        if ring.records.len() >= ring.capacity {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        ring.records.push_back(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global, so its tests run as one unit —
    // Rust runs #[test]s of one module concurrently otherwise.
    #[test]
    fn recorder_lifecycle() {
        // Disabled: no clock read, no records.
        disable();
        drop(span(cat::FLOW, "ignored"));
        assert!(drain().iter().all(|r| r.name != "ignored"));

        // Enabled: nested guards record child-within-parent.
        enable(8);
        {
            let _parent = span(cat::FLOW, "unit-parent").arg("gates", 3);
            let _child = span(cat::PHASE, "unit-child");
        }
        let records = drain();
        let child = records
            .iter()
            .find(|r| r.name == "unit-child")
            .expect("child recorded");
        let parent = records
            .iter()
            .find(|r| r.name == "unit-parent")
            .expect("parent recorded");
        assert!(parent.ts_us <= child.ts_us);
        assert!(child.ts_us + child.dur_us <= parent.ts_us + parent.dur_us);
        assert_eq!(parent.args, vec![("gates", 3)]);

        // The ring drops oldest-first at capacity.
        enable(2);
        for i in 0..5 {
            drop(span(cat::ITERATION, format!("unit-ring-{i}")));
        }
        let records = drain();
        assert_eq!(records.len(), 2);
        assert_eq!(dropped(), 3);
        assert_eq!(records[1].name, "unit-ring-4", "newest survives");
        disable();
    }
}

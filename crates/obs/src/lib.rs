//! # tdals-obs
//!
//! Hand-rolled, zero-dependency observability for the tdals stack:
//! the layer that explains *where time and evaluations go* without
//! perturbing the determinism contract the rest of the workspace is
//! built on. Three pieces:
//!
//! * [`metrics`](mod@metrics) — a process-wide registry of sharded atomic counters
//!   and fixed-bucket histograms for the facts the hot paths already
//!   know (evaluations, delta-sim previews/commits/rebases and cone
//!   sizes, lease waits and grant widths, daemon frame traffic, shard
//!   restarts). Counters are always on; an increment is one relaxed
//!   atomic add on a thread-striped shard.
//! * [`trace`] — a ring-buffered hierarchical span recorder
//!   (flow → phase → iteration → parallel batch). Disabled by default;
//!   when off, opening a span is a single relaxed atomic load. The
//!   drained records serialize to Chrome trace-event JSON downstream
//!   (`tdals_bench::obs_report`), loadable in Perfetto.
//! * [`clock`] — the **one audited wall-clock facade**. Every
//!   `Instant::now()` in the workspace outside this module (and the
//!   benchmark binaries) is a determinism-lint violation; routing all
//!   reads through here is what makes "timings never enter results
//!   files or digests" an auditable property of one file instead of a
//!   promise scattered over ten.
//!
//! Nothing in this crate feeds back into computation: metrics and
//! spans are write-only from the hot paths' point of view, so enabling
//! or disabling them cannot change a single byte of a results file —
//! the `obs-soak` CI job diffs exactly that.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod metrics;
pub mod trace;

pub use metrics::{metrics, Metrics, MetricsSnapshot};
pub use trace::{span, Span, SpanRecord};

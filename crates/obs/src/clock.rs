//! The one audited wall-clock facade.
//!
//! This module is the **only** place in the workspace (benchmark
//! binaries aside) allowed to read the machine clock; `detlint`
//! enforces that textually and its allowlist exempts exactly this
//! file. Concentrating every read here keeps the audit surface small:
//! to check that wall-clock values never reach a results file, a
//! digest, or candidate ordering, follow the callers of [`now`] — there
//! is nowhere else a timestamp can be born.
//!
//! The facade deliberately exposes a *newtype* [`Instant`] rather than
//! re-exporting `std::time::Instant`, so a caller cannot quietly call
//! `std::time::Instant::now()` on a value obtained here; fresh
//! timestamps only come from [`now`].

use std::ops::Add;
use std::sync::OnceLock;
use std::time::Duration;
use std::time::Instant as StdInstant;

/// An opaque monotonic timestamp obtained from [`now`].
///
/// Supports exactly the operations the workspace needs — elapsed time,
/// deadline arithmetic, and ordering — and nothing that would let a
/// wall-clock value masquerade as data (no serialization, no numeric
/// accessors besides durations).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant(StdInstant);

/// Reads the monotonic clock. The single point where time enters the
/// workspace.
pub fn now() -> Instant {
    Instant(StdInstant::now())
}

impl Instant {
    /// Time elapsed since this instant was captured.
    pub fn elapsed(&self) -> Duration {
        now().0.saturating_duration_since(self.0)
    }

    /// `self + d`, or `None` on overflow (mirrors
    /// `std::time::Instant::checked_add` for deadline arithmetic).
    pub fn checked_add(&self, d: Duration) -> Option<Instant> {
        self.0.checked_add(d).map(Instant)
    }

    /// Duration from `earlier` to `self`, zero if `earlier` is later.
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        self.0.saturating_duration_since(earlier.0)
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;

    fn add(self, d: Duration) -> Instant {
        Instant(self.0 + d)
    }
}

/// The process trace epoch: captured on first use, shared by every
/// span so trace timestamps from all threads live on one axis.
static EPOCH: OnceLock<StdInstant> = OnceLock::new();

/// Microseconds since the process trace epoch (first call returns 0).
///
/// This is the timestamp base of the span recorder: monotone,
/// process-relative, and never persisted anywhere except an explicit
/// `--trace` artifact.
pub fn micros_since_epoch() -> u64 {
    let epoch = *EPOCH.get_or_init(StdInstant::now);
    now().0.saturating_duration_since(epoch).as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instants_are_monotone_and_support_deadline_arithmetic() {
        let a = now();
        let b = now();
        assert!(b >= a);
        let deadline = a
            .checked_add(Duration::from_secs(3600))
            .expect("no overflow");
        assert!(deadline > b, "an hour out is later than now");
        assert!(a + Duration::from_secs(1) > a);
        assert_eq!(a.saturating_duration_since(deadline), Duration::ZERO);
    }

    #[test]
    fn epoch_micros_are_monotone() {
        let a = micros_since_epoch();
        let b = micros_since_epoch();
        assert!(b >= a);
    }
}

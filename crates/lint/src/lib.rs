//! # tdals-lint
//!
//! Rule-registry structural verification for gate-level netlists.
//!
//! Every optimizer in this workspace mutates [`Netlist`]s in place —
//! LAC substitution, gate re-sizing, dead-cone sweeps — and the
//! incremental engines (`DeltaEval`-style reference counting,
//! incremental STA) assume the result is still well-formed. This crate
//! pins down what "well-formed" means as a set of independent lint
//! rules, each emitting structured [`LintFinding`]s instead of stopping
//! at the first violation the way `Netlist::check_invariants` does:
//!
//! * [`RuleId::Cycle`] — a fan-in id not strictly below its reader
//!   (the topological id invariant; an actual combinational loop can
//!   never be represented, so any violation is reported here);
//! * [`RuleId::UndrivenNet`] — fan-in rows shorter/longer than the
//!   cell arity, or references to gates outside the netlist;
//! * [`RuleId::MultiDrivenNet`] — duplicate gate names (two drivers
//!   claiming one net after a Verilog round-trip);
//! * [`RuleId::DanglingWire`] — logic gates no pin or output reads;
//! * [`RuleId::UnreachableGate`] — gates with readers but no path to
//!   any primary output;
//! * [`RuleId::PrimaryIo`] — input-registry/Input-cell consistency,
//!   duplicate port names, portless modules;
//! * [`RuleId::FanoutConsistency`] — the netlist's fan-out counts vs an
//!   independent recount (and, via [`refcount_consistency`], the
//!   dead-cone liveness reference counts incremental evaluators carry);
//! * [`RuleId::LacLegality`] — whether a prospective `target := switch`
//!   substitution keeps the netlist acyclic and width-compatible
//!   ([`check_lac`]).
//!
//! Entry points: [`lint_netlist`] for an in-memory netlist,
//! [`lint_verilog`] for source text (parse diagnostics become findings
//! with line/column locations), and [`parse_checked`] as an opt-in
//! strict parse gate that rejects structurally suspect modules.
//!
//! # Examples
//!
//! ```
//! use tdals_lint::{lint_netlist, Severity};
//! use tdals_netlist::builder::Builder;
//!
//! let mut b = Builder::new("clean");
//! let ins = b.inputs("a", 2);
//! let g = b.and(ins[0], ins[1]);
//! b.output("y", g);
//! let report = lint_netlist(&b.finish());
//! assert!(report.is_clean());
//! assert_eq!(report.findings().len(), 0);
//! assert!(!report.findings().iter().any(|f| f.severity == Severity::Error));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

use tdals_netlist::{verilog, GateId, Netlist, NetlistError, ParseVerilogError};

mod rules;

pub use rules::{check_lac, refcount_consistency, refcount_expected, Registry, Rule};

/// How serious a finding is.
///
/// Errors mean the netlist violates an invariant the engines rely on;
/// warnings flag legitimate-but-suspect intermediate states (dangling
/// cones are the normal by-product of substitution until post-opt
/// sweeps them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but representable; the engines still work.
    Warning,
    /// A structural invariant is broken.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable identifier of the rule (or defect class) behind a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// Topological-order violation (would permit a combinational loop).
    Cycle,
    /// A pin or output reads a net nothing drives.
    UndrivenNet,
    /// One net with more than one driver.
    MultiDrivenNet,
    /// A gate output no pin or primary output reads.
    DanglingWire,
    /// A gate with readers but no path to any primary output.
    UnreachableGate,
    /// Primary input/output bookkeeping inconsistency.
    PrimaryIo,
    /// Fan-out or liveness reference counts disagree with a recount.
    FanoutConsistency,
    /// An illegal local approximate change.
    LacLegality,
    /// Source text that could not be elaborated at all.
    Parse,
}

impl RuleId {
    /// Stable kebab-case name (used in reports and JSON output).
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::Cycle => "cycle",
            RuleId::UndrivenNet => "undriven-net",
            RuleId::MultiDrivenNet => "multi-driven-net",
            RuleId::DanglingWire => "dangling-wire",
            RuleId::UnreachableGate => "unreachable-gate",
            RuleId::PrimaryIo => "primary-io",
            RuleId::FanoutConsistency => "fanout-consistency",
            RuleId::LacLegality => "lac-legality",
            RuleId::Parse => "parse",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structural defect, tied to a rule and (when known) a location:
/// a gate id inside the netlist and/or a line/column in the Verilog
/// source the netlist came from.
#[derive(Debug, Clone, PartialEq)]
pub struct LintFinding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description of the defect.
    pub message: String,
    /// Offending gate, when the defect is anchored to one.
    pub gate: Option<GateId>,
    /// Offending primary output index, when anchored to one.
    pub output: Option<usize>,
    /// 1-based source line for parse-adjacent findings.
    pub line: Option<usize>,
    /// 1-based source column for parse-adjacent findings.
    pub column: Option<usize>,
}

impl LintFinding {
    /// A new error-severity finding.
    pub fn error(rule: RuleId, message: impl Into<String>) -> LintFinding {
        LintFinding {
            rule,
            severity: Severity::Error,
            message: message.into(),
            gate: None,
            output: None,
            line: None,
            column: None,
        }
    }

    /// A new warning-severity finding.
    pub fn warning(rule: RuleId, message: impl Into<String>) -> LintFinding {
        LintFinding {
            severity: Severity::Warning,
            ..LintFinding::error(rule, message)
        }
    }

    /// Anchors the finding to a gate.
    pub fn at_gate(mut self, gate: GateId) -> LintFinding {
        self.gate = Some(gate);
        self
    }

    /// Anchors the finding to a primary output index.
    pub fn at_output(mut self, po: usize) -> LintFinding {
        self.output = Some(po);
        self
    }

    /// Anchors the finding to a source position.
    pub fn at_source(mut self, line: usize, column: usize) -> LintFinding {
        self.line = Some(line);
        self.column = Some(column);
        self
    }
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.rule)?;
        if let (Some(line), Some(col)) = (self.line, self.column) {
            write!(f, " {line}:{col}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The outcome of a lint pass: every finding from every rule, in rule
/// registration order then gate order — deterministic for one input.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    findings: Vec<LintFinding>,
}

impl LintReport {
    /// An empty (clean) report.
    pub fn new() -> LintReport {
        LintReport::default()
    }

    /// Adds one finding.
    pub fn push(&mut self, finding: LintFinding) {
        self.findings.push(finding);
    }

    /// Adds every finding of `other`.
    pub fn merge(&mut self, other: LintReport) {
        self.findings.extend(other.findings);
    }

    /// All findings, in emission order.
    pub fn findings(&self) -> &[LintFinding] {
        &self.findings
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &LintFinding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &LintFinding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.warnings().count()
    }

    /// `true` when no error-severity finding was emitted (warnings are
    /// tolerated: dangling cones are normal mid-flow).
    pub fn has_no_errors(&self) -> bool {
        self.error_count() == 0
    }

    /// `true` when no finding of any severity was emitted.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        )
    }
}

/// Runs the standard rule registry over a netlist.
pub fn lint_netlist(netlist: &Netlist) -> LintReport {
    Registry::standard().run(netlist)
}

/// Lints Verilog source text.
///
/// When the source parses, this is [`lint_netlist`] on the result.
/// When it does not, the parse diagnostic itself becomes a finding —
/// classified under the defect-class rule it corresponds to
/// (combinational loops under [`RuleId::Cycle`], undriven nets under
/// [`RuleId::UndrivenNet`], multiple drivers under
/// [`RuleId::MultiDrivenNet`], everything else under
/// [`RuleId::Parse`]) with the parser's line/column attached.
pub fn lint_verilog(src: &str) -> LintReport {
    match verilog::parse(src) {
        Ok(netlist) => lint_netlist(&netlist),
        Err(e) => {
            let mut report = LintReport::new();
            report.push(finding_of_parse_error(&e));
            report
        }
    }
}

/// Opt-in strict parse gate: parses Verilog and rejects it unless the
/// lint pass finds zero **errors** (warnings pass — dangling gates are
/// representable on purpose).
///
/// # Errors
///
/// The report carrying the blocking findings — either the mapped parse
/// diagnostic or the structural errors of the parsed netlist.
pub fn parse_checked(src: &str) -> Result<Netlist, LintReport> {
    match verilog::parse(src) {
        Ok(netlist) => {
            let report = lint_netlist(&netlist);
            if report.has_no_errors() {
                Ok(netlist)
            } else {
                Err(report)
            }
        }
        Err(e) => {
            let mut report = LintReport::new();
            report.push(finding_of_parse_error(&e));
            Err(report)
        }
    }
}

/// Maps a parse diagnostic onto the defect-class rule it evidences.
fn finding_of_parse_error(e: &ParseVerilogError) -> LintFinding {
    match e {
        ParseVerilogError::CombinationalLoop { loc, .. } => {
            LintFinding::error(RuleId::Cycle, e.to_string()).at_source(loc.line, loc.column)
        }
        ParseVerilogError::UnknownNet { loc, .. } => {
            LintFinding::error(RuleId::UndrivenNet, e.to_string()).at_source(loc.line, loc.column)
        }
        ParseVerilogError::MultipleDrivers { loc, .. } => {
            LintFinding::error(RuleId::MultiDrivenNet, e.to_string())
                .at_source(loc.line, loc.column)
        }
        ParseVerilogError::Syntax { loc, .. } | ParseVerilogError::UnknownCell { loc, .. } => {
            LintFinding::error(RuleId::Parse, e.to_string()).at_source(loc.line, loc.column)
        }
        ParseVerilogError::Netlist(NetlistError::FaninOrder { gate, .. }) => {
            LintFinding::error(RuleId::Cycle, e.to_string()).at_gate(*gate)
        }
        ParseVerilogError::UnexpectedEof | ParseVerilogError::Netlist(_) => {
            LintFinding::error(RuleId::Parse, e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::builder::Builder;

    fn clean() -> Netlist {
        let mut b = Builder::new("clean");
        let ins = b.inputs("a", 3);
        let g1 = b.and(ins[0], ins[1]);
        let g2 = b.xor(g1, ins[2]);
        b.output("y", g2);
        b.finish()
    }

    #[test]
    fn clean_netlist_has_no_findings() {
        let report = lint_netlist(&clean());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn parse_failure_becomes_a_located_finding() {
        let report = lint_verilog("module broken (a, y);\n  input a,;\nendmodule\n");
        assert_eq!(report.error_count(), 1);
        let f = &report.findings()[0];
        assert_eq!(f.rule, RuleId::Parse);
        assert!(f.line.is_some() && f.column.is_some(), "{f}");
    }

    #[test]
    fn loop_source_maps_to_the_cycle_rule() {
        let src = "module looped (a, y);\n\
                   input a;\n output y;\n wire n1, n2;\n\
                   AND2X1 u1 ( .Y(n1), .A(a), .B(n2) );\n\
                   INVX1 u2 ( .Y(n2), .A(n1) );\n\
                   assign y = n2;\n\
                   endmodule";
        let report = lint_verilog(src);
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.findings()[0].rule, RuleId::Cycle);
        assert!(report.findings()[0].line.is_some());
    }

    #[test]
    fn parse_checked_accepts_clean_and_rejects_broken() {
        let good = verilog::to_verilog(&clean());
        assert!(parse_checked(&good).is_ok());
        let report = parse_checked(
            "module t (a, y);\n input a;\n output y;\n wire g;\n\
                                    INVX1 u1 ( .Y(y_missing), .A(g) );\n assign y = y_missing;\n\
                                    endmodule",
        )
        .unwrap_err();
        assert!(!report.has_no_errors());
    }

    #[test]
    fn display_formats_severity_rule_and_location() {
        let f = LintFinding::warning(RuleId::DanglingWire, "gate `u1` is unread").at_source(3, 7);
        let text = f.to_string();
        assert!(text.contains("warning[dangling-wire]"), "{text}");
        assert!(text.contains("3:7"), "{text}");
    }
}

//! The rule registry and the standard structural rules.
//!
//! Each [`Rule`] inspects one aspect of a [`Netlist`] and emits every
//! violation it can see (unlike `Netlist::check_invariants`, which
//! stops at the first). [`Registry::standard`] bundles the seven
//! netlist-level rules; callers with extra context plug in
//! [`refcount_consistency`] (incremental-evaluator state) and
//! [`check_lac`] (prospective substitutions) as free functions, since
//! those need inputs a bare netlist does not carry.

use std::collections::HashMap;

use tdals_netlist::{GateId, Netlist, SignalRef};

use crate::{LintFinding, LintReport, RuleId};

/// One structural check over a netlist.
pub trait Rule {
    /// The defect class this rule reports under.
    fn id(&self) -> RuleId;
    /// One-line description (surfaced by tooling).
    fn description(&self) -> &'static str;
    /// Emits every violation into `report`.
    fn check(&self, netlist: &Netlist, report: &mut LintReport);
}

/// An ordered collection of rules; running it yields one merged
/// [`LintReport`] with deterministic finding order (registration order,
/// then gate order within a rule).
#[derive(Default)]
pub struct Registry {
    rules: Vec<Box<dyn Rule>>,
}

impl Registry {
    /// A registry with no rules.
    pub fn empty() -> Registry {
        Registry::default()
    }

    /// The standard seven netlist-level rules.
    pub fn standard() -> Registry {
        let mut r = Registry::empty();
        r.register(CycleRule);
        r.register(UndrivenRule);
        r.register(MultiDrivenRule);
        r.register(PrimaryIoRule);
        r.register(DanglingWireRule);
        r.register(UnreachableRule);
        r.register(FanoutRule);
        r
    }

    /// Appends a rule; it runs after every rule registered before it.
    pub fn register(&mut self, rule: impl Rule + 'static) {
        self.rules.push(Box::new(rule));
    }

    /// `(id, description)` of every registered rule, in run order.
    pub fn rules(&self) -> impl Iterator<Item = (RuleId, &'static str)> + '_ {
        self.rules.iter().map(|r| (r.id(), r.description()))
    }

    /// Runs every rule over `netlist`.
    pub fn run(&self, netlist: &Netlist) -> LintReport {
        let mut report = LintReport::new();
        for rule in &self.rules {
            rule.check(netlist, &mut report);
        }
        report
    }
}

/// `gate <name> (id <n>)` — the standard way findings name a gate.
fn label(netlist: &Netlist, id: GateId) -> String {
    format!("gate `{}` (id {})", netlist.gate(id).name(), id.index())
}

/// Topological id invariant: every fan-in id is strictly below its
/// reader, so a represented netlist is acyclic by construction. Any
/// violation is the combinational-cycle defect class.
struct CycleRule;

impl Rule for CycleRule {
    fn id(&self) -> RuleId {
        RuleId::Cycle
    }

    fn description(&self) -> &'static str {
        "fan-in ids are strictly below their reader (acyclic by construction)"
    }

    fn check(&self, netlist: &Netlist, report: &mut LintReport) {
        for (id, gate) in netlist.iter() {
            for fanin in gate.fanins() {
                let SignalRef::Gate(src) = *fanin else {
                    continue;
                };
                if src.index() < netlist.gate_count() && src >= id {
                    report.push(
                        LintFinding::error(
                            RuleId::Cycle,
                            format!(
                                "{} reads {} — fan-in id not below reader; \
                                 a combinational cycle becomes representable",
                                label(netlist, id),
                                label(netlist, src),
                            ),
                        )
                        .at_gate(id),
                    );
                }
            }
        }
    }
}

/// Undriven nets: fan-in rows that do not match the cell arity, and
/// references (pin or primary output) to gates outside the netlist.
struct UndrivenRule;

impl Rule for UndrivenRule {
    fn id(&self) -> RuleId {
        RuleId::UndrivenNet
    }

    fn description(&self) -> &'static str {
        "every pin and primary output reads a net some gate drives"
    }

    fn check(&self, netlist: &Netlist, report: &mut LintReport) {
        for (id, gate) in netlist.iter() {
            let expected = gate.cell().arity();
            let actual = gate.fanins().len();
            if actual != expected {
                report.push(
                    LintFinding::error(
                        RuleId::UndrivenNet,
                        format!(
                            "{} drives {} with {actual} fan-ins, expected {expected} \
                             — missing pins read nothing",
                            label(netlist, id),
                            gate.cell(),
                        ),
                    )
                    .at_gate(id),
                );
            }
            for fanin in gate.fanins() {
                let SignalRef::Gate(src) = *fanin else {
                    continue;
                };
                if src.index() >= netlist.gate_count() {
                    report.push(
                        LintFinding::error(
                            RuleId::UndrivenNet,
                            format!(
                                "{} reads gate id {} outside the netlist \
                                 ({} gates)",
                                label(netlist, id),
                                src.index(),
                                netlist.gate_count(),
                            ),
                        )
                        .at_gate(id),
                    );
                }
            }
        }
        for (po, (name, driver)) in netlist.outputs().enumerate() {
            let SignalRef::Gate(src) = driver else {
                continue;
            };
            if src.index() >= netlist.gate_count() {
                report.push(
                    LintFinding::error(
                        RuleId::UndrivenNet,
                        format!(
                            "output `{name}` reads gate id {} outside the netlist",
                            src.index()
                        ),
                    )
                    .at_output(po),
                );
            }
        }
    }
}

/// Multi-driven nets. In the fan-in adjacency representation every
/// gate id names exactly one output wire, so the defect surfaces as
/// duplicate gate names: after a Verilog round-trip two same-named
/// instances collapse onto one net with two drivers.
struct MultiDrivenRule;

impl Rule for MultiDrivenRule {
    fn id(&self) -> RuleId {
        RuleId::MultiDrivenNet
    }

    fn description(&self) -> &'static str {
        "gate names are unique (no net gains two drivers on round-trip)"
    }

    fn check(&self, netlist: &Netlist, report: &mut LintReport) {
        let mut first_by_name: HashMap<&str, GateId> = HashMap::new();
        for (id, gate) in netlist.iter() {
            if let Some(&first) = first_by_name.get(gate.name()) {
                report.push(
                    LintFinding::error(
                        RuleId::MultiDrivenNet,
                        format!(
                            "{} duplicates the name of {} — one net, two drivers \
                             after a Verilog round-trip",
                            label(netlist, id),
                            label(netlist, first),
                        ),
                    )
                    .at_gate(id),
                );
            } else {
                first_by_name.insert(gate.name(), id);
            }
        }
    }
}

/// Primary-I/O consistency: the input registry and the `Input` cells
/// must agree, port names must be unique, and a module without ports
/// cannot be simulated or timed.
struct PrimaryIoRule;

impl Rule for PrimaryIoRule {
    fn id(&self) -> RuleId {
        RuleId::PrimaryIo
    }

    fn description(&self) -> &'static str {
        "primary inputs/outputs are registered consistently and uniquely"
    }

    fn check(&self, netlist: &Netlist, report: &mut LintReport) {
        let mut registered = vec![false; netlist.gate_count()];
        for &pi in netlist.inputs() {
            if pi.index() >= netlist.gate_count() {
                report.push(LintFinding::error(
                    RuleId::PrimaryIo,
                    format!(
                        "input registry names gate id {} outside the netlist",
                        pi.index()
                    ),
                ));
                continue;
            }
            registered[pi.index()] = true;
            if !netlist.gate(pi).is_input() {
                report.push(
                    LintFinding::error(
                        RuleId::PrimaryIo,
                        format!(
                            "{} is registered as a primary input but is not an Input cell",
                            label(netlist, pi)
                        ),
                    )
                    .at_gate(pi),
                );
            }
        }
        for (id, gate) in netlist.iter() {
            if gate.is_input() && !registered[id.index()] {
                report.push(
                    LintFinding::error(
                        RuleId::PrimaryIo,
                        format!(
                            "{} is an Input cell missing from the input registry",
                            label(netlist, id)
                        ),
                    )
                    .at_gate(id),
                );
            }
        }
        let mut seen_pi: HashMap<&str, GateId> = HashMap::new();
        for &pi in netlist.inputs() {
            if pi.index() >= netlist.gate_count() {
                continue;
            }
            let name = netlist.gate(pi).name();
            if seen_pi.insert(name, pi).is_some() {
                report.push(
                    LintFinding::error(
                        RuleId::PrimaryIo,
                        format!("duplicate primary input name `{name}`"),
                    )
                    .at_gate(pi),
                );
            }
        }
        let mut seen_po: HashMap<&str, usize> = HashMap::new();
        for (po, (name, _)) in netlist.outputs().enumerate() {
            if seen_po.insert(name, po).is_some() {
                report.push(
                    LintFinding::error(
                        RuleId::PrimaryIo,
                        format!("duplicate primary output name `{name}`"),
                    )
                    .at_output(po),
                );
            }
        }
        if netlist.input_count() == 0 {
            report.push(LintFinding::warning(
                RuleId::PrimaryIo,
                "module has no primary inputs",
            ));
        }
        if netlist.output_count() == 0 {
            report.push(LintFinding::warning(
                RuleId::PrimaryIo,
                "module has no primary outputs",
            ));
        }
    }
}

/// Dangling wires: logic gates whose output nothing reads — the normal
/// residue of substitution, flagged as warnings until post-opt sweeps
/// them.
struct DanglingWireRule;

impl Rule for DanglingWireRule {
    fn id(&self) -> RuleId {
        RuleId::DanglingWire
    }

    fn description(&self) -> &'static str {
        "every logic gate's output is read by some pin or primary output"
    }

    fn check(&self, netlist: &Netlist, report: &mut LintReport) {
        let fanouts = netlist.fanout_counts();
        for (id, gate) in netlist.iter() {
            if !gate.is_input() && fanouts[id.index()] == 0 {
                report.push(
                    LintFinding::warning(
                        RuleId::DanglingWire,
                        format!("{} drives a wire nothing reads", label(netlist, id)),
                    )
                    .at_gate(id),
                );
            }
        }
    }
}

/// Unreachable gates: gates that do have readers but no path to any
/// primary output (an entire dead cone below a dangling root).
struct UnreachableRule;

impl Rule for UnreachableRule {
    fn id(&self) -> RuleId {
        RuleId::UnreachableGate
    }

    fn description(&self) -> &'static str {
        "every gate with readers reaches a primary output"
    }

    fn check(&self, netlist: &Netlist, report: &mut LintReport) {
        let live = netlist.live_mask();
        let fanouts = netlist.fanout_counts();
        for (id, gate) in netlist.iter() {
            if !gate.is_input() && !live[id.index()] && fanouts[id.index()] > 0 {
                report.push(
                    LintFinding::warning(
                        RuleId::UnreachableGate,
                        format!(
                            "{} feeds only gates with no path to a primary output",
                            label(netlist, id)
                        ),
                    )
                    .at_gate(id),
                );
            }
        }
    }
}

/// Fan-out count consistency: `Netlist::fanout_counts` against an
/// independent recount over pins and output drivers. Tautological
/// today (both derive from the same rows), this is the tripwire for
/// the planned arena/copy-on-write refactor where counts become cached
/// state.
struct FanoutRule;

impl Rule for FanoutRule {
    fn id(&self) -> RuleId {
        RuleId::FanoutConsistency
    }

    fn description(&self) -> &'static str {
        "reported fan-out counts match a from-scratch recount"
    }

    fn check(&self, netlist: &Netlist, report: &mut LintReport) {
        let reported = netlist.fanout_counts();
        let mut counted = vec![0usize; netlist.gate_count()];
        for (_, gate) in netlist.iter() {
            for fanin in gate.fanins() {
                if let SignalRef::Gate(src) = fanin {
                    if src.index() < counted.len() {
                        counted[src.index()] += 1;
                    }
                }
            }
        }
        for (_, driver) in netlist.outputs() {
            if let SignalRef::Gate(src) = driver {
                if src.index() < counted.len() {
                    counted[src.index()] += 1;
                }
            }
        }
        for (id, _) in netlist.iter() {
            let (r, c) = (reported[id.index()], counted[id.index()]);
            if r != c {
                report.push(
                    LintFinding::error(
                        RuleId::FanoutConsistency,
                        format!(
                            "{} reports {r} fan-outs but a recount finds {c}",
                            label(netlist, id)
                        ),
                    )
                    .at_gate(id),
                );
            }
        }
    }
}

/// From-scratch liveness reference counts for `netlist`: per gate, the
/// number of live reader pins plus primary-output driver references
/// (0 for dead gates) — exactly the state incremental evaluators carry
/// for O(dead cone) area updates. Returns `(live, live_refs)`.
pub fn refcount_expected(netlist: &Netlist) -> (Vec<bool>, Vec<u32>) {
    let live = netlist.live_mask();
    let mut refs = vec![0u32; netlist.gate_count()];
    for (id, gate) in netlist.iter() {
        if !live[id.index()] {
            continue;
        }
        for fanin in gate.fanins() {
            if let SignalRef::Gate(src) = fanin {
                refs[src.index()] += 1;
            }
        }
    }
    for (_, driver) in netlist.outputs() {
        if let SignalRef::Gate(src) = driver {
            refs[src.index()] += 1;
        }
    }
    (live, refs)
}

/// Checks an incremental evaluator's liveness reference counts against
/// a from-scratch recount ([`refcount_expected`]). Every disagreement
/// — a stale liveness bit or a drifted count — is an error finding
/// under [`RuleId::FanoutConsistency`]: drifting counts silently
/// corrupt every subsequent dead-cone area figure.
pub fn refcount_consistency(netlist: &Netlist, live: &[bool], live_refs: &[u32]) -> LintReport {
    let mut report = LintReport::new();
    let (want_live, want_refs) = refcount_expected(netlist);
    if live.len() != netlist.gate_count() || live_refs.len() != netlist.gate_count() {
        report.push(LintFinding::error(
            RuleId::FanoutConsistency,
            format!(
                "liveness state tracks {} gates but the netlist has {}",
                live.len().min(live_refs.len()),
                netlist.gate_count()
            ),
        ));
        return report;
    }
    for (id, _) in netlist.iter() {
        let i = id.index();
        if live[i] != want_live[i] {
            report.push(
                LintFinding::error(
                    RuleId::FanoutConsistency,
                    format!(
                        "{} liveness is {} but reachability says {}",
                        label(netlist, id),
                        live[i],
                        want_live[i]
                    ),
                )
                .at_gate(id),
            );
        }
        // Dead gates may carry any residual count; only live counts
        // feed the cascade.
        if want_live[i] && live_refs[i] != want_refs[i] {
            report.push(
                LintFinding::error(
                    RuleId::FanoutConsistency,
                    format!(
                        "{} carries {} live references but a recount finds {}",
                        label(netlist, id),
                        live_refs[i],
                        want_refs[i]
                    ),
                )
                .at_gate(id),
            );
        }
    }
    report
}

/// Legality of a prospective LAC `target := switch` **before** it is
/// applied: the target must be a logic gate inside the netlist, and a
/// gate-valued switch must be a distinct, in-range gate with a
/// strictly smaller id (so every rewired reader still satisfies the
/// topological id invariant — the substituted cone stays acyclic).
/// Widths are compatible by construction (every net is one bit), so a
/// same-arity check is not needed; a switch outside the target's
/// transitive fan-in is legal but earns a warning, because the
/// dead-cone area cascade and switch-similarity scoring both assume
/// TFI membership.
pub fn check_lac(netlist: &Netlist, target: GateId, switch: SignalRef) -> LintReport {
    let mut report = LintReport::new();
    if target.index() >= netlist.gate_count() {
        report.push(LintFinding::error(
            RuleId::LacLegality,
            format!(
                "substitution target id {} is outside the netlist",
                target.index()
            ),
        ));
        return report;
    }
    if netlist.gate(target).is_input() {
        report.push(
            LintFinding::error(
                RuleId::LacLegality,
                format!(
                    "{} is a primary input and cannot be substituted",
                    label(netlist, target)
                ),
            )
            .at_gate(target),
        );
    }
    let SignalRef::Gate(sw) = switch else {
        return report; // constants are always legal switches
    };
    if sw.index() >= netlist.gate_count() {
        report.push(
            LintFinding::error(
                RuleId::LacLegality,
                format!("switch id {} is outside the netlist", sw.index()),
            )
            .at_gate(target),
        );
        return report;
    }
    if sw == target {
        report.push(
            LintFinding::error(
                RuleId::LacLegality,
                format!("{} cannot be its own switch", label(netlist, target)),
            )
            .at_gate(target),
        );
        return report;
    }
    if sw > target {
        report.push(
            LintFinding::error(
                RuleId::LacLegality,
                format!(
                    "switch {} has a larger id than target {} — rewiring its readers \
                     would break the topological id invariant",
                    label(netlist, sw),
                    label(netlist, target),
                ),
            )
            .at_gate(target),
        );
        return report;
    }
    if !netlist.tfi_mask(target)[sw.index()] {
        report.push(
            LintFinding::warning(
                RuleId::LacLegality,
                format!(
                    "switch {} is outside the transitive fan-in of target {} — legal, \
                     but similarity scoring and the dead-cone area cascade assume \
                     TFI membership",
                    label(netlist, sw),
                    label(netlist, target),
                ),
            )
            .at_gate(target),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_netlist, Severity};
    use tdals_netlist::builder::Builder;
    use tdals_netlist::cell::{Cell, CellFunc, Drive};

    fn two_cone() -> Netlist {
        // a0─┐
        //    ├ and ── xor ── y        (plus a1 into both)
        // a1─┘        │
        //      inv ───┘ (of a0)
        let mut b = Builder::new("t");
        let ins = b.inputs("a", 2);
        let g1 = b.and(ins[0], ins[1]);
        let g2 = b.not(ins[0]);
        let g3 = b.xor(g1, g2);
        b.output("y", g3);
        b.finish()
    }

    #[test]
    fn substitution_residue_is_warnings_not_errors() {
        let mut n = two_cone();
        let g3 = n.find_gate("u3").expect("xor gate");
        // Kill the xor: its whole cone dangles.
        n.substitute(g3, SignalRef::Const0).expect("legal");
        let report = lint_netlist(&n);
        assert!(report.has_no_errors(), "{report}");
        assert!(report.warning_count() > 0, "{report}");
        assert!(report.warnings().any(|f| f.rule == RuleId::DanglingWire));
        assert!(report.warnings().any(|f| f.rule == RuleId::UnreachableGate));
    }

    #[test]
    fn duplicate_gate_names_are_multi_driven() {
        let mut n = Netlist::new("dup");
        let a = n.add_input("a");
        let c = Cell::new(CellFunc::Inv, Drive::X1);
        let g1 = n.add_gate("u1", c, vec![a.into()]).expect("g1");
        let g2 = n.add_gate("u1", c, vec![g1.into()]).expect("g2");
        n.add_output("y", g2.into());
        let report = lint_netlist(&n);
        assert_eq!(report.error_count(), 1, "{report}");
        assert_eq!(
            report.errors().next().expect("one").rule,
            RuleId::MultiDrivenNet
        );
    }

    #[test]
    fn refcounts_match_reality_or_are_flagged() {
        let n = two_cone();
        let (live, refs) = refcount_expected(&n);
        assert!(refcount_consistency(&n, &live, &refs).is_clean());
        let mut bad = refs.clone();
        bad[0] += 1; // a0 is live (PI), so its count is checked
        let report = refcount_consistency(&n, &live, &bad);
        assert_eq!(report.error_count(), 1, "{report}");
        let mut dead_live = live.clone();
        dead_live[n.gate_count() - 1] = false;
        let report = refcount_consistency(&n, &dead_live, &refs);
        assert!(report.error_count() >= 1, "{report}");
    }

    #[test]
    fn lac_legality_catches_each_illegal_shape() {
        let n = two_cone();
        let and = n.find_gate("u1").expect("and");
        let xor = n.find_gate("u3").expect("xor");
        // Constants are always fine.
        assert!(check_lac(&n, xor, SignalRef::Const0).is_clean());
        // Forward reference: switch id above target.
        assert!(!check_lac(&n, and, xor.into()).has_no_errors());
        // Self-substitution.
        assert!(!check_lac(&n, xor, xor.into()).has_no_errors());
        // A PI target.
        let pi = n.inputs()[0];
        assert!(!check_lac(&n, pi, SignalRef::Const0).has_no_errors());
        // Out-of-range target.
        assert!(!check_lac(&n, GateId::new(999), SignalRef::Const0).has_no_errors());
        // Legal but outside the TFI: warning only. `u1` (the AND) has a
        // smaller id than `u2` (the inverter) but is not in its fan-in cone.
        let inv = n.find_gate("u2").expect("inv");
        let report = check_lac(&n, inv, and.into());
        assert!(report.has_no_errors(), "{report}");
        assert_eq!(report.warning_count(), 1, "{report}");
    }

    #[test]
    fn standard_registry_reports_every_rule_once() {
        let ids: Vec<RuleId> = Registry::standard().rules().map(|(id, _)| id).collect();
        assert_eq!(ids.len(), 7);
        for id in [
            RuleId::Cycle,
            RuleId::UndrivenNet,
            RuleId::MultiDrivenNet,
            RuleId::PrimaryIo,
            RuleId::DanglingWire,
            RuleId::UnreachableGate,
            RuleId::FanoutConsistency,
        ] {
            assert!(ids.contains(&id), "missing {id}");
        }
    }

    #[test]
    fn severity_orders_warning_below_error() {
        assert!(Severity::Warning < Severity::Error);
    }
}

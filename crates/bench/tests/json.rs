//! Golden round-trip and malformed-input coverage for
//! `tdals_bench::json` — the hand-rolled parser/printer every committed
//! benchmark baseline (`BENCH_delta_sim.json`, `BENCH_parallel.json`)
//! and CI gate flows through. A silent parsing regression here would
//! let a gate pass against garbage, so the error cases are pinned as
//! hard as the happy path.

use tdals_bench::json::Json;

/// A miniature benchmark report in the exact shape the gates consume,
/// with the printer's canonical formatting.
const GOLDEN: &str = r#"{
  "schema": 1,
  "bench": "parallel",
  "seed": 57114,
  "circuits": [
    {
      "name": "Sqrt",
      "gates": 14709,
      "speedup": 2.75,
      "exact": true,
      "missing": null
    }
  ],
  "note": "escape \"this\" and\nthat"
}"#;

#[test]
fn golden_document_round_trips_byte_for_byte() {
    let parsed = Json::parse(GOLDEN).expect("golden parses");
    // print(parse(text)) == text: the printer is the canonical form.
    assert_eq!(parsed.to_string(), GOLDEN);
    // parse(print(value)) == value: no information lost either way.
    let again = Json::parse(&parsed.to_string()).expect("reparse");
    assert_eq!(again, parsed);
}

#[test]
fn golden_accessors_reach_every_metric() {
    let parsed = Json::parse(GOLDEN).expect("golden parses");
    assert_eq!(parsed.get("schema").and_then(Json::as_f64), Some(1.0));
    assert_eq!(parsed.get("bench").and_then(Json::as_str), Some("parallel"));
    let circuits = parsed
        .get("circuits")
        .and_then(Json::as_array)
        .expect("circuits array");
    assert_eq!(circuits.len(), 1);
    assert_eq!(
        circuits[0].get("speedup").and_then(Json::as_f64),
        Some(2.75)
    );
    assert_eq!(circuits[0].get("exact"), Some(&Json::Bool(true)));
    assert_eq!(circuits[0].get("missing"), Some(&Json::Null));
    assert_eq!(
        parsed.get("note").and_then(Json::as_str),
        Some("escape \"this\" and\nthat")
    );
}

#[test]
fn truncated_object_is_rejected() {
    for truncated in [
        "{",
        r#"{"schema""#,
        r#"{"schema":"#,
        r#"{"schema": 1"#,
        r#"{"schema": 1,"#,
        r#"{"circuits": [{"name": "Sqrt""#,
    ] {
        let err = Json::parse(truncated).expect_err(truncated);
        assert!(!err.is_empty(), "{truncated}: error names the problem");
    }
}

#[test]
fn duplicate_key_is_rejected() {
    let err = Json::parse(r#"{"speedup": 2.5, "speedup": 9.9}"#).expect_err("duplicate key");
    assert!(err.contains("duplicate key `speedup`"), "{err}");
    // Nested objects get the same treatment...
    let err = Json::parse(r#"{"largest": {"gates": 1, "gates": 2}}"#).expect_err("nested dup");
    assert!(err.contains("duplicate key `gates`"), "{err}");
    // ...but the same key in *different* objects is fine.
    let ok = r#"[{"gates": 1}, {"gates": 2}]"#;
    assert!(Json::parse(ok).is_ok());
}

#[test]
fn non_numeric_metric_is_rejected() {
    // Bad number literals fail at parse time with a located message.
    for bad in [
        r#"{"speedup": 12ab}"#,
        r#"{"speedup": 1.2.3}"#,
        r#"{"speedup": -}"#,
        r#"{"speedup": 1e+}"#,
    ] {
        assert!(Json::parse(bad).is_err(), "{bad} must not parse");
    }
    // A string where the gate expects a number parses as JSON but
    // yields no f64 — the typed accessor is the gate's second line of
    // defense.
    let stringly = Json::parse(r#"{"speedup": "fast"}"#).expect("valid JSON");
    assert_eq!(stringly.get("speedup").and_then(Json::as_f64), None);
}

#[test]
fn the_committed_baselines_still_parse() {
    // The repo's committed benchmark baselines must stay within the
    // grammar this parser accepts (duplicate-key rejection included).
    for path in ["../../BENCH_delta_sim.json", "../../BENCH_parallel.json"] {
        let Ok(text) = std::fs::read_to_string(path) else {
            continue; // tolerated: baseline not generated yet
        };
        let parsed = Json::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert_eq!(
            parsed.get("schema").and_then(Json::as_f64),
            Some(1.0),
            "{path}"
        );
    }
}

#[test]
fn typed_accessors_are_exact_not_lossy() {
    // as_uint: exact non-negative integers only — fractions, negatives,
    // and values past 2^53 (where f64 stops being exact) all refuse,
    // because callers use it to validate schema versions and record
    // indices where "roughly 1" is a bug.
    let doc = Json::parse(
        r#"{"schema": 1, "neg": -1, "frac": 1.5, "big": 9007199254740992,
            "edge": 9007199254740991, "yes": true, "no": false, "text": "1"}"#,
    )
    .expect("valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_uint), Some(1));
    assert_eq!(doc.get("edge").and_then(Json::as_uint), Some((1 << 53) - 1));
    assert_eq!(doc.get("neg").and_then(Json::as_uint), None);
    assert_eq!(doc.get("frac").and_then(Json::as_uint), None);
    assert_eq!(doc.get("big").and_then(Json::as_uint), None);
    assert_eq!(doc.get("text").and_then(Json::as_uint), None);

    // as_bool: booleans only, no truthiness.
    assert_eq!(doc.get("yes").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("no").and_then(Json::as_bool), Some(false));
    assert_eq!(doc.get("schema").and_then(Json::as_bool), None);
    assert_eq!(doc.get("text").and_then(Json::as_bool), None);
}

//! Non-dominated sorting / crowding selection cost — runs once per
//! DCGWO iteration over the candidates group (~2N circuits).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdals_core::pareto::{non_dominated_sort, select, Objectives};

fn random_points(n: usize, seed: u64) -> Vec<Objectives> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Objectives::new(1.0 + rng.gen::<f64>(), 1.0 + rng.gen::<f64>()))
        .collect()
}

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("non_dominated_sort");
    for n in [60usize, 240, 960] {
        let pts = random_points(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| non_dominated_sort(pts))
        });
    }
    group.finish();
}

fn bench_select(c: &mut Criterion) {
    let pts = random_points(240, 7);
    c.bench_function("select_240_to_30", |b| b.iter(|| select(&pts, 30)));
}

criterion_group!(benches, bench_sort, bench_select);
criterion_main!(benches);

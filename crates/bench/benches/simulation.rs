//! Bit-parallel simulation throughput — the inner loop behind every
//! error evaluation in TABLEs II/III.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tdals_circuits::Benchmark;
use tdals_sim::{error_rate, simulate, Patterns};

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    for bench in [Benchmark::C880, Benchmark::Adder16, Benchmark::C6288] {
        let netlist = bench.build();
        let patterns = Patterns::random(netlist.input_count(), 4096, 1);
        group.throughput(Throughput::Elements(
            (netlist.gate_count() * patterns.word_count()) as u64,
        ));
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            &netlist,
            |b, n| b.iter(|| simulate(n, &patterns)),
        );
    }
    group.finish();
}

fn bench_error_metrics(c: &mut Criterion) {
    let netlist = Benchmark::Adder16.build();
    let patterns = Patterns::random(netlist.input_count(), 4096, 2);
    let golden = simulate(&netlist, &patterns);
    let mut approx = netlist.clone();
    let target = approx.output_driver(3).gate().expect("gate-driven PO");
    approx
        .substitute(target, tdals_netlist::SignalRef::Const0)
        .expect("lac");
    let app_sim = simulate(&approx, &patterns);

    c.bench_function("error_rate/adder16", |b| {
        b.iter(|| error_rate(&golden, &app_sim))
    });
    c.bench_function("nmed/adder16", |b| {
        b.iter(|| tdals_sim::nmed(&golden, &app_sim))
    });
}

fn bench_similarity(c: &mut Criterion) {
    let netlist = Benchmark::C880.build();
    let patterns = Patterns::random(netlist.input_count(), 4096, 3);
    let sim = simulate(&netlist, &patterns);
    let a = tdals_netlist::SignalRef::Gate(tdals_netlist::GateId::new(80));
    let b_sig = tdals_netlist::SignalRef::Gate(tdals_netlist::GateId::new(120));
    c.bench_function("similarity/c880", |b| b.iter(|| sim.similarity(a, b_sig)));
}

criterion_group!(
    benches,
    bench_simulate,
    bench_error_metrics,
    bench_similarity
);
criterion_main!(benches);

//! Incremental vs from-scratch STA: the speedup that matters when an
//! optimizer evaluates thousands of single-LAC candidates.

use criterion::{criterion_group, criterion_main, Criterion};
use tdals_circuits::Benchmark;
use tdals_netlist::SignalRef;
use tdals_sta::{analyze, IncrementalSta, TimingConfig};

fn bench_incremental_vs_full(c: &mut Criterion) {
    let cfg = TimingConfig::default();
    let netlist = Benchmark::C6288.build();
    // A representative LAC: substitute one mid-circuit gate.
    let target = netlist.output_driver(8).gate().expect("gate-driven PO");

    let mut group = c.benchmark_group("sta_after_one_lac");
    group.bench_function("full_reanalysis/c6288", |b| {
        b.iter_batched(
            || netlist.clone(),
            |mut n| {
                n.substitute(target, SignalRef::Const0).expect("lac");
                analyze(&n, &cfg)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("incremental_update/c6288", |b| {
        b.iter_batched(
            || (netlist.clone(), IncrementalSta::new(&netlist, cfg)),
            |(mut n, mut inc)| {
                inc.substitute(&mut n, target, SignalRef::Const0)
                    .expect("lac");
                inc.critical_path_delay(&n)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_incremental_vs_full);
criterion_main!(benches);

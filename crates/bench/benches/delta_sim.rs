//! Candidate scoring, full vs incremental: the optimizer's inner loop
//! scores a mutated netlist against the golden circuit. Full scoring
//! re-simulates every gate; incremental scoring (`DeltaSim::preview`)
//! re-evaluates only the substitution's transitive fan-out cone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdals_circuits::Benchmark;
use tdals_core::{random_lac, Lac};
use tdals_sim::{simulate, DeltaSim, ErrorEvaluator, ErrorMetric, Patterns};

const VECTORS: usize = 2048;
const CANDIDATES: usize = 8;

fn bench_candidate_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_scoring");
    for bench in [Benchmark::C880, Benchmark::C6288, Benchmark::Sin] {
        let netlist = bench.build();
        let patterns = Patterns::random(netlist.input_count(), VECTORS, 7);
        let evaluator = ErrorEvaluator::new(&netlist, patterns.clone(), ErrorMetric::ErrorRate);
        let base = DeltaSim::new(netlist.clone(), &patterns);

        let mut rng = StdRng::seed_from_u64(17);
        let mut lacs: Vec<Lac> = Vec::new();
        while lacs.len() < CANDIDATES {
            if let Some(lac) = random_lac(base.netlist(), &base, 64, &mut rng) {
                lacs.push(lac);
            }
        }
        let mutated: Vec<_> = lacs
            .iter()
            .map(|lac| {
                let mut n = netlist.clone();
                lac.apply(&mut n).expect("legal LAC");
                n
            })
            .collect();

        group.bench_with_input(
            BenchmarkId::new("full", bench.name()),
            &mutated,
            |b, mutated| {
                b.iter(|| {
                    mutated
                        .iter()
                        .map(|n| evaluator.error_of_sim(&simulate(n, &patterns)))
                        .sum::<f64>()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("delta", bench.name()), &lacs, |b, lacs| {
            b.iter(|| {
                lacs.iter()
                    .map(|lac| evaluator.error_of_sim(&base.preview(lac.target(), lac.switch())))
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

fn bench_committed_chain(c: &mut Criterion) {
    // A chain of committed LACs, as in population seeding: DeltaSim
    // updates in place vs full re-simulation after every substitution.
    let netlist = Benchmark::C6288.build();
    let patterns = Patterns::random(netlist.input_count(), VECTORS, 7);
    let base = DeltaSim::new(netlist.clone(), &patterns);
    let mut rng = StdRng::seed_from_u64(23);
    let mut lacs: Vec<Lac> = Vec::new();
    let mut probe = base.clone();
    while lacs.len() < CANDIDATES {
        if let Some(lac) = random_lac(probe.netlist(), &probe, 64, &mut rng) {
            probe.substitute(lac.target(), lac.switch()).expect("legal");
            lacs.push(lac);
        }
    }

    let mut group = c.benchmark_group("committed_lac_chain");
    group.bench_function("full/c6288", |b| {
        b.iter(|| {
            let mut n = netlist.clone();
            for lac in &lacs {
                lac.apply(&mut n).expect("legal");
                criterion::black_box(simulate(&n, &patterns));
            }
        })
    });
    group.bench_function("delta/c6288", |b| {
        b.iter(|| {
            let mut d = base.clone();
            for lac in &lacs {
                d.substitute(lac.target(), lac.switch()).expect("legal");
            }
            d
        })
    });
    group.finish();
}

criterion_group!(benches, bench_candidate_scoring, bench_committed_chain);
criterion_main!(benches);

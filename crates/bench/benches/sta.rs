//! Static timing analysis cost — DCGWO runs one STA per candidate, so
//! this bounds the optimizer's per-iteration budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tdals_circuits::Benchmark;
use tdals_sta::{analyze, critical_path, size_for_timing, SizingConfig, TimingConfig};

fn bench_analyze(c: &mut Criterion) {
    let cfg = TimingConfig::default();
    let mut group = c.benchmark_group("sta_analyze");
    for bench in [Benchmark::C880, Benchmark::C6288, Benchmark::C5315] {
        let netlist = bench.build();
        group.throughput(Throughput::Elements(netlist.gate_count() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            &netlist,
            |b, n| b.iter(|| analyze(n, &cfg)),
        );
    }
    group.finish();
}

fn bench_critical_path(c: &mut Criterion) {
    let cfg = TimingConfig::default();
    let netlist = Benchmark::C6288.build();
    let report = analyze(&netlist, &cfg);
    c.bench_function("critical_path/c6288", |b| {
        b.iter(|| critical_path(&netlist, &report))
    });
}

fn bench_sizing(c: &mut Criterion) {
    let cfg = TimingConfig::default();
    let netlist = Benchmark::Adder16.build();
    let budget = netlist.area_live() * 1.3;
    c.bench_function("size_for_timing/adder16", |b| {
        b.iter_batched(
            || netlist.clone(),
            |mut n| size_for_timing(&mut n, &cfg, budget, &SizingConfig::default()),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_analyze, bench_critical_path, bench_sizing);
criterion_main!(benches);

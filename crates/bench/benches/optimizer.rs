//! Scaled-down end-to-end optimizer runs: double- vs single-chase on a
//! small benchmark, plus the post-optimization pass.

use criterion::{criterion_group, criterion_main, Criterion};
use tdals_bench::{context_for, Effort};
use tdals_circuits::Benchmark;
use tdals_core::{optimize, post_optimize, ChaseStrategy, OptimizerConfig, PostOptConfig};

fn small_cfg(chase: ChaseStrategy) -> OptimizerConfig {
    OptimizerConfig::default()
        .with_population(8)
        .with_iterations(4)
        .with_chase(chase)
        .with_seed(11)
}

fn bench_optimize(c: &mut Criterion) {
    let (ctx, _) = context_for(Benchmark::Max16, Effort::Quick);
    let mut group = c.benchmark_group("optimize_max16");
    group.sample_size(10);
    group.bench_function("double_chase", |b| {
        b.iter(|| optimize(&ctx, 0.02, &small_cfg(ChaseStrategy::DoubleChase)))
    });
    group.bench_function("single_chase", |b| {
        b.iter(|| optimize(&ctx, 0.02, &small_cfg(ChaseStrategy::SingleChase)))
    });
    group.finish();
}

fn bench_post_opt(c: &mut Criterion) {
    let (ctx, _) = context_for(Benchmark::Max16, Effort::Quick);
    let result = optimize(&ctx, 0.02, &small_cfg(ChaseStrategy::DoubleChase));
    let area_con = ctx.area_ori();
    c.bench_function("post_optimize/max16", |b| {
        b.iter_batched(
            || result.best.netlist.clone(),
            |mut n| post_optimize(&mut n, ctx.timing(), &PostOptConfig::new(area_con)),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_optimize, bench_post_opt);
criterion_main!(benches);

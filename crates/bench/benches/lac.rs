//! Local-approximate-change machinery: substitution, target-set
//! construction, switch selection, and circuit reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdals_bench::{context_for, Effort};
use tdals_circuits::Benchmark;
use tdals_core::{collect_targets, reproduce, select_switch, LevelWeights};
use tdals_netlist::SignalRef;

fn bench_substitute(c: &mut Criterion) {
    let netlist = Benchmark::C880.build();
    let target = netlist.output_driver(0).gate().expect("gate-driven PO");
    c.bench_function("substitute/c880", |b| {
        b.iter_batched(
            || netlist.clone(),
            |mut n| n.substitute(target, SignalRef::Const0).expect("lac"),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_collect_targets(c: &mut Criterion) {
    let (ctx, _) = context_for(Benchmark::C880, Effort::Quick);
    let netlist = ctx.accurate().clone();
    let report = ctx.analyze(&netlist);
    c.bench_function("collect_targets/c880", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| collect_targets(&netlist, &report, 3, &mut rng))
    });
}

fn bench_select_switch(c: &mut Criterion) {
    let (ctx, _) = context_for(Benchmark::C880, Effort::Quick);
    let netlist = ctx.accurate().clone();
    let sim = ctx.simulate(&netlist);
    let report = ctx.analyze(&netlist);
    let mut rng = StdRng::seed_from_u64(2);
    let targets = collect_targets(&netlist, &report, 3, &mut rng);
    let target = targets[0];
    c.bench_function("select_switch/c880", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| select_switch(&netlist, &sim, target, 48, &mut rng))
    });
}

fn bench_reproduce(c: &mut Criterion) {
    let (ctx, _) = context_for(Benchmark::C880, Effort::Quick);
    let mut na = ctx.accurate().clone();
    let mut nb = ctx.accurate().clone();
    let da = na.output_driver(0).gate().expect("gate");
    let db = nb.output_driver(1).gate().expect("gate");
    na.substitute(da, SignalRef::Const0).expect("lac");
    nb.substitute(db, SignalRef::Const1).expect("lac");
    let ca = ctx.evaluate(na);
    let cb = ctx.evaluate(nb);
    let weights = LevelWeights::paper_defaults(ctx.cpd_ori(), 0.1);
    c.bench_function("reproduce/c880", |b| {
        b.iter(|| reproduce(&ca, &cb, &weights))
    });
}

criterion_group!(
    benches,
    bench_substitute,
    bench_collect_targets,
    bench_select_switch,
    bench_reproduce
);
criterion_main!(benches);

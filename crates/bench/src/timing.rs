//! Shared wall-clock stopwatch for benchmark binaries.
//!
//! Every bench bin used to open-code `let t = Instant::now(); …
//! t.elapsed()`; this is that helper, hoisted once and routed through
//! the audited [`tdals_obs::clock`] facade so the binaries hold no raw
//! `std::time` clock reads of their own (the determinism lint checks
//! exactly that).

use std::time::Duration;

use tdals_obs::clock;

/// A started wall-clock timer.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: clock::Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: clock::now(),
        }
    }

    /// Time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as an `f64` — the unit every bench document
    /// records.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_s();
        let b = sw.elapsed_s();
        assert!(a >= 0.0);
        assert!(b >= a);
        assert_eq!(sw.elapsed().as_secs_f64().is_sign_negative(), false);
    }
}

//! Minimal JSON reading/writing for the machine-readable benchmark
//! pipeline (`BENCH_delta_sim.json` and the CI regression gate).
//!
//! The build environment has no registry access, so instead of serde
//! this module provides a small self-contained [`Json`] value type with
//! a recursive-descent parser and a stable pretty-printer. It covers
//! the full JSON grammar except `\u` escapes beyond the BMP surrogate
//! pairing (unpaired surrogates are rejected).

use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved for stable output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Exact non-negative integer value, if this is a number that is
    /// one: no fractional part, no sign, at most 2^53 (the largest
    /// integer an `f64` — and therefore a JSON number — represents
    /// exactly). Index-like fields (shard maps, job counts) go through
    /// this so `1.5`, `-1`, and precision-lossy giants are rejected
    /// instead of silently truncated.
    pub fn as_uint(&self) -> Option<u64> {
        const MAX_EXACT: f64 = (1u64 << 53) as f64;
        match self {
            Json::Num(n) if n.fract() == 0.0 && (0.0..MAX_EXACT).contains(n) => Some(*n as u64),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the byte offset of the
    /// first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Single-line rendering adaptor for wire framing (no newlines, no
    /// indentation, `,`/`:` separators without padding). Numbers follow
    /// the same rule as [`Display`](fmt::Display), so a value printed
    /// compactly parses back to an equal `Json`.
    pub fn compact(&self) -> Compact<'_> {
        Compact(self)
    }

    /// The compact rendering as an owned `String`.
    pub fn to_compact(&self) -> String {
        self.compact().to_string()
    }
}

/// Borrowed [`Display`](fmt::Display) wrapper returned by
/// [`Json::compact`]: the whole value on one line, suitable for
/// newline-delimited framing.
#[derive(Debug)]
pub struct Compact<'a>(&'a Json);

impl fmt::Display for Compact<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_compact(self.0, f)
    }
}

fn write_compact(value: &Json, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match value {
        Json::Null => f.write_str("null"),
        Json::Bool(b) => write!(f, "{b}"),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                write!(f, "{}", *n as i64)
            } else {
                write!(f, "{n}")
            }
        }
        Json::Str(s) => write_string(s, f),
        Json::Arr(items) => {
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_compact(item, f)?;
            }
            f.write_str("]")
        }
        Json::Obj(members) => {
            f.write_str("{")?;
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_string(k, f)?;
                f.write_str(":")?;
                write_compact(v, f)?;
            }
            f.write_str("}")
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(self, f, 0)
    }
}

fn write_value(value: &Json, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match value {
        Json::Null => f.write_str("null"),
        Json::Bool(b) => write!(f, "{b}"),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                write!(f, "{}", *n as i64)
            } else {
                write!(f, "{n}")
            }
        }
        Json::Str(s) => write_string(s, f),
        Json::Arr(items) => {
            if items.is_empty() {
                return f.write_str("[]");
            }
            writeln!(f, "[")?;
            for (i, item) in items.iter().enumerate() {
                f.write_str(&pad_in)?;
                write_value(item, f, indent + 1)?;
                writeln!(f, "{}", if i + 1 < items.len() { "," } else { "" })?;
            }
            write!(f, "{pad}]")
        }
        Json::Obj(members) => {
            if members.is_empty() {
                return f.write_str("{}");
            }
            writeln!(f, "{{")?;
            for (i, (k, v)) in members.iter().enumerate() {
                f.write_str(&pad_in)?;
                write_string(k, f)?;
                f.write_str(": ")?;
                write_value(v, f, indent + 1)?;
                writeln!(f, "{}", if i + 1 < members.len() { "," } else { "" })?;
            }
            write!(f, "{pad}}}")
        }
    }
}

fn write_string(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key_at = *pos;
                let key = parse_string(bytes, pos)?;
                // RFC 8259 leaves duplicate-key behavior undefined; for
                // a benchmark baseline that feeds a CI gate, a duplicate
                // silently shadowing a metric is exactly the kind of rot
                // the gate exists to catch — reject it outright.
                if members.iter().any(|(k, _)| *k == key) {
                    return Err(format!("duplicate key `{key}` at byte {key_at}"));
                }
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, "\"")?;
    let mut out = String::new();
    loop {
        let start = *pos;
        while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
            *pos += 1;
        }
        out.push_str(
            std::str::from_utf8(&bytes[start..*pos]).map_err(|e| format!("bad utf-8: {e}"))?,
        );
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            expect(bytes, pos, "\\u")?;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("unpaired surrogate".into());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| "invalid codepoint".to_string())?,
                        );
                    }
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                }
            }
            _ => return Err("unterminated string".into()),
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let slice = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    let text = std::str::from_utf8(slice).map_err(|_| "bad \\u escape".to_string())?;
    let value = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
    *pos += 4;
    Ok(value)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Num(1.0)),
            ("name".into(), Json::Str("delta \"sim\"".into())),
            (
                "circuits".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("gates".into(), Json::Num(307.0)),
                    ("speedup".into(), Json::Num(12.75)),
                    ("ok".into(), Json::Bool(true)),
                    ("none".into(), Json::Null),
                ])]),
            ),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, doc);
        assert_eq!(
            back.get("circuits").unwrap().as_array().unwrap()[0]
                .get("speedup")
                .unwrap()
                .as_f64(),
            Some(12.75)
        );
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#"{"s": "a\n\té😀"}"#).expect("parse");
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\n\té😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn numbers_print_stably() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(0.25).to_string(), "0.25");
    }

    #[test]
    fn compact_is_one_line_and_round_trips() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Num(1.0)),
            ("s".into(), Json::Str("a\n\"b\"".into())),
            (
                "xs".into(),
                Json::Arr(vec![Json::Num(0.5), Json::Null, Json::Bool(false)]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let line = doc.to_compact();
        assert_eq!(
            line,
            r#"{"schema":1,"s":"a\n\"b\"","xs":[0.5,null,false],"empty":{}}"#
        );
        assert!(!line.contains('\n'));
        assert_eq!(Json::parse(&line).expect("parse"), doc);
    }
}

//! Regenerates **Fig. 8**: average `Ratio_cpd` of HEDALS, single-chase
//! GWO, and DCGWO as the post-optimization area constraint scales from
//! 0.8× to 1.2× `Area_con`, under the loosest ER (a) and NMED (b)
//! constraints.
//!
//! ```sh
//! TDALS_EFFORT=standard cargo run --release -p tdals-bench --bin fig8_area_sweep
//! ```

use tdals_baselines::{Method, MethodConfig};
use tdals_bench::{context_for, level_we, Effort};
use tdals_circuits::Benchmark;
use tdals_core::api::Flow;

const METHODS: [Method; 3] = [Method::Hedals, Method::SingleChaseGwo, Method::Dcgwo];
const RATIOS: [f64; 5] = [0.8, 0.9, 1.0, 1.1, 1.2];

fn sweep(benches: &[Benchmark], bound: f64, effort: Effort, label: &str) {
    println!("\nFig. 8{label}");
    print!("{:>12}", "area ratio");
    for m in METHODS {
        print!(" {:>10}", m.label());
    }
    println!();
    for &ratio in &RATIOS {
        print!("{:>12.1}", ratio);
        for method in METHODS {
            let mut sum = 0.0;
            for bench in benches {
                let (ctx, metric) = context_for(*bench, effort);
                let cfg = MethodConfig::default()
                    .with_population(effort.population())
                    .with_iterations(effort.iterations())
                    .with_level_we(level_we(metric))
                    .with_seed(0xF18);
                let r = Flow::for_context(&ctx)
                    .error_bound(bound)
                    .area_constraint(ctx.area_ori() * ratio)
                    .optimizer(method.optimizer(&cfg))
                    .run()
                    .expect("valid flow");
                sum += r.ratio_cpd;
            }
            print!(" {:>10.4}", sum / benches.len() as f64);
        }
        println!();
    }
}

fn main() {
    let effort = Effort::from_env();
    let rc = effort.filter(Benchmark::random_control());
    let arith = effort.filter(Benchmark::arithmetic());
    sweep(&rc, 0.05, effort, "a: 5% ER, Ratio_cpd vs area constraint");
    sweep(
        &arith,
        0.0244,
        effort,
        "b: 2.44% NMED, Ratio_cpd vs area constraint",
    );
    println!("\npaper shape: Ours lowest across all area constraints; curves");
    println!("fall monotonically as the area budget grows");
}

//! Regenerates **Fig. 7**: average `Ratio_cpd` of HEDALS, single-chase
//! GWO, and DCGWO under five ER constraints (random/control circuits,
//! a) and five NMED constraints (arithmetic circuits, b).
//!
//! ```sh
//! TDALS_EFFORT=standard cargo run --release -p tdals-bench --bin fig7_error_sweep
//! ```

use tdals_baselines::{Method, MethodConfig};
use tdals_bench::{context_for, level_we, Effort, ER_BOUNDS, NMED_BOUNDS};
use tdals_circuits::Benchmark;
use tdals_core::api::Flow;

const METHODS: [Method; 3] = [Method::Hedals, Method::SingleChaseGwo, Method::Dcgwo];

fn sweep(benches: &[Benchmark], bounds: &[f64], effort: Effort, label: &str) {
    println!("\nFig. 7{label}");
    print!("{:>10}", "bound");
    for m in METHODS {
        print!(" {:>10}", m.label());
    }
    println!();
    for &bound in bounds {
        print!("{:>10.4}", bound);
        for method in METHODS {
            let mut sum = 0.0;
            for bench in benches {
                let (ctx, metric) = context_for(*bench, effort);
                let cfg = MethodConfig::default()
                    .with_population(effort.population())
                    .with_iterations(effort.iterations())
                    .with_level_we(level_we(metric))
                    .with_seed(0xF17);
                let r = Flow::for_context(&ctx)
                    .error_bound(bound)
                    .optimizer(method.optimizer(&cfg))
                    .run()
                    .expect("valid flow");
                sum += r.ratio_cpd;
            }
            print!(" {:>10.4}", sum / benches.len() as f64);
        }
        println!();
    }
}

fn main() {
    let effort = Effort::from_env();
    let rc = effort.filter(Benchmark::random_control());
    let arith = effort.filter(Benchmark::arithmetic());
    sweep(&rc, &ER_BOUNDS, effort, "a: Ratio_cpd vs ER constraint");
    sweep(
        &arith,
        &NMED_BOUNDS,
        effort,
        "b: Ratio_cpd vs NMED constraint",
    );
    println!("\npaper shape: Ours below GWO below HEDALS at every constraint;");
    println!("all curves fall as the constraint loosens");
}

//! Parallel candidate-evaluation benchmark: a strong-scaling curve of
//! the deterministic worker pool (`tdals_core::par`) on the suite's
//! largest circuit (Sqrt, 14.7k gates), emitting the machine-readable
//! `BENCH_parallel.json` consumed by the CI `bench-parallel` gate.
//!
//! The measured widths are the pinned {1, 2, 4} set (the gate's
//! subject) extended by doubling up to the host's available cores —
//! e.g. {1, 2, 4, 8, 16} on a 16-core box — and every width records its
//! parallel efficiency (`speedup / workers`), so the committed JSON
//! carries the whole scaling curve, not one ratio.
//!
//! ```sh
//! # Measure and write the report next to the repo root:
//! cargo run --release -p tdals-bench --bin bench_parallel -- --out BENCH_parallel.json
//!
//! # CI gate: re-measure and hold the fresh numbers to the thresholds.
//! cargo run --release -p tdals-bench --bin bench_parallel -- \
//!     --check BENCH_parallel.json --out fresh.json
//! ```
//!
//! The workload is the optimizer's own per-offspring unit of work —
//! clone the parent netlist, apply a pinned-seed LAC drafted from the
//! critical-path distribution, fully evaluate the mutant (simulation +
//! STA + error metric + live area) — fanned out over the pool exactly
//! as the DCGWO offspring loop fans it. Before anything is timed, the
//! per-candidate scores at every width are asserted bit-identical to
//! the sequential run (the pool's core promise).
//!
//! The gate scales with the measuring host, because a speedup cannot
//! exceed the cores physically present:
//!
//! * ≥ 4 cores (the CI runners): scoring throughput at 4 workers must
//!   be ≥ 2× the sequential throughput;
//! * 2–3 cores: ≥ 1.2× — some parallelism must materialize;
//! * 1 core (pinned containers, like the machine this baseline was
//!   first recorded on): 4 time-sliced workers must cost ≤ 1.35× the
//!   sequential run — the pool's overhead stays bounded even with no
//!   parallelism to harvest.
//!
//! Either way the fresh report records `host_parallelism`, so a reader
//! always knows which regime produced the committed numbers.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tdals_bench::json::Json;
use tdals_bench::timing::Stopwatch;
use tdals_bench::Effort;
use tdals_circuits::Benchmark;
use tdals_core::{par, propose_lac_with, Candidate, Dcgwo, EvalContext, Flow, Lac, SearchConfig};
use tdals_obs::metrics::set_counters_enabled;
use tdals_sim::{ErrorMetric, Patterns, SimdWidth};
use tdals_sta::TimingConfig;

/// Pinned defaults: the CI gate and the committed baseline must see the
/// same workload.
const DEFAULT_SEED: u64 = 0x9A7A11;
const DEFAULT_CANDIDATES: usize = 48;
const DEFAULT_REPS: usize = 5;

/// Worker widths measured, sequential first: the pinned {1, 2, 4} the
/// gate relies on, extended by doubling up to the host's cores (cores
/// itself included), so wider runners record their full strong-scaling
/// curve.
fn widths() -> Vec<usize> {
    let cores = par::available_threads();
    let mut widths = vec![1, 2, 4];
    let mut w = 8;
    while w < cores {
        widths.push(w);
        w *= 2;
    }
    if cores > 4 {
        widths.push(cores);
    }
    widths.dedup();
    widths
}

/// Required speedup at 4 workers on hosts with at least 4 cores.
const REQUIRED_SPEEDUP_AT_4: f64 = 2.0;
/// Required speedup at 4 workers on 2-3 core hosts.
const REQUIRED_SPEEDUP_NARROW: f64 = 1.2;
/// Allowed cost inflation of 4 time-sliced workers on a 1-core host.
const MAX_OVERHEAD_SINGLE_CORE: f64 = 1.35;

/// The gate circuit: the suite's largest netlist.
const CIRCUIT: Benchmark = Benchmark::Sqrt;

/// Circuit for the observability-overhead probe: small enough that the
/// counter/histogram writes are a *measurable* fraction of the work —
/// on Sqrt they would vanish entirely into the evaluation cost and the
/// gate would test nothing.
const OBS_CIRCUIT: Benchmark = Benchmark::Int2float;

/// Allowed slowdown of the instrumented flow (counters armed, tracing
/// off — the production configuration) over the same flow with the
/// registry disarmed.
const MAX_OBS_OVERHEAD_PCT: f64 = 3.0;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = flag(&args, "--seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(DEFAULT_SEED);
    let candidates: usize = flag(&args, "--candidates")
        .map(|s| s.parse().expect("--candidates takes an integer"))
        .unwrap_or(DEFAULT_CANDIDATES);
    let reps: usize = flag(&args, "--reps")
        .map(|s| s.parse().expect("--reps takes an integer"))
        .unwrap_or(DEFAULT_REPS);
    let out = flag(&args, "--out");
    let check = flag(&args, "--check");
    let effort = Effort::from_env();

    let report = measure(effort, seed, candidates, reps);
    let text = format!("{report}\n");
    match &out {
        Some(path) => {
            std::fs::write(path, &text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }

    if let Some(baseline_path) = check {
        let baseline_text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading {baseline_path}: {e}"));
        let baseline =
            Json::parse(&baseline_text).unwrap_or_else(|e| panic!("parsing {baseline_path}: {e}"));
        let failures = gate(&report, &baseline);
        if failures.is_empty() {
            eprintln!("bench gate: OK (parallel evaluation holds its throughput contract)");
        } else {
            for f in &failures {
                eprintln!("bench gate FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}

/// One timed run of the observability probe flow: a small pinned DCGWO
/// session on [`OBS_CIRCUIT`]. Deterministic, so the armed and
/// disarmed runs execute the exact same work — the only difference is
/// whether the registry's atomics absorb the writes.
fn obs_probe_s(seed: u64) -> f64 {
    let netlist = OBS_CIRCUIT.build();
    let t = Stopwatch::start();
    let outcome = Flow::for_netlist(&netlist)
        .metric(ErrorMetric::ErrorRate)
        .error_bound(0.05)
        .vectors(4096)
        .pattern_seed(seed)
        .optimizer(Dcgwo::paper().quick(12, 20))
        .run()
        .expect("obs probe flow");
    let s = t.elapsed_s();
    std::hint::black_box(outcome);
    s
}

/// Measures the cost of the always-on counters: best-of-`reps` timing
/// of the probe flow with the registry disarmed vs armed (tracing off
/// in both — the production configuration). Restores the armed state
/// before returning.
fn measure_obs(seed: u64, reps: usize) -> Json {
    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    let mut uninstrumented = f64::INFINITY;
    let mut instrumented = f64::INFINITY;
    // Warm-up run so neither arm pays first-touch costs.
    obs_probe_s(seed);
    for _ in 0..reps {
        // Alternate arms within each rep so drift in host load hits
        // both measurements, not just the second one.
        set_counters_enabled(false);
        uninstrumented = uninstrumented.min(obs_probe_s(seed));
        set_counters_enabled(true);
        instrumented = instrumented.min(obs_probe_s(seed));
    }
    let overhead_pct = (instrumented - uninstrumented) / uninstrumented * 100.0;
    eprintln!(
        "{:<6} obs overhead: {:.4}s disarmed, {:.4}s armed ({:+.2}%)",
        OBS_CIRCUIT.name(),
        uninstrumented,
        instrumented,
        overhead_pct
    );
    Json::Obj(vec![
        ("circuit".into(), Json::Str(OBS_CIRCUIT.name().into())),
        (
            "uninstrumented_s".into(),
            Json::Num((uninstrumented * 1e4).round() / 1e4),
        ),
        (
            "instrumented_s".into(),
            Json::Num((instrumented * 1e4).round() / 1e4),
        ),
        ("overhead_pct".into(), Json::Num(round2(overhead_pct))),
    ])
}

/// A comparable digest of one candidate's evaluation; every field must
/// be bit-identical at every pool width before anything is timed.
fn digest(cand: &Candidate) -> (u64, u32, u64, u64) {
    (
        cand.error.to_bits(),
        cand.depth,
        cand.area.to_bits(),
        cand.fitness.to_bits(),
    )
}

fn measure(effort: Effort, seed: u64, candidates: usize, reps: usize) -> Json {
    let netlist = CIRCUIT.build();
    let vectors = effort.vectors(netlist.logic_gate_count());
    let patterns = Patterns::random(netlist.input_count(), vectors, seed);
    let ctx = EvalContext::new(
        &netlist,
        patterns,
        ErrorMetric::Nmed,
        TimingConfig::default(),
        0.8,
    );
    let base = ctx.delta_eval(netlist.clone());
    let timing_report = base.report();

    // Draft the candidate set once from the optimizer's own hot-path
    // distribution; every width evaluates the same LACs.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
    let cfg = SearchConfig::default();
    let mut lacs: Vec<Lac> = Vec::with_capacity(candidates);
    let mut attempts = 0usize;
    while lacs.len() < candidates {
        attempts += 1;
        assert!(
            attempts <= candidates * 20,
            "{}: drafted only {} of {candidates} candidate LACs after {attempts} attempts",
            CIRCUIT.name(),
            lacs.len(),
        );
        if let Some(lac) =
            propose_lac_with(base.netlist(), &timing_report, base.sim(), &cfg, &mut rng)
        {
            lacs.push(lac);
        }
    }

    // The offspring-pool unit of work: materialize and fully evaluate
    // one candidate. Each worker owns its mutant clone.
    let eval_one = |lac: Lac| {
        let mut mutant = netlist.clone();
        lac.apply(&mut mutant).expect("legal LAC");
        ctx.evaluate(mutant)
    };

    let widths = widths();

    // Correctness first: every width must reproduce the sequential
    // scores bit-for-bit before being timed.
    let sequential: Vec<_> = par::par_map(1, lacs.clone(), eval_one)
        .iter()
        .map(digest)
        .collect();
    for &width in &widths[1..] {
        let parallel: Vec<_> = par::par_map(width, lacs.clone(), eval_one)
            .iter()
            .map(digest)
            .collect();
        assert!(
            parallel == sequential,
            "{}: {width}-worker scores diverged from sequential",
            CIRCUIT.name(),
        );
    }

    // Best-of-reps timing, whole candidate set per rep.
    let mut us_per_cand = vec![f64::INFINITY; widths.len()];
    for _ in 0..reps {
        for (slot, &width) in us_per_cand.iter_mut().zip(&widths) {
            let t = Stopwatch::start();
            std::hint::black_box(par::par_map(width, lacs.clone(), eval_one));
            *slot = slot.min(t.elapsed_s() * 1e6 / candidates as f64);
        }
    }
    for (&width, &us) in widths.iter().zip(&us_per_cand) {
        let speedup = us_per_cand[0] / us;
        eprintln!(
            "{:<6} {:>6} gates  {width:>2} worker(s)  {:>9.1} us/cand  speedup {:>5.2}x  efficiency {:>4.2}",
            CIRCUIT.name(),
            netlist.logic_gate_count(),
            us,
            speedup,
            speedup / width as f64
        );
    }

    let at_4 = widths
        .iter()
        .position(|&w| w == 4)
        .expect("the pinned width set always contains 4");
    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    Json::Obj(vec![
        ("schema".into(), Json::Num(1.0)),
        ("bench".into(), Json::Str("parallel".into())),
        ("seed".into(), Json::Num(seed as f64)),
        ("candidates".into(), Json::Num(candidates as f64)),
        ("reps".into(), Json::Num(reps as f64)),
        (
            "simd_width".into(),
            Json::Num(SimdWidth::auto().lanes() as f64),
        ),
        ("effort".into(), Json::Str(format!("{effort:?}"))),
        (
            "host_parallelism".into(),
            Json::Num(par::available_threads() as f64),
        ),
        (
            "circuit".into(),
            Json::Obj(vec![
                ("name".into(), Json::Str(CIRCUIT.name().into())),
                ("gates".into(), Json::Num(netlist.logic_gate_count() as f64)),
                ("vectors".into(), Json::Num(vectors as f64)),
            ]),
        ),
        (
            "widths".into(),
            Json::Arr(
                widths
                    .iter()
                    .zip(&us_per_cand)
                    .map(|(&w, &us)| {
                        let speedup = us_per_cand[0] / us;
                        Json::Obj(vec![
                            ("workers".into(), Json::Num(w as f64)),
                            ("us_per_cand".into(), Json::Num(round2(us))),
                            ("speedup".into(), Json::Num(round2(speedup))),
                            ("efficiency".into(), Json::Num(round2(speedup / w as f64))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "speedup_at_4".into(),
            Json::Num(round2(us_per_cand[0] / us_per_cand[at_4])),
        ),
        ("obs".into(), measure_obs(seed, reps)),
    ])
}

/// The CI gate. The committed baseline is schema-checked (so the
/// committed file cannot rot), and the **fresh** measurement is held to
/// the host-scaled throughput thresholds — speedups are a property of
/// the measuring machine, so cross-host baseline deltas would gate on
/// hardware, not code.
fn gate(fresh: &Json, baseline: &Json) -> Vec<String> {
    let mut failures = Vec::new();

    // 1. Baseline sanity: same schema, same benchmark, metric present.
    for (doc, who) in [(baseline, "baseline"), (fresh, "fresh report")] {
        if doc.get("schema").and_then(Json::as_f64) != Some(1.0) {
            failures.push(format!("{who}: missing or unexpected schema"));
        }
        if doc.get("bench").and_then(Json::as_str) != Some("parallel") {
            failures.push(format!("{who}: not a parallel benchmark report"));
        }
        if doc.get("speedup_at_4").and_then(Json::as_f64).is_none() {
            failures.push(format!("{who}: missing speedup_at_4"));
        }
        // The strong-scaling curve must be present and complete —
        // in the committed baseline too, so it cannot rot.
        match doc.get("widths").and_then(Json::as_array) {
            None => failures.push(format!("{who}: missing widths array")),
            Some(entries) => {
                for entry in entries {
                    if entry.get("efficiency").and_then(Json::as_f64).is_none() {
                        failures.push(format!("{who}: width entry missing efficiency"));
                    }
                }
            }
        }
        if doc
            .get("obs")
            .and_then(|o| o.get("overhead_pct"))
            .and_then(Json::as_f64)
            .is_none()
        {
            failures.push(format!("{who}: missing obs.overhead_pct"));
        }
    }
    if !failures.is_empty() {
        return failures;
    }

    let cores = fresh
        .get("host_parallelism")
        .and_then(Json::as_f64)
        .unwrap_or(1.0) as usize;
    let speedup = fresh
        .get("speedup_at_4")
        .and_then(Json::as_f64)
        .expect("checked above");

    if cores >= 4 {
        if speedup < REQUIRED_SPEEDUP_AT_4 {
            failures.push(format!(
                "speedup at 4 workers is {speedup:.2}x on a {cores}-core host \
                 (required: {REQUIRED_SPEEDUP_AT_4:.1}x)"
            ));
        }
    } else if cores >= 2 {
        if speedup < REQUIRED_SPEEDUP_NARROW {
            failures.push(format!(
                "speedup at 4 workers is {speedup:.2}x on a {cores}-core host \
                 (required: {REQUIRED_SPEEDUP_NARROW:.1}x)"
            ));
        }
        eprintln!(
            "bench gate: {cores}-core host — full {REQUIRED_SPEEDUP_AT_4:.1}x gate needs 4 cores, \
             applying the narrow-host {REQUIRED_SPEEDUP_NARROW:.1}x threshold"
        );
    } else {
        // One core: no parallelism exists to harvest; hold the pool to
        // its overhead bound instead.
        let overhead = 1.0 / speedup.max(1e-9);
        if overhead > MAX_OVERHEAD_SINGLE_CORE {
            failures.push(format!(
                "4 time-sliced workers cost {overhead:.2}x the sequential run on a 1-core host \
                 (allowed: {MAX_OVERHEAD_SINGLE_CORE:.2}x)"
            ));
        }
        eprintln!(
            "bench gate: single-core host — speedup gate needs cores, \
             applying the {MAX_OVERHEAD_SINGLE_CORE:.2}x overhead bound instead"
        );
    }

    // Observability must stay invisible in the production shape
    // (counters armed, tracing off). The *fresh* measurement gates —
    // overhead is a property of the measuring host, like speedup.
    let obs_overhead = fresh
        .get("obs")
        .and_then(|o| o.get("overhead_pct"))
        .and_then(Json::as_f64)
        .expect("checked above");
    if obs_overhead > MAX_OBS_OVERHEAD_PCT {
        failures.push(format!(
            "instrumented flow is {obs_overhead:.2}% slower than with the metric registry \
             disarmed (allowed: {MAX_OBS_OVERHEAD_PCT:.1}%)"
        ));
    }
    failures
}

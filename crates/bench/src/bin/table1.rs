//! Regenerates **TABLE I**: benchmark statistics — gate count, PI/PO,
//! accurate critical path delay (`CPD_ori`, ps) and area (`Area_ori`,
//! µm²).
//!
//! ```sh
//! cargo run --release -p tdals-bench --bin table1
//! ```

use tdals_circuits::{CircuitClass, ALL_BENCHMARKS};
use tdals_sta::{analyze, TimingConfig};

fn main() {
    let cfg = TimingConfig::default();
    println!("TABLE I — benchmark statistics (regenerated substrate)");
    println!(
        "{:<12} {:<16} {:>7} {:>9} {:>12} {:>12}  description",
        "type", "circuit", "#gate", "#PI/PO", "CPD_ori ps", "Area µm²"
    );
    for bench in ALL_BENCHMARKS {
        let netlist = bench.build();
        let report = analyze(&netlist, &cfg);
        let class = match bench.class() {
            CircuitClass::RandomControl => "rand/ctrl",
            CircuitClass::Arithmetic => "arith",
        };
        println!(
            "{:<12} {:<16} {:>7} {:>4}/{:<4} {:>12.2} {:>12.2}  {}",
            class,
            bench.name(),
            netlist.logic_gate_count(),
            netlist.input_count(),
            netlist.output_count(),
            report.critical_path_delay(),
            netlist.area_live(),
            bench.description()
        );
    }
}

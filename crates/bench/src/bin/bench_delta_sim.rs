//! Candidate-scoring benchmark: full re-simulation vs incremental cone
//! re-simulation (`DeltaSim`), emitting the machine-readable
//! `BENCH_delta_sim.json` consumed by the CI `bench-quick` gate.
//!
//! ```sh
//! # Measure and write the report next to the repo root:
//! cargo run --release -p tdals-bench --bin bench_delta_sim -- --out BENCH_delta_sim.json
//!
//! # CI gate: re-measure and compare against the committed baseline.
//! cargo run --release -p tdals-bench --bin bench_delta_sim -- \
//!     --check BENCH_delta_sim.json --out fresh.json
//! ```
//!
//! For every suite circuit the harness drafts a pinned-seed set of
//! candidate LACs from the optimizer's own distribution (critical-path
//! targets, similarity-selected switches) and ranks each candidate
//! twice:
//!
//! * **full** — the pre-incremental pipeline: clone the parent netlist,
//!   apply the LAC, full simulation + full STA + error metric + live
//!   area (`EvalContext::evaluate`);
//! * **delta** — the incremental pipeline: `EvalContext::score_lac`,
//!   which re-simulates and re-times only the substitution's affected
//!   cone and updates area through the dead-cone cascade, without
//!   materializing the mutant.
//!
//! Error terms are asserted bit-identical (timing/area to floating
//! tolerance) before anything is timed. The regression check compares
//! the **normalized** scoring cost (incremental time relative to the
//! same run's full-pipeline time), so the gate is stable across runner
//! hardware; it fails when the normalized cost regresses by more than
//! 30% or the largest circuit's speedup drops below 5×.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tdals_bench::json::Json;
use tdals_bench::timing::Stopwatch;
use tdals_bench::Effort;
use tdals_circuits::{Benchmark, CircuitClass};
use tdals_core::{propose_lac_with, EvalContext, Lac, SearchConfig};
use tdals_sim::{simulate_with_width, ErrorMetric, Patterns, SimdWidth, ALL_WIDTHS};
use tdals_sta::TimingConfig;

/// Pinned defaults: the CI gate and the committed baseline must see the
/// same workload.
const DEFAULT_SEED: u64 = 0xDE17A;
const DEFAULT_CANDIDATES: usize = 32;
const DEFAULT_REPS: usize = 5;

/// Regression tolerance of the CI gate (fractional).
const REGRESSION_TOLERANCE: f64 = 0.30;
/// Required full/incremental speedup on the largest suite circuit.
const REQUIRED_SPEEDUP_LARGEST: f64 = 5.0;
/// Required W8-vs-W1 simulation speedup on the largest circuit when the
/// build carries a ≥256-bit vector unit (the PR 4-style host-aware
/// rule: strict where the hardware regime supports the claim).
const REQUIRED_SIMD_SPEEDUP: f64 = 2.0;
/// On narrow builds (baseline x86-64 is SSE2-only; NEON is 128-bit)
/// the wide kernels must still not cost more than this slowdown —
/// blocking is overhead-free restructuring, not a trade-off.
const MAX_SIMD_OVERHEAD_NARROW: f64 = 1.35;

/// `true` when the compiler was allowed to use 256-bit-or-wider vector
/// instructions (`-C target-cpu=native` on an AVX2/AVX-512 host). The
/// kernels are plain lane loops, so this — not runtime CPUID — is what
/// decides whether wide blocks can beat the scalar reference by the
/// strict margin.
fn vector_capable() -> bool {
    cfg!(any(target_feature = "avx2", target_feature = "avx512f"))
}

/// Human-readable name of the widest vector unit compiled in.
fn vector_unit() -> &'static str {
    if cfg!(target_feature = "avx512f") {
        "avx512"
    } else if cfg!(target_feature = "avx2") {
        "avx2"
    } else if cfg!(target_feature = "sse2") {
        "sse2"
    } else if cfg!(target_arch = "aarch64") {
        "neon"
    } else {
        "none"
    }
}

/// Size-spread suite: small control circuits through the largest
/// arithmetic netlist (Sqrt, 14.7k gates).
const SUITE: [Benchmark; 7] = [
    Benchmark::C880,
    Benchmark::C1908,
    Benchmark::C6288,
    Benchmark::C5315,
    Benchmark::Adder,
    Benchmark::Sin,
    Benchmark::Sqrt,
];

struct CircuitReport {
    name: String,
    gates: usize,
    vectors: usize,
    candidates: usize,
    full_us_per_cand: f64,
    delta_us_per_cand: f64,
    speedup: f64,
    mean_cone_gates: f64,
}

/// One point of the SIMD width sweep on the largest circuit.
struct SimdLane {
    width: usize,
    sim_us_per_pass: f64,
    delta_us_per_cand: f64,
}

struct SimdReport {
    circuit: String,
    gates: usize,
    vectors: usize,
    lanes: Vec<SimdLane>,
    sim_speedup_w8: f64,
    delta_speedup_w8: f64,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = flag(&args, "--seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(DEFAULT_SEED);
    let candidates: usize = flag(&args, "--candidates")
        .map(|s| s.parse().expect("--candidates takes an integer"))
        .unwrap_or(DEFAULT_CANDIDATES);
    let reps: usize = flag(&args, "--reps")
        .map(|s| s.parse().expect("--reps takes an integer"))
        .unwrap_or(DEFAULT_REPS);
    let out = flag(&args, "--out");
    let check = flag(&args, "--check");
    let effort = Effort::from_env();

    let mut reports = Vec::new();
    for bench in SUITE {
        reports.push(measure(bench, effort, seed, candidates, reps));
    }
    let largest = *SUITE
        .iter()
        .max_by_key(|b| b.build().logic_gate_count())
        .expect("non-empty suite");
    let simd = measure_simd(largest, effort, seed, candidates, reps);

    let report = to_json(&reports, &simd, seed, candidates, effort);
    let text = format!("{report}\n");
    match &out {
        Some(path) => {
            std::fs::write(path, &text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }

    if let Some(baseline_path) = check {
        let baseline_text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading {baseline_path}: {e}"));
        let baseline =
            Json::parse(&baseline_text).unwrap_or_else(|e| panic!("parsing {baseline_path}: {e}"));
        let failures = gate(&report, &baseline);
        if failures.is_empty() {
            eprintln!("bench gate: OK (no candidate-scoring regression vs {baseline_path})");
        } else {
            for f in &failures {
                eprintln!("bench gate FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}

/// Scores `candidates` pinned-seed LACs on one circuit through both
/// pipelines, asserting agreement, and times each.
fn measure(
    bench: Benchmark,
    effort: Effort,
    seed: u64,
    candidates: usize,
    reps: usize,
) -> CircuitReport {
    let netlist = bench.build();
    let metric = match bench.class() {
        CircuitClass::RandomControl => ErrorMetric::ErrorRate,
        CircuitClass::Arithmetic => ErrorMetric::Nmed,
    };
    let vectors = effort.vectors(netlist.logic_gate_count());
    let patterns = Patterns::random(netlist.input_count(), vectors, seed);
    let ctx = EvalContext::new(&netlist, patterns, metric, TimingConfig::default(), 0.8);
    let base = ctx.delta_eval(netlist.clone());
    let report = base.report();

    // Draft the candidate set once from the optimizer's own hot-path
    // distribution; both pipelines rank the same LACs.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
    let cfg = SearchConfig::default();
    let mut lacs: Vec<Lac> = Vec::with_capacity(candidates);
    let mut attempts = 0usize;
    while lacs.len() < candidates {
        attempts += 1;
        assert!(
            attempts <= candidates * 20,
            "{}: drafted only {} of {candidates} candidate LACs after {attempts} attempts \
             (degenerate circuit or stimulus?)",
            bench.name(),
            lacs.len(),
        );
        if let Some(lac) = propose_lac_with(base.netlist(), &report, base.sim(), &cfg, &mut rng) {
            lacs.push(lac);
        }
    }

    // Correctness first: both pipelines must agree before being timed.
    let mut cone_total = 0usize;
    for lac in &lacs {
        let mut mutant = netlist.clone();
        lac.apply(&mut mutant).expect("legal LAC");
        let full = ctx.evaluate(mutant);
        let view = base.sim().preview(lac.target(), lac.switch());
        cone_total += view.stats().reevaluated();
        let delta = ctx.score_lac(&base, *lac);
        assert!(
            full.error == delta.error,
            "{}: delta error {} diverged from full error {} on {:?}",
            bench.name(),
            delta.error,
            full.error,
            lac
        );
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
        assert!(
            full.depth == delta.depth && close(full.cpd, delta.cpd) && close(full.area, delta.area),
            "{}: delta timing/area diverged on {:?}: depth {} vs {}, cpd {} vs {}, area {} vs {}",
            bench.name(),
            lac,
            delta.depth,
            full.depth,
            delta.cpd,
            full.cpd,
            delta.area,
            full.area,
        );
    }

    // Best-of-reps timing, whole candidate set per rep.
    let mut full_best = f64::INFINITY;
    let mut delta_best = f64::INFINITY;
    for _ in 0..reps {
        let t = Stopwatch::start();
        for lac in &lacs {
            let mut mutant = netlist.clone();
            lac.apply(&mut mutant).expect("legal LAC");
            std::hint::black_box(ctx.evaluate(mutant));
        }
        full_best = full_best.min(t.elapsed_s());

        let t = Stopwatch::start();
        for lac in &lacs {
            std::hint::black_box(ctx.score_lac(&base, *lac));
        }
        delta_best = delta_best.min(t.elapsed_s());
    }

    let full_us = full_best * 1e6 / candidates as f64;
    let delta_us = delta_best * 1e6 / candidates as f64;
    let report = CircuitReport {
        name: bench.name().to_string(),
        gates: netlist.logic_gate_count(),
        vectors,
        candidates,
        full_us_per_cand: full_us,
        delta_us_per_cand: delta_us,
        speedup: full_us / delta_us,
        mean_cone_gates: cone_total as f64 / candidates as f64,
    };
    eprintln!(
        "{:<10} {:>6} gates  full {:>10.1} us/cand  delta {:>8.1} us/cand  speedup {:>6.1}x  cone {:>7.1}",
        report.name, report.gates, full_us, delta_us, report.speedup, report.mean_cone_gates
    );
    report
}

/// Sweeps the SIMD block width on the largest suite circuit: one full
/// simulation pass and the incremental scoring path are timed at every
/// width, after asserting that all widths score every candidate to the
/// same error bits (width is a throughput knob, never a results knob).
fn measure_simd(
    bench: Benchmark,
    effort: Effort,
    seed: u64,
    candidates: usize,
    reps: usize,
) -> SimdReport {
    let netlist = bench.build();
    let metric = match bench.class() {
        CircuitClass::RandomControl => ErrorMetric::ErrorRate,
        CircuitClass::Arithmetic => ErrorMetric::Nmed,
    };
    let vectors = effort.vectors(netlist.logic_gate_count());
    let patterns = Patterns::random(netlist.input_count(), vectors, seed);

    // Draft one candidate set at W=1; simulation values are
    // width-invariant, so every width ranks the same LACs.
    let ctx1 = EvalContext::new(
        &netlist,
        patterns.clone(),
        metric,
        TimingConfig::default(),
        0.8,
    )
    .with_simd_width(SimdWidth::W1);
    let base1 = ctx1.delta_eval(netlist.clone());
    let report = base1.report();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
    let cfg = SearchConfig::default();
    let mut lacs: Vec<Lac> = Vec::with_capacity(candidates);
    let mut attempts = 0usize;
    while lacs.len() < candidates {
        attempts += 1;
        assert!(
            attempts <= candidates * 20,
            "{}: drafted only {} of {candidates} candidate LACs after {attempts} attempts",
            bench.name(),
            lacs.len(),
        );
        if let Some(lac) = propose_lac_with(base1.netlist(), &report, base1.sim(), &cfg, &mut rng) {
            lacs.push(lac);
        }
    }
    let reference: Vec<f64> = lacs
        .iter()
        .map(|l| ctx1.score_lac(&base1, *l).error)
        .collect();

    let mut lanes: Vec<SimdLane> = Vec::new();
    for width in ALL_WIDTHS {
        let ctx = EvalContext::new(
            &netlist,
            patterns.clone(),
            metric,
            TimingConfig::default(),
            0.8,
        )
        .with_simd_width(width);
        let base = ctx.delta_eval(netlist.clone());
        for (lac, want) in lacs.iter().zip(&reference) {
            let got = ctx.score_lac(&base, *lac).error;
            assert!(
                got == *want,
                "{}: width {width} scored {:?} to error {got}, W1 scored {want}",
                bench.name(),
                lac,
            );
        }

        let mut sim_best = f64::INFINITY;
        let mut delta_best = f64::INFINITY;
        for _ in 0..reps {
            let t = Stopwatch::start();
            std::hint::black_box(simulate_with_width(&netlist, &patterns, width));
            sim_best = sim_best.min(t.elapsed_s());

            let t = Stopwatch::start();
            for lac in &lacs {
                std::hint::black_box(ctx.score_lac(&base, *lac));
            }
            delta_best = delta_best.min(t.elapsed_s());
        }
        let lane = SimdLane {
            width: width.lanes(),
            sim_us_per_pass: sim_best * 1e6,
            delta_us_per_cand: delta_best * 1e6 / candidates as f64,
        };
        eprintln!(
            "{:<10} W{:<2} sim {:>10.1} us/pass  delta {:>8.1} us/cand",
            bench.name(),
            lane.width,
            lane.sim_us_per_pass,
            lane.delta_us_per_cand,
        );
        lanes.push(lane);
    }

    let lane = |w: usize| {
        lanes
            .iter()
            .find(|l| l.width == w)
            .expect("swept width present")
    };
    let report = SimdReport {
        circuit: bench.name().to_string(),
        gates: netlist.logic_gate_count(),
        vectors,
        sim_speedup_w8: lane(1).sim_us_per_pass / lane(8).sim_us_per_pass,
        delta_speedup_w8: lane(1).delta_us_per_cand / lane(8).delta_us_per_cand,
        lanes,
    };
    eprintln!(
        "{:<10} W8-vs-W1: sim {:.2}x  delta {:.2}x  ({} build)",
        report.circuit,
        report.sim_speedup_w8,
        report.delta_speedup_w8,
        vector_unit(),
    );
    report
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn to_json(
    reports: &[CircuitReport],
    simd: &SimdReport,
    seed: u64,
    candidates: usize,
    effort: Effort,
) -> Json {
    let largest = reports
        .iter()
        .max_by_key(|r| r.gates)
        .expect("non-empty suite");
    Json::Obj(vec![
        ("schema".into(), Json::Num(1.0)),
        ("bench".into(), Json::Str("delta_sim".into())),
        ("seed".into(), Json::Num(seed as f64)),
        ("candidates".into(), Json::Num(candidates as f64)),
        ("effort".into(), Json::Str(format!("{effort:?}"))),
        (
            "simd_width".into(),
            Json::Num(SimdWidth::auto().lanes() as f64),
        ),
        (
            "circuits".into(),
            Json::Arr(
                reports
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(r.name.clone())),
                            ("gates".into(), Json::Num(r.gates as f64)),
                            ("vectors".into(), Json::Num(r.vectors as f64)),
                            ("candidates".into(), Json::Num(r.candidates as f64)),
                            (
                                "full_us_per_cand".into(),
                                Json::Num(round2(r.full_us_per_cand)),
                            ),
                            (
                                "delta_us_per_cand".into(),
                                Json::Num(round2(r.delta_us_per_cand)),
                            ),
                            ("speedup".into(), Json::Num(round2(r.speedup))),
                            (
                                "normalized_cost".into(),
                                Json::Num(round2(r.delta_us_per_cand / r.full_us_per_cand * 100.0)),
                            ),
                            (
                                "mean_cone_gates".into(),
                                Json::Num(round2(r.mean_cone_gates)),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "largest".into(),
            Json::Obj(vec![
                ("name".into(), Json::Str(largest.name.clone())),
                ("gates".into(), Json::Num(largest.gates as f64)),
                ("speedup".into(), Json::Num(round2(largest.speedup))),
            ]),
        ),
        (
            "simd".into(),
            Json::Obj(vec![
                ("circuit".into(), Json::Str(simd.circuit.clone())),
                ("gates".into(), Json::Num(simd.gates as f64)),
                ("vectors".into(), Json::Num(simd.vectors as f64)),
                ("vector_unit".into(), Json::Str(vector_unit().into())),
                ("vector_capable".into(), Json::Bool(vector_capable())),
                (
                    "widths".into(),
                    Json::Arr(
                        simd.lanes
                            .iter()
                            .map(|l| {
                                Json::Obj(vec![
                                    ("width".into(), Json::Num(l.width as f64)),
                                    (
                                        "sim_us_per_pass".into(),
                                        Json::Num(round2(l.sim_us_per_pass)),
                                    ),
                                    (
                                        "delta_us_per_cand".into(),
                                        Json::Num(round2(l.delta_us_per_cand)),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "sim_speedup_w8".into(),
                    Json::Num(round2(simd.sim_speedup_w8)),
                ),
                (
                    "delta_speedup_w8".into(),
                    Json::Num(round2(simd.delta_speedup_w8)),
                ),
            ]),
        ),
    ])
}

/// The CI gate: compares a fresh report against the committed baseline.
/// Returns human-readable failure descriptions (empty = pass).
fn gate(fresh: &Json, baseline: &Json) -> Vec<String> {
    let mut failures = Vec::new();

    // 1. The headline claim must keep holding on this machine.
    let largest = fresh.get("largest").expect("fresh report has `largest`");
    let speedup = largest
        .get("speedup")
        .and_then(Json::as_f64)
        .expect("largest.speedup");
    let name = largest
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("<unknown>");
    if speedup < REQUIRED_SPEEDUP_LARGEST {
        failures.push(format!(
            "largest circuit {name}: incremental scoring speedup {speedup:.2}x \
             below the required {REQUIRED_SPEEDUP_LARGEST:.0}x"
        ));
    }

    // 2. Normalized candidate-scoring cost must not regress > 30% on
    //    any circuit present in both reports. (Normalizing by the same
    //    run's full-resimulation time cancels runner hardware.)
    let empty = Vec::new();
    let base_circuits = baseline
        .get("circuits")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    let fresh_circuits = fresh
        .get("circuits")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    for fc in fresh_circuits {
        let fc_name = fc.get("name").and_then(Json::as_str).unwrap_or_default();
        let Some(bc) = base_circuits
            .iter()
            .find(|c| c.get("name").and_then(Json::as_str) == Some(fc_name))
        else {
            continue;
        };
        let norm = |c: &Json| -> Option<f64> {
            let full = c.get("full_us_per_cand")?.as_f64()?;
            let delta = c.get("delta_us_per_cand")?.as_f64()?;
            (full > 0.0).then_some(delta / full)
        };
        let (Some(fresh_norm), Some(base_norm)) = (norm(fc), norm(bc)) else {
            failures.push(format!("{fc_name}: report missing timing fields"));
            continue;
        };
        if fresh_norm > base_norm * (1.0 + REGRESSION_TOLERANCE) {
            failures.push(format!(
                "{fc_name}: normalized candidate-scoring cost {:.2}% of full resim \
                 regressed more than {:.0}% over the baseline's {:.2}%",
                fresh_norm * 100.0,
                REGRESSION_TOLERANCE * 100.0,
                base_norm * 100.0,
            ));
        }
    }

    // 3. Host-aware SIMD rule (cf. the bench_parallel parallelism gate):
    //    on builds compiled with a ≥256-bit vector unit the wide blocks
    //    must deliver the headline W8-vs-W1 simulation speedup; on
    //    narrow builds (baseline x86-64 = SSE2, NEON = 128-bit) they
    //    must merely never cost a pathological slowdown. Both bounds are
    //    measured within the fresh run, so no cross-host comparison.
    match fresh.get("simd") {
        None => failures.push("fresh report missing the `simd` section".into()),
        Some(simd) => {
            let capable = simd
                .get("vector_capable")
                .and_then(Json::as_bool)
                .unwrap_or(false);
            let unit = simd
                .get("vector_unit")
                .and_then(Json::as_str)
                .unwrap_or("<unknown>");
            match simd.get("sim_speedup_w8").and_then(Json::as_f64) {
                None => failures.push("fresh report missing simd.sim_speedup_w8".into()),
                Some(speedup) if capable && speedup < REQUIRED_SIMD_SPEEDUP => {
                    failures.push(format!(
                        "simd: W8-vs-W1 simulation speedup {speedup:.2}x below the \
                         required {REQUIRED_SIMD_SPEEDUP:.1}x on a vector-capable \
                         build ({unit})"
                    ));
                }
                Some(speedup) if !capable && speedup < 1.0 / MAX_SIMD_OVERHEAD_NARROW => {
                    failures.push(format!(
                        "simd: W8 blocks cost a {:.2}x slowdown over W1 on a narrow \
                         build ({unit}); blocking must stay overhead-free",
                        1.0 / speedup
                    ));
                }
                Some(_) => {}
            }
        }
    }
    failures
}

//! Regenerates **TABLE III**: `Ratio_cpd` and runtime for all five
//! methods on the arithmetic circuits under the 2.44% NMED constraint,
//! with post-optimization under `Area_con = Area_ori`.
//!
//! ```sh
//! TDALS_EFFORT=standard cargo run --release -p tdals-bench --bin table3
//! ```

use tdals_baselines::{MethodConfig, ALL_METHODS};
use tdals_bench::{context_for, level_we, Effort};
use tdals_circuits::Benchmark;
use tdals_core::api::Flow;

fn main() {
    let effort = Effort::from_env();
    let bound = 0.0244;
    println!("TABLE III — Ratio_cpd / runtime under 2.44% NMED (effort {effort:?})");
    print!("{:<10} {:>10}", "circuit", "Area_con");
    for m in ALL_METHODS {
        print!(" {:>10} {:>9}", m.label(), "time s");
    }
    println!();

    let benches = effort.filter(Benchmark::arithmetic());
    let mut sums = vec![0.0f64; ALL_METHODS.len()];
    let mut time_sums = vec![0.0f64; ALL_METHODS.len()];
    for bench in &benches {
        let (ctx, metric) = context_for(*bench, effort);
        let cfg = MethodConfig::default()
            .with_population(effort.population())
            .with_iterations(effort.iterations())
            .with_level_we(level_we(metric))
            .with_seed(0x7AB3);
        print!("{:<10} {:>10.2}", bench.name(), ctx.area_ori());
        for (i, method) in ALL_METHODS.into_iter().enumerate() {
            let r = Flow::for_context(&ctx)
                .error_bound(bound)
                .optimizer(method.optimizer(&cfg))
                .run()
                .expect("valid flow");
            sums[i] += r.ratio_cpd;
            time_sums[i] += r.runtime_s;
            print!(" {:>10.4} {:>9.2}", r.ratio_cpd, r.runtime_s);
        }
        println!();
    }
    let n = benches.len() as f64;
    print!("{:<10} {:>10}", "Average", "");
    for i in 0..ALL_METHODS.len() {
        print!(" {:>10.4} {:>9.2}", sums[i] / n, time_sums[i] / n);
    }
    println!();
    println!(
        "\npaper (TABLE III averages): VECBEE-S 0.8732, VaACS 0.7081, HEDALS 0.6731, GWO 0.7035, Ours 0.6146"
    );
}

//! Regenerates **Fig. 6**: average `Ratio_cpd` of the full flow as a
//! function of the depth weight `wd`, under the tightest and loosest
//! ER (a) and NMED (b) constraints.
//!
//! ```sh
//! TDALS_EFFORT=quick cargo run --release -p tdals-bench --bin fig6_wd_sweep
//! ```

use tdals_baselines::{Method, MethodConfig};
use tdals_bench::{context_for_wd, level_we, Effort};
use tdals_circuits::Benchmark;
use tdals_core::api::Flow;

fn sweep(benches: &[Benchmark], bounds: &[f64], effort: Effort, label: &str) {
    println!("\nFig. 6{label}: average Ratio_cpd vs depth weight wd");
    print!("{:>6}", "wd");
    for &bound in bounds {
        print!(" {:>12}", format!("bound {bound}"));
    }
    println!();
    for wd_step in 0..=5 {
        let wd = f64::from(wd_step) * 0.2;
        print!("{:>6.1}", wd);
        for &bound in bounds {
            let mut sum = 0.0;
            for bench in benches {
                let (ctx, metric) = context_for_wd(*bench, effort, wd);
                let cfg = MethodConfig::default()
                    .with_population(effort.population())
                    .with_iterations(effort.iterations())
                    .with_level_we(level_we(metric))
                    .with_seed(0xF16);
                let r = Flow::for_context(&ctx)
                    .error_bound(bound)
                    .optimizer(Method::Dcgwo.optimizer(&cfg))
                    .run()
                    .expect("valid flow");
                sum += r.ratio_cpd;
            }
            print!(" {:>12.4}", sum / benches.len() as f64);
        }
        println!();
    }
}

fn main() {
    let effort = Effort::from_env();
    // Representative subset per class keeps the 2-D sweep tractable;
    // paper shape: minimum Ratio_cpd near wd = 0.8 for all four curves.
    let rc = effort.filter(vec![Benchmark::Cavlc, Benchmark::C880, Benchmark::C1908]);
    let arith = effort.filter(vec![
        Benchmark::Int2float,
        Benchmark::Adder16,
        Benchmark::Max16,
    ]);
    sweep(&rc, &[0.01, 0.05], effort, "a (ER tightest/loosest)");
    sweep(
        &arith,
        &[0.0048, 0.0244],
        effort,
        "b (NMED tightest/loosest)",
    );
    println!("\npaper shape: minima at wd = 0.8 under all four constraints");
}

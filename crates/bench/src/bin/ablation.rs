//! Ablation study of the design choices DESIGN.md calls out: the
//! double-chase hierarchy, circuit reproduction, and asymptotic error
//! relaxation, each toggled independently on representative circuits.
//!
//! ```sh
//! TDALS_EFFORT=quick cargo run --release -p tdals-bench --bin ablation
//! ```

use tdals_bench::{context_for, level_we, Effort};
use tdals_circuits::Benchmark;
use tdals_core::{optimize, post_optimize, ChaseStrategy, OptimizerConfig, PostOptConfig};

fn main() {
    let effort = Effort::from_env();
    let benches = effort.filter(vec![
        Benchmark::C880,
        Benchmark::Cavlc,
        Benchmark::Adder16,
        Benchmark::Max16,
    ]);

    struct Variant {
        name: &'static str,
        chase: ChaseStrategy,
        omega_threshold: f64,
        initial_fraction: f64,
    }
    let variants = [
        Variant {
            name: "full DCGWO",
            chase: ChaseStrategy::DoubleChase,
            omega_threshold: 0.3,
            initial_fraction: 0.25,
        },
        Variant {
            name: "single-chase",
            chase: ChaseStrategy::SingleChase,
            omega_threshold: 0.3,
            initial_fraction: 0.25,
        },
        Variant {
            name: "no both-action ω",
            chase: ChaseStrategy::DoubleChase,
            // ω never exceeds an infinite threshold -> never does both.
            omega_threshold: f64::INFINITY,
            initial_fraction: 0.25,
        },
        Variant {
            name: "no relaxation",
            chase: ChaseStrategy::DoubleChase,
            omega_threshold: 0.3,
            // Full error budget from iteration 0.
            initial_fraction: 1.0,
        },
    ];

    println!("Ablation — Ratio_cpd per variant (effort {effort:?})");
    print!("{:<12}", "circuit");
    for v in &variants {
        print!(" {:>16}", v.name);
    }
    println!();

    for bench in &benches {
        let (ctx, metric) = context_for(*bench, effort);
        let bound = match metric {
            tdals_sim::ErrorMetric::ErrorRate => 0.05,
            tdals_sim::ErrorMetric::Nmed => 0.0244,
        };
        print!("{:<12}", bench.name());
        for v in &variants {
            let cfg = OptimizerConfig::default()
                .with_population(effort.population())
                .with_iterations(effort.iterations())
                .with_level_we(level_we(metric))
                .with_chase(v.chase)
                .with_omega_threshold(v.omega_threshold)
                .with_initial_constraint_fraction(v.initial_fraction)
                .with_seed(0xAB1A);
            let result = optimize(&ctx, bound, &cfg);
            let mut netlist = result.best.netlist.clone();
            let post = post_optimize(
                &mut netlist,
                ctx.timing(),
                &PostOptConfig::new(ctx.area_ori()),
            );
            print!(" {:>16.4}", post.cpd_final / ctx.cpd_ori());
        }
        println!();
    }
    println!("\nexpected: 'full DCGWO' lowest (ties possible on easy circuits);");
    println!("each removed mechanism costs Ratio_cpd on average");
}

//! Validates the Monte-Carlo estimator against itself at different
//! vector budgets — the paper's claim that VECBEE-style batch
//! estimation with 1e5 vectors achieves "nearly no deviation" scaled to
//! this workspace: how fast do ER/NMED estimates converge with vector
//! count, per benchmark?
//!
//! ```sh
//! cargo run --release -p tdals-bench --bin probe_accuracy
//! ```

use tdals_circuits::Benchmark;
use tdals_core::{random_lac, EvalContext};
use tdals_sim::{simulate, ErrorMetric, Patterns};
use tdals_sta::TimingConfig;

use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let benches = [Benchmark::C880, Benchmark::Adder16, Benchmark::Max16];
    println!("estimator convergence: |metric(V vectors) - metric(65536 vectors)|");
    println!(
        "{:<10} {:<6} {:>10} {:>10} {:>10} {:>10}",
        "circuit", "metric", "512", "2048", "8192", "32768"
    );
    for bench in benches {
        let accurate = bench.build();
        let metric = match bench.class() {
            tdals_circuits::CircuitClass::RandomControl => ErrorMetric::ErrorRate,
            tdals_circuits::CircuitClass::Arithmetic => ErrorMetric::Nmed,
        };
        // One fixed approximate circuit: three random LACs.
        let ctx = EvalContext::new(
            &accurate,
            Patterns::random(accurate.input_count(), 1024, 5),
            metric,
            TimingConfig::default(),
            0.8,
        );
        let mut approx = accurate.clone();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..3 {
            let sim = ctx.simulate(&approx);
            if let Some(lac) = random_lac(&approx, &sim, 64, &mut rng) {
                lac.apply(&mut approx).expect("legal LAC");
            }
        }

        let reference = measure(&accurate, &approx, metric, 65536);
        print!(
            "{:<10} {:<6}",
            bench.name(),
            match metric {
                ErrorMetric::ErrorRate => "ER",
                ErrorMetric::Nmed => "NMED",
            }
        );
        for vectors in [512usize, 2048, 8192, 32768] {
            let est = measure(&accurate, &approx, metric, vectors);
            print!(" {:>10.6}", (est - reference).abs());
        }
        println!("  (reference {reference:.6})");
    }
}

fn measure(
    accurate: &tdals_netlist::Netlist,
    approx: &tdals_netlist::Netlist,
    metric: ErrorMetric,
    vectors: usize,
) -> f64 {
    let p = Patterns::random(accurate.input_count(), vectors, 0xACC);
    metric.compute(&simulate(accurate, &p), &simulate(approx, &p))
}

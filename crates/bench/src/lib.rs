//! # tdals-bench
//!
//! Shared plumbing for the table/figure reproduction binaries and the
//! Criterion micro-benchmarks. Every binary in `src/bin/` regenerates
//! one table or figure of the paper's evaluation section; see
//! `EXPERIMENTS.md` at the workspace root for the index and recorded
//! results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod obs_report;
pub mod timing;

use tdals_circuits::Benchmark;
use tdals_core::EvalContext;
use tdals_sim::{ErrorMetric, Patterns};
use tdals_sta::TimingConfig;

/// Effort preset for experiment binaries.
///
/// The paper runs population 30 × 20 iterations with 1e5 Monte-Carlo
/// vectors on a 32-core + 4×V100 machine; the presets scale that to a
/// single laptop core while keeping the comparisons method-fair (every
/// method sees the same budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Smoke-test effort: tiny populations, small circuits only.
    Quick,
    /// Default: paper-shaped populations with reduced vector counts.
    Standard,
    /// Paper-scale populations and vectors (slow).
    Full,
}

impl Effort {
    /// Reads the `TDALS_EFFORT` environment variable
    /// (`quick`/`standard`/`full`), defaulting to `Standard`.
    pub fn from_env() -> Effort {
        match std::env::var("TDALS_EFFORT").as_deref() {
            Ok("quick") => Effort::Quick,
            Ok("full") => Effort::Full,
            _ => Effort::Standard,
        }
    }

    /// Population size for population-based methods.
    pub fn population(self) -> usize {
        match self {
            Effort::Quick => 8,
            Effort::Standard => 30,
            Effort::Full => 30,
        }
    }

    /// Iteration budget.
    ///
    /// The paper's `Imax` is 20 with 1e5 Monte-Carlo vectors per
    /// evaluation; with this workspace's reduced vector counts, extra
    /// iterations buy back exploration at equal wall-clock fairness
    /// (greedy baselines converge and stop on their own well before
    /// their round caps).
    pub fn iterations(self) -> usize {
        match self {
            Effort::Quick => 5,
            Effort::Standard => 64,
            Effort::Full => 96,
        }
    }

    /// Monte-Carlo vectors per evaluation, scaled by circuit size.
    pub fn vectors(self, gates: usize) -> usize {
        let base = match self {
            Effort::Quick => 1024,
            Effort::Standard => 2048,
            Effort::Full => 8192,
        };
        // Very large circuits get fewer vectors to bound runtime.
        if gates > 8000 {
            base / 4
        } else if gates > 2000 {
            base / 2
        } else {
            base
        }
    }

    /// Benchmarks to include at this effort (Quick trims the largest).
    pub fn filter(self, benches: Vec<Benchmark>) -> Vec<Benchmark> {
        match self {
            Effort::Quick => benches
                .into_iter()
                .filter(|b| b.build().logic_gate_count() < 2000)
                .collect(),
            _ => benches,
        }
    }
}

/// Builds the evaluation context for one benchmark the way every
/// experiment binary does: deterministic stimulus seeded by the
/// benchmark name, metric per the benchmark's class, `wd = 0.8`.
pub fn context_for(bench: Benchmark, effort: Effort) -> (EvalContext, ErrorMetric) {
    context_for_wd(bench, effort, 0.8)
}

/// Same as [`context_for`] with an explicit depth weight (the Fig. 6
/// sweep varies `wd`).
pub fn context_for_wd(bench: Benchmark, effort: Effort, wd: f64) -> (EvalContext, ErrorMetric) {
    let accurate = bench.build();
    let metric = match bench.class() {
        tdals_circuits::CircuitClass::RandomControl => ErrorMetric::ErrorRate,
        tdals_circuits::CircuitClass::Arithmetic => ErrorMetric::Nmed,
    };
    let seed = bench
        .name()
        .bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b.into()));
    let vectors = effort.vectors(accurate.logic_gate_count());
    let patterns = Patterns::random(accurate.input_count(), vectors, seed);
    let ctx = EvalContext::new(&accurate, patterns, metric, TimingConfig::default(), wd);
    (ctx, metric)
}

/// `we` of the reproduction `Level` function per the paper's setting.
pub fn level_we(metric: ErrorMetric) -> f64 {
    tdals_core::OptimizerConfig::paper_level_we(metric)
}

/// ER sweep bounds of Fig. 7a (1%–5%).
pub const ER_BOUNDS: [f64; 5] = [0.01, 0.02, 0.03, 0.04, 0.05];
/// NMED sweep bounds of Fig. 7b (0.48%–2.44%).
pub const NMED_BOUNDS: [f64; 5] = [0.0048, 0.0098, 0.0147, 0.0196, 0.0244];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efforts_scale_monotonically() {
        assert!(Effort::Quick.population() < Effort::Full.population());
        assert!(Effort::Quick.iterations() < Effort::Full.iterations());
        assert!(Effort::Quick.vectors(100) < Effort::Full.vectors(100));
    }

    #[test]
    fn big_circuits_get_fewer_vectors() {
        assert!(Effort::Standard.vectors(10_000) < Effort::Standard.vectors(100));
    }

    #[test]
    fn context_builds_for_both_classes() {
        let (ctx, metric) = context_for(Benchmark::Cavlc, Effort::Quick);
        assert_eq!(metric, ErrorMetric::ErrorRate);
        assert!(ctx.cpd_ori() > 0.0);
        let (ctx, metric) = context_for(Benchmark::Max16, Effort::Quick);
        assert_eq!(metric, ErrorMetric::Nmed);
        assert!(ctx.area_ori() > 0.0);
    }
}

//! Serialization for `tdals-obs` data: metric snapshots as stable
//! [`Json`] objects and span rings as Chrome trace-event documents.
//!
//! `tdals-obs` itself is dependency-free and owns no serializer; this
//! module is where its neutral snapshot types meet the workspace's
//! self-contained JSON codec. The `stats` wire verb, the `--trace`
//! CLI artifact, and the cluster merge report all render through
//! here, so they agree on field names by construction.

use tdals_obs::metrics::{HistogramSnapshot, MetricsSnapshot};
use tdals_obs::trace::SpanRecord;

use crate::json::Json;

fn u64_json(v: u64) -> Json {
    // Counters beyond 2^53 would lose precision as a JSON number; no
    // realistic run gets near that, but saturate explicitly rather
    // than emit a lying digit string.
    Json::Num(v.min(1 << 53) as f64)
}

fn histogram_json(h: &HistogramSnapshot) -> Json {
    let buckets = h
        .buckets
        .iter()
        .map(|&(bound, n)| {
            let le = bound.map_or(Json::Null, u64_json);
            Json::Arr(vec![le, u64_json(n)])
        })
        .collect();
    Json::Obj(vec![
        ("count".into(), u64_json(h.count)),
        ("sum".into(), u64_json(h.sum)),
        ("buckets".into(), Json::Arr(buckets)),
    ])
}

/// Renders a registry snapshot as one stable JSON object:
/// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`, every
/// map in registry order. Histogram buckets are `[upper_bound, count]`
/// pairs with `null` as the overflow bound.
pub fn snapshot_to_json(snap: &MetricsSnapshot) -> Json {
    let counters = snap
        .counters
        .iter()
        .map(|&(name, v)| (name.to_owned(), u64_json(v)))
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|&(name, v)| (name.to_owned(), u64_json(v)))
        .collect();
    let histograms = snap
        .histograms
        .iter()
        .map(|h| (h.name.to_owned(), histogram_json(h)))
        .collect();
    Json::Obj(vec![
        ("counters".into(), Json::Obj(counters)),
        ("gauges".into(), Json::Obj(gauges)),
        ("histograms".into(), Json::Obj(histograms)),
    ])
}

/// Renders drained spans as a Chrome trace-event document (the JSON
/// object form: `{"traceEvents": [...]}`), loadable in
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev). Every
/// span becomes one complete (`"ph": "X"`) event with microsecond
/// `ts`/`dur`; nesting is recovered by the viewer from interval
/// containment per thread, which the recorder's LIFO guard order
/// guarantees.
pub fn trace_to_json(records: &[SpanRecord], dropped: u64) -> Json {
    let events = records
        .iter()
        .map(|r| {
            let mut fields = vec![
                ("name".into(), Json::Str(r.name.clone())),
                ("cat".into(), Json::Str(r.cat.to_owned())),
                ("ph".into(), Json::Str("X".into())),
                ("ts".into(), u64_json(r.ts_us)),
                ("dur".into(), u64_json(r.dur_us)),
                ("pid".into(), Json::Num(0.0)),
                ("tid".into(), u64_json(r.tid)),
            ];
            if !r.args.is_empty() {
                let args = r
                    .args
                    .iter()
                    .map(|&(k, v)| (k.to_owned(), u64_json(v)))
                    .collect();
                fields.push(("args".into(), Json::Obj(args)));
            }
            Json::Obj(fields)
        })
        .collect();
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
        (
            "otherData".into(),
            Json::Obj(vec![("dropped_spans".into(), u64_json(dropped))]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_renders_registry_names() {
        let doc = snapshot_to_json(&tdals_obs::metrics().snapshot());
        let counters = doc.get("counters").expect("counters map");
        assert!(counters.get("evaluations").is_some());
        assert!(counters.get("frames_read").is_some());
        let histograms = doc.get("histograms").expect("histograms map");
        assert!(histograms.get("grant_width").is_some());
        // Round-trips through the codec.
        let reparsed = Json::parse(&doc.to_compact()).expect("valid JSON");
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn trace_events_carry_chrome_fields() {
        let records = vec![SpanRecord {
            name: "flow".into(),
            cat: "flow",
            ts_us: 10,
            dur_us: 25,
            tid: 3,
            args: vec![("gates", 7)],
        }];
        let doc = trace_to_json(&records, 2);
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("events array");
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(e.get("ts").and_then(Json::as_uint), Some(10));
        assert_eq!(e.get("dur").and_then(Json::as_uint), Some(25));
        assert_eq!(e.get("tid").and_then(Json::as_uint), Some(3));
        let args = e.get("args").expect("args");
        assert_eq!(args.get("gates").and_then(Json::as_uint), Some(7));
        assert_eq!(
            doc.get("otherData")
                .and_then(|o| o.get("dropped_spans"))
                .and_then(Json::as_uint),
            Some(2)
        );
    }
}

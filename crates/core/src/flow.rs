//! The legacy one-shot entry point for the Fig. 2 flow: circuit
//! representation → DCGWO → post-optimization.
//!
//! Superseded by the [`crate::api`] session API — [`run_flow`] is kept
//! as a thin deprecated shim over [`crate::api::Flow`] and produces
//! results identical to the builder path for the same configuration.

use tdals_netlist::Netlist;
use tdals_sim::ErrorMetric;
use tdals_sta::TimingConfig;

use crate::api::{Dcgwo, Flow};
use crate::dcgwo::{OptimizerConfig, OptimizerResult};
use crate::postopt::PostOptReport;

/// Everything needed to run the flow on one circuit.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct FlowConfig {
    /// Error metric (ER for random/control, NMED for arithmetic).
    pub metric: ErrorMetric,
    /// User error budget under that metric.
    pub error_bound: f64,
    /// Monte-Carlo vectors per evaluation.
    pub vectors: usize,
    /// Stimulus seed.
    pub pattern_seed: u64,
    /// Depth weight `wd` of the fitness (Eq. 8); the paper uses 0.8.
    pub depth_weight: f64,
    /// Optimizer parameters.
    pub optimizer: OptimizerConfig,
    /// Area constraint for post-optimization; `None` means the accurate
    /// circuit's area (the TABLE II/III setting).
    pub area_con: Option<f64>,
    /// Timing parasitics.
    pub timing: TimingConfig,
}

/// The paper's ER protocol at a 5% budget; see
/// [`FlowConfig::paper_defaults`] to pick metric and bound explicitly.
impl Default for FlowConfig {
    fn default() -> FlowConfig {
        FlowConfig::paper_defaults(ErrorMetric::ErrorRate, 0.05)
    }
}

impl FlowConfig {
    /// The paper's configuration for a given metric and error bound
    /// (`we` = 0.1 under ER, 0.2 under NMED).
    pub fn paper_defaults(metric: ErrorMetric, error_bound: f64) -> FlowConfig {
        let optimizer =
            OptimizerConfig::default().with_level_we(OptimizerConfig::paper_level_we(metric));
        FlowConfig {
            metric,
            error_bound,
            vectors: 4096,
            pattern_seed: 0x7DA15,
            depth_weight: 0.8,
            optimizer,
            area_con: None,
            timing: TimingConfig::default(),
        }
    }

    /// Sets the error metric.
    pub fn with_metric(mut self, metric: ErrorMetric) -> FlowConfig {
        self.metric = metric;
        self
    }

    /// Sets the error budget.
    pub fn with_error_bound(mut self, error_bound: f64) -> FlowConfig {
        self.error_bound = error_bound;
        self
    }

    /// Sets the Monte-Carlo vector count.
    pub fn with_vectors(mut self, vectors: usize) -> FlowConfig {
        self.vectors = vectors;
        self
    }

    /// Sets the stimulus seed.
    pub fn with_pattern_seed(mut self, pattern_seed: u64) -> FlowConfig {
        self.pattern_seed = pattern_seed;
        self
    }

    /// Sets the depth weight `wd`.
    pub fn with_depth_weight(mut self, depth_weight: f64) -> FlowConfig {
        self.depth_weight = depth_weight;
        self
    }

    /// Sets the optimizer parameters.
    pub fn with_optimizer(mut self, optimizer: OptimizerConfig) -> FlowConfig {
        self.optimizer = optimizer;
        self
    }

    /// Sets the post-optimization area constraint (`None` = `Area_ori`).
    pub fn with_area_con(mut self, area_con: impl Into<Option<f64>>) -> FlowConfig {
        self.area_con = area_con.into();
        self
    }

    /// Sets the timing parasitics.
    pub fn with_timing(mut self, timing: TimingConfig) -> FlowConfig {
        self.timing = timing;
        self
    }
}

/// Result of one flow run.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Final approximate netlist (post-optimized).
    pub netlist: Netlist,
    /// Accurate circuit CPD, ps.
    pub cpd_ori: f64,
    /// Final approximate CPD (`CPD_fac`), ps.
    pub cpd_fac: f64,
    /// `Ratio_cpd = CPD_fac / CPD_ori` (lower is better).
    pub ratio_cpd: f64,
    /// Final measured error (always within the bound).
    pub error: f64,
    /// Final live area, µm².
    pub area: f64,
    /// Area constraint that was enforced.
    pub area_con: f64,
    /// Optimizer outcome (population, history) for analysis.
    pub optimizer: OptimizerResult,
    /// Post-optimization details.
    pub post_opt: PostOptReport,
    /// Wall-clock runtime of the whole flow in seconds.
    pub runtime_s: f64,
}

/// Runs the complete flow on an accurate circuit.
///
/// Deprecated shim over the session API; it delegates to
/// [`crate::api::Flow`] with an unlimited budget, so results are
/// identical to the builder path for the same configuration.
///
/// # Panics
///
/// Panics where the session API would return a typed
/// [`crate::api::FlowError`] (bad bound, empty netlist, bad depth
/// weight) — the legacy behaviour.
///
/// # Examples
///
/// ```no_run
/// use tdals_circuits::Benchmark;
/// #[allow(deprecated)]
/// use tdals_core::{run_flow, FlowConfig};
/// use tdals_sim::ErrorMetric;
///
/// let accurate = Benchmark::Max16.build();
/// let cfg = FlowConfig::paper_defaults(ErrorMetric::Nmed, 0.0244);
/// # #[allow(deprecated)]
/// let result = run_flow(&accurate, &cfg);
/// assert!(result.ratio_cpd <= 1.0);
/// assert!(result.error <= 0.0244);
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use the session API: tdals_core::api::Flow::for_netlist(&nl).metric(..).error_bound(..).run()"
)]
pub fn run_flow(accurate: &Netlist, cfg: &FlowConfig) -> FlowResult {
    let outcome = Flow::for_netlist(accurate)
        .metric(cfg.metric)
        .error_bound(cfg.error_bound)
        .vectors(cfg.vectors)
        .pattern_seed(cfg.pattern_seed)
        .depth_weight(cfg.depth_weight)
        .timing(cfg.timing)
        .area_constraint(cfg.area_con)
        .optimizer(Dcgwo::new(cfg.optimizer.clone()))
        .run()
        .unwrap_or_else(|e| panic!("invalid flow configuration: {e}"));
    FlowResult {
        netlist: outcome.netlist,
        cpd_ori: outcome.cpd_ori,
        cpd_fac: outcome.cpd_fac,
        ratio_cpd: outcome.ratio_cpd,
        error: outcome.error,
        area: outcome.area,
        area_con: outcome.area_con,
        optimizer: OptimizerResult {
            best: outcome.optimize.best,
            population: outcome.optimize.population,
            history: outcome.optimize.history,
        },
        post_opt: outcome.post_opt,
        runtime_s: outcome.runtime_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcgwo::ChaseStrategy;
    use tdals_netlist::builder::Builder;
    use tdals_netlist::SignalRef;

    fn adder() -> Netlist {
        let mut b = Builder::new("add6");
        let a = b.inputs("a", 6);
        let x = b.inputs("b", 6);
        let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &s);
        b.output("c", c);
        b.finish()
    }

    fn quick_cfg(metric: ErrorMetric, bound: f64) -> FlowConfig {
        let mut cfg = FlowConfig::paper_defaults(metric, bound);
        cfg.vectors = 1024;
        cfg.optimizer.population = 8;
        cfg.optimizer.iterations = 6;
        cfg
    }

    fn run_shim(accurate: &Netlist, cfg: &FlowConfig) -> FlowResult {
        #[allow(deprecated)]
        run_flow(accurate, cfg)
    }

    #[test]
    fn flow_improves_cpd_within_error_budget() {
        let n = adder();
        let cfg = quick_cfg(ErrorMetric::ErrorRate, 0.08);
        let result = run_shim(&n, &cfg);
        assert!(result.error <= 0.08 + 1e-12);
        assert!(result.ratio_cpd <= 1.0 + 1e-9, "ratio {}", result.ratio_cpd);
        assert!(result.area <= result.area_con + 1e-9);
        result
            .netlist
            .check_invariants()
            .expect("valid final netlist");
    }

    #[test]
    fn flow_under_nmed() {
        let n = adder();
        let cfg = quick_cfg(ErrorMetric::Nmed, 0.02);
        let result = run_shim(&n, &cfg);
        assert!(result.error <= 0.02 + 1e-12);
        assert!(result.ratio_cpd <= 1.0 + 1e-9);
    }

    #[test]
    fn single_chase_flow_runs() {
        let n = adder();
        let mut cfg = quick_cfg(ErrorMetric::ErrorRate, 0.08);
        cfg.optimizer.chase = ChaseStrategy::SingleChase;
        let result = run_shim(&n, &cfg);
        assert!(result.error <= 0.08 + 1e-12);
    }

    #[test]
    fn looser_budget_is_at_least_as_good() {
        let n = adder();
        let tight = run_shim(&n, &quick_cfg(ErrorMetric::ErrorRate, 0.01));
        let loose = run_shim(&n, &quick_cfg(ErrorMetric::ErrorRate, 0.20));
        assert!(
            loose.ratio_cpd <= tight.ratio_cpd + 0.05,
            "loose {} vs tight {}",
            loose.ratio_cpd,
            tight.ratio_cpd
        );
    }

    #[test]
    fn shim_matches_session_api_exactly() {
        // The deprecated shim and the builder path must agree
        // bit-for-bit on a pinned seed.
        let n = adder();
        let cfg = quick_cfg(ErrorMetric::ErrorRate, 0.06);
        let legacy = run_shim(&n, &cfg);
        let session = Flow::for_netlist(&n)
            .metric(cfg.metric)
            .error_bound(cfg.error_bound)
            .vectors(cfg.vectors)
            .pattern_seed(cfg.pattern_seed)
            .depth_weight(cfg.depth_weight)
            .timing(cfg.timing)
            .area_constraint(cfg.area_con)
            .optimizer(Dcgwo::new(cfg.optimizer.clone()))
            .run()
            .expect("valid session");
        assert_eq!(legacy.netlist, session.netlist);
        assert_eq!(legacy.error, session.error);
        assert_eq!(legacy.cpd_fac, session.cpd_fac);
        assert_eq!(legacy.area, session.area);
        assert_eq!(
            legacy.optimizer.history.len(),
            session.optimize.history.len()
        );
        for (a, b) in legacy
            .optimizer
            .history
            .iter()
            .zip(&session.optimize.history)
        {
            assert_eq!(a.best_fitness, b.best_fitness);
            assert_eq!(a.feasible, b.feasible);
        }
    }
}

//! The end-to-end timing-driven ALS flow of Fig. 2: circuit
//! representation → DCGWO → post-optimization, producing the final
//! approximate netlist and its `Ratio_cpd = CPD_fac / CPD_ori`.

use std::time::Instant;

use tdals_netlist::Netlist;
use tdals_sim::{ErrorMetric, Patterns};
use tdals_sta::TimingConfig;

use crate::dcgwo::{optimize, OptimizerConfig, OptimizerResult};
use crate::fitness::EvalContext;
use crate::postopt::{post_optimize, PostOptConfig, PostOptReport};

/// Everything needed to run the flow on one circuit.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Error metric (ER for random/control, NMED for arithmetic).
    pub metric: ErrorMetric,
    /// User error budget under that metric.
    pub error_bound: f64,
    /// Monte-Carlo vectors per evaluation.
    pub vectors: usize,
    /// Stimulus seed.
    pub pattern_seed: u64,
    /// Depth weight `wd` of the fitness (Eq. 8); the paper uses 0.8.
    pub depth_weight: f64,
    /// Optimizer parameters.
    pub optimizer: OptimizerConfig,
    /// Area constraint for post-optimization; `None` means the accurate
    /// circuit's area (the TABLE II/III setting).
    pub area_con: Option<f64>,
    /// Timing parasitics.
    pub timing: TimingConfig,
}

impl FlowConfig {
    /// The paper's configuration for a given metric and error bound
    /// (`we` = 0.1 under ER, 0.2 under NMED).
    pub fn paper_defaults(metric: ErrorMetric, error_bound: f64) -> FlowConfig {
        let optimizer = OptimizerConfig {
            level_we: match metric {
                ErrorMetric::ErrorRate => 0.1,
                ErrorMetric::Nmed => 0.2,
            },
            ..OptimizerConfig::default()
        };
        FlowConfig {
            metric,
            error_bound,
            vectors: 4096,
            pattern_seed: 0x7DA15,
            depth_weight: 0.8,
            optimizer,
            area_con: None,
            timing: TimingConfig::default(),
        }
    }
}

/// Result of one flow run.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Final approximate netlist (post-optimized).
    pub netlist: Netlist,
    /// Accurate circuit CPD, ps.
    pub cpd_ori: f64,
    /// Final approximate CPD (`CPD_fac`), ps.
    pub cpd_fac: f64,
    /// `Ratio_cpd = CPD_fac / CPD_ori` (lower is better).
    pub ratio_cpd: f64,
    /// Final measured error (always within the bound).
    pub error: f64,
    /// Final live area, µm².
    pub area: f64,
    /// Area constraint that was enforced.
    pub area_con: f64,
    /// Optimizer outcome (population, history) for analysis.
    pub optimizer: OptimizerResult,
    /// Post-optimization details.
    pub post_opt: PostOptReport,
    /// Wall-clock runtime of the whole flow in seconds.
    pub runtime_s: f64,
}

/// Runs the complete flow on an accurate circuit.
///
/// # Examples
///
/// ```no_run
/// use tdals_circuits::Benchmark;
/// use tdals_core::{run_flow, FlowConfig};
/// use tdals_sim::ErrorMetric;
///
/// let accurate = Benchmark::Max16.build();
/// let cfg = FlowConfig::paper_defaults(ErrorMetric::Nmed, 0.0244);
/// let result = run_flow(&accurate, &cfg);
/// assert!(result.ratio_cpd <= 1.0);
/// assert!(result.error <= 0.0244);
/// ```
pub fn run_flow(accurate: &Netlist, cfg: &FlowConfig) -> FlowResult {
    let start = Instant::now();
    let patterns = Patterns::random(accurate.input_count(), cfg.vectors, cfg.pattern_seed);
    let ctx = EvalContext::new(accurate, patterns, cfg.metric, cfg.timing, cfg.depth_weight);
    let optimizer = optimize(&ctx, cfg.error_bound, &cfg.optimizer);

    let mut netlist = optimizer.best.netlist.clone();
    let area_con = cfg.area_con.unwrap_or_else(|| ctx.area_ori());
    let post_opt = post_optimize(&mut netlist, &cfg.timing, &PostOptConfig::new(area_con));

    let cpd_ori = ctx.cpd_ori();
    let cpd_fac = post_opt.cpd_final;
    // Error is invariant under post-optimization (sweep + sizing are
    // function-preserving), but re-measure for the report.
    let error = ctx.evaluator().error_of(&netlist);
    FlowResult {
        cpd_ori,
        cpd_fac,
        ratio_cpd: cpd_fac / cpd_ori.max(1e-9),
        error,
        area: netlist.area_live(),
        area_con,
        optimizer,
        post_opt,
        runtime_s: start.elapsed().as_secs_f64(),
        netlist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcgwo::ChaseStrategy;
    use tdals_netlist::builder::Builder;
    use tdals_netlist::SignalRef;

    fn adder() -> Netlist {
        let mut b = Builder::new("add6");
        let a = b.inputs("a", 6);
        let x = b.inputs("b", 6);
        let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &s);
        b.output("c", c);
        b.finish()
    }

    fn quick_cfg(metric: ErrorMetric, bound: f64) -> FlowConfig {
        let mut cfg = FlowConfig::paper_defaults(metric, bound);
        cfg.vectors = 1024;
        cfg.optimizer.population = 8;
        cfg.optimizer.iterations = 6;
        cfg
    }

    #[test]
    fn flow_improves_cpd_within_error_budget() {
        let n = adder();
        let cfg = quick_cfg(ErrorMetric::ErrorRate, 0.08);
        let result = run_flow(&n, &cfg);
        assert!(result.error <= 0.08 + 1e-12);
        assert!(result.ratio_cpd <= 1.0 + 1e-9, "ratio {}", result.ratio_cpd);
        assert!(result.area <= result.area_con + 1e-9);
        result
            .netlist
            .check_invariants()
            .expect("valid final netlist");
    }

    #[test]
    fn flow_under_nmed() {
        let n = adder();
        let cfg = quick_cfg(ErrorMetric::Nmed, 0.02);
        let result = run_flow(&n, &cfg);
        assert!(result.error <= 0.02 + 1e-12);
        assert!(result.ratio_cpd <= 1.0 + 1e-9);
    }

    #[test]
    fn single_chase_flow_runs() {
        let n = adder();
        let mut cfg = quick_cfg(ErrorMetric::ErrorRate, 0.08);
        cfg.optimizer.chase = ChaseStrategy::SingleChase;
        let result = run_flow(&n, &cfg);
        assert!(result.error <= 0.08 + 1e-12);
    }

    #[test]
    fn looser_budget_is_at_least_as_good() {
        let n = adder();
        let tight = run_flow(&n, &quick_cfg(ErrorMetric::ErrorRate, 0.01));
        let loose = run_flow(&n, &quick_cfg(ErrorMetric::ErrorRate, 0.20));
        assert!(
            loose.ratio_cpd <= tight.ratio_cpd + 0.05,
            "loose {} vs tight {}",
            loose.ratio_cpd,
            tight.ratio_cpd
        );
    }
}

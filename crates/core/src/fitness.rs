//! Circuit fitness evaluation (Eq. 8 of the paper) and the evaluated
//! candidate representation shared by all optimizers.

use tdals_netlist::Netlist;
use tdals_sim::{ErrorEvaluator, ErrorMetric, Patterns, SimResult};
use tdals_sta::{analyze, TimingConfig, TimingReport};

/// An approximate circuit together with every quantity the optimizers
/// need: depth, critical-path delay, live area, error, and the per-PO
/// timing/error vectors feeding the reproduction `Level` function.
///
/// Construction goes through [`EvalContext::evaluate`], which runs STA
/// and Monte-Carlo simulation once per candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The approximate netlist.
    pub netlist: Netlist,
    /// Maximum logic depth over POs (`Depth_app`).
    pub depth: u32,
    /// Critical path delay in ps.
    pub cpd: f64,
    /// Live (non-dangling) area in µm² (`Area_app`).
    pub area: f64,
    /// Error vs the accurate circuit under the configured metric.
    pub error: f64,
    /// Depth objective `f_d = Depth_ori / Depth_app` (maximize).
    pub fd: f64,
    /// Area objective `f_a = Area_ori / Area_app` (maximize).
    pub fa: f64,
    /// Scalar fitness `Fit = wd·f_d + wa·f_a` (Eq. 8).
    pub fitness: f64,
    /// Arrival time per PO in ps (`Ta` in Eq. 3).
    pub po_arrivals: Vec<f64>,
    /// Error contribution per PO (`Error` in Eq. 3).
    pub po_errors: Vec<f64>,
}

/// Shared evaluation context: the accurate circuit's reference numbers,
/// the Monte-Carlo error evaluator, and the timing configuration.
///
/// # Examples
///
/// ```
/// use tdals_circuits::Benchmark;
/// use tdals_core::EvalContext;
/// use tdals_sim::{ErrorMetric, Patterns};
/// use tdals_sta::TimingConfig;
///
/// let accurate = Benchmark::Max16.build();
/// let ctx = EvalContext::new(
///     &accurate,
///     Patterns::random(32, 2048, 1),
///     ErrorMetric::Nmed,
///     TimingConfig::default(),
///     0.8,
/// );
/// let cand = ctx.evaluate(accurate.clone());
/// assert_eq!(cand.error, 0.0);
/// assert!((cand.fitness - 1.0).abs() < 1e-9); // fd = fa = 1 for itself
/// ```
#[derive(Debug, Clone)]
pub struct EvalContext {
    accurate: Netlist,
    evaluator: ErrorEvaluator,
    timing: TimingConfig,
    depth_weight: f64,
    depth_ori: u32,
    area_ori: f64,
    cpd_ori: f64,
}

impl EvalContext {
    /// Builds a context around the accurate circuit.
    ///
    /// `depth_weight` is `wd` of Eq. 8 (`wa = 1 − wd`); the paper's
    /// calibrated value is 0.8 (Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if `depth_weight` is outside `[0, 1]`.
    pub fn new(
        accurate: &Netlist,
        patterns: Patterns,
        metric: ErrorMetric,
        timing: TimingConfig,
        depth_weight: f64,
    ) -> EvalContext {
        assert!(
            (0.0..=1.0).contains(&depth_weight),
            "depth weight must be in [0, 1]"
        );
        let report = analyze(accurate, &timing);
        EvalContext {
            accurate: accurate.clone(),
            evaluator: ErrorEvaluator::new(accurate, patterns, metric),
            timing,
            depth_weight,
            depth_ori: report.max_depth().max(1),
            area_ori: accurate.area_live(),
            cpd_ori: report.critical_path_delay(),
        }
    }

    /// The accurate reference circuit.
    pub fn accurate(&self) -> &Netlist {
        &self.accurate
    }

    /// Accurate circuit's maximum logic depth (`Depth_ori`).
    pub fn depth_ori(&self) -> u32 {
        self.depth_ori
    }

    /// Accurate circuit's live area in µm² (`Area_ori`).
    pub fn area_ori(&self) -> f64 {
        self.area_ori
    }

    /// Accurate circuit's critical path delay in ps (`CPD_ori`).
    pub fn cpd_ori(&self) -> f64 {
        self.cpd_ori
    }

    /// Depth weight `wd` of the fitness function.
    pub fn depth_weight(&self) -> f64 {
        self.depth_weight
    }

    /// Error metric in force.
    pub fn metric(&self) -> ErrorMetric {
        self.evaluator.metric()
    }

    /// Timing configuration used for every STA call.
    pub fn timing(&self) -> &TimingConfig {
        &self.timing
    }

    /// The underlying Monte-Carlo evaluator (golden simulation included).
    pub fn evaluator(&self) -> &ErrorEvaluator {
        &self.evaluator
    }

    /// Simulates a netlist on the shared stimulus (used by circuit
    /// searching to score switch-gate similarities).
    pub fn simulate(&self, netlist: &Netlist) -> SimResult {
        self.evaluator.simulate(netlist)
    }

    /// Runs STA on a netlist with the shared configuration.
    pub fn analyze(&self, netlist: &Netlist) -> TimingReport {
        analyze(netlist, &self.timing)
    }

    /// Fully evaluates an approximate netlist into a [`Candidate`].
    pub fn evaluate(&self, netlist: Netlist) -> Candidate {
        let report = analyze(&netlist, &self.timing);
        let sim = self.evaluator.simulate(&netlist);
        self.evaluate_with(netlist, &report, &sim)
    }

    /// Evaluates a netlist when STA and simulation results are already
    /// available (exposed so optimizers can reuse intermediate work; see
    /// C-INTERMEDIATE).
    pub fn evaluate_with(
        &self,
        netlist: Netlist,
        report: &TimingReport,
        sim: &SimResult,
    ) -> Candidate {
        let error = self.evaluator.error_of_sim(sim);
        let po_errors = self.evaluator.po_errors_of_sim(sim);
        let depth = report.max_depth();
        let area = netlist.area_live();
        let fd = f64::from(self.depth_ori) / f64::from(depth.max(1));
        let fa = self.area_ori / area.max(1e-9);
        let fitness = self.depth_weight * fd + (1.0 - self.depth_weight) * fa;
        Candidate {
            depth,
            cpd: report.critical_path_delay(),
            area,
            error,
            fd,
            fa,
            fitness,
            po_arrivals: report.po_arrivals().to_vec(),
            po_errors,
            netlist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::builder::Builder;
    use tdals_netlist::SignalRef;

    fn small_adder() -> Netlist {
        let mut b = Builder::new("add4");
        let a = b.inputs("a", 4);
        let x = b.inputs("b", 4);
        let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &s);
        b.output("c", c);
        b.finish()
    }

    fn ctx(metric: ErrorMetric, wd: f64) -> (Netlist, EvalContext) {
        let n = small_adder();
        let ctx = EvalContext::new(
            &n,
            Patterns::exhaustive(8),
            metric,
            TimingConfig::default(),
            wd,
        );
        (n, ctx)
    }

    #[test]
    fn accurate_circuit_scores_unity() {
        let (n, ctx) = ctx(ErrorMetric::ErrorRate, 0.8);
        let c = ctx.evaluate(n);
        assert_eq!(c.error, 0.0);
        assert!((c.fd - 1.0).abs() < 1e-12);
        assert!((c.fa - 1.0).abs() < 1e-12);
        assert!((c.fitness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lac_improves_fitness_and_adds_error() {
        let (n, ctx) = ctx(ErrorMetric::ErrorRate, 0.8);
        let mut approx = n.clone();
        // Kill the last carry gate: shortens the critical path.
        let report = ctx.analyze(&approx);
        let path = tdals_sta::critical_path(&approx, &report);
        let target = *path.last().expect("non-empty critical path");
        approx.substitute(target, SignalRef::Const0).expect("lac");
        let c = ctx.evaluate(approx);
        assert!(c.fitness > 1.0, "fitness {} should exceed 1", c.fitness);
        assert!(c.error > 0.0);
        assert!(c.fd >= 1.0);
        assert!(c.fa > 1.0);
    }

    #[test]
    fn depth_weight_shifts_fitness() {
        let (n, ctx_d) = ctx(ErrorMetric::ErrorRate, 1.0);
        let ctx_a = EvalContext::new(
            &n,
            Patterns::exhaustive(8),
            ErrorMetric::ErrorRate,
            TimingConfig::default(),
            0.0,
        );
        let mut approx = n.clone();
        // Remove a non-critical gate: area improves, depth does not.
        let s0 = approx.find_gate("u1").expect("first gate");
        approx.substitute(s0, SignalRef::Const0).expect("lac");
        let cd = ctx_d.evaluate(approx.clone());
        let ca = ctx_a.evaluate(approx);
        assert!(ca.fitness > cd.fitness, "area-weighted sees the gain");
    }

    #[test]
    fn po_vectors_have_output_arity() {
        let (n, ctx) = ctx(ErrorMetric::Nmed, 0.8);
        let c = ctx.evaluate(n.clone());
        assert_eq!(c.po_arrivals.len(), n.output_count());
        assert_eq!(c.po_errors.len(), n.output_count());
    }

    #[test]
    #[should_panic(expected = "depth weight")]
    fn rejects_bad_depth_weight() {
        let n = small_adder();
        let _ = EvalContext::new(
            &n,
            Patterns::exhaustive(8),
            ErrorMetric::ErrorRate,
            TimingConfig::default(),
            1.5,
        );
    }
}

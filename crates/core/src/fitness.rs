//! Circuit fitness evaluation (Eq. 8 of the paper) and the evaluated
//! candidate representation shared by all optimizers.

use std::collections::HashMap;

use tdals_netlist::{GateId, Netlist, NetlistError, SignalRef};
use tdals_sim::{DeltaSim, ErrorEvaluator, ErrorMetric, Patterns, SimResult, SimWords, SimdWidth};
use tdals_sta::{analyze, IncrementalSta, TimingConfig, TimingReport};

use crate::lac::Lac;

/// An approximate circuit together with every quantity the optimizers
/// need: depth, critical-path delay, live area, error, and the per-PO
/// timing/error vectors feeding the reproduction `Level` function.
///
/// Construction goes through [`EvalContext::evaluate`], which runs STA
/// and Monte-Carlo simulation once per candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The approximate netlist.
    pub netlist: Netlist,
    /// Maximum logic depth over POs (`Depth_app`).
    pub depth: u32,
    /// Critical path delay in ps.
    pub cpd: f64,
    /// Live (non-dangling) area in µm² (`Area_app`).
    pub area: f64,
    /// Error vs the accurate circuit under the configured metric.
    pub error: f64,
    /// Depth objective `f_d = Depth_ori / Depth_app` (maximize).
    pub fd: f64,
    /// Area objective `f_a = Area_ori / Area_app` (maximize).
    pub fa: f64,
    /// Scalar fitness `Fit = wd·f_d + wa·f_a` (Eq. 8).
    pub fitness: f64,
    /// Arrival time per PO in ps (`Ta` in Eq. 3).
    pub po_arrivals: Vec<f64>,
    /// Error contribution per PO (`Error` in Eq. 3).
    pub po_errors: Vec<f64>,
}

/// Every quantity of a [`Candidate`] except the materialized netlist.
///
/// Produced by [`EvalContext::score_lac`], which ranks a prospective
/// substitution in O(affected cone) without cloning the parent netlist;
/// candidates that survive selection are materialized afterwards with
/// [`LacScore::into_candidate`].
#[derive(Debug, Clone)]
pub struct LacScore {
    /// Maximum logic depth over POs (`Depth_app`).
    pub depth: u32,
    /// Critical path delay in ps.
    pub cpd: f64,
    /// Live (non-dangling) area in µm² (`Area_app`).
    pub area: f64,
    /// Error vs the accurate circuit under the configured metric.
    pub error: f64,
    /// Depth objective `f_d = Depth_ori / Depth_app` (maximize).
    pub fd: f64,
    /// Area objective `f_a = Area_ori / Area_app` (maximize).
    pub fa: f64,
    /// Scalar fitness `Fit = wd·f_d + wa·f_a` (Eq. 8).
    pub fitness: f64,
    /// Arrival time per PO in ps.
    pub po_arrivals: Vec<f64>,
    /// Error contribution per PO.
    pub po_errors: Vec<f64>,
}

impl LacScore {
    /// Attaches a materialized netlist, completing the [`Candidate`].
    pub fn into_candidate(self, netlist: Netlist) -> Candidate {
        Candidate {
            netlist,
            depth: self.depth,
            cpd: self.cpd,
            area: self.area,
            error: self.error,
            fd: self.fd,
            fa: self.fa,
            fitness: self.fitness,
            po_arrivals: self.po_arrivals,
            po_errors: self.po_errors,
        }
    }
}

/// Incremental scoring state for one base netlist: simulated words
/// ([`DeltaSim`]), timing state ([`IncrementalSta`]), and liveness
/// reference counts for O(dead cone) area updates.
///
/// Built with one full simulation and one full STA pass; every
/// [`EvalContext::score_lac`] against it then costs only the
/// substitution's affected cone. This is what makes candidate scoring
/// O(cone) instead of O(gates × words).
#[derive(Debug, Clone)]
pub struct DeltaEval {
    sim: DeltaSim,
    sta: IncrementalSta,
    /// Liveness of each gate in the base netlist.
    live: Vec<bool>,
    /// Per gate: live reader pins + PO driver references (0 for dead
    /// gates). A live gate dies when all of these references die.
    live_refs: Vec<u32>,
    /// `Area_app` of the base netlist.
    area_live: f64,
}

/// Liveness mask, live reference counts, and live area of a netlist,
/// computed from scratch (the ground truth [`DeltaEval`] maintains
/// incrementally).
fn counts_of(netlist: &Netlist) -> (Vec<bool>, Vec<u32>, f64) {
    let live = netlist.live_mask();
    let mut live_refs = vec![0u32; netlist.gate_count()];
    for (id, gate) in netlist.iter() {
        if !live[id.index()] {
            continue;
        }
        for fanin in gate.fanins() {
            if let SignalRef::Gate(src) = fanin {
                live_refs[src.index()] += 1;
            }
        }
    }
    for (_, driver) in netlist.outputs() {
        if let SignalRef::Gate(src) = driver {
            live_refs[src.index()] += 1;
        }
    }
    let area_live = netlist
        .iter()
        .filter(|(id, _)| live[id.index()])
        .map(|(_, g)| g.cell().area())
        .sum();
    (live, live_refs, area_live)
}

impl DeltaEval {
    fn new(sim: DeltaSim, sta: IncrementalSta) -> DeltaEval {
        let (live, live_refs, area_live) = counts_of(sim.netlist());
        DeltaEval {
            sim,
            sta,
            live,
            live_refs,
            area_live,
        }
    }

    /// Rebuilds the liveness state from scratch off the current netlist.
    fn recount(&mut self) {
        let (live, live_refs, area_live) = counts_of(self.sim.netlist());
        self.live = live;
        self.live_refs = live_refs;
        self.area_live = area_live;
    }

    /// Sets the simulation engine's re-base period (see
    /// [`DeltaSim::with_full_resim_every`]).
    pub fn with_full_resim_every(mut self, n: usize) -> DeltaEval {
        self.sim = self.sim.with_full_resim_every(n);
        self
    }

    /// The base netlist.
    pub fn netlist(&self) -> &Netlist {
        self.sim.netlist()
    }

    /// Consumes the scoring state, returning the base netlist (the
    /// simulated words and timing arrays are dropped).
    pub fn into_netlist(self) -> Netlist {
        self.sim.into_netlist()
    }

    /// The base simulation state (feeds similarity scoring).
    pub fn sim(&self) -> &DeltaSim {
        &self.sim
    }

    /// The base timing state.
    pub fn sta(&self) -> &IncrementalSta {
        &self.sta
    }

    /// Snapshot of the base timing as a [`TimingReport`] (feeds
    /// critical-path target collection).
    pub fn report(&self) -> TimingReport {
        self.sta.to_report(self.sim.netlist())
    }

    /// `Area_app` of the base netlist in µm².
    pub fn area_live(&self) -> f64 {
        self.area_live
    }

    /// Liveness (PO reachability) of each gate in the base netlist.
    pub fn live(&self) -> &[bool] {
        &self.live
    }

    /// Per gate: live reader pins + PO driver references (0 for dead
    /// gates; primary inputs are always live regardless of their count).
    pub fn live_refs(&self) -> &[u32] {
        &self.live_refs
    }

    /// Applies `target := switch` to the scoring state itself: words,
    /// timing arrays, and liveness reference counts all advance to the
    /// substituted netlist, so subsequent previews score against the new
    /// base. Returns the number of rewired reader pins.
    ///
    /// Cost is O(affected cone) for simulation and timing and O(dead
    /// cone) for the liveness counts, except when the switch is a
    /// currently-dead gate — its cone resurrects, which falls back to a
    /// full reachability recount.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] (and leaves the state untouched) if the
    /// substitution violates the topological id invariant.
    pub fn commit(&mut self, target: GateId, switch: SignalRef) -> Result<usize, NetlistError> {
        // The timing engine applies the mutation to the netlist it is
        // handed; give it a scratch clone so the simulator (which owns
        // the real netlist and applies the same rewiring internally)
        // stays the single source of truth.
        let mut scratch = self.sim.netlist().clone();
        self.sta.substitute(&mut scratch, target, switch)?;
        let rewired = self.sim.substitute(target, switch)?;
        self.cascade_refcounts(target, switch);
        #[cfg(debug_assertions)]
        {
            let report =
                tdals_lint::refcount_consistency(self.sim.netlist(), &self.live, &self.live_refs);
            debug_assert!(
                report.has_no_errors(),
                "commit({target}, {switch:?}) corrupted the liveness counts:\n{report}"
            );
        }
        Ok(rewired)
    }

    /// Incrementally updates `live` / `live_refs` / `area_live` after
    /// the netlist mutation `target := switch` has been applied.
    fn cascade_refcounts(&mut self, target: GateId, switch: SignalRef) {
        if !self.live[target.index()] {
            // Only dangling readers were rewired; reachability from the
            // POs is unchanged.
            return;
        }
        if let SignalRef::Gate(sw) = switch {
            if !self.live[sw.index()] {
                // A dead switch cone just came alive; resurrect by
                // recounting rather than walking it backwards.
                self.recount();
                return;
            }
        }
        if self.sim.netlist().gate(target).is_input() {
            // A primary input stays live with zero readers, so the
            // death cascade below does not apply.
            self.recount();
            return;
        }
        // The target's live readers now reference the switch.
        let moved = self.live_refs[target.index()];
        if let SignalRef::Gate(sw) = switch {
            self.live_refs[sw.index()] += moved;
        }
        self.live_refs[target.index()] = 0;
        // The target is now unreachable; cascade deaths through its
        // fan-in cone. Reader rewiring never touches a gate's own
        // fan-in row, so the dead cone's rows still describe the
        // references being released. Primary inputs lose references
        // like any other gate but stay live at zero.
        let netlist = self.sim.netlist();
        self.live[target.index()] = false;
        self.area_live -= netlist.gate(target).cell().area();
        let mut stack = vec![target];
        while let Some(g) = stack.pop() {
            for fanin in netlist.gate(g).fanins() {
                let SignalRef::Gate(src) = *fanin else {
                    continue;
                };
                if !self.live[src.index()] {
                    continue;
                }
                self.live_refs[src.index()] -= 1;
                if self.live_refs[src.index()] == 0 && !netlist.gate(src).is_input() {
                    self.live[src.index()] = false;
                    self.area_live -= netlist.gate(src).cell().area();
                    stack.push(src);
                }
            }
        }
    }

    /// Live area of the circuit after substituting `target := switch`,
    /// computed by cascading reference-count deaths through the
    /// target's dead cone (no netlist clone, no full reachability
    /// pass).
    ///
    /// The switch gate (when the target is live) necessarily lies in
    /// the target's transitive fan-in and inherits the target's live
    /// readers, so it survives; liveness can only shrink through the
    /// target's cone.
    pub fn area_after(&self, target: GateId, switch: SignalRef) -> f64 {
        if !self.live[target.index()] {
            // Substituting a dangling gate rewires only dangling
            // readers: reachability from the POs is unchanged.
            return self.area_live;
        }
        let netlist = self.sim.netlist();
        let mut dead_area = netlist.gate(target).cell().area();
        let mut dec: HashMap<GateId, u32> = HashMap::new();
        let mut stack = vec![target];
        while let Some(g) = stack.pop() {
            for fanin in netlist.gate(g).fanins() {
                let SignalRef::Gate(src) = *fanin else {
                    continue;
                };
                // The switch keeps the target's live readers, and
                // primary inputs always count as live.
                if !self.live[src.index()]
                    || SignalRef::Gate(src) == switch
                    || netlist.gate(src).is_input()
                {
                    continue;
                }
                let d = dec.entry(src).or_insert(0);
                *d += 1;
                if *d == self.live_refs[src.index()] {
                    stack.push(src);
                    dead_area += netlist.gate(src).cell().area();
                }
            }
        }
        self.area_live - dead_area
    }
}

/// Shared evaluation context: the accurate circuit's reference numbers,
/// the Monte-Carlo error evaluator, and the timing configuration.
///
/// # Examples
///
/// ```
/// use tdals_circuits::Benchmark;
/// use tdals_core::EvalContext;
/// use tdals_sim::{ErrorMetric, Patterns};
/// use tdals_sta::TimingConfig;
///
/// let accurate = Benchmark::Max16.build();
/// let ctx = EvalContext::new(
///     &accurate,
///     Patterns::random(32, 2048, 1),
///     ErrorMetric::Nmed,
///     TimingConfig::default(),
///     0.8,
/// );
/// let cand = ctx.evaluate(accurate.clone());
/// assert_eq!(cand.error, 0.0);
/// assert!((cand.fitness - 1.0).abs() < 1e-9); // fd = fa = 1 for itself
/// ```
#[derive(Debug, Clone)]
pub struct EvalContext {
    accurate: Netlist,
    evaluator: ErrorEvaluator,
    timing: TimingConfig,
    depth_weight: f64,
    depth_ori: u32,
    area_ori: f64,
    cpd_ori: f64,
}

impl EvalContext {
    /// Builds a context around the accurate circuit.
    ///
    /// `depth_weight` is `wd` of Eq. 8 (`wa = 1 − wd`); the paper's
    /// calibrated value is 0.8 (Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if `depth_weight` is outside `[0, 1]`.
    pub fn new(
        accurate: &Netlist,
        patterns: Patterns,
        metric: ErrorMetric,
        timing: TimingConfig,
        depth_weight: f64,
    ) -> EvalContext {
        assert!(
            (0.0..=1.0).contains(&depth_weight),
            "depth weight must be in [0, 1]"
        );
        let report = analyze(accurate, &timing);
        EvalContext {
            accurate: accurate.clone(),
            evaluator: ErrorEvaluator::new(accurate, patterns, metric),
            timing,
            depth_weight,
            depth_ori: report.max_depth().max(1),
            area_ori: accurate.area_live(),
            cpd_ori: report.critical_path_delay(),
        }
    }

    /// Sets the SIMD block width of every simulation kernel this
    /// context runs — full passes, golden re-use, and the incremental
    /// engines built by [`EvalContext::delta_sim`] /
    /// [`EvalContext::delta_eval`]. Width is a pure throughput knob:
    /// errors, fitness, and every optimizer trajectory are bit-identical
    /// at any width (pinned by `tests/simd_words.rs`). Returns `self`
    /// for builder-style chaining.
    pub fn with_simd_width(mut self, width: SimdWidth) -> EvalContext {
        self.evaluator = self.evaluator.with_simd_width(width);
        self
    }

    /// Current SIMD block width of the simulation kernels.
    pub fn simd_width(&self) -> SimdWidth {
        self.evaluator.simd_width()
    }

    /// The accurate reference circuit.
    pub fn accurate(&self) -> &Netlist {
        &self.accurate
    }

    /// Accurate circuit's maximum logic depth (`Depth_ori`).
    pub fn depth_ori(&self) -> u32 {
        self.depth_ori
    }

    /// Accurate circuit's live area in µm² (`Area_ori`).
    pub fn area_ori(&self) -> f64 {
        self.area_ori
    }

    /// Accurate circuit's critical path delay in ps (`CPD_ori`).
    pub fn cpd_ori(&self) -> f64 {
        self.cpd_ori
    }

    /// Depth weight `wd` of the fitness function.
    pub fn depth_weight(&self) -> f64 {
        self.depth_weight
    }

    /// Error metric in force.
    pub fn metric(&self) -> ErrorMetric {
        self.evaluator.metric()
    }

    /// Timing configuration used for every STA call.
    pub fn timing(&self) -> &TimingConfig {
        &self.timing
    }

    /// The underlying Monte-Carlo evaluator (golden simulation included).
    pub fn evaluator(&self) -> &ErrorEvaluator {
        &self.evaluator
    }

    /// Simulates a netlist on the shared stimulus (used by circuit
    /// searching to score switch-gate similarities).
    pub fn simulate(&self, netlist: &Netlist) -> SimResult {
        self.evaluator.simulate(netlist)
    }

    /// Builds an incremental simulation state for `netlist` on the
    /// shared stimulus: one full simulation up front, O(affected cone)
    /// per scored or committed substitution afterwards.
    pub fn delta_sim(&self, netlist: Netlist) -> DeltaSim {
        // Build from an explicit-width full pass so the initial
        // simulation and every later cone kernel run at the same width.
        let width = self.simd_width();
        let sim = tdals_sim::simulate_with_width(&netlist, self.evaluator.patterns(), width);
        DeltaSim::from_result(netlist, self.evaluator.patterns().clone(), sim)
            .with_simd_width(width)
    }

    /// Runs STA on a netlist with the shared configuration.
    pub fn analyze(&self, netlist: &Netlist) -> TimingReport {
        analyze(netlist, &self.timing)
    }

    /// Fully evaluates an approximate netlist into a [`Candidate`].
    pub fn evaluate(&self, netlist: Netlist) -> Candidate {
        let report = analyze(&netlist, &self.timing);
        let sim = self.evaluator.simulate(&netlist);
        self.evaluate_with(netlist, &report, &sim)
    }

    /// Builds the incremental scoring state for `netlist`: one full
    /// simulation plus one full STA pass up front; every
    /// [`EvalContext::score_lac`] against it is then O(affected cone).
    pub fn delta_eval(&self, netlist: Netlist) -> DeltaEval {
        let sta = IncrementalSta::new(&netlist, self.timing);
        DeltaEval::new(self.delta_sim(netlist), sta)
    }

    /// Scores the candidate obtained by applying `lac` to `base`'s
    /// netlist **without materializing it**: error through the
    /// simulation cone preview, timing through the STA cone preview,
    /// and area through the dead-cone reference-count cascade.
    ///
    /// The error terms are bit-identical to a full
    /// [`EvalContext::evaluate`] of the mutated netlist (the
    /// incremental simulator shares its word expansion with the full
    /// one); timing and area agree to floating-point settle tolerance.
    pub fn score_lac(&self, base: &DeltaEval, lac: Lac) -> LacScore {
        let view = base.sim().preview(lac.target(), lac.switch());
        let error = self.evaluator.error_of_sim(&view);
        let po_errors = self.evaluator.po_errors_of_sim(&view);
        let timing = base
            .sta()
            .preview_substitute(base.netlist(), lac.target(), lac.switch());
        let area = base.area_after(lac.target(), lac.switch());
        self.score_from(
            timing.max_depth(),
            timing.critical_path_delay(),
            area,
            error,
            timing.po_arrivals,
            po_errors,
        )
    }

    /// [`EvalContext::score_lac`] plus materialization of the mutated
    /// netlist into a full [`Candidate`].
    pub fn evaluate_lac(&self, base: &DeltaEval, lac: Lac) -> Candidate {
        let score = self.score_lac(base, lac);
        let mut netlist = base.netlist().clone();
        lac.apply(&mut netlist)
            .expect("a scored LAC respects the id invariant");
        #[cfg(debug_assertions)]
        {
            let report = tdals_lint::lint_netlist(&netlist);
            debug_assert!(
                report.has_no_errors(),
                "materialized LAC produced a structurally invalid netlist:\n{report}"
            );
        }
        score.into_candidate(netlist)
    }

    /// Evaluates the incremental engine's current netlist into a
    /// [`Candidate`] without any re-simulation (the engine's words are
    /// already current).
    pub fn evaluate_delta(&self, delta: &DeltaSim) -> Candidate {
        let netlist = delta.netlist().clone();
        let report = analyze(&netlist, &self.timing);
        self.evaluate_with(netlist, &report, delta)
    }

    /// Evaluates a netlist when STA and simulation results are already
    /// available (exposed so optimizers can reuse intermediate work; see
    /// C-INTERMEDIATE). `sim` may be any [`SimWords`] view — a full
    /// [`SimResult`] or the incremental engine's state.
    pub fn evaluate_with<V: SimWords>(
        &self,
        netlist: Netlist,
        report: &TimingReport,
        sim: &V,
    ) -> Candidate {
        let error = self.evaluator.error_of_sim(sim);
        let po_errors = self.evaluator.po_errors_of_sim(sim);
        self.score_from(
            report.max_depth(),
            report.critical_path_delay(),
            netlist.area_live(),
            error,
            report.po_arrivals().to_vec(),
            po_errors,
        )
        .into_candidate(netlist)
    }

    /// Depth and area objectives `(f_d, f_a)` for measured quantities.
    fn objectives_from(&self, depth: u32, area: f64) -> (f64, f64) {
        let fd = f64::from(self.depth_ori) / f64::from(depth.max(1));
        let fa = self.area_ori / area.max(1e-9);
        (fd, fa)
    }

    /// Scalar fitness `Fit = wd·f_d + wa·f_a` (Eq. 8) for a measured
    /// depth and live area — the same formula every candidate is
    /// scored with, exposed so other optimizers' progress statistics
    /// stay comparable with DCGWO's.
    pub fn fitness_from(&self, depth: u32, area: f64) -> f64 {
        let (fd, fa) = self.objectives_from(depth, area);
        self.depth_weight * fd + (1.0 - self.depth_weight) * fa
    }

    /// Assembles the fitness terms (Eq. 8) from measured quantities.
    fn score_from(
        &self,
        depth: u32,
        cpd: f64,
        area: f64,
        error: f64,
        po_arrivals: Vec<f64>,
        po_errors: Vec<f64>,
    ) -> LacScore {
        let (fd, fa) = self.objectives_from(depth, area);
        let fitness = self.fitness_from(depth, area);
        LacScore {
            depth,
            cpd,
            area,
            error,
            fd,
            fa,
            fitness,
            po_arrivals,
            po_errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::builder::Builder;
    use tdals_netlist::SignalRef;

    fn small_adder() -> Netlist {
        let mut b = Builder::new("add4");
        let a = b.inputs("a", 4);
        let x = b.inputs("b", 4);
        let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &s);
        b.output("c", c);
        b.finish()
    }

    fn ctx(metric: ErrorMetric, wd: f64) -> (Netlist, EvalContext) {
        let n = small_adder();
        let ctx = EvalContext::new(
            &n,
            Patterns::exhaustive(8),
            metric,
            TimingConfig::default(),
            wd,
        );
        (n, ctx)
    }

    #[test]
    fn accurate_circuit_scores_unity() {
        let (n, ctx) = ctx(ErrorMetric::ErrorRate, 0.8);
        let c = ctx.evaluate(n);
        assert_eq!(c.error, 0.0);
        assert!((c.fd - 1.0).abs() < 1e-12);
        assert!((c.fa - 1.0).abs() < 1e-12);
        assert!((c.fitness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lac_improves_fitness_and_adds_error() {
        let (n, ctx) = ctx(ErrorMetric::ErrorRate, 0.8);
        let mut approx = n.clone();
        // Kill the last carry gate: shortens the critical path.
        let report = ctx.analyze(&approx);
        let path = tdals_sta::critical_path(&approx, &report);
        let target = *path.last().expect("non-empty critical path");
        approx.substitute(target, SignalRef::Const0).expect("lac");
        let c = ctx.evaluate(approx);
        assert!(c.fitness > 1.0, "fitness {} should exceed 1", c.fitness);
        assert!(c.error > 0.0);
        assert!(c.fd >= 1.0);
        assert!(c.fa > 1.0);
    }

    #[test]
    fn depth_weight_shifts_fitness() {
        let (n, ctx_d) = ctx(ErrorMetric::ErrorRate, 1.0);
        let ctx_a = EvalContext::new(
            &n,
            Patterns::exhaustive(8),
            ErrorMetric::ErrorRate,
            TimingConfig::default(),
            0.0,
        );
        let mut approx = n.clone();
        // Remove a non-critical gate: area improves, depth does not.
        let s0 = approx.find_gate("u1").expect("first gate");
        approx.substitute(s0, SignalRef::Const0).expect("lac");
        let cd = ctx_d.evaluate(approx.clone());
        let ca = ctx_a.evaluate(approx);
        assert!(ca.fitness > cd.fitness, "area-weighted sees the gain");
    }

    #[test]
    fn po_vectors_have_output_arity() {
        let (n, ctx) = ctx(ErrorMetric::Nmed, 0.8);
        let c = ctx.evaluate(n.clone());
        assert_eq!(c.po_arrivals.len(), n.output_count());
        assert_eq!(c.po_errors.len(), n.output_count());
    }

    #[test]
    #[should_panic(expected = "depth weight")]
    fn rejects_bad_depth_weight() {
        let n = small_adder();
        let _ = EvalContext::new(
            &n,
            Patterns::exhaustive(8),
            ErrorMetric::ErrorRate,
            TimingConfig::default(),
            1.5,
        );
    }
}

//! Non-dominated sorting and crowding distance (NSGA-II style), used by
//! the paper's circuit population update (§III-B).
//!
//! Candidates are compared on the two maximization objectives
//! `f_d = Depth_ori/Depth_app` and `f_a = Area_ori/Area_app`. Circuits
//! violating the (current, asymptotically relaxed) error constraint are
//! removed before sorting.

/// A point in the two-objective space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Depth objective (maximize).
    pub fd: f64,
    /// Area objective (maximize).
    pub fa: f64,
}

impl Objectives {
    /// Creates an objective pair.
    pub fn new(fd: f64, fa: f64) -> Objectives {
        Objectives { fd, fa }
    }

    /// Pareto dominance: `self` dominates `other` when it is no worse in
    /// both objectives and strictly better in at least one.
    pub fn dominates(self, other: Objectives) -> bool {
        self.fd >= other.fd && self.fa >= other.fa && (self.fd > other.fd || self.fa > other.fa)
    }
}

/// Fast non-dominated sort: partitions indices `0..points.len()` into
/// Pareto fronts, rank 0 first.
///
/// # Examples
///
/// ```
/// use tdals_core::pareto::{non_dominated_sort, Objectives};
///
/// let pts = vec![
///     Objectives::new(2.0, 1.0), // front 0
///     Objectives::new(1.0, 2.0), // front 0 (trade-off)
///     Objectives::new(1.0, 1.0), // front 1 (dominated by both)
/// ];
/// let fronts = non_dominated_sort(&pts);
/// assert_eq!(fronts[0], vec![0, 1]);
/// assert_eq!(fronts[1], vec![2]);
/// ```
pub fn non_dominated_sort(points: &[Objectives]) -> Vec<Vec<usize>> {
    let n = points.len();
    let mut dominated_by: Vec<usize> = vec![0; n]; // count of dominators
    let mut dominates: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if points[i].dominates(points[j]) {
                dominates[i].push(j);
                dominated_by[j] += 1;
            } else if points[j].dominates(points[i]) {
                dominates[j].push(i);
                dominated_by[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominates[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    fronts
}

/// Crowding distance (Eq. 9) of each member of one front.
///
/// Boundary circuits get `+∞`; interior circuits get the normalized
/// objective-space span of their neighbours. Returned in the order of
/// `front`.
pub fn crowding_distance(points: &[Objectives], front: &[usize]) -> Vec<f64> {
    let m = front.len();
    if m == 0 {
        return Vec::new();
    }
    if m <= 2 {
        return vec![f64::INFINITY; m];
    }
    let mut dist = vec![0.0f64; m];
    // Positions of front members within the `front` slice.
    for objective in 0..2usize {
        let value = |i: usize| -> f64 {
            let p = points[front[i]];
            if objective == 0 {
                p.fd
            } else {
                p.fa
            }
        };
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| value(a).total_cmp(&value(b)));
        let span = value(order[m - 1]) - value(order[0]);
        dist[order[0]] = f64::INFINITY;
        dist[order[m - 1]] = f64::INFINITY;
        if span <= 0.0 {
            continue;
        }
        for k in 1..m - 1 {
            let gap = value(order[k + 1]) - value(order[k - 1]);
            dist[order[k]] += gap / span;
        }
    }
    dist
}

/// NSGA-II environmental selection: ranks candidates by
/// (front, crowding-distance) and returns the indices of the `count`
/// survivors, best first.
///
/// Within each front, higher crowding distance wins (better spread).
pub fn select(points: &[Objectives], count: usize) -> Vec<usize> {
    let fronts = non_dominated_sort(points);
    let mut chosen = Vec::with_capacity(count.min(points.len()));
    for front in fronts {
        if chosen.len() >= count {
            break;
        }
        let dist = crowding_distance(points, &front);
        let mut order: Vec<usize> = (0..front.len()).collect();
        order.sort_by(|&a, &b| dist[b].total_cmp(&dist[a]));
        for k in order {
            if chosen.len() >= count {
                break;
            }
            chosen.push(front[k]);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_relation() {
        let a = Objectives::new(2.0, 2.0);
        let b = Objectives::new(1.0, 1.0);
        let c = Objectives::new(2.0, 1.0);
        let d = Objectives::new(1.0, 2.0);
        assert!(a.dominates(b));
        assert!(!b.dominates(a));
        assert!(a.dominates(c));
        assert!(!c.dominates(d), "trade-offs do not dominate");
        assert!(!d.dominates(c));
        assert!(!a.dominates(a), "no self-domination");
    }

    #[test]
    fn fronts_are_mutually_non_dominating() {
        let pts: Vec<Objectives> = (0..25)
            .map(|i| {
                let x = f64::from(i % 5);
                let y = f64::from(i / 5);
                Objectives::new(x, y)
            })
            .collect();
        let fronts = non_dominated_sort(&pts);
        let total: usize = fronts.iter().map(Vec::len).sum();
        assert_eq!(total, pts.len(), "partition covers all points");
        for front in &fronts {
            for (k, &i) in front.iter().enumerate() {
                for &j in &front[k + 1..] {
                    assert!(!pts[i].dominates(pts[j]));
                    assert!(!pts[j].dominates(pts[i]));
                }
            }
        }
    }

    #[test]
    fn earlier_fronts_dominate_later_ones() {
        let pts = vec![
            Objectives::new(3.0, 3.0),
            Objectives::new(2.0, 2.0),
            Objectives::new(1.0, 1.0),
        ];
        let fronts = non_dominated_sort(&pts);
        assert_eq!(fronts.len(), 3);
        assert_eq!(fronts[0], vec![0]);
        assert_eq!(fronts[1], vec![1]);
        assert_eq!(fronts[2], vec![2]);
    }

    #[test]
    fn crowding_boundaries_are_infinite() {
        let pts = vec![
            Objectives::new(1.0, 4.0),
            Objectives::new(2.0, 3.0),
            Objectives::new(3.0, 2.0),
            Objectives::new(4.0, 1.0),
        ];
        let front: Vec<usize> = vec![0, 1, 2, 3];
        let dist = crowding_distance(&pts, &front);
        assert!(dist[0].is_infinite());
        assert!(dist[3].is_infinite());
        assert!(dist[1].is_finite() && dist[1] > 0.0);
        assert!(dist[2].is_finite() && dist[2] > 0.0);
    }

    #[test]
    fn crowding_prefers_spread() {
        // Middle point crowded between close neighbours scores lower
        // than one with distant neighbours.
        let pts = vec![
            Objectives::new(0.0, 10.0),
            Objectives::new(4.9, 5.1), // crowded near the next point
            Objectives::new(5.1, 4.9),
            Objectives::new(10.0, 0.0),
        ];
        let _dist = crowding_distance(&pts, &[0, 1, 2, 3]);
        // Interior points have symmetric spans here; check positivity
        // and that selection keeps boundaries first.
        let sel = select(&pts, 3);
        assert!(sel.contains(&0));
        assert!(sel.contains(&3));
    }

    #[test]
    fn select_takes_fronts_in_order() {
        let pts = vec![
            Objectives::new(2.0, 2.0), // front 0
            Objectives::new(1.0, 1.0), // front 1
            Objectives::new(3.0, 1.5), // front 0
            Objectives::new(0.5, 0.5), // front 2
        ];
        let sel = select(&pts, 2);
        assert_eq!(sel.len(), 2);
        assert!(sel.contains(&0) && sel.contains(&2));
    }

    #[test]
    fn select_handles_small_populations() {
        let pts = vec![Objectives::new(1.0, 1.0)];
        assert_eq!(select(&pts, 5), vec![0]);
        assert!(select(&[], 5).is_empty());
    }

    #[test]
    fn degenerate_identical_points() {
        let pts = vec![Objectives::new(1.0, 1.0); 6];
        let fronts = non_dominated_sort(&pts);
        assert_eq!(fronts.len(), 1, "identical points share a front");
        let sel = select(&pts, 3);
        assert_eq!(sel.len(), 3);
    }
}

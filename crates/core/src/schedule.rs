//! Asymptotic error constraint relaxation (§III-B).
//!
//! The population update does not admit the full user error budget from
//! iteration 0; instead the constraint follows the quadratic schedule
//! `Error_cons(iter) = b·iter² + Error⁰_cons`, reaching the user bound
//! exactly at `Imax`. This keeps the population from rushing to the
//! error boundary and stalling in a local optimum.

/// Quadratic error-constraint schedule.
///
/// # Examples
///
/// ```
/// use tdals_core::ErrorSchedule;
///
/// let sched = ErrorSchedule::new(0.05, 0.25, 20);
/// assert!((sched.bound_at(0) - 0.0125).abs() < 1e-12); // 25% of 5%
/// assert!((sched.bound_at(20) - 0.05).abs() < 1e-12);  // full budget
/// assert!(sched.bound_at(10) < sched.bound_at(15));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSchedule {
    initial: f64,
    coefficient: f64,
    max_bound: f64,
    max_iterations: usize,
}

impl ErrorSchedule {
    /// Creates a schedule that starts at `initial_fraction × max_bound`
    /// and relaxes quadratically to `max_bound` at `horizon` iterations
    /// (clamping there for any remaining iterations). The paper sets the
    /// quadratic coefficient `b` "empirically"; reaching the full budget
    /// before `Imax` leaves iterations to exploit it.
    ///
    /// # Panics
    ///
    /// Panics if `max_bound` is negative, `initial_fraction` is outside
    /// `[0, 1]`, or `horizon` is zero.
    pub fn with_horizon(max_bound: f64, initial_fraction: f64, horizon: usize) -> ErrorSchedule {
        ErrorSchedule::new(max_bound, initial_fraction, horizon)
    }

    /// Creates a schedule that starts at `initial_fraction × max_bound`
    /// and relaxes quadratically to `max_bound` at `max_iterations`.
    ///
    /// # Panics
    ///
    /// Panics if `max_bound` is negative, `initial_fraction` is outside
    /// `[0, 1]`, or `max_iterations` is zero.
    pub fn new(max_bound: f64, initial_fraction: f64, max_iterations: usize) -> ErrorSchedule {
        assert!(max_bound >= 0.0, "error bound must be non-negative");
        assert!(
            (0.0..=1.0).contains(&initial_fraction),
            "initial fraction must be in [0, 1]"
        );
        assert!(max_iterations > 0, "need at least one iteration");
        let initial = max_bound * initial_fraction;
        let coefficient = (max_bound - initial) / (max_iterations as f64).powi(2);
        ErrorSchedule {
            initial,
            coefficient,
            max_bound,
            max_iterations,
        }
    }

    /// Constraint in force at iteration `iter` (clamped to the user
    /// bound past `Imax`).
    pub fn bound_at(&self, iter: usize) -> f64 {
        let it = iter.min(self.max_iterations) as f64;
        (self.coefficient * it * it + self.initial).min(self.max_bound)
    }

    /// The user's final error budget.
    pub fn max_bound(&self) -> f64 {
        self.max_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_monotone_and_bounded() {
        let s = ErrorSchedule::new(0.05, 0.25, 20);
        let mut prev = -1.0;
        for iter in 0..=25 {
            let b = s.bound_at(iter);
            assert!(b >= prev, "monotone at {iter}");
            assert!(b <= 0.05 + 1e-15, "bounded at {iter}");
            prev = b;
        }
        assert_eq!(s.bound_at(25), 0.05, "clamped past Imax");
    }

    #[test]
    fn quadratic_shape() {
        // Early iterations relax slower than late ones.
        let s = ErrorSchedule::new(0.1, 0.0, 10);
        let early = s.bound_at(2) - s.bound_at(1);
        let late = s.bound_at(9) - s.bound_at(8);
        assert!(late > early * 2.0, "quadratic growth accelerates");
    }

    #[test]
    fn zero_fraction_starts_at_zero() {
        let s = ErrorSchedule::new(0.05, 0.0, 20);
        assert_eq!(s.bound_at(0), 0.0);
        assert_eq!(s.bound_at(20), 0.05);
    }

    #[test]
    fn full_fraction_is_constant() {
        let s = ErrorSchedule::new(0.05, 1.0, 20);
        for iter in 0..=20 {
            assert!((s.bound_at(iter) - 0.05).abs() < 1e-15);
        }
    }
}

//! Deterministic scoped worker pool for candidate evaluation.
//!
//! The paper's flow spends nearly all of its wall-clock time scoring
//! candidate substitutions, and every score is independent of every
//! other — "the inherent parallelism of GWO". This module is the one
//! place in the workspace that turns that independence into threads: a
//! hand-rolled pool over [`std::thread::scope`] (the build environment
//! has no registry access, so no rayon) that the DCGWO offspring pool,
//! the seeding phase, and the baseline population loops all share.
//!
//! # Determinism contract
//!
//! For a pure per-item function `f`, [`par_map`] returns exactly
//! `items.map(f)` — same values, same order — for **every** thread
//! count, including 1. Workers claim items from an atomic cursor, so
//! *which worker* computes an item is scheduling-dependent, but each
//! result lands in the slot of its input index and the caller's
//! reduction runs single-threaded over the slots in input order.
//! Nothing about worker scheduling can leak into the result, which is
//! what lets `OptimizerConfig::threads` promise bit-identical
//! [`FlowOutcome`](crate::api::FlowOutcome)s at any width.
//!
//! Callers that own an RNG keep it out of the pool entirely: random
//! decisions are drawn in a serial phase (or from per-item streams split
//! off the run seed with [`split_seed`]), and only the deterministic
//! evaluation work goes behind [`par_map`].
//!
//! # Cancellation
//!
//! [`par_map_batched`] processes the items in bounded batches and
//! consults a `poll` callback between batches, so a raised
//! [`CancelFlag`](crate::api::CancelFlag) or an expired deadline stops
//! the fan-out within one batch instead of after the whole item set —
//! cancellation latency stays bounded as thread count grows.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads the host can actually run in parallel
/// (`std::thread::available_parallelism`, 1 when unknown).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Normalizes a thread-count knob: `0` means "one worker per available
/// core", anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        available_threads()
    } else {
        threads
    }
}

/// Batch size used between cancellation polls: enough items to keep
/// every worker busy several times over (amortizing the scoped-spawn
/// cost), small enough that a cancel or deadline is noticed promptly.
pub fn poll_batch(threads: usize) -> usize {
    resolve_threads(threads).saturating_mul(4).max(8)
}

/// Maps `items` through `f` over `threads` workers, returning the
/// results in input order.
///
/// With `threads <= 1` (or fewer than two items) the map runs inline on
/// the calling thread; the results are identical either way — see the
/// module-level determinism contract.
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = resolve_threads(threads);
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = threads.min(items.len());
    // Per-slot mutexes instead of one big lock: workers only ever touch
    // disjoint indices, so the locks are uncontended by construction,
    // and the crate-wide `forbid(unsafe_code)` stays intact.
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let item = jobs[i]
                    .lock()
                    .expect("job mutex is never poisoned")
                    .take()
                    .expect("each job is claimed exactly once");
                let result = f(item);
                *slots[i].lock().expect("slot mutex is never poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot mutex is never poisoned")
                .expect("every claimed job fills its slot")
        })
        .collect()
}

/// Result of a [`par_map_batched`] run: the completed prefix of the
/// map, in input order, and whether the whole item set was processed.
#[derive(Debug)]
pub struct BatchedMap<R> {
    /// Results for the processed prefix of the input, in input order.
    pub results: Vec<R>,
    /// `false` when `poll` stopped the run before the last batch.
    pub completed: bool,
}

/// [`par_map`] in bounded batches with a cancellation poll between
/// them.
///
/// `poll` is consulted before each batch (including the first); when it
/// returns `false` the remaining items are dropped and the completed
/// prefix is returned with `completed == false`. Batch boundaries
/// depend on the thread count, so callers must not tie *deterministic*
/// stop decisions (evaluation budgets) to them — poll only the
/// non-deterministic interrupts (cancellation, wall-clock deadline) and
/// enforce deterministic caps in the serial reduction, per item, in
/// input order.
pub fn par_map_batched<T, R, F, P>(
    threads: usize,
    items: Vec<T>,
    f: F,
    mut poll: P,
) -> BatchedMap<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
    P: FnMut() -> bool,
{
    let batch = poll_batch(threads);
    let mut results = Vec::with_capacity(items.len());
    let mut rest = items.into_iter();
    loop {
        let chunk: Vec<T> = rest.by_ref().take(batch).collect();
        if chunk.is_empty() {
            return BatchedMap {
                results,
                completed: true,
            };
        }
        if !poll() {
            return BatchedMap {
                results,
                completed: false,
            };
        }
        results.extend(par_map(threads, chunk, &f));
    }
}

/// Splits a per-item RNG seed off a run seed (SplitMix64 finalizer).
///
/// Parallel phases that need randomness *inside* the fanned-out work —
/// the DCGWO seeding phase chains LACs whose switch selection depends
/// on the member's own evolving simulation state — give each item its
/// own stream derived from `(seed, index)`, so the draws are identical
/// whether the items run on one worker or eight.
pub fn split_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_for_every_width() {
        let items: Vec<u64> = (0..57).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [0, 1, 2, 3, 8, 64] {
            let got = par_map(threads, items.clone(), |x| x * x + 1);
            assert_eq!(got, serial, "threads {threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(4, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(4, vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn batched_map_completes_when_poll_allows() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map_batched(3, items.clone(), |x| x * 2, || true);
        assert!(out.completed);
        assert_eq!(out.results, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn batched_map_stops_at_a_batch_boundary() {
        let mut polls = 0;
        let out = par_map_batched(
            2,
            (0..100usize).collect(),
            |x| x,
            || {
                polls += 1;
                polls <= 2 // allow two batches, stop before the third
            },
        );
        assert!(!out.completed);
        let batch = poll_batch(2);
        assert_eq!(out.results.len(), 2 * batch);
        assert_eq!(out.results, (0..2 * batch).collect::<Vec<_>>());
    }

    #[test]
    fn batched_map_can_stop_before_any_work() {
        let out = par_map_batched(4, vec![1, 2, 3], |x| x, || false);
        assert!(!out.completed);
        assert!(out.results.is_empty());
    }

    #[test]
    fn split_seed_decorrelates_indices() {
        let a = split_seed(42, 0);
        let b = split_seed(42, 1);
        let c = split_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And is a pure function of (seed, index).
        assert_eq!(split_seed(42, 1), b);
    }

    #[test]
    fn resolve_zero_means_available() {
        assert_eq!(resolve_threads(0), available_threads());
        assert_eq!(resolve_threads(3), 3);
        assert!(poll_batch(1) >= 8);
    }
}

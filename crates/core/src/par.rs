//! Deterministic scoped worker pool for candidate evaluation.
//!
//! The paper's flow spends nearly all of its wall-clock time scoring
//! candidate substitutions, and every score is independent of every
//! other — "the inherent parallelism of GWO". This module is the one
//! place in the workspace that turns that independence into threads: a
//! hand-rolled pool over [`std::thread::scope`] (the build environment
//! has no registry access, so no rayon) that the DCGWO offspring pool,
//! the seeding phase, and the baseline population loops all share.
//!
//! # Determinism contract
//!
//! For a pure per-item function `f`, [`par_map`] returns exactly
//! `items.map(f)` — same values, same order — for **every** thread
//! count, including 1. Workers claim items from an atomic cursor, so
//! *which worker* computes an item is scheduling-dependent, but each
//! result lands in the slot of its input index and the caller's
//! reduction runs single-threaded over the slots in input order.
//! Nothing about worker scheduling can leak into the result, which is
//! what lets `OptimizerConfig::threads` promise bit-identical
//! [`FlowOutcome`](crate::api::FlowOutcome)s at any width.
//!
//! Callers that own an RNG keep it out of the pool entirely: random
//! decisions are drawn in a serial phase (or from per-item streams split
//! off the run seed with [`split_seed`]), and only the deterministic
//! evaluation work goes behind [`par_map`].
//!
//! # Cancellation
//!
//! [`par_map_batched`] processes the items in bounded batches and
//! consults a `poll` callback between batches, so a raised
//! [`CancelFlag`](crate::api::CancelFlag) or an expired deadline stops
//! the fan-out within one batch instead of after the whole item set —
//! cancellation latency stays bounded as thread count grows.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use tdals_obs::{clock, trace};

/// Number of worker threads the host can actually run in parallel
/// (`std::thread::available_parallelism`, 1 when unknown).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Normalizes a thread-count knob: `0` means "one worker per available
/// core", anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        available_threads()
    } else {
        threads
    }
}

/// Batch size used between cancellation polls: enough items to keep
/// every worker busy several times over (amortizing the scoped-spawn
/// cost), small enough that a cancel or deadline is noticed promptly.
pub fn poll_batch(threads: usize) -> usize {
    resolve_threads(threads).saturating_mul(4).max(8)
}

/// Maps `items` through `f` over `threads` workers, returning the
/// results in input order.
///
/// With `threads <= 1` (or fewer than two items) the map runs inline on
/// the calling thread; the results are identical either way — see the
/// module-level determinism contract.
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = resolve_threads(threads);
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = threads.min(items.len());
    let _span = trace::span(trace::cat::PAR, "par_map")
        .arg("items", items.len() as u64)
        .arg("workers", workers as u64);
    // Per-slot mutexes instead of one big lock: workers only ever touch
    // disjoint indices, so the locks are uncontended by construction,
    // and the crate-wide `forbid(unsafe_code)` stays intact.
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let item = jobs[i]
                    .lock()
                    .expect("job mutex is never poisoned")
                    .take()
                    .expect("each job is claimed exactly once");
                let result = f(item);
                *slots[i].lock().expect("slot mutex is never poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot mutex is never poisoned")
                .expect("every claimed job fills its slot")
        })
        .collect()
}

/// Result of a [`par_map_batched`] run: the completed prefix of the
/// map, in input order, and whether the whole item set was processed.
#[derive(Debug)]
pub struct BatchedMap<R> {
    /// Results for the processed prefix of the input, in input order.
    pub results: Vec<R>,
    /// `false` when `poll` stopped the run before the last batch.
    pub completed: bool,
}

/// [`par_map`] in bounded batches with a cancellation poll between
/// them.
///
/// `poll` is consulted before each batch (including the first); when it
/// returns `false` the remaining items are dropped and the completed
/// prefix is returned with `completed == false`. Batch boundaries
/// depend on the thread count, so callers must not tie *deterministic*
/// stop decisions (evaluation budgets) to them — poll only the
/// non-deterministic interrupts (cancellation, wall-clock deadline) and
/// enforce deterministic caps in the serial reduction, per item, in
/// input order.
pub fn par_map_batched<T, R, F, P>(
    threads: usize,
    items: Vec<T>,
    f: F,
    mut poll: P,
) -> BatchedMap<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
    P: FnMut() -> bool,
{
    let batch = poll_batch(threads);
    let mut results = Vec::with_capacity(items.len());
    let mut rest = items.into_iter();
    loop {
        let chunk: Vec<T> = rest.by_ref().take(batch).collect();
        if chunk.is_empty() {
            return BatchedMap {
                results,
                completed: true,
            };
        }
        if !poll() {
            return BatchedMap {
                results,
                completed: false,
            };
        }
        results.extend(par_map(threads, chunk, &f));
    }
}

/// Splits a per-item RNG seed off a run seed (SplitMix64 finalizer).
///
/// Parallel phases that need randomness *inside* the fanned-out work —
/// the DCGWO seeding phase chains LACs whose switch selection depends
/// on the member's own evolving simulation state — give each item its
/// own stream derived from `(seed, index)`, so the draws are identical
/// whether the items run on one worker or eight.
pub fn split_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Slot leasing: the shared pool budget behind multi-session scheduling
// ---------------------------------------------------------------------

/// A request to [`SlotPool::lease`] that can never be granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LeaseError {
    /// The minimum width is zero: a lease of no slots runs nothing.
    ZeroWidth,
    /// The minimum width exceeds the pool's total capacity, so the
    /// request would wait forever.
    ExceedsPool {
        /// Slots the caller insisted on.
        requested: usize,
        /// Slots the pool owns in total.
        total: usize,
    },
    /// `max < min`: the requested width range is empty.
    EmptyRange {
        /// Lower end of the rejected range.
        min: usize,
        /// Upper end of the rejected range.
        max: usize,
    },
}

impl fmt::Display for LeaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeaseError::ZeroWidth => f.write_str("a lease of zero slots runs nothing"),
            LeaseError::ExceedsPool { requested, total } => write!(
                f,
                "lease of {requested} slot(s) exceeds the pool total of {total}"
            ),
            LeaseError::EmptyRange { min, max } => {
                write!(f, "lease range [{min}, {max}] is empty")
            }
        }
    }
}

impl std::error::Error for LeaseError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Waiter {
    priority: u8,
    ticket: u64,
}

#[derive(Debug)]
struct PoolState {
    free: usize,
    next_ticket: u64,
    /// Grants issued so far; stamped onto each lease *under this lock*,
    /// so [`SlotLease::sequence`] reflects the true grant order.
    next_grant: u64,
    /// Pending requests, kept sorted: higher priority first, FIFO
    /// within a priority. Only the head may be granted slots (no
    /// barging), so a wide request cannot be starved by narrow ones.
    waiting: Vec<Waiter>,
}

#[derive(Debug)]
struct PoolInner {
    total: usize,
    state: Mutex<PoolState>,
    cv: Condvar,
}

impl PoolInner {
    fn state(&self) -> std::sync::MutexGuard<'_, PoolState> {
        // A panic while holding the lock leaves a consistent counter
        // (slots are only moved under the lock), so poisoning is
        // recoverable by construction.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A capacity-bounded budget of worker slots shared by many sessions.
///
/// This is the pool-budget hook behind multi-tenant scheduling
/// (`tdals-server`): the scheduler owns one `SlotPool` sized to the
/// host's thread budget, and every session must hold a [`SlotLease`] of
/// 1..=cap slots while its flow runs. Because every optimizer returns a
/// bit-identical [`FlowOutcome`](crate::api::FlowOutcome) at any thread
/// count, the pool is free to size leases for *throughput* — fairness
/// decisions can never leak into results.
///
/// # Granting policy
///
/// Requests queue in (priority, arrival) order — higher [`u8`] priority
/// first, FIFO within a priority — and only the queue head is ever
/// granted (no barging, so wide requests cannot starve). The head is
/// granted as soon as at least `min` slots are free, at a width of
///
/// ```text
/// clamp(ceil(free / waiters), min, max)
/// ```
///
/// — an even share of what is free across everyone currently in line,
/// so N simultaneous submissions split the pool ~evenly, while a lone
/// session may take everything up to its `max`.
///
/// Cloning the pool clones a handle to the same shared budget.
#[derive(Debug, Clone)]
pub struct SlotPool {
    inner: Arc<PoolInner>,
}

impl SlotPool {
    /// A pool owning `total` worker slots. A zero-slot pool is legal to
    /// construct (every `lease` fails with [`LeaseError::ExceedsPool`]);
    /// schedulers reject that configuration up front with their own
    /// typed error.
    pub fn new(total: usize) -> SlotPool {
        SlotPool {
            inner: Arc::new(PoolInner {
                total,
                state: Mutex::new(PoolState {
                    free: total,
                    next_ticket: 0,
                    next_grant: 0,
                    waiting: Vec::new(),
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Total slots the pool owns.
    pub fn total(&self) -> usize {
        self.inner.total
    }

    /// Slots not currently leased.
    pub fn available(&self) -> usize {
        self.inner.state().free
    }

    /// Slots currently out on leases.
    pub fn leased(&self) -> usize {
        self.inner.total - self.inner.state().free
    }

    /// Requests currently waiting in line for a lease.
    pub fn waiting(&self) -> usize {
        self.inner.state().waiting.len()
    }

    /// Blocks until this request reaches the head of the line and at
    /// least `min` slots are free, then leases between `min` and `max`
    /// slots (the fair share of what is free — see the type-level
    /// granting policy). Dropping the returned [`SlotLease`] returns
    /// its slots.
    ///
    /// # Errors
    ///
    /// [`LeaseError`] when the request could never be granted: zero
    /// width, an empty range, or `min` beyond the pool total.
    pub fn lease(&self, min: usize, max: usize, priority: u8) -> Result<SlotLease, LeaseError> {
        let lease = self.lease_or_abort(min, max, priority, &|| false)?;
        Ok(lease.expect("the abort predicate never fires"))
    }

    /// [`SlotPool::lease`] with an escape hatch: while the request
    /// waits in line, `abort` is polled (a few hundred times per
    /// second) and a `true` withdraws the request — the waiter leaves
    /// the line and `Ok(None)` is returned. This is how a scheduler
    /// keeps *queued* cancellations bounded: a cancelled session must
    /// not sit blocked behind a long-running co-tenant just to learn it
    /// should stop.
    ///
    /// # Errors
    ///
    /// The same [`LeaseError`]s as [`SlotPool::lease`].
    pub fn lease_or_abort(
        &self,
        min: usize,
        max: usize,
        priority: u8,
        abort: &dyn Fn() -> bool,
    ) -> Result<Option<SlotLease>, LeaseError> {
        if min == 0 {
            return Err(LeaseError::ZeroWidth);
        }
        if max < min {
            return Err(LeaseError::EmptyRange { min, max });
        }
        if min > self.inner.total {
            return Err(LeaseError::ExceedsPool {
                requested: min,
                total: self.inner.total,
            });
        }
        let mut state = self.inner.state();
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        let me = Waiter { priority, ticket };
        // Insert behind every waiter of the same or higher priority:
        // FIFO within a priority class, higher classes first.
        let at = state
            .waiting
            .iter()
            .position(|w| w.priority < priority)
            .unwrap_or(state.waiting.len());
        state.waiting.insert(at, me);
        let m = tdals_obs::metrics();
        m.queue_depth.set(state.waiting.len() as u64);
        // Lazily stamped the first time this request actually blocks,
        // so uncontended grants stay clock-free.
        let mut wait_start: Option<clock::Instant> = None;
        loop {
            if abort() {
                if let Some(pos) = state.waiting.iter().position(|w| w.ticket == ticket) {
                    state.waiting.remove(pos);
                }
                m.queue_depth.set(state.waiting.len() as u64);
                // Leaving the line may expose a grantable new head.
                self.inner.cv.notify_all();
                return Ok(None);
            }
            if state.waiting.first() == Some(&me) && state.free >= min {
                let share = state.free.div_ceil(state.waiting.len());
                let width = share.clamp(min, max).min(state.free);
                state.free -= width;
                state.waiting.remove(0);
                let sequence = state.next_grant;
                state.next_grant += 1;
                m.queue_depth.set(state.waiting.len() as u64);
                m.grant_width.record(width as u64);
                if let Some(start) = wait_start {
                    m.lease_waits.incr();
                    m.lease_wait_us.record(start.elapsed().as_micros() as u64);
                }
                // The next head may also be grantable from what's left.
                self.inner.cv.notify_all();
                return Ok(Some(SlotLease {
                    inner: Arc::clone(&self.inner),
                    width,
                    sequence,
                }));
            }
            wait_start.get_or_insert_with(clock::now);
            // A short timed wait bounds how stale the abort poll can
            // get: releases notify the condvar, but nothing notifies on
            // an abort flag flipping.
            state = self
                .inner
                .cv
                .wait_timeout(state, std::time::Duration::from_millis(5))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Non-blocking [`SlotPool::lease`]: `None` when the pool has fewer
    /// than `min` free slots **or** anyone is already waiting in line
    /// (barging past the queue would defeat the no-starvation order).
    pub fn try_lease(&self, min: usize, max: usize) -> Option<SlotLease> {
        if min == 0 || max < min || min > self.inner.total {
            return None;
        }
        let mut state = self.inner.state();
        if !state.waiting.is_empty() || state.free < min {
            return None;
        }
        let width = state.free.clamp(min, max).min(state.free);
        state.free -= width;
        let sequence = state.next_grant;
        state.next_grant += 1;
        tdals_obs::metrics().grant_width.record(width as u64);
        Some(SlotLease {
            inner: Arc::clone(&self.inner),
            width,
            sequence,
        })
    }
}

/// A held allotment of [`SlotPool`] slots; returns them on drop (and on
/// panic — the lease is just a value on the session's stack), so slots
/// cannot leak whatever way the holder exits.
#[derive(Debug)]
pub struct SlotLease {
    inner: Arc<PoolInner>,
    width: usize,
    sequence: u64,
}

impl SlotLease {
    /// Number of slots held: the worker-thread width the holder may run
    /// at (feed it to `Flow::threads` / `Optimizer::set_threads`).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grant order of this lease within its pool, 0-based. Stamped
    /// under the pool lock at grant time, so comparing sequences of two
    /// leases reflects the order the pool actually admitted them —
    /// unlike anything derived after `lease` returns, which would race.
    pub fn sequence(&self) -> u64 {
        self.sequence
    }
}

impl Drop for SlotLease {
    fn drop(&mut self) {
        let mut state = self.inner.state();
        state.free += self.width;
        debug_assert!(state.free <= self.inner.total, "lease over-release");
        self.inner.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_for_every_width() {
        let items: Vec<u64> = (0..57).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [0, 1, 2, 3, 8, 64] {
            let got = par_map(threads, items.clone(), |x| x * x + 1);
            assert_eq!(got, serial, "threads {threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(4, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(4, vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn batched_map_completes_when_poll_allows() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map_batched(3, items.clone(), |x| x * 2, || true);
        assert!(out.completed);
        assert_eq!(out.results, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn batched_map_stops_at_a_batch_boundary() {
        let mut polls = 0;
        let out = par_map_batched(
            2,
            (0..100usize).collect(),
            |x| x,
            || {
                polls += 1;
                polls <= 2 // allow two batches, stop before the third
            },
        );
        assert!(!out.completed);
        let batch = poll_batch(2);
        assert_eq!(out.results.len(), 2 * batch);
        assert_eq!(out.results, (0..2 * batch).collect::<Vec<_>>());
    }

    #[test]
    fn batched_map_can_stop_before_any_work() {
        let out = par_map_batched(4, vec![1, 2, 3], |x| x, || false);
        assert!(!out.completed);
        assert!(out.results.is_empty());
    }

    #[test]
    fn split_seed_decorrelates_indices() {
        let a = split_seed(42, 0);
        let b = split_seed(42, 1);
        let c = split_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And is a pure function of (seed, index).
        assert_eq!(split_seed(42, 1), b);
    }

    #[test]
    fn resolve_zero_means_available() {
        assert_eq!(resolve_threads(0), available_threads());
        assert_eq!(resolve_threads(3), 3);
        assert!(poll_batch(1) >= 8);
    }

    #[test]
    fn lease_requests_that_can_never_be_granted_are_typed_errors() {
        let pool = SlotPool::new(4);
        assert_eq!(pool.lease(0, 4, 0).unwrap_err(), LeaseError::ZeroWidth);
        assert_eq!(
            pool.lease(5, 8, 0).unwrap_err(),
            LeaseError::ExceedsPool {
                requested: 5,
                total: 4
            }
        );
        assert_eq!(
            pool.lease(3, 2, 0).unwrap_err(),
            LeaseError::EmptyRange { min: 3, max: 2 }
        );
        // Overflow-shaped requests fail the same typed way.
        assert_eq!(
            pool.lease(usize::MAX, usize::MAX, 0).unwrap_err(),
            LeaseError::ExceedsPool {
                requested: usize::MAX,
                total: 4
            }
        );
        // A zero-slot pool can never grant anything.
        let empty = SlotPool::new(0);
        assert_eq!(
            empty.lease(1, 1, 0).unwrap_err(),
            LeaseError::ExceedsPool {
                requested: 1,
                total: 0
            }
        );
        assert_eq!(pool.available(), 4, "failed requests lease nothing");
    }

    #[test]
    fn lone_lease_takes_up_to_max_and_returns_on_drop() {
        let pool = SlotPool::new(4);
        let lease = pool.lease(1, 3, 0).expect("grantable");
        assert_eq!(lease.width(), 3, "lone request gets everything up to max");
        assert_eq!(pool.available(), 1);
        assert_eq!(pool.leased(), 3);
        drop(lease);
        assert_eq!(pool.available(), 4, "drop returns every slot");
        assert_eq!(pool.waiting(), 0);
    }

    #[test]
    fn simultaneous_requests_split_the_pool_fairly() {
        // Two requests queued behind a blocker that owns the whole
        // pool: on release, the head sees ceil(4/2)=2 and the second
        // sees ceil(2/1)=2 while the first still holds its share.
        let pool = SlotPool::new(4);
        let blocker = pool.lease(1, 4, 0).expect("grantable");
        assert_eq!(blocker.width(), 4, "lone request takes everything");
        let widths = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let lease = pool.lease(1, 4, 0).expect("grantable");
                    widths.lock().expect("no panic").push(lease.width());
                    // Hold until everyone in line has been granted, so
                    // released slots cannot inflate later widths.
                    while pool.waiting() > 0 {
                        std::thread::yield_now();
                    }
                });
            }
            while pool.waiting() < 2 {
                std::thread::yield_now();
            }
            drop(blocker);
        });
        assert_eq!(widths.into_inner().expect("no panic"), vec![2, 2]);
        assert_eq!(pool.available(), 4);
    }

    #[test]
    fn priority_orders_the_line_and_fifo_breaks_ties() {
        let pool = SlotPool::new(1);
        let blocker = pool.lease(1, 1, 0).expect("grantable");
        let order = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            // Low priority enters the line first, high priority second.
            scope.spawn(|| {
                let _l = pool.lease(1, 1, 0).expect("grantable");
                order.lock().expect("no panic").push("low");
            });
            while pool.waiting() < 1 {
                std::thread::yield_now();
            }
            scope.spawn(|| {
                let _l = pool.lease(1, 1, 7).expect("grantable");
                order.lock().expect("no panic").push("high");
            });
            while pool.waiting() < 2 {
                std::thread::yield_now();
            }
            drop(blocker);
        });
        assert_eq!(
            order.into_inner().expect("no panic"),
            vec!["high", "low"],
            "higher priority is admitted first"
        );
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn aborted_waits_leave_the_line_without_a_grant() {
        let pool = SlotPool::new(1);
        let blocker = pool.lease(1, 1, 0).expect("grantable");
        let aborted = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let got = pool
                    .lease_or_abort(1, 1, 0, &|| aborted.load(Ordering::Relaxed))
                    .expect("valid range");
                assert!(got.is_none(), "aborted request must not be granted");
            });
            while pool.waiting() < 1 {
                std::thread::yield_now();
            }
            aborted.store(true, Ordering::Relaxed);
        });
        assert_eq!(pool.waiting(), 0, "aborted waiter left the line");
        drop(blocker);
        assert_eq!(pool.available(), 1);
        // An immediate abort never even enters the line.
        assert!(pool
            .lease_or_abort(1, 1, 0, &|| true)
            .expect("valid")
            .is_none());
    }

    #[test]
    fn lease_sequences_record_grant_order() {
        let pool = SlotPool::new(2);
        let first = pool.lease(1, 1, 0).expect("grantable");
        let second = pool.lease(1, 1, 0).expect("grantable");
        assert_eq!(first.sequence(), 0);
        assert_eq!(second.sequence(), 1);
        drop(first);
        let third = pool.try_lease(1, 1).expect("one slot free");
        assert_eq!(third.sequence(), 2, "sequences never repeat");
    }

    #[test]
    fn try_lease_never_barges_past_the_line() {
        let pool = SlotPool::new(2);
        let hold = pool.lease(1, 1, 0).expect("grantable");
        assert!(pool.try_lease(2, 2).is_none(), "not enough free slots");
        let second = pool.try_lease(1, 2).expect("one slot is free");
        assert_eq!(second.width(), 1);
        drop(second);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _wide = pool.lease(2, 2, 0).expect("grantable");
            });
            while pool.waiting() < 1 {
                std::thread::yield_now();
            }
            // One slot is free, but a waiter is in line: no barging.
            assert!(pool.try_lease(1, 1).is_none());
            drop(hold);
        });
        assert_eq!(pool.available(), 2);
    }
}

//! The *circuit searching* approximate action (§III-B): pick a target
//! gate from the critical-path target set and substitute it with its
//! most similar TFI signal or constant, shortening the critical path.

use rand::Rng;
use tdals_netlist::Netlist;
use tdals_sim::{DeltaSim, SimWords};

use crate::fitness::EvalContext;
use crate::lac::{collect_targets, select_switch, Lac};

/// Tunables for circuit searching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// How many worst-PO paths feed the target set `T_c`. The paper
    /// stores the maximum-arrival path of *every* PO (Fig. 5), which is
    /// the default here (`usize::MAX` is clamped to the PO count);
    /// smaller values focus the search on the global critical path.
    pub path_count: usize,
    /// Cap on TFI switch candidates scored per target. The paper scans
    /// the whole transitive fan-in (VECBEE similarity tables), which is
    /// the default; a finite cap trades quality for speed on very large
    /// cones.
    pub max_switch_candidates: usize,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            path_count: usize::MAX,
            max_switch_candidates: usize::MAX,
        }
    }
}

/// Picks one circuit-searching LAC for `netlist` **without applying
/// it**: collect critical-path gates (plus sampled fan-ins) into `T_c`,
/// pick a target uniformly, and select the highest-similarity switch
/// from its TFI or a constant.
///
/// `sim` is any [`SimWords`] view of `netlist` — a full simulation or
/// the incremental engine's current state. Returns `None` when the
/// circuit offers no target (e.g. all outputs constant).
pub fn propose_lac<R: Rng, V: SimWords>(
    ctx: &EvalContext,
    netlist: &Netlist,
    sim: &V,
    cfg: &SearchConfig,
    rng: &mut R,
) -> Option<Lac> {
    let report = ctx.analyze(netlist);
    propose_lac_with(netlist, &report, sim, cfg, rng)
}

/// [`propose_lac`] when a timing report of `netlist` is already
/// available (e.g. snapshotted from an incremental engine), so no full
/// STA pass is needed.
pub fn propose_lac_with<R: Rng, V: SimWords>(
    netlist: &Netlist,
    report: &tdals_sta::TimingReport,
    sim: &V,
    cfg: &SearchConfig,
    rng: &mut R,
) -> Option<Lac> {
    let targets = collect_targets(netlist, report, cfg.path_count, rng);
    if targets.is_empty() {
        return None;
    }
    let target = targets[rng.gen_range(0..targets.len())];
    select_switch(netlist, sim, target, cfg.max_switch_candidates, rng)
}

/// Applies one circuit-searching step to `netlist`, returning the LAC
/// that was applied (or `None` when the circuit offers no target, e.g.
/// all outputs constant).
///
/// This is the full-resimulation convenience wrapper around
/// [`propose_lac`]; the optimizer's hot path goes through
/// [`search_step_delta`] instead.
pub fn search_step<R: Rng>(
    ctx: &EvalContext,
    netlist: &mut Netlist,
    cfg: &SearchConfig,
    rng: &mut R,
) -> Option<Lac> {
    let sim = ctx.simulate(netlist);
    let lac = propose_lac(ctx, netlist, &sim, cfg, rng)?;
    lac.apply(netlist)
        .expect("TFI-drawn switches respect the id invariant");
    Some(lac)
}

/// One circuit-searching step on an incremental simulation state: the
/// LAC is proposed from the engine's current words (no full
/// re-simulation) and committed through the engine's O(cone) update.
pub fn search_step_delta<R: Rng>(
    ctx: &EvalContext,
    delta: &mut DeltaSim,
    cfg: &SearchConfig,
    rng: &mut R,
) -> Option<Lac> {
    let lac = propose_lac(ctx, delta.netlist(), delta, cfg, rng)?;
    delta
        .substitute(lac.target(), lac.switch())
        .expect("TFI-drawn switches respect the id invariant");
    Some(lac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tdals_netlist::builder::Builder;
    use tdals_netlist::SignalRef;
    use tdals_sim::{ErrorMetric, Patterns};
    use tdals_sta::TimingConfig;

    fn setup() -> (Netlist, EvalContext) {
        let mut b = Builder::new("t");
        let a = b.inputs("a", 4);
        let x = b.inputs("b", 4);
        let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &s);
        b.output("c", c);
        let n = b.finish();
        let ctx = EvalContext::new(
            &n,
            Patterns::exhaustive(8),
            ErrorMetric::ErrorRate,
            TimingConfig::default(),
            0.8,
        );
        (n, ctx)
    }

    #[test]
    fn search_produces_valid_circuits() {
        let (n, ctx) = setup();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let mut approx = n.clone();
            let lac = search_step(&ctx, &mut approx, &SearchConfig::default(), &mut rng);
            assert!(lac.is_some());
            approx.check_invariants().expect("valid after search");
        }
    }

    #[test]
    fn search_targets_live_on_worst_paths() {
        let (n, ctx) = setup();
        let mut rng = StdRng::seed_from_u64(12);
        let report = ctx.analyze(&n);
        let live = n.live_mask();
        for _ in 0..20 {
            let mut approx = n.clone();
            let lac =
                search_step(&ctx, &mut approx, &SearchConfig::default(), &mut rng).expect("lac");
            assert!(live[lac.target().index()], "targets are live gates");
        }
        let _ = report;
    }

    #[test]
    fn repeated_search_tends_to_reduce_depth_or_area() {
        let (n, ctx) = setup();
        let mut rng = StdRng::seed_from_u64(13);
        let base = ctx.evaluate(n.clone());
        let mut improved = 0usize;
        for _ in 0..30 {
            let mut approx = n.clone();
            for _ in 0..3 {
                search_step(&ctx, &mut approx, &SearchConfig::default(), &mut rng);
            }
            let cand = ctx.evaluate(approx);
            if cand.fitness > base.fitness {
                improved += 1;
            }
        }
        assert!(
            improved > 15,
            "search should usually improve fitness ({improved}/30)"
        );
    }
}

//! # tdals-core
//!
//! The primary contribution of *"Timing-driven Approximate Logic
//! Synthesis Based on Double-chase Grey Wolf Optimizer"* (DATE 2025):
//! a timing-driven ALS framework that explores local approximate
//! changes (LACs) with a double-chase grey wolf optimizer and converts
//! the resulting area savings into drive strength — and hence critical
//! path delay — via post-optimization.
//!
//! The flow (Fig. 2 of the paper):
//!
//! 1. **Circuit representation** — gate fan-in adjacency netlists
//!    (provided by [`tdals_netlist`]);
//! 2. **DCGWO** ([`optimize`]) — population-based exploration of
//!    wire-by-wire / wire-by-constant LACs ([`Lac`]) with circuit
//!    searching ([`search_step`]) and circuit reproduction
//!    ([`reproduce`]) actions, fitness per Eq. 8 ([`EvalContext`]),
//!    NSGA-II-style population update ([`pareto`]) and asymptotic error
//!    constraint relaxation ([`ErrorSchedule`]);
//! 3. **Post-optimization** ([`post_optimize`]) — dangling-gate
//!    deletion and greedy gate re-sizing under an area constraint.
//!
//! The [`api`] module glues the three steps together behind one
//! session API — an [`Optimizer`] trait every method implements and a
//! builder-style [`Flow`] — and reports the paper's headline metric
//! `Ratio_cpd = CPD_fac / CPD_ori`.
//!
//! # Examples
//!
//! ```
//! use tdals_circuits::Benchmark;
//! use tdals_core::api::{Dcgwo, Flow};
//! use tdals_sim::ErrorMetric;
//!
//! let accurate = Benchmark::Int2float.build();
//! let outcome = Flow::for_netlist(&accurate)
//!     .metric(ErrorMetric::Nmed)
//!     .error_bound(0.0244)
//!     .vectors(1024) // quick demo settings
//!     .optimizer(Dcgwo::paper_for(ErrorMetric::Nmed).quick(8, 4))
//!     .run()
//!     .expect("valid configuration");
//! assert!(outcome.error <= 0.0244);
//! assert!(outcome.ratio_cpd <= 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
mod dcgwo;
mod fitness;
mod lac;
pub mod par;
pub mod pareto;
mod postopt;
mod reproduce;
mod schedule;
mod search;

pub use api::{
    Budget, BudgetTracker, CancelFlag, Dcgwo, Flow, FlowError, FlowEvent, FlowOutcome, FnObserver,
    NopObserver, Observer, OptimizeOutcome, Optimizer, StopReason,
};
pub use dcgwo::{
    optimize, optimize_session, ChaseStrategy, IterationStats, OptimizerConfig, OptimizerResult,
};
pub use fitness::{Candidate, DeltaEval, EvalContext, LacScore};
pub use lac::{collect_targets, random_lac, select_switch, Lac};
pub use postopt::{post_optimize, PostOptConfig, PostOptReport};
pub use reproduce::{reproduce, LevelWeights};
pub use schedule::ErrorSchedule;
pub use search::{propose_lac, propose_lac_with, search_step, search_step_delta, SearchConfig};

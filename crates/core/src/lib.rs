//! # tdals-core
//!
//! The primary contribution of *"Timing-driven Approximate Logic
//! Synthesis Based on Double-chase Grey Wolf Optimizer"* (DATE 2025):
//! a timing-driven ALS framework that explores local approximate
//! changes (LACs) with a double-chase grey wolf optimizer and converts
//! the resulting area savings into drive strength — and hence critical
//! path delay — via post-optimization.
//!
//! The flow (Fig. 2 of the paper):
//!
//! 1. **Circuit representation** — gate fan-in adjacency netlists
//!    (provided by [`tdals_netlist`]);
//! 2. **DCGWO** ([`optimize`]) — population-based exploration of
//!    wire-by-wire / wire-by-constant LACs ([`Lac`]) with circuit
//!    searching ([`search_step`]) and circuit reproduction
//!    ([`reproduce`]) actions, fitness per Eq. 8 ([`EvalContext`]),
//!    NSGA-II-style population update ([`pareto`]) and asymptotic error
//!    constraint relaxation ([`ErrorSchedule`]);
//! 3. **Post-optimization** ([`post_optimize`]) — dangling-gate
//!    deletion and greedy gate re-sizing under an area constraint.
//!
//! [`run_flow`] glues the three steps together and reports the paper's
//! headline metric `Ratio_cpd = CPD_fac / CPD_ori`.
//!
//! # Examples
//!
//! ```
//! use tdals_circuits::Benchmark;
//! use tdals_core::{run_flow, FlowConfig};
//! use tdals_sim::ErrorMetric;
//!
//! let accurate = Benchmark::Int2float.build();
//! let mut cfg = FlowConfig::paper_defaults(ErrorMetric::Nmed, 0.0244);
//! cfg.vectors = 1024;               // quick demo settings
//! cfg.optimizer.population = 8;
//! cfg.optimizer.iterations = 4;
//! let result = run_flow(&accurate, &cfg);
//! assert!(result.error <= 0.0244);
//! assert!(result.ratio_cpd <= 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dcgwo;
mod fitness;
mod flow;
mod lac;
pub mod pareto;
mod postopt;
mod reproduce;
mod schedule;
mod search;

pub use dcgwo::{optimize, ChaseStrategy, IterationStats, OptimizerConfig, OptimizerResult};
pub use fitness::{Candidate, DeltaEval, EvalContext, LacScore};
pub use flow::{run_flow, FlowConfig, FlowResult};
pub use lac::{collect_targets, random_lac, select_switch, Lac};
pub use postopt::{post_optimize, PostOptConfig, PostOptReport};
pub use reproduce::{reproduce, LevelWeights};
pub use schedule::ErrorSchedule;
pub use search::{propose_lac, propose_lac_with, search_step, search_step_delta, SearchConfig};

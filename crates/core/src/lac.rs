//! Local approximate changes (LACs): wire-by-wire and wire-by-constant
//! substitution, target-set construction, and similarity-based switch
//! selection (§III-A / §III-B of the paper).

use rand::Rng;
use tdals_netlist::{GateId, Netlist, NetlistError, SignalRef};
use tdals_sim::SimWords;
use tdals_sta::{critical_path_to_po, TimingReport};

/// One local approximate change: substitute every use of the target
/// gate's output with the switch signal.
///
/// With a constant switch this is a *wire-by-constant* LAC; with a gate
/// switch it is *wire-by-wire*. The paper draws switch gates from the
/// target's transitive fan-in, which guarantees the substitution cannot
/// create a combinational loop.
///
/// # Examples
///
/// ```
/// use tdals_core::Lac;
/// use tdals_netlist::{GateId, SignalRef};
///
/// let lac = Lac::new(GateId::new(8), SignalRef::Const0);
/// assert!(lac.is_wire_by_constant());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lac {
    target: GateId,
    switch: SignalRef,
}

impl Lac {
    /// Creates a LAC from a target gate and switch signal.
    pub fn new(target: GateId, switch: SignalRef) -> Lac {
        Lac { target, switch }
    }

    /// Gate whose output wire is substituted away.
    pub fn target(self) -> GateId {
        self.target
    }

    /// Signal taking the target's place.
    pub fn switch(self) -> SignalRef {
        self.switch
    }

    /// `true` when the switch is a constant (`wire-by-constant`).
    pub fn is_wire_by_constant(self) -> bool {
        self.switch.is_const()
    }

    /// Applies the substitution to a netlist, returning the number of
    /// rewritten references.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::FaninOrder`] if the switch gate does not
    /// precede the target in topological id order.
    pub fn apply(self, netlist: &mut Netlist) -> Result<usize, NetlistError> {
        netlist.substitute(self.target, self.switch)
    }
}

/// Builds the target set `T_c` of circuit searching: all gates on the
/// worst path of each of the `path_count` latest primary outputs, plus —
/// with probability 0.5 per sampled gate — their gate fan-ins.
///
/// Primary inputs never enter the set (they cannot be approximated).
pub fn collect_targets<R: Rng>(
    netlist: &Netlist,
    report: &TimingReport,
    path_count: usize,
    rng: &mut R,
) -> Vec<GateId> {
    // Rank POs by arrival time, worst first.
    let mut pos: Vec<usize> = (0..netlist.output_count()).collect();
    pos.sort_by(|&a, &b| report.po_arrival(b).total_cmp(&report.po_arrival(a)));
    pos.truncate(path_count.max(1));

    let mut in_set = vec![false; netlist.gate_count()];
    let mut targets = Vec::new();
    for po in pos {
        for gate in critical_path_to_po(netlist, report, po) {
            if !in_set[gate.index()] && !netlist.gate(gate).is_input() {
                in_set[gate.index()] = true;
                targets.push(gate);
            }
        }
    }
    // Uniform (0,1) sampling per path gate: above 0.5, adopt its fan-ins.
    let path_gates = targets.clone();
    for gate in path_gates {
        if rng.gen::<f64>() > 0.5 {
            for fanin in netlist.gate(gate).fanins() {
                if let SignalRef::Gate(src) = fanin {
                    if !in_set[src.index()] && !netlist.gate(*src).is_input() {
                        in_set[src.index()] = true;
                        targets.push(*src);
                    }
                }
            }
        }
    }
    targets
}

/// Selects the switch signal for `target` by output similarity: the
/// candidate pool is the target's transitive fan-in (sampled down to
/// `max_candidates` when large) plus the constants `0` and `1`; the
/// highest-similarity candidate wins.
///
/// `sim` is any [`SimWords`] view of the netlist — a full
/// [`SimResult`](tdals_sim::SimResult) or the incremental engine's
/// state ([`DeltaSim`](tdals_sim::DeltaSim)).
///
/// Returns `None` when the target has an empty fan-in cone and neither
/// constant improves on it (cannot happen in practice: constants are
/// always candidates).
pub fn select_switch<R: Rng, V: SimWords>(
    netlist: &Netlist,
    sim: &V,
    target: GateId,
    max_candidates: usize,
    rng: &mut R,
) -> Option<Lac> {
    let tfi = netlist.tfi_mask(target);
    let mut pool: Vec<SignalRef> = tfi
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(i, _)| SignalRef::Gate(GateId::new(i)))
        .collect();
    if pool.len() > max_candidates {
        // Sample without replacement via partial Fisher-Yates.
        for i in 0..max_candidates {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(max_candidates);
    }
    pool.push(SignalRef::Const0);
    pool.push(SignalRef::Const1);

    let target_sig = SignalRef::Gate(target);
    let mut best: Option<(SignalRef, f64)> = None;
    for cand in pool {
        if cand == target_sig {
            continue;
        }
        let s = sim.similarity(target_sig, cand);
        if best.is_none_or(|(_, bs)| s > bs) {
            best = Some((cand, s));
        }
    }
    best.map(|(switch, _)| Lac::new(target, switch))
}

/// Draws a random LAC anywhere in the circuit (used for initial
/// population seeding: "performing LACs on randomly selected target
/// gates of the accurate circuit").
pub fn random_lac<R: Rng, V: SimWords>(
    netlist: &Netlist,
    sim: &V,
    max_candidates: usize,
    rng: &mut R,
) -> Option<Lac> {
    let logic_gates: Vec<GateId> = netlist
        .iter()
        .filter(|(_, g)| !g.is_input())
        .map(|(id, _)| id)
        .collect();
    if logic_gates.is_empty() {
        return None;
    }
    let target = logic_gates[rng.gen_range(0..logic_gates.len())];
    select_switch(netlist, sim, target, max_candidates, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tdals_netlist::builder::Builder;
    use tdals_sim::{simulate, Patterns};
    use tdals_sta::{analyze, TimingConfig};

    fn test_circuit() -> Netlist {
        let mut b = Builder::new("t");
        let a = b.inputs("a", 4);
        let x = b.inputs("b", 4);
        let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &s);
        b.output("c", c);
        b.finish()
    }

    #[test]
    fn targets_come_from_critical_paths() {
        let n = test_circuit();
        let report = analyze(&n, &TimingConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let targets = collect_targets(&n, &report, 2, &mut rng);
        assert!(!targets.is_empty());
        for t in &targets {
            assert!(!n.gate(*t).is_input(), "PIs are never targets");
        }
        // The worst PO's driver must be in the set.
        let worst = report.critical_po();
        let driver = n.output_driver(worst).gate().expect("gate-driven PO");
        assert!(targets.contains(&driver));
    }

    #[test]
    fn switch_comes_from_tfi_or_constants() {
        let n = test_circuit();
        let p = Patterns::exhaustive(8);
        let sim = simulate(&n, &p);
        let mut rng = StdRng::seed_from_u64(2);
        for (id, gate) in n.iter() {
            if gate.is_input() {
                continue;
            }
            let lac = select_switch(&n, &sim, id, 16, &mut rng).expect("switch");
            assert_eq!(lac.target(), id);
            // Constant switches are always legal; gate switches must
            // come from the target's TFI.
            if let SignalRef::Gate(s) = lac.switch() {
                assert!(n.tfi_mask(id)[s.index()], "switch inside TFI");
            }
        }
    }

    #[test]
    fn applied_lac_never_creates_cycles() {
        let n = test_circuit();
        let p = Patterns::exhaustive(8);
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..50 {
            let mut approx = n.clone();
            let sim = simulate(&approx, &p);
            if let Some(lac) = random_lac(&approx, &sim, 16, &mut rng) {
                lac.apply(&mut approx).expect("TFI switch is always legal");
                approx
                    .check_invariants()
                    .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            }
        }
    }

    #[test]
    fn switch_selection_picks_high_similarity() {
        // Build a circuit where gate `dup` duplicates gate `orig`:
        // similarity 1.0, so `dup`'s best switch must be `orig`.
        let mut b = Builder::new("dup");
        let a = b.input("a");
        let x = b.input("b");
        let orig = b.raw_gate(tdals_netlist::cell::CellFunc::And2, &[a, x]);
        let inv = b.not(orig);
        let dup = b.not(inv); // dup == orig functionally
        b.output("y", dup);
        let n = b.finish();
        let p = Patterns::exhaustive(2);
        let sim = simulate(&n, &p);
        let mut rng = StdRng::seed_from_u64(4);
        let dup_gate = dup.gate().expect("gate");
        let lac = select_switch(&n, &sim, dup_gate, 16, &mut rng).expect("switch");
        assert_eq!(lac.switch(), orig, "perfect-similarity switch chosen");
    }

    #[test]
    fn wire_by_constant_classification() {
        let lac0 = Lac::new(GateId::new(5), SignalRef::Const0);
        let lacw = Lac::new(GateId::new(5), SignalRef::Gate(GateId::new(2)));
        assert!(lac0.is_wire_by_constant());
        assert!(!lacw.is_wire_by_constant());
    }
}

//! Post-optimization (§III-C): dangling-gate deletion followed by
//! timing-driven gate re-sizing under an area constraint, converting the
//! optimizer's area savings into further critical-path-delay reduction.

use tdals_netlist::Netlist;
use tdals_sta::{analyze, size_for_timing, SizingConfig, TimingConfig};

/// Options for [`post_optimize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PostOptConfig {
    /// Area constraint `Area_con` in µm² — usually the accurate
    /// circuit's area (TABLEs II/III set it a hair below `Area_ori`).
    pub area_con: f64,
    /// Sizer tunables.
    pub sizing: SizingConfig,
}

impl PostOptConfig {
    /// Budget at exactly `area_con` with default sizing behaviour.
    pub fn new(area_con: f64) -> PostOptConfig {
        PostOptConfig {
            area_con,
            sizing: SizingConfig::default(),
        }
    }
}

/// Outcome of post-optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PostOptReport {
    /// Dangling gates removed by the sweep.
    pub gates_removed: usize,
    /// CPD before any post-optimization, ps.
    pub cpd_before: f64,
    /// CPD after the dangling sweep (load relief alone), ps.
    pub cpd_after_sweep: f64,
    /// Final CPD after sizing (`CPD_fac`), ps.
    pub cpd_final: f64,
    /// Final live area, µm².
    pub area_final: f64,
    /// Accepted sizing moves.
    pub sizing_moves: usize,
}

/// Runs the full post-optimization on an approximate netlist in place.
///
/// Deletes every gate with an (transitively) empty fan-out, then
/// greedily upsizes critical-path gates while total area stays within
/// `cfg.area_con`. The circuit function is untouched: the sweep only
/// removes unobservable gates and the sizer only changes drive
/// strengths.
pub fn post_optimize(
    netlist: &mut Netlist,
    timing: &TimingConfig,
    cfg: &PostOptConfig,
) -> PostOptReport {
    let cpd_before = analyze(netlist, timing).critical_path_delay();
    let gates_removed = netlist.sweep_dangling();
    let cpd_after_sweep = analyze(netlist, timing).critical_path_delay();
    let sizing = size_for_timing(netlist, timing, cfg.area_con, &cfg.sizing);
    PostOptReport {
        gates_removed,
        cpd_before,
        cpd_after_sweep,
        cpd_final: sizing.cpd_after,
        area_final: sizing.area_after,
        sizing_moves: sizing.moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::builder::Builder;
    use tdals_netlist::SignalRef;
    use tdals_sim::{simulate, Patterns};

    fn approximated_adder() -> Netlist {
        let mut b = Builder::new("t");
        let a = b.inputs("a", 6);
        let x = b.inputs("b", 6);
        let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &s);
        b.output("c", c);
        let mut n = b.finish();
        // Approximate: kill the top sum bit's cone.
        let d = n.output_driver(5).gate().expect("gate");
        n.substitute(d, SignalRef::Const0).expect("lac");
        n
    }

    #[test]
    fn sweep_then_size_improves_cpd() {
        let mut n = approximated_adder();
        let timing = TimingConfig::default();
        let area_con = n.area_total(); // pre-LAC area as the budget
        let report = post_optimize(&mut n, &timing, &PostOptConfig::new(area_con));
        assert!(report.gates_removed > 0, "LAC left dangling gates");
        assert!(report.cpd_after_sweep <= report.cpd_before + 1e-9);
        assert!(report.cpd_final <= report.cpd_after_sweep + 1e-9);
        assert!(report.area_final <= area_con + 1e-9);
        n.check_invariants().expect("valid after post-opt");
    }

    #[test]
    fn post_opt_preserves_function() {
        let mut n = approximated_adder();
        let p = Patterns::random(12, 1024, 3);
        let before = simulate(&n, &p);
        let timing = TimingConfig::default();
        let area_con = n.area_total() * 1.2;
        post_optimize(&mut n, &timing, &PostOptConfig::new(area_con));
        let after = simulate(&n, &p);
        for po in 0..n.output_count() {
            for w in 0..p.word_count() {
                assert_eq!(
                    before.po_word(po, w),
                    after.po_word(po, w),
                    "PO {po} word {w}"
                );
            }
        }
    }

    #[test]
    fn tight_budget_still_sweeps() {
        let mut n = approximated_adder();
        let timing = TimingConfig::default();
        // Budget below current area: sizing can do nothing, sweep still runs.
        let report = post_optimize(&mut n, &timing, &PostOptConfig::new(1.0));
        assert!(report.gates_removed > 0);
        assert_eq!(report.sizing_moves, 0);
    }
}

//! The *circuit reproduction* approximate action (§III-B): merge the
//! best PO-TFI pairs of two approximate circuits into one child, guided
//! by the `Level` evaluation of Eq. 3.

use tdals_netlist::Netlist;

use crate::fitness::Candidate;

/// Weights of the PO-TFI pair evaluation function `Level` (Eq. 3).
///
/// `Level(PO_i) = wt / Ta(PO_i) + we / Error(PO_i)`. The paper sets
/// `wt = 0.9 × CPD_ori` under both metrics and `we = 0.1` (ER) or
/// `0.2` (NMED).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelWeights {
    /// Timing weight `wt` (already scaled by `CPD_ori`).
    pub wt: f64,
    /// Error weight `we`.
    pub we: f64,
    /// Floor applied to the per-PO error before taking `1/Error`.
    ///
    /// Eq. 3 degenerates at `Error = 0`; with a microscopic floor an
    /// error-free PO scores astronomically and reproduction would never
    /// adopt a *slightly* erroneous but much faster cone, disabling the
    /// merge mechanism entirely. Setting the floor at a fraction of the
    /// error budget treats every sufficiently-clean cone as equally
    /// clean and lets the timing term arbitrate among them.
    pub error_floor: f64,
}

impl LevelWeights {
    /// Creates explicit weights with a strict (1e-6) error floor.
    pub fn new(wt: f64, we: f64) -> LevelWeights {
        LevelWeights {
            wt,
            we,
            error_floor: 1e-6,
        }
    }

    /// The paper's setting for a circuit with the given accurate CPD:
    /// `wt = 0.9 × CPD_ori`, `we` as passed (0.1 for ER, 0.2 for NMED).
    pub fn paper_defaults(cpd_ori: f64, we: f64) -> LevelWeights {
        LevelWeights {
            wt: 0.9 * cpd_ori,
            we,
            error_floor: 1e-6,
        }
    }

    /// Same weights with the error floor raised to match an error
    /// budget (optimizers pass a fraction of the user bound).
    pub fn with_error_floor(mut self, floor: f64) -> LevelWeights {
        self.error_floor = floor.max(1e-9);
        self
    }

    /// `Level` score of one PO given its arrival time and error
    /// contribution.
    ///
    /// Both denominators are clamped. The timing term saturates at
    /// `100 × wt / CPD_ori`-scale for constant-driven POs (arrival ≈ 0),
    /// so a PO tied to a constant can never out-score an error-free PO:
    /// correctness rewards must dominate degenerate timing rewards.
    pub fn level(&self, arrival: f64, error: f64) -> f64 {
        let min_arrival = 0.01 * self.wt.max(1e-9); // wt ≈ 0.9·CPD_ori
        self.wt / arrival.max(min_arrival) + self.we / error.max(self.error_floor)
    }
}

/// Produces a child circuit from two evaluated parents by taking, for
/// every primary output, the PO-TFI pair with the higher `Level`.
///
/// Pairs are written in descending `Level` order and gates accept
/// adjacency information only from the first write-in, exactly as in the
/// paper's Fig. 5 walk-through; gates in no chosen cone keep parent
/// `a`'s adjacency (the paper: "their information is selected from cp1
/// and cp2"), which also covers dangling gates.
///
/// # Panics
///
/// Panics if the parents disagree in gate or output count (they are
/// always approximations of the same accurate circuit).
pub fn reproduce(a: &Candidate, b: &Candidate, weights: &LevelWeights) -> Netlist {
    let na = &a.netlist;
    let nb = &b.netlist;
    assert_eq!(na.gate_count(), nb.gate_count(), "parents must be siblings");
    assert_eq!(
        na.output_count(),
        nb.output_count(),
        "parents must share outputs"
    );
    let po_count = na.output_count();

    // Score every (po, parent) and pick the better parent per PO.
    struct Choice {
        po: usize,
        from_b: bool,
        level: f64,
    }
    let mut choices: Vec<Choice> = (0..po_count)
        .map(|po| {
            let la = weights.level(a.po_arrivals[po], a.po_errors[po]);
            let lb = weights.level(b.po_arrivals[po], b.po_errors[po]);
            if lb > la {
                Choice {
                    po,
                    from_b: true,
                    level: lb,
                }
            } else {
                Choice {
                    po,
                    from_b: false,
                    level: la,
                }
            }
        })
        .collect();
    // Higher-level pairs write first (first-write-wins on shared gates).
    choices.sort_by(|x, y| y.level.total_cmp(&x.level));

    let mut child = na.clone();
    let mut written = vec![false; na.gate_count()];
    for choice in &choices {
        let parent = if choice.from_b { nb } else { na };
        child.set_output_driver(choice.po, parent.output_driver(choice.po));
        let cone = parent.po_cone_mask(&[choice.po]);
        for (idx, &in_cone) in cone.iter().enumerate() {
            if in_cone && !written[idx] {
                written[idx] = true;
                let id = tdals_netlist::GateId::new(idx);
                if !parent.gate(id).is_input() {
                    child
                        .set_fanins(id, parent.gate(id).fanins().to_vec())
                        .expect("sibling adjacency rows always satisfy the id invariant");
                }
            }
        }
    }
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::EvalContext;
    use tdals_netlist::builder::Builder;
    use tdals_netlist::SignalRef;
    use tdals_sim::{ErrorMetric, Patterns};
    use tdals_sta::TimingConfig;

    fn setup() -> (Netlist, EvalContext) {
        let mut b = Builder::new("t");
        let a = b.inputs("a", 4);
        let x = b.inputs("b", 4);
        let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &s);
        b.output("c", c);
        let n = b.finish();
        let ctx = EvalContext::new(
            &n,
            Patterns::exhaustive(8),
            ErrorMetric::ErrorRate,
            TimingConfig::default(),
            0.8,
        );
        (n, ctx)
    }

    #[test]
    fn level_prefers_fast_and_clean() {
        let w = LevelWeights::paper_defaults(100.0, 0.1);
        let fast_clean = w.level(50.0, 0.0);
        let slow_clean = w.level(100.0, 0.0);
        let fast_dirty = w.level(50.0, 0.5);
        assert!(fast_clean > slow_clean);
        assert!(fast_clean > fast_dirty);
    }

    #[test]
    fn identical_parents_reproduce_identically() {
        let (n, ctx) = setup();
        let cand = ctx.evaluate(n.clone());
        let child = reproduce(&cand, &cand, &LevelWeights::paper_defaults(100.0, 0.1));
        assert_eq!(child, n);
    }

    #[test]
    fn child_mixes_po_cones_from_both_parents() {
        let (n, ctx) = setup();
        // Parent A: damage PO 0's cone. Parent B: damage PO 4's cone.
        let mut pa = n.clone();
        let d0 = pa.output_driver(0).gate().expect("gate");
        pa.substitute(d0, SignalRef::Const0).expect("lac");
        let mut pb = n.clone();
        let d4 = pb.output_driver(4).gate().expect("gate");
        pb.substitute(d4, SignalRef::Const1).expect("lac");

        let ca = ctx.evaluate(pa);
        let cb = ctx.evaluate(pb);
        let w = LevelWeights::paper_defaults(ctx.cpd_ori(), 0.1);
        let child = reproduce(&ca, &cb, &w);
        child.check_invariants().expect("valid child");
        let cc = ctx.evaluate(child);
        // Best case: child inherits B's intact PO0 and A's intact PO4,
        // in which case it is error-free; at minimum it must not be
        // worse than both parents on every PO.
        assert!(
            cc.error <= ca.error.max(cb.error) + 1e-12,
            "child error {} vs parents {} / {}",
            cc.error,
            ca.error,
            cb.error
        );
    }

    #[test]
    fn child_satisfies_invariants_after_heavy_mixing() {
        let (n, ctx) = setup();
        use crate::search::{search_step, SearchConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let w = LevelWeights::paper_defaults(ctx.cpd_ori(), 0.1);
        for _ in 0..10 {
            let mut pa = n.clone();
            let mut pb = n.clone();
            for _ in 0..4 {
                search_step(&ctx, &mut pa, &SearchConfig::default(), &mut rng);
                search_step(&ctx, &mut pb, &SearchConfig::default(), &mut rng);
            }
            let ca = ctx.evaluate(pa);
            let cb = ctx.evaluate(pb);
            let child = reproduce(&ca, &cb, &w);
            child.check_invariants().expect("valid child");
            // Child outputs must each match one of the parents' drivers.
            for po in 0..child.output_count() {
                let d = child.output_driver(po);
                assert!(
                    d == ca.netlist.output_driver(po) || d == cb.netlist.output_driver(po),
                    "PO {po} driver comes from a parent"
                );
            }
        }
    }
}

//! The double-chase grey wolf optimizer (DCGWO, §III-B) and the
//! traditional single-chase GWO baseline it is compared against.
//!
//! Per iteration the population is divided into the **leader** (fitness
//! rank 1), **elite circuits** (ranks 2-4) and the **ω group** (the
//! rest). Chase 1 has the leader guide the elites; Chase 2 has the
//! elites guide ω. Each circuit takes an approximate action — circuit
//! searching or circuit reproduction — chosen by comparing its decision
//! parameter `W = A·D` (Eqs. 4-6, with the scaling factor `a` of Eq. 7
//! decaying over iterations) against the hierarchy's threshold. After
//! the chase, candidates are filtered by the asymptotically relaxed
//! error constraint and reduced to the next population by non-dominated
//! sorting with crowding distance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdals_sim::DeltaSim;

use crate::api::{
    Budget, BudgetTracker, FlowEvent, NopObserver, Observer, OptimizeOutcome, StopReason,
};
use crate::fitness::{Candidate, DeltaEval, EvalContext, LacScore};
use crate::lac::Lac;
use crate::par;
use crate::pareto::{select, Objectives};
use crate::reproduce::{reproduce, LevelWeights};
use crate::schedule::ErrorSchedule;
use crate::search::{propose_lac_with, SearchConfig};

/// Population-guidance strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaseStrategy {
    /// The paper's contribution: leader → elites → ω double chase.
    DoubleChase,
    /// Traditional GWO: the three best circuits guide everyone else in
    /// a single hierarchy.
    SingleChase,
}

/// Tunable parameters of the optimizer.
///
/// Defaults follow §IV-A of the paper: population 30, 20 iterations,
/// `wd = 0.8`, `wt = 0.9 × CPD_ori` (via [`LevelWeights`]), `we` of
/// 0.1 (ER) / 0.2 (NMED) supplied per run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct OptimizerConfig {
    /// Population size `N`.
    pub population: usize,
    /// Iteration limit `Imax`.
    pub iterations: usize,
    /// Error weight `we` of the reproduction `Level` function.
    pub level_we: f64,
    /// Decision threshold `S_e` for elite circuits.
    pub elite_threshold: f64,
    /// Decision threshold `S_ω` for ω circuits.
    pub omega_threshold: f64,
    /// Starting fraction of the error budget for the asymptotic
    /// relaxation schedule.
    pub initial_constraint_fraction: f64,
    /// Fraction of `Imax` at which the schedule reaches the full error
    /// budget (the paper's "empirical parameter b" expressed as a
    /// horizon); the remaining iterations exploit the full budget.
    pub relax_horizon: f64,
    /// LACs applied to the accurate circuit per initial member.
    pub initial_lacs: usize,
    /// Circuit-searching tunables.
    pub search: SearchConfig,
    /// Double- or single-chase guidance.
    pub chase: ChaseStrategy,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Worker threads for seeding and offspring evaluation (the paper
    /// exploits "the inherent parallelism of GWO"); `1` evaluates
    /// inline, `0` means one worker per available core. Results are
    /// bit-identical for any thread count (see [`crate::par`]).
    pub threads: usize,
    /// Enables the circuit-reproduction action (ablation knob; with it
    /// off, every action is circuit searching).
    pub reproduction: bool,
    /// Re-base period for the incremental simulation engine: after this
    /// many committed LACs a [`tdals_sim::DeltaSim`] chain discards its
    /// state and fully re-simulates, bounding any drift the
    /// incrementally maintained bookkeeping could accumulate. `0` never re-bases
    /// (incremental results are bit-identical by construction, so this
    /// is a defense-in-depth knob, not a correctness requirement).
    pub full_resim_every_n: usize,
}

impl Default for OptimizerConfig {
    fn default() -> OptimizerConfig {
        OptimizerConfig {
            population: 30,
            iterations: 20,
            level_we: 0.1,
            elite_threshold: 0.5,
            omega_threshold: 0.3,
            initial_constraint_fraction: 0.25,
            relax_horizon: 0.6,
            initial_lacs: 2,
            search: SearchConfig::default(),
            chase: ChaseStrategy::DoubleChase,
            seed: 0xDC6E0,
            threads: 1,
            reproduction: true,
            full_resim_every_n: 64,
        }
    }
}

impl OptimizerConfig {
    /// The paper's error weight `we` of the reproduction `Level`
    /// function for a metric: 0.1 under ER, 0.2 under NMED (§IV-A).
    /// The single source of truth for every entry point that mimics
    /// the paper's protocol.
    pub fn paper_level_we(metric: tdals_sim::ErrorMetric) -> f64 {
        match metric {
            tdals_sim::ErrorMetric::ErrorRate => 0.1,
            tdals_sim::ErrorMetric::Nmed => 0.2,
        }
    }

    /// Sets the population size `N`.
    pub fn with_population(mut self, population: usize) -> OptimizerConfig {
        self.population = population;
        self
    }

    /// Sets the iteration limit `Imax`.
    pub fn with_iterations(mut self, iterations: usize) -> OptimizerConfig {
        self.iterations = iterations;
        self
    }

    /// Sets the error weight `we` of the reproduction `Level` function.
    pub fn with_level_we(mut self, level_we: f64) -> OptimizerConfig {
        self.level_we = level_we;
        self
    }

    /// Sets the elite decision threshold `S_e`.
    pub fn with_elite_threshold(mut self, elite_threshold: f64) -> OptimizerConfig {
        self.elite_threshold = elite_threshold;
        self
    }

    /// Sets the ω decision threshold `S_ω`.
    pub fn with_omega_threshold(mut self, omega_threshold: f64) -> OptimizerConfig {
        self.omega_threshold = omega_threshold;
        self
    }

    /// Sets the starting fraction of the error budget for the
    /// asymptotic relaxation schedule.
    pub fn with_initial_constraint_fraction(mut self, fraction: f64) -> OptimizerConfig {
        self.initial_constraint_fraction = fraction;
        self
    }

    /// Sets the fraction of `Imax` at which the relaxation schedule
    /// reaches the full error budget.
    pub fn with_relax_horizon(mut self, relax_horizon: f64) -> OptimizerConfig {
        self.relax_horizon = relax_horizon;
        self
    }

    /// Sets the LAC count applied per initial population member.
    pub fn with_initial_lacs(mut self, initial_lacs: usize) -> OptimizerConfig {
        self.initial_lacs = initial_lacs;
        self
    }

    /// Sets the circuit-searching tunables.
    pub fn with_search(mut self, search: SearchConfig) -> OptimizerConfig {
        self.search = search;
        self
    }

    /// Sets double- or single-chase guidance.
    pub fn with_chase(mut self, chase: ChaseStrategy) -> OptimizerConfig {
        self.chase = chase;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> OptimizerConfig {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count for offspring evaluation.
    pub fn with_threads(mut self, threads: usize) -> OptimizerConfig {
        self.threads = threads;
        self
    }

    /// Enables or disables the circuit-reproduction action.
    pub fn with_reproduction(mut self, reproduction: bool) -> OptimizerConfig {
        self.reproduction = reproduction;
        self
    }

    /// Sets the incremental-simulation re-base period.
    pub fn with_full_resim_every(mut self, n: usize) -> OptimizerConfig {
        self.full_resim_every_n = n;
        self
    }
}

/// Per-iteration progress record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStats {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Error constraint in force.
    pub constraint: f64,
    /// Best fitness in the surviving population.
    pub best_fitness: f64,
    /// Depth of that best circuit.
    pub best_depth: u32,
    /// Live area of that best circuit.
    pub best_area: f64,
    /// Number of error-feasible candidates this round.
    pub feasible: usize,
}

/// Outcome of an optimizer run.
#[derive(Debug, Clone)]
pub struct OptimizerResult {
    /// Highest-fitness circuit observed with error within the *full*
    /// user budget (the paper's "optimal approximate netlist").
    pub best: Candidate,
    /// Final population.
    pub population: Vec<Candidate>,
    /// Per-iteration statistics for convergence analysis.
    pub history: Vec<IterationStats>,
}

impl OptimizerResult {
    /// Indices of the final population's rank-0 Pareto set over
    /// `(f_d, f_a)` — the depth/area trade-off frontier the run
    /// discovered.
    pub fn pareto_front(&self) -> Vec<usize> {
        let points: Vec<Objectives> = self
            .population
            .iter()
            .map(|c| Objectives::new(c.fd, c.fa))
            .collect();
        crate::pareto::non_dominated_sort(&points)
            .into_iter()
            .next()
            .unwrap_or_default()
    }
}

/// Runs the optimizer on the accurate circuit held by `ctx`.
///
/// `error_bound` is the user's ER or NMED budget (the metric comes from
/// the context). The returned best circuit always satisfies the bound;
/// if no LAC is ever feasible it is the accurate circuit itself.
///
/// This is the unbudgeted, unobserved entry point; the session API
/// ([`crate::api::Dcgwo`]) runs the same loop through
/// [`optimize_session`] with identical results under an unlimited
/// budget.
pub fn optimize(ctx: &EvalContext, error_bound: f64, cfg: &OptimizerConfig) -> OptimizerResult {
    let outcome = optimize_session(
        ctx,
        error_bound,
        cfg,
        &Budget::unlimited(),
        &mut NopObserver,
    );
    OptimizerResult {
        best: outcome.best,
        population: outcome.population,
        history: outcome.history,
    }
}

/// [`optimize`] with a [`Budget`] honored at every iteration boundary
/// and progress streamed to `obs`. Under [`Budget::unlimited`] the
/// results are bit-identical to [`optimize`]: budget checks and event
/// emission never touch the RNG stream.
pub fn optimize_session(
    ctx: &EvalContext,
    error_bound: f64,
    cfg: &OptimizerConfig,
    budget: &Budget,
    obs: &mut dyn Observer,
) -> OptimizeOutcome {
    let mut tracker = budget.start_tracking();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let horizon = ((cfg.iterations as f64 * cfg.relax_horizon).round() as usize)
        .clamp(1, cfg.iterations.max(1));
    let schedule =
        ErrorSchedule::with_horizon(error_bound, cfg.initial_constraint_fraction, horizon);
    // Per-PO errors below a tenth of the budget count as "clean" in the
    // reproduction Level, letting its timing term pick the faster of
    // two acceptable cones.
    let weights = LevelWeights::paper_defaults(ctx.cpd_ori(), cfg.level_we)
        .with_error_floor(0.1 * error_bound);

    // Initial population: LACs on randomly selected target gates of the
    // accurate circuit; member 0 stays accurate as a feasible anchor.
    // The context's golden simulation already covers the accurate
    // circuit on the shared stimulus, so the DeltaSim base wraps it
    // instead of re-simulating; each member's LAC chain then
    // re-evaluates only the mutated cones.
    let base_delta = DeltaSim::from_result(
        ctx.accurate().clone(),
        ctx.evaluator().patterns().clone(),
        ctx.evaluator().golden().clone(),
    )
    .with_full_resim_every(cfg.full_resim_every_n);
    let accurate = ctx.evaluate_delta(&base_delta);
    tracker.record_evaluations(1);
    let threads = par::resolve_threads(cfg.threads);
    let mut population: Vec<Candidate> = Vec::with_capacity(cfg.population);
    let mut best = accurate.clone();
    population.push(accurate.clone());
    // Seed the rest of the population over the worker pool. Each member
    // owns a DeltaSim scratch clone of the shared base and an RNG
    // stream split off the run seed by member index, so its LAC chain —
    // whose switch selection reads the member's own evolving simulation
    // state — draws the same switches whether it is built inline or on
    // any worker. The admission loop below runs serially in member
    // order: the deterministic budget caps stop admission at the same
    // member for every thread count (the seeding phase must not pay
    // population-many evaluations past a tiny evaluation budget), while
    // cancellation and the deadline abort the fan-out between batches.
    // The accurate anchor is already in, so stopping early is always
    // safe.
    // Deterministic pre-truncation: never fan out work a deterministic
    // cap will refuse to admit. A pre-stopped budget (iteration cap 0,
    // exhausted evaluations, pre-raised flag) seeds nothing; an
    // evaluation cap bounds the member count. Both depend only on
    // counts, so the truncation is identical for every thread width.
    let seed_budget = match tracker.stop_before_iteration(0) {
        Some(_) => 0,
        None => tracker
            .remaining_evaluations()
            .map_or(usize::MAX, |n| usize::try_from(n).unwrap_or(usize::MAX)),
    };
    let member_seeds: Vec<u64> = (1..cfg.population)
        .map(|i| par::split_seed(cfg.seed, i as u64))
        .take(seed_budget)
        .collect();
    let seeded = par::par_map_batched(
        threads,
        member_seeds,
        |member_seed| {
            let mut rng = StdRng::seed_from_u64(member_seed);
            let mut member = base_delta.clone();
            for _ in 0..cfg.initial_lacs.max(1) {
                if let Some(lac) = crate::lac::random_lac(
                    member.netlist(),
                    &member,
                    cfg.search.max_switch_candidates,
                    &mut rng,
                ) {
                    member
                        .substitute(lac.target(), lac.switch())
                        .expect("legal LAC");
                }
            }
            ctx.evaluate_delta(&member)
        },
        || tracker.interrupted().is_none(),
    );
    for cand in seeded.results {
        if tracker.stop_before_iteration(0).is_some() {
            break;
        }
        tracker.record_evaluations(1);
        if track_best(&mut best, &cand, error_bound) {
            obs.on_event(&best_improved_event(0, &best));
        }
        population.push(cand);
    }

    let mut stop = StopReason::Completed;
    let mut history = Vec::with_capacity(cfg.iterations);
    for iter in 0..cfg.iterations {
        if let Some(reason) = tracker.stop_before_iteration(iter) {
            stop = reason;
            break;
        }
        let constraint = schedule.bound_at(iter);
        obs.on_event(&FlowEvent::IterationStarted {
            iteration: iter,
            constraint,
        });
        let a = 2.0 - 2.0 * iter as f64 / cfg.iterations.max(1) as f64;
        sort_by_fitness(&mut population);

        // With worker threads, build each member's scoring base (the
        // expensive full sim + STA) in parallel before the serial,
        // RNG-owning chase.
        let mut bases = prebuild_bases(ctx, &population, cfg, threads);
        let offspring = match cfg.chase {
            ChaseStrategy::DoubleChase => {
                double_chase(ctx, &population, &mut bases, a, cfg, &weights, &mut rng)
            }
            ChaseStrategy::SingleChase => {
                single_chase(ctx, &population, &mut bases, a, cfg, &weights, &mut rng)
            }
        };

        // Score the offspring over the worker pool, polling for
        // cancellation/deadline between batches so a raised flag stops
        // the run within one batch even mid-iteration. Best-so-far
        // tracking and event emission stay on this thread, in
        // candidate-index order.
        let scored = evaluate_offspring(ctx, offspring, threads, &tracker);
        tracker.record_evaluations(scored.results.len() as u64);
        let mut new_entries: Vec<PoolEntry> = Vec::with_capacity(scored.results.len());
        for entry in scored.results {
            if entry.error() <= error_bound && entry.fitness() > best.fitness {
                best = entry.to_candidate();
                obs.on_event(&best_improved_event(iter, &best));
            }
            new_entries.push(entry);
        }
        if !scored.completed {
            // The interrupt is sticky (the flag stays raised, the
            // deadline stays expired), so re-reading it here names the
            // abort reason. The previous population survives untouched;
            // whatever the completed batches found already fed the
            // best-so-far above.
            stop = tracker
                .interrupted()
                .expect("aborted batches imply a sticky interrupt");
            break;
        }

        // Candidates group: circuits before and after the chase. New
        // offspring stay un-materialized (scores only) until they
        // survive selection.
        let mut candidates: Vec<PoolEntry> = population.into_iter().map(PoolEntry::Ready).collect();
        candidates.extend(new_entries);

        // Error filter at the current (relaxed) constraint, with a
        // lowest-error fallback so the population never dies out.
        let mut feasible: Vec<PoolEntry> = Vec::with_capacity(candidates.len());
        let mut infeasible: Vec<PoolEntry> = Vec::new();
        for cand in candidates {
            if cand.error() <= constraint {
                feasible.push(cand);
            } else {
                infeasible.push(cand);
            }
        }
        let feasible_count = feasible.len();
        if feasible.len() < cfg.population {
            infeasible.sort_by(|x, y| x.error().total_cmp(&y.error()));
            feasible.extend(infeasible.into_iter().take(cfg.population - feasible.len()));
        }

        // Non-dominated sorting + crowding selection down to N; only
        // the survivors pay the netlist materialization.
        let points: Vec<Objectives> = feasible.iter().map(PoolEntry::objectives).collect();
        let keep = select(&points, cfg.population);
        let mut next: Vec<Candidate> = Vec::with_capacity(keep.len());
        let mut taken: Vec<Option<PoolEntry>> = feasible.into_iter().map(Some).collect();
        for idx in keep {
            next.push(
                taken[idx]
                    .take()
                    .expect("selection indices are unique")
                    .into_candidate(),
            );
        }
        population = next;

        let best_now = population
            .iter()
            .max_by(|x, y| x.fitness.total_cmp(&y.fitness))
            .expect("population is never empty");
        let stats = IterationStats {
            iteration: iter,
            constraint,
            best_fitness: best_now.fitness,
            best_depth: best_now.depth,
            best_area: best_now.area,
            feasible: feasible_count,
        };
        history.push(stats);
        obs.on_event(&FlowEvent::IterationFinished { stats });
    }

    sort_by_fitness(&mut population);
    obs.on_event(&FlowEvent::OptimizeFinished {
        stop,
        evaluations: tracker.evaluations(),
    });
    OptimizeOutcome {
        best,
        population,
        history,
        evaluations: tracker.evaluations(),
        stop,
    }
}

/// One chase product awaiting evaluation.
///
/// Search children keep the parent's scoring state plus the proposed
/// LAC so ranking re-evaluates only the substitution's affected cone;
/// reproduced children (whole fan-in rows copied between parents) have
/// no single-cone provenance and are scored with a full evaluation.
enum Offspring {
    /// Score with a full evaluation.
    Full(tdals_netlist::Netlist),
    /// Score incrementally: `base` holds the pre-LAC netlist with its
    /// simulated words and timing state; the candidate is `base` +
    /// `lac`.
    Scored { base: Box<DeltaEval>, lac: Lac },
}

/// A scored member of the survivor-selection pool. Lazy entries defer
/// netlist materialization until they actually survive selection (or
/// set a new best): losing candidates never pay a netlist clone, and a
/// surviving one materializes by mutating the owned base netlist in
/// place. The heavy scoring state (simulated words, timing arrays) is
/// dropped as soon as the score is computed.
enum PoolEntry {
    Ready(Candidate),
    Lazy {
        /// The pre-LAC base netlist, owned.
        netlist: tdals_netlist::Netlist,
        lac: Lac,
        score: LacScore,
    },
}

impl PoolEntry {
    fn error(&self) -> f64 {
        match self {
            PoolEntry::Ready(c) => c.error,
            PoolEntry::Lazy { score, .. } => score.error,
        }
    }

    fn fitness(&self) -> f64 {
        match self {
            PoolEntry::Ready(c) => c.fitness,
            PoolEntry::Lazy { score, .. } => score.fitness,
        }
    }

    fn objectives(&self) -> Objectives {
        match self {
            PoolEntry::Ready(c) => Objectives::new(c.fd, c.fa),
            PoolEntry::Lazy { score, .. } => Objectives::new(score.fd, score.fa),
        }
    }

    /// Materializes without consuming (used by best-so-far tracking).
    fn to_candidate(&self) -> Candidate {
        match self {
            PoolEntry::Ready(c) => c.clone(),
            PoolEntry::Lazy {
                netlist,
                lac,
                score,
            } => {
                let mut netlist = netlist.clone();
                lac.apply(&mut netlist).expect("scored LAC is legal");
                score.clone().into_candidate(netlist)
            }
        }
    }

    /// Materializes, consuming the entry (used for survivors); the
    /// owned base netlist is mutated in place — no clone.
    fn into_candidate(self) -> Candidate {
        match self {
            PoolEntry::Ready(c) => c,
            PoolEntry::Lazy {
                mut netlist,
                lac,
                score,
            } => {
                lac.apply(&mut netlist).expect("scored LAC is legal");
                score.into_candidate(netlist)
            }
        }
    }
}

/// Scores offspring into pool entries over the worker pool, polling the
/// tracker's bounded-latency interrupts between batches. The output
/// order always matches the input order, so parallel and serial runs
/// are bit-identical; an aborted run returns the completed prefix with
/// `completed == false`.
fn evaluate_offspring(
    ctx: &EvalContext,
    offspring: Vec<Offspring>,
    threads: usize,
    tracker: &BudgetTracker,
) -> par::BatchedMap<PoolEntry> {
    par::par_map_batched(
        threads,
        offspring,
        |off| match off {
            Offspring::Full(netlist) => PoolEntry::Ready(ctx.evaluate(netlist)),
            Offspring::Scored { base, lac } => {
                let score = ctx.score_lac(&base, lac);
                // Keep only the base netlist; the simulated words and
                // timing arrays are dead weight once the score exists.
                PoolEntry::Lazy {
                    netlist: (*base).into_netlist(),
                    lac,
                    score,
                }
            }
        },
        || tracker.interrupted().is_none(),
    )
}

fn sort_by_fitness(population: &mut [Candidate]) {
    population.sort_by(|x, y| y.fitness.total_cmp(&x.fitness));
}

fn track_best(best: &mut Candidate, cand: &Candidate, error_bound: f64) -> bool {
    if cand.error <= error_bound && cand.fitness > best.fitness {
        *best = cand.clone();
        return true;
    }
    false
}

fn best_improved_event(iteration: usize, best: &Candidate) -> FlowEvent {
    FlowEvent::BestImproved {
        iteration,
        fitness: best.fitness,
        error: best.error,
        depth: best.depth,
        area: best.area,
    }
}

/// Decision parameter `W = A·D` (Eqs. 4-6). `guide_fitness` is
/// `Fit(c_l)` for elites or the mean elite fitness for ω circuits.
fn decision_parameter<R: Rng>(guide_fitness: f64, own_fitness: f64, a: f64, rng: &mut R) -> f64 {
    let rc: f64 = rng.gen_range(0.0..2.0);
    let d = (rc * guide_fitness - own_fitness).abs();
    let r1: f64 = rng.gen();
    let encircle = (2.0 * r1 - 1.0) * a;
    encircle * d
}

fn search_child<R: Rng>(
    ctx: &EvalContext,
    parent: &Candidate,
    prebuilt: Option<DeltaEval>,
    cfg: &OptimizerConfig,
    rng: &mut R,
) -> Offspring {
    let base = prebuilt.unwrap_or_else(|| {
        ctx.delta_eval(parent.netlist.clone())
            .with_full_resim_every(cfg.full_resim_every_n)
    });
    propose_into_offspring(base, cfg, rng)
}

/// Simulates and times `netlist` once (the simulation feeds
/// similarity-based switch selection, the timing feeds critical-path
/// target collection), proposes a circuit-searching LAC, and packages
/// both so the scoring pass re-evaluates just the affected cone.
fn searched_offspring<R: Rng>(
    ctx: &EvalContext,
    netlist: tdals_netlist::Netlist,
    cfg: &OptimizerConfig,
    rng: &mut R,
) -> Offspring {
    let base = ctx
        .delta_eval(netlist)
        .with_full_resim_every(cfg.full_resim_every_n);
    propose_into_offspring(base, cfg, rng)
}

fn propose_into_offspring<R: Rng>(
    base: DeltaEval,
    cfg: &OptimizerConfig,
    rng: &mut R,
) -> Offspring {
    let report = base.report();
    match propose_lac_with(base.netlist(), &report, base.sim(), &cfg.search, rng) {
        Some(lac) => Offspring::Scored {
            base: Box::new(base),
            lac,
        },
        None => Offspring::Full(base.into_netlist()),
    }
}

/// Builds the per-member scoring bases (one full simulation + STA
/// each) ahead of the chase, in parallel, so the expensive part of
/// offspring construction scales with the `threads` knob. The chase
/// itself stays serial (it owns the RNG stream); base construction
/// draws no randomness, so parallel and serial runs stay bit-identical.
/// With `threads <= 1` nothing is prebuilt — members that end up
/// reproducing instead of searching then never pay for a base.
fn prebuild_bases(
    ctx: &EvalContext,
    population: &[Candidate],
    cfg: &OptimizerConfig,
    threads: usize,
) -> Vec<Option<DeltaEval>> {
    if threads <= 1 || population.is_empty() {
        return population.iter().map(|_| None).collect();
    }
    par::par_map(threads, population.iter().collect(), |cand: &Candidate| {
        Some(
            ctx.delta_eval(cand.netlist.clone())
                .with_full_resim_every(cfg.full_resim_every_n),
        )
    })
}

fn double_chase<R: Rng>(
    ctx: &EvalContext,
    population: &[Candidate],
    bases: &mut [Option<DeltaEval>],
    a: f64,
    cfg: &OptimizerConfig,
    weights: &LevelWeights,
    rng: &mut R,
) -> Vec<Offspring> {
    let n = population.len();
    let mut offspring = Vec::new();
    if n == 0 {
        return offspring;
    }
    let leader = &population[0];
    let elite_end = n.min(4);
    let elite_mean = if elite_end > 1 {
        population[1..elite_end]
            .iter()
            .map(|c| c.fitness)
            .sum::<f64>()
            / (elite_end - 1) as f64
    } else {
        leader.fitness
    };

    // Chase 1: the leader guides the elites.
    for rank in 1..elite_end {
        let ci = &population[rank];
        let w = decision_parameter(leader.fitness, ci.fitness, a, rng);
        if w > cfg.elite_threshold && cfg.reproduction {
            // Reproduce with a circuit of superior fitness.
            let partner = &population[rng.gen_range(0..rank)];
            offspring.push(Offspring::Full(reproduce(ci, partner, weights)));
        } else {
            offspring.push(search_child(ctx, ci, bases[rank].take(), cfg, rng));
        }
    }

    // Chase 2: the elites guide the ω group.
    for idx in elite_end..n {
        let ci = &population[idx];
        let w = decision_parameter(elite_mean, ci.fitness, a, rng);
        let elite_partner = &population[rng.gen_range(0..elite_end)];
        if !cfg.reproduction {
            offspring.push(search_child(ctx, ci, bases[idx].take(), cfg, rng));
        } else if w > cfg.omega_threshold {
            // Both actions compound on one circuit: reproduce with an
            // elite, then search the child.
            let child = reproduce(ci, elite_partner, weights);
            offspring.push(searched_offspring(ctx, child, cfg, rng));
        } else if rng.gen_bool(0.5) {
            offspring.push(search_child(ctx, ci, bases[idx].take(), cfg, rng));
        } else {
            offspring.push(Offspring::Full(reproduce(ci, elite_partner, weights)));
        }
    }

    // The leader searches after the chase to keep its variability.
    offspring.push(search_child(ctx, leader, bases[0].take(), cfg, rng));
    offspring
}

fn single_chase<R: Rng>(
    ctx: &EvalContext,
    population: &[Candidate],
    bases: &mut [Option<DeltaEval>],
    a: f64,
    cfg: &OptimizerConfig,
    weights: &LevelWeights,
    rng: &mut R,
) -> Vec<Offspring> {
    let n = population.len();
    let mut offspring = Vec::new();
    if n == 0 {
        return offspring;
    }
    // Traditional GWO: alpha/beta/delta guide the whole pack with one
    // threshold and no finer hierarchy.
    let leader_end = n.min(3);
    let alpha = &population[0];
    for idx in leader_end..n {
        let ci = &population[idx];
        let w = decision_parameter(alpha.fitness, ci.fitness, a, rng);
        if w > cfg.elite_threshold && cfg.reproduction {
            let partner = &population[rng.gen_range(0..leader_end)];
            offspring.push(Offspring::Full(reproduce(ci, partner, weights)));
        } else {
            offspring.push(search_child(ctx, ci, bases[idx].take(), cfg, rng));
        }
    }
    for idx in 0..leader_end {
        offspring.push(search_child(
            ctx,
            &population[idx],
            bases[idx].take(),
            cfg,
            rng,
        ));
    }
    offspring
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::builder::Builder;
    use tdals_netlist::SignalRef;
    use tdals_sim::{ErrorMetric, Patterns};
    use tdals_sta::TimingConfig;

    fn adder_ctx() -> EvalContext {
        let mut b = Builder::new("add6");
        let a = b.inputs("a", 6);
        let x = b.inputs("b", 6);
        let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &s);
        b.output("c", c);
        let n = b.finish();
        EvalContext::new(
            &n,
            Patterns::exhaustive(12),
            ErrorMetric::ErrorRate,
            TimingConfig::default(),
            0.8,
        )
    }

    fn small_cfg(chase: ChaseStrategy, seed: u64) -> OptimizerConfig {
        OptimizerConfig {
            population: 10,
            iterations: 8,
            chase,
            seed,
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn best_respects_error_bound() {
        let ctx = adder_ctx();
        let bound = 0.05;
        let result = optimize(&ctx, bound, &small_cfg(ChaseStrategy::DoubleChase, 1));
        assert!(result.best.error <= bound + 1e-12);
        result.best.netlist.check_invariants().expect("valid best");
    }

    #[test]
    fn optimizer_improves_over_accurate() {
        // NMED budget: flipping low-significance sum bits is cheap, so
        // a feasible improving LAC always exists on an adder.
        let mut b = Builder::new("add6");
        let a = b.inputs("a", 6);
        let x = b.inputs("b", 6);
        let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &s);
        b.output("c", c);
        let n = b.finish();
        let ctx = EvalContext::new(
            &n,
            Patterns::exhaustive(12),
            ErrorMetric::Nmed,
            TimingConfig::default(),
            0.8,
        );
        let result = optimize(&ctx, 0.05, &small_cfg(ChaseStrategy::DoubleChase, 2));
        assert!(
            result.best.fitness > 1.0,
            "found improvement: fitness {}",
            result.best.fitness
        );
        assert!(result.best.depth <= ctx.depth_ori());
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let ctx = adder_ctx();
        let r1 = optimize(&ctx, 0.05, &small_cfg(ChaseStrategy::DoubleChase, 7));
        let r2 = optimize(&ctx, 0.05, &small_cfg(ChaseStrategy::DoubleChase, 7));
        assert_eq!(r1.best.netlist, r2.best.netlist);
        assert_eq!(r1.history.len(), r2.history.len());
        for (a, b) in r1.history.iter().zip(&r2.history) {
            assert_eq!(a.best_fitness, b.best_fitness);
        }
    }

    #[test]
    fn single_chase_also_works() {
        let ctx = adder_ctx();
        let result = optimize(&ctx, 0.10, &small_cfg(ChaseStrategy::SingleChase, 3));
        assert!(result.best.error <= 0.10 + 1e-12);
        assert!(result.best.fitness >= 1.0);
    }

    #[test]
    fn history_tracks_constraint_relaxation() {
        let ctx = adder_ctx();
        let result = optimize(&ctx, 0.08, &small_cfg(ChaseStrategy::DoubleChase, 4));
        assert_eq!(result.history.len(), 8);
        let constraints: Vec<f64> = result.history.iter().map(|h| h.constraint).collect();
        for pair in constraints.windows(2) {
            assert!(pair[1] >= pair[0], "constraint relaxes monotonically");
        }
        assert!(constraints[0] < 0.08, "starts tight");
    }

    #[test]
    fn population_is_maintained_at_n() {
        let ctx = adder_ctx();
        let result = optimize(&ctx, 0.05, &small_cfg(ChaseStrategy::DoubleChase, 5));
        assert_eq!(result.population.len(), 10);
        for cand in &result.population {
            cand.netlist.check_invariants().expect("valid member");
        }
    }

    #[test]
    fn search_only_ablation_runs_and_respects_bounds() {
        let ctx = adder_ctx();
        let mut cfg = small_cfg(ChaseStrategy::DoubleChase, 15);
        cfg.reproduction = false;
        let result = optimize(&ctx, 0.05, &cfg);
        assert!(result.best.error <= 0.05 + 1e-12);
        result.best.netlist.check_invariants().expect("valid");
    }

    #[test]
    fn pareto_front_is_nonempty_and_mutually_nondominating() {
        let ctx = adder_ctx();
        let result = optimize(&ctx, 0.05, &small_cfg(ChaseStrategy::DoubleChase, 12));
        let front = result.pareto_front();
        assert!(!front.is_empty());
        for (k, &i) in front.iter().enumerate() {
            for &j in &front[k + 1..] {
                let a = Objectives::new(result.population[i].fd, result.population[i].fa);
                let b = Objectives::new(result.population[j].fd, result.population[j].fa);
                assert!(!a.dominates(b) && !b.dominates(a));
            }
        }
    }

    #[test]
    fn parallel_evaluation_is_bit_identical() {
        let ctx = adder_ctx();
        let serial = optimize(&ctx, 0.05, &small_cfg(ChaseStrategy::DoubleChase, 9));
        let mut cfg = small_cfg(ChaseStrategy::DoubleChase, 9);
        cfg.threads = 4;
        let parallel = optimize(&ctx, 0.05, &cfg);
        assert_eq!(serial.best.netlist, parallel.best.netlist);
        for (a, b) in serial.history.iter().zip(&parallel.history) {
            assert_eq!(a.best_fitness, b.best_fitness);
            assert_eq!(a.feasible, b.feasible);
        }
    }

    #[test]
    fn pre_stopped_budget_pays_no_seeding_work() {
        // A budget that is already exhausted must not fan
        // population-many evaluations out before the first verdict: the
        // seeding phase truncates its member list up front, so only the
        // accurate anchor is ever evaluated.
        let ctx = adder_ctx();
        let outcome = optimize_session(
            &ctx,
            0.05,
            &small_cfg(ChaseStrategy::DoubleChase, 8),
            &Budget::unlimited().with_max_iterations(0),
            &mut NopObserver,
        );
        assert_eq!(outcome.stop, StopReason::IterationLimit);
        assert_eq!(outcome.evaluations, 1, "accurate anchor only");
        assert_eq!(outcome.population.len(), 1);
    }

    #[test]
    fn evaluation_cap_bounds_seeding_to_the_cap() {
        let ctx = adder_ctx();
        let outcome = optimize_session(
            &ctx,
            0.05,
            &small_cfg(ChaseStrategy::DoubleChase, 8),
            &Budget::unlimited().with_max_evaluations(3),
            &mut NopObserver,
        );
        assert_eq!(outcome.stop, StopReason::EvaluationLimit);
        assert_eq!(outcome.evaluations, 3, "anchor + two capped members");
        assert_eq!(outcome.population.len(), 3);
    }

    #[test]
    fn zero_error_budget_returns_accurate_equivalent() {
        let ctx = adder_ctx();
        let result = optimize(&ctx, 0.0, &small_cfg(ChaseStrategy::DoubleChase, 6));
        assert_eq!(result.best.error, 0.0);
        // Fitness can exceed 1.0 only through error-free restructuring,
        // which LACs of this kind cannot achieve on an adder — expect
        // the anchor.
        assert!(result.best.fitness >= 1.0);
    }
}

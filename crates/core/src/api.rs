//! The unified session API: one composable, observable, cancellable
//! entry point for every optimizer in the workspace.
//!
//! The paper's Fig. 2 flow is a single pipeline — circuit → optimizer →
//! post-optimization — and this module exposes it as one: the
//! [`Optimizer`] trait abstracts *which* search runs in the middle
//! (DCGWO, single-chase GWO, or any of the `tdals-baselines` methods),
//! while the [`Flow`] builder owns everything around it (stimulus,
//! evaluation context, error budget, post-optimization) and returns a
//! single [`FlowOutcome`] whatever optimizer ran.
//!
//! Three cross-cutting concerns ride along:
//!
//! * **Observation** — an [`Observer`] receives a stream of
//!   [`FlowEvent`]s (iteration started/finished, best-fitness updates,
//!   accepted LACs, post-opt phases) while the run is in progress;
//! * **Budgeting** — a [`Budget`] caps iterations, evaluations, and
//!   wall-clock time, and carries a cooperative [`CancelFlag`] that
//!   stops the run within one iteration;
//! * **Typed errors** — [`FlowError`] replaces the seed's panics for
//!   bad bounds, empty netlists, and Verilog parse failures.
//!
//! # Examples
//!
//! ```
//! use tdals_circuits::Benchmark;
//! use tdals_core::api::{Dcgwo, Flow, FlowEvent};
//! use tdals_sim::ErrorMetric;
//!
//! let accurate = Benchmark::Max16.build();
//! let mut improvements = 0usize;
//! let outcome = Flow::for_netlist(&accurate)
//!     .metric(ErrorMetric::Nmed)
//!     .error_bound(0.0244)
//!     .vectors(1024) // demo-sized stimulus
//!     .optimizer(Dcgwo::paper_for(ErrorMetric::Nmed).quick(8, 4))
//!     .observe(|ev: &FlowEvent| {
//!         if matches!(ev, FlowEvent::BestImproved { .. }) {
//!             improvements += 1;
//!         }
//!     })
//!     .run()
//!     .expect("valid configuration");
//! assert!(outcome.error <= 0.0244);
//! assert!(outcome.ratio_cpd <= 1.0);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tdals_obs::clock::{self, Instant};
use tdals_obs::trace;

use tdals_netlist::{verilog, Netlist, ParseVerilogError};
use tdals_sim::{ErrorMetric, Patterns, SimdWidth};
use tdals_sta::TimingConfig;

use crate::dcgwo::{optimize_session, ChaseStrategy, IterationStats, OptimizerConfig};
use crate::fitness::{Candidate, EvalContext};
use crate::postopt::{post_optimize, PostOptConfig, PostOptReport};

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Typed error for flow construction and execution.
///
/// Everywhere the seed API panicked — bad error bound, empty netlist,
/// unparsable Verilog — the session API returns one of these instead.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// The input netlist has no primary inputs or no primary outputs.
    EmptyNetlist {
        /// Module name of the offending netlist.
        name: String,
    },
    /// The error bound is NaN, negative, or above 1 (both ER and NMED
    /// are normalized to `[0, 1]`).
    InvalidErrorBound {
        /// The rejected bound.
        bound: f64,
    },
    /// [`Flow::error_bound`] was never called.
    MissingErrorBound,
    /// The depth weight `wd` is outside `[0, 1]`.
    InvalidDepthWeight {
        /// The rejected weight.
        weight: f64,
    },
    /// The Monte-Carlo vector count is zero.
    NoVectors,
    /// Structural Verilog failed to parse.
    Verilog(ParseVerilogError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::EmptyNetlist { name } => {
                write!(f, "netlist `{name}` has no primary inputs or outputs")
            }
            FlowError::InvalidErrorBound { bound } => {
                write!(f, "error bound {bound} is not in [0, 1]")
            }
            FlowError::MissingErrorBound => f.write_str("no error bound was set"),
            FlowError::InvalidDepthWeight { weight } => {
                write!(f, "depth weight {weight} is not in [0, 1]")
            }
            FlowError::NoVectors => f.write_str("Monte-Carlo vector count is zero"),
            FlowError::Verilog(e) => write!(f, "Verilog parse failed: {e}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Verilog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseVerilogError> for FlowError {
    fn from(e: ParseVerilogError) -> FlowError {
        FlowError::Verilog(e)
    }
}

// ---------------------------------------------------------------------
// Budget and cancellation
// ---------------------------------------------------------------------

/// Why an optimizer stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StopReason {
    /// The optimizer ran its configured course.
    Completed,
    /// [`Budget::with_max_iterations`] was reached.
    IterationLimit,
    /// [`Budget::with_max_evaluations`] was reached.
    EvaluationLimit,
    /// [`Budget::with_deadline`] expired.
    DeadlineExpired,
    /// The [`CancelFlag`] was raised.
    Cancelled,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StopReason::Completed => "completed",
            StopReason::IterationLimit => "iteration limit",
            StopReason::EvaluationLimit => "evaluation limit",
            StopReason::DeadlineExpired => "deadline expired",
            StopReason::Cancelled => "cancelled",
        })
    }
}

impl StopReason {
    /// Stable kebab-case tag used on the wire (results files, event
    /// frames). Unlike [`Display`](fmt::Display), which is prose, this
    /// tag is a compatibility surface: existing names never change, and
    /// [`StopReason::parse_wire_name`] accepts exactly this set.
    pub fn wire_name(self) -> &'static str {
        match self {
            StopReason::Completed => "completed",
            StopReason::IterationLimit => "iteration-limit",
            StopReason::EvaluationLimit => "evaluation-limit",
            StopReason::DeadlineExpired => "deadline-expired",
            StopReason::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`StopReason::wire_name`]; `None` for unknown tags.
    pub fn parse_wire_name(tag: &str) -> Option<StopReason> {
        Some(match tag {
            "completed" => StopReason::Completed,
            "iteration-limit" => StopReason::IterationLimit,
            "evaluation-limit" => StopReason::EvaluationLimit,
            "deadline-expired" => StopReason::DeadlineExpired,
            "cancelled" => StopReason::Cancelled,
            _ => return None,
        })
    }
}

/// Cooperative cancellation flag shared between a running flow and the
/// code that wants to stop it.
///
/// Clone it (or obtain one from [`Budget::cancel_flag`]), hand the
/// budget to a run, and call [`CancelFlag::cancel`] from any thread;
/// every optimizer loop checks the flag once per iteration, so the run
/// stops within one iteration of the request.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, un-raised flag.
    pub fn new() -> CancelFlag {
        CancelFlag::default()
    }

    /// Requests cancellation. Idempotent, callable from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Resource limits for one optimizer run: iteration cap, evaluation
/// cap, wall-clock deadline, and a cooperative cancellation flag. The
/// default ([`Budget::unlimited`]) imposes nothing.
///
/// Budgets are honored *inside* the optimizer loops: each loop asks the
/// tracker for a stop verdict at the top of every iteration, so a hit
/// limit ends the run within one iteration and still returns the best
/// feasible circuit found so far.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    max_iterations: Option<usize>,
    max_evaluations: Option<u64>,
    deadline: Option<Duration>,
    cancel: CancelFlag,
}

impl Budget {
    /// No limits: the optimizer runs its configured course.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Caps the number of optimizer iterations (rounds / generations).
    pub fn with_max_iterations(mut self, n: usize) -> Budget {
        self.max_iterations = Some(n);
        self
    }

    /// Caps the number of candidate evaluations.
    pub fn with_max_evaluations(mut self, n: u64) -> Budget {
        self.max_evaluations = Some(n);
        self
    }

    /// Wall-clock deadline, measured from the start of the optimizer
    /// run.
    pub fn with_deadline(mut self, d: Duration) -> Budget {
        self.deadline = Some(d);
        self
    }

    /// Iteration cap, if any.
    pub fn max_iterations(&self) -> Option<usize> {
        self.max_iterations
    }

    /// Evaluation cap, if any.
    pub fn max_evaluations(&self) -> Option<u64> {
        self.max_evaluations
    }

    /// Deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The budget's cancellation flag; clone it to cancel from outside.
    pub fn cancel_flag(&self) -> CancelFlag {
        self.cancel.clone()
    }

    /// Starts wall-clock and evaluation tracking for one run. Called by
    /// optimizer implementations at the top of `optimize`.
    pub fn start_tracking(&self) -> BudgetTracker {
        BudgetTracker {
            max_iterations: self.max_iterations,
            max_evaluations: self.max_evaluations,
            // A deadline too far to represent (e.g. Duration::MAX as
            // "effectively none") is no deadline at all, not a panic.
            deadline: self.deadline.and_then(|d| clock::now().checked_add(d)),
            cancel: self.cancel.clone(),
            evaluations: 0,
        }
    }
}

/// Per-run budget state: evaluation counter plus the deadline resolved
/// against the run's start instant. Obtained from
/// [`Budget::start_tracking`]; optimizer loops feed it evaluations and
/// consult [`BudgetTracker::stop_before_iteration`] once per iteration.
#[derive(Debug)]
pub struct BudgetTracker {
    max_iterations: Option<usize>,
    max_evaluations: Option<u64>,
    deadline: Option<Instant>,
    cancel: CancelFlag,
    evaluations: u64,
}

impl BudgetTracker {
    /// Records `n` candidate evaluations.
    pub fn record_evaluations(&mut self, n: u64) {
        self.evaluations += n;
        tdals_obs::metrics().evaluations.add(n);
    }

    /// Evaluations recorded so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Evaluations left before the [`Budget::with_max_evaluations`] cap
    /// trips; `None` means uncapped. Parallel phases consult this
    /// *before* fanning out, so a tiny budget bounds the work actually
    /// performed — not just the results admitted — and the bound is a
    /// pure function of counts, identical for every thread width.
    pub fn remaining_evaluations(&self) -> Option<u64> {
        self.max_evaluations
            .map(|cap| cap.saturating_sub(self.evaluations))
    }

    /// Bounded-latency interrupt check: cancellation and the wall-clock
    /// deadline only — the stop conditions that may fire *between
    /// per-worker candidate batches*, mid-iteration.
    ///
    /// The deterministic caps (iterations, evaluations) are deliberately
    /// excluded: batch boundaries depend on the thread count, and tying
    /// a deterministic cap to them would break the bit-identical
    /// parallel/sequential equivalence that [`crate::par`] guarantees.
    /// Those caps are enforced in each loop's serial reduction instead.
    pub fn interrupted(&self) -> Option<StopReason> {
        if self.cancel.is_cancelled() {
            return Some(StopReason::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if clock::now() >= deadline {
                return Some(StopReason::DeadlineExpired);
            }
        }
        None
    }

    /// Whether the run may proceed into 0-based iteration `iteration`;
    /// `Some(reason)` means stop now and return the best so far.
    pub fn stop_before_iteration(&self, iteration: usize) -> Option<StopReason> {
        if let Some(reason) = self.interrupted() {
            return Some(reason);
        }
        if let Some(cap) = self.max_evaluations {
            if self.evaluations >= cap {
                return Some(StopReason::EvaluationLimit);
            }
        }
        if let Some(cap) = self.max_iterations {
            if iteration >= cap {
                return Some(StopReason::IterationLimit);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------
// Observation
// ---------------------------------------------------------------------

/// One progress event from a running flow.
///
/// Events are emitted in order; the `iteration` fields are
/// non-decreasing over a run, and exactly one
/// [`FlowEvent::OptimizeFinished`] terminates the optimizer phase
/// (followed by the post-opt pair and [`FlowEvent::FlowFinished`] when
/// running through [`Flow`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowEvent {
    /// The session started: reference numbers of the accurate circuit.
    FlowStarted {
        /// [`Optimizer::name`] of the optimizer about to run.
        optimizer: String,
        /// Logic gate count of the accurate circuit.
        gates: usize,
        /// Accurate critical path delay, ps.
        cpd_ori: f64,
        /// Accurate live area, µm².
        area_ori: f64,
        /// Error metric in force.
        metric: ErrorMetric,
        /// User error budget.
        error_bound: f64,
    },
    /// An optimizer iteration (round, generation) began.
    IterationStarted {
        /// 0-based iteration index.
        iteration: usize,
        /// Error constraint in force this iteration (the relaxed bound
        /// for DCGWO, the full budget for baselines).
        constraint: f64,
    },
    /// A new feasible best circuit was found.
    BestImproved {
        /// Iteration during which the improvement was found.
        iteration: usize,
        /// New best fitness (Eq. 8).
        fitness: f64,
        /// Its error under the configured metric.
        error: f64,
        /// Its logic depth.
        depth: u32,
        /// Its live area, µm².
        area: f64,
    },
    /// A local approximate change was committed to the working netlist
    /// (greedy/HEDALS-style accept-one-per-round methods).
    LacAccepted {
        /// Iteration during which the LAC was accepted.
        iteration: usize,
        /// Exact error after the commit.
        error: f64,
        /// Live area after the commit, µm².
        area: f64,
    },
    /// An optimizer iteration finished.
    IterationFinished {
        /// Per-iteration statistics.
        stats: IterationStats,
    },
    /// The optimizer phase ended. Terminal for [`Optimizer::optimize`]:
    /// emitted exactly once per run, whatever the stop reason.
    OptimizeFinished {
        /// Why the optimizer stopped.
        stop: StopReason,
        /// Candidate evaluations spent.
        evaluations: u64,
    },
    /// Post-optimization (sweep + sizing) began.
    PostOptStarted {
        /// Area constraint in force, µm².
        area_con: f64,
    },
    /// Post-optimization finished.
    PostOptFinished {
        /// Sweep/sizing details.
        report: PostOptReport,
    },
    /// The whole session finished; terminal for [`Flow::run`].
    FlowFinished {
        /// Final `Ratio_cpd`.
        ratio_cpd: f64,
        /// Final measured error.
        error: f64,
        /// Wall-clock runtime, seconds.
        runtime_s: f64,
    },
}

impl FlowEvent {
    /// Stable kebab-case discriminant used as the `kind` field of wire
    /// frames. A compatibility surface like [`StopReason::wire_name`]:
    /// existing tags never change; new variants get new tags.
    pub fn kind(&self) -> &'static str {
        match self {
            FlowEvent::FlowStarted { .. } => "flow-started",
            FlowEvent::IterationStarted { .. } => "iteration-started",
            FlowEvent::BestImproved { .. } => "best-improved",
            FlowEvent::LacAccepted { .. } => "lac-accepted",
            FlowEvent::IterationFinished { .. } => "iteration-finished",
            FlowEvent::OptimizeFinished { .. } => "optimize-finished",
            FlowEvent::PostOptStarted { .. } => "post-opt-started",
            FlowEvent::PostOptFinished { .. } => "post-opt-finished",
            FlowEvent::FlowFinished { .. } => "flow-finished",
        }
    }
}

/// Receives [`FlowEvent`]s from a running flow.
///
/// Implementations must be cheap: events are delivered synchronously
/// from inside the optimizer loop. Use [`NopObserver`] when you don't
/// care, or wrap a closure with [`FnObserver`] (which
/// [`Flow::observe`] does for you).
pub trait Observer {
    /// Called once per event, in emission order.
    fn on_event(&mut self, event: &FlowEvent);
}

/// Ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NopObserver;

impl Observer for NopObserver {
    fn on_event(&mut self, _event: &FlowEvent) {}
}

/// Adapts a closure into an [`Observer`].
#[derive(Debug, Clone)]
pub struct FnObserver<F>(pub F);

impl<F: FnMut(&FlowEvent)> Observer for FnObserver<F> {
    fn on_event(&mut self, event: &FlowEvent) {
        (self.0)(event);
    }
}

impl<O: Observer + ?Sized> Observer for &mut O {
    fn on_event(&mut self, event: &FlowEvent) {
        (**self).on_event(event);
    }
}

impl<O: Observer + ?Sized> Observer for Box<O> {
    fn on_event(&mut self, event: &FlowEvent) {
        (**self).on_event(event);
    }
}

/// Observer wrapper [`Flow::run`] installs around the user's observer:
/// it translates the event stream every optimizer already emits into
/// iteration spans and global counters, so DCGWO and all baselines are
/// instrumented at one site, then forwards each event unchanged.
struct InstrumentedObserver<'o> {
    inner: &'o mut dyn Observer,
    iteration: Option<trace::Span>,
}

impl Observer for InstrumentedObserver<'_> {
    fn on_event(&mut self, event: &FlowEvent) {
        match event {
            FlowEvent::IterationStarted { iteration, .. } => {
                // The closure defers the name allocation until the
                // recorder is known to be on.
                self.iteration = trace::enabled()
                    .then(|| trace::span(trace::cat::ITERATION, format!("iter-{iteration}")));
            }
            FlowEvent::LacAccepted { .. } => {
                tdals_obs::metrics().lacs_accepted.incr();
            }
            // OptimizeFinished also closes the span: an optimizer that
            // stops mid-iteration (budget, cancellation, convergence)
            // never emits the final IterationFinished, and the span
            // must end inside the optimize phase, not wherever this
            // wrapper dies.
            FlowEvent::IterationFinished { .. } | FlowEvent::OptimizeFinished { .. } => {
                self.iteration = None;
            }
            _ => {}
        }
        self.inner.on_event(event);
    }
}

// ---------------------------------------------------------------------
// The Optimizer trait
// ---------------------------------------------------------------------

/// Everything an optimizer run reports back, whichever method ran.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// Highest-fitness circuit observed with error within the full user
    /// budget; the accurate circuit if nothing feasible improved on it.
    pub best: Candidate,
    /// Final population (single-solution methods report just the best).
    pub population: Vec<Candidate>,
    /// Per-iteration statistics for convergence analysis.
    pub history: Vec<IterationStats>,
    /// Candidate evaluations spent.
    pub evaluations: u64,
    /// Why the run ended.
    pub stop: StopReason,
}

/// A pluggable ALS optimizer: anything that searches for an approximate
/// circuit under an error bound on a shared [`EvalContext`].
///
/// DCGWO ([`Dcgwo`]) and all four baselines (`tdals_baselines`'s
/// `Greedy`, `Genetic`, `Hedals`, and [`Dcgwo::single_chase`])
/// implement this trait, so they compose with the same [`Flow`]
/// session, honor the same [`Budget`], and stream the same
/// [`FlowEvent`]s.
pub trait Optimizer {
    /// Short human-readable method name (used in reports and events).
    fn name(&self) -> &str;

    /// Sets the worker-thread count for candidate evaluation (see
    /// [`crate::par`]); `0` means one worker per available core.
    ///
    /// Implementations that fan candidate scoring out over the
    /// deterministic pool honor this knob; the result must be
    /// bit-identical for every thread count. The default is a no-op so
    /// optimizers without a parallel phase remain valid.
    fn set_threads(&mut self, _threads: usize) {}

    /// Runs the search on the accurate circuit held by `ctx` under
    /// `error_bound`, honoring `budget` (checked at least once per
    /// iteration) and streaming progress to `obs`.
    ///
    /// The returned best circuit always satisfies the bound; if no LAC
    /// is ever feasible it is the accurate circuit itself.
    fn optimize(
        &mut self,
        ctx: &EvalContext,
        error_bound: f64,
        budget: &Budget,
        obs: &mut dyn Observer,
    ) -> OptimizeOutcome;
}

impl<T: Optimizer + ?Sized> Optimizer for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn set_threads(&mut self, threads: usize) {
        (**self).set_threads(threads);
    }

    fn optimize(
        &mut self,
        ctx: &EvalContext,
        error_bound: f64,
        budget: &Budget,
        obs: &mut dyn Observer,
    ) -> OptimizeOutcome {
        (**self).optimize(ctx, error_bound, budget, obs)
    }
}

/// The paper's double-chase grey wolf optimizer (and its single-chase
/// ablation) behind the [`Optimizer`] trait.
#[derive(Debug, Clone)]
pub struct Dcgwo {
    cfg: OptimizerConfig,
}

impl Dcgwo {
    /// The paper's §IV-A configuration (population 30, 20 iterations,
    /// `we` = 0.1 — the ER setting; see [`Dcgwo::paper_for`]).
    pub fn paper() -> Dcgwo {
        Dcgwo {
            cfg: OptimizerConfig::default(),
        }
    }

    /// The paper's configuration with the error weight `we` matched to
    /// the metric (0.1 under ER, 0.2 under NMED).
    pub fn paper_for(metric: ErrorMetric) -> Dcgwo {
        Dcgwo {
            cfg: OptimizerConfig::default().with_level_we(OptimizerConfig::paper_level_we(metric)),
        }
    }

    /// The traditional single-chase GWO baseline.
    pub fn single_chase() -> Dcgwo {
        Dcgwo {
            cfg: OptimizerConfig::default().with_chase(ChaseStrategy::SingleChase),
        }
    }

    /// Wraps an explicit configuration.
    pub fn new(cfg: OptimizerConfig) -> Dcgwo {
        Dcgwo { cfg }
    }

    /// Shrinks population/iterations for demos and tests.
    pub fn quick(mut self, population: usize, iterations: usize) -> Dcgwo {
        self.cfg.population = population;
        self.cfg.iterations = iterations;
        self
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &OptimizerConfig {
        &self.cfg
    }

    /// Mutable access to the wrapped configuration.
    pub fn config_mut(&mut self) -> &mut OptimizerConfig {
        &mut self.cfg
    }
}

impl Optimizer for Dcgwo {
    fn name(&self) -> &str {
        match self.cfg.chase {
            ChaseStrategy::DoubleChase => "DCGWO",
            ChaseStrategy::SingleChase => "GWO",
        }
    }

    fn set_threads(&mut self, threads: usize) {
        self.cfg.threads = threads;
    }

    fn optimize(
        &mut self,
        ctx: &EvalContext,
        error_bound: f64,
        budget: &Budget,
        obs: &mut dyn Observer,
    ) -> OptimizeOutcome {
        optimize_session(ctx, error_bound, &self.cfg, budget, obs)
    }
}

// ---------------------------------------------------------------------
// The Flow session
// ---------------------------------------------------------------------

enum Source<'a> {
    Borrowed(&'a Netlist),
    Owned(Box<Netlist>),
    Context(&'a EvalContext),
}

/// Builder-style session for the complete Fig. 2 flow: stimulus +
/// evaluation context construction, one [`Optimizer`] run under a
/// [`Budget`], shared post-optimization, and a unified [`FlowOutcome`]
/// — with optional [`FlowEvent`] streaming along the way.
///
/// ```
/// use tdals_circuits::Benchmark;
/// use tdals_core::api::{Dcgwo, Flow};
/// use tdals_sim::ErrorMetric;
///
/// let accurate = Benchmark::Max16.build();
/// let outcome = Flow::for_netlist(&accurate)
///     .metric(ErrorMetric::Nmed)
///     .error_bound(0.0244)
///     .vectors(1024)
///     .optimizer(Dcgwo::paper_for(ErrorMetric::Nmed).quick(8, 4))
///     .run()
///     .expect("valid configuration");
/// assert!(outcome.error <= 0.0244);
/// ```
pub struct Flow<'a> {
    source: Source<'a>,
    metric: ErrorMetric,
    error_bound: Option<f64>,
    vectors: usize,
    pattern_seed: u64,
    depth_weight: f64,
    timing: TimingConfig,
    area_con: Option<f64>,
    budget: Budget,
    threads: Option<usize>,
    simd_width: Option<SimdWidth>,
    optimizer: Box<dyn Optimizer + 'a>,
    observer: Box<dyn Observer + 'a>,
}

/// Result of one flow session, identical in shape for DCGWO and every
/// baseline.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// Final approximate netlist (post-optimized).
    pub netlist: Netlist,
    /// [`Optimizer::name`] of the method that ran.
    pub method: String,
    /// Accurate circuit CPD, ps.
    pub cpd_ori: f64,
    /// Final approximate CPD (`CPD_fac`), ps.
    pub cpd_fac: f64,
    /// `Ratio_cpd = CPD_fac / CPD_ori` (lower is better).
    pub ratio_cpd: f64,
    /// Final measured error (always within the bound).
    pub error: f64,
    /// Final live area, µm².
    pub area: f64,
    /// Area constraint that was enforced.
    pub area_con: f64,
    /// Optimizer outcome: best/population/per-iteration history.
    pub optimize: OptimizeOutcome,
    /// Post-optimization details.
    pub post_opt: PostOptReport,
    /// Wall-clock runtime of the whole session in seconds.
    pub runtime_s: f64,
}

impl FlowOutcome {
    /// Per-iteration convergence history of the optimizer phase.
    pub fn history(&self) -> &[IterationStats] {
        &self.optimize.history
    }

    /// Why the optimizer phase ended.
    pub fn stop(&self) -> StopReason {
        self.optimize.stop
    }
}

impl<'a> Flow<'a> {
    fn with_source(source: Source<'a>) -> Flow<'a> {
        Flow {
            source,
            metric: ErrorMetric::ErrorRate,
            error_bound: None,
            vectors: 4096,
            pattern_seed: 0x7DA15,
            depth_weight: 0.8,
            timing: TimingConfig::default(),
            area_con: None,
            budget: Budget::unlimited(),
            threads: None,
            simd_width: None,
            optimizer: Box::new(Dcgwo::paper()),
            observer: Box::new(NopObserver),
        }
    }

    /// Starts a session on an accurate netlist. Stimulus and evaluation
    /// context are built by [`Flow::run`] from the session's knobs.
    pub fn for_netlist(accurate: &'a Netlist) -> Flow<'a> {
        Flow::with_source(Source::Borrowed(accurate))
    }

    /// Starts a session on structural Verilog text.
    ///
    /// # Errors
    ///
    /// [`FlowError::Verilog`] when the text does not parse.
    pub fn for_verilog(text: &str) -> Result<Flow<'static>, FlowError> {
        let netlist = verilog::parse(text)?;
        Ok(Flow::with_source(Source::Owned(Box::new(netlist))))
    }

    /// Starts a session on a prebuilt [`EvalContext`], reusing its
    /// stimulus, golden simulation, and timing configuration. The
    /// session's own `metric`/`vectors`/`pattern_seed`/`depth_weight`/
    /// `timing` knobs are ignored.
    pub fn for_context(ctx: &'a EvalContext) -> Flow<'a> {
        let mut flow = Flow::with_source(Source::Context(ctx));
        flow.metric = ctx.metric();
        flow
    }

    /// Error metric (ER for random/control circuits, NMED for
    /// arithmetic). Default: ER.
    pub fn metric(mut self, metric: ErrorMetric) -> Flow<'a> {
        self.metric = metric;
        self
    }

    /// User error budget under the configured metric. Required.
    pub fn error_bound(mut self, bound: f64) -> Flow<'a> {
        self.error_bound = Some(bound);
        self
    }

    /// Monte-Carlo vectors per evaluation. Default: 4096 (the paper's
    /// setting).
    pub fn vectors(mut self, vectors: usize) -> Flow<'a> {
        self.vectors = vectors;
        self
    }

    /// Stimulus seed. Default: `0x7DA15`.
    pub fn pattern_seed(mut self, seed: u64) -> Flow<'a> {
        self.pattern_seed = seed;
        self
    }

    /// Depth weight `wd` of the fitness (Eq. 8). Default: 0.8.
    pub fn depth_weight(mut self, wd: f64) -> Flow<'a> {
        self.depth_weight = wd;
        self
    }

    /// Timing parasitics for every STA call. Default:
    /// [`TimingConfig::default`].
    pub fn timing(mut self, timing: TimingConfig) -> Flow<'a> {
        self.timing = timing;
        self
    }

    /// Area constraint for post-optimization; `None` (the default)
    /// means the accurate circuit's area (the TABLE II/III setting).
    pub fn area_constraint(mut self, area_con: impl Into<Option<f64>>) -> Flow<'a> {
        self.area_con = area_con.into();
        self
    }

    /// Resource budget for the optimizer phase. Default: unlimited.
    pub fn budget(mut self, budget: Budget) -> Flow<'a> {
        self.budget = budget;
        self
    }

    /// Worker threads for candidate evaluation: fans the optimizer's
    /// scoring phases out over the deterministic pool ([`crate::par`]).
    /// `0` means one worker per available core. The [`FlowOutcome`] is
    /// bit-identical for every thread count; event emission stays
    /// single-threaded and monotone.
    ///
    /// Default: whatever the optimizer's own configuration says (the
    /// stock configurations evaluate inline on one thread).
    pub fn threads(mut self, threads: usize) -> Flow<'a> {
        self.threads = Some(threads);
        self
    }

    /// SIMD block width of the simulation kernels (`[u64; W]` blocks,
    /// W ∈ {1, 4, 8}). Like [`Flow::threads`], this is a pure
    /// throughput knob: the [`FlowOutcome`] is bit-identical at every
    /// width.
    ///
    /// Default: [`SimdWidth::auto`] (the widest kernel, or the
    /// `TDALS_SIMD_WIDTH` environment override). Ignored by
    /// [`Flow::for_context`] sessions, which inherit the prebuilt
    /// context's width.
    pub fn simd_width(mut self, width: SimdWidth) -> Flow<'a> {
        self.simd_width = Some(width);
        self
    }

    /// The optimizer to run. Default: [`Dcgwo::paper`].
    pub fn optimizer(mut self, optimizer: impl Optimizer + 'a) -> Flow<'a> {
        self.optimizer = Box::new(optimizer);
        self
    }

    /// Streams [`FlowEvent`]s to a closure (or any [`Observer`]).
    pub fn observe(mut self, observer: impl FnMut(&FlowEvent) + 'a) -> Flow<'a> {
        self.observer = Box::new(FnObserver(observer));
        self
    }

    /// Streams [`FlowEvent`]s to an [`Observer`] implementation.
    pub fn observer(mut self, observer: impl Observer + 'a) -> Flow<'a> {
        self.observer = Box::new(observer);
        self
    }

    /// Runs the complete flow: context construction, the optimizer
    /// under the session budget, and post-optimization.
    ///
    /// # Errors
    ///
    /// [`FlowError::MissingErrorBound`] /
    /// [`FlowError::InvalidErrorBound`] for absent or out-of-range
    /// bounds, [`FlowError::EmptyNetlist`] for netlists without PIs or
    /// POs, [`FlowError::InvalidDepthWeight`] and [`FlowError::NoVectors`]
    /// for bad evaluation knobs.
    pub fn run(self) -> Result<FlowOutcome, FlowError> {
        let Flow {
            source,
            metric,
            error_bound,
            vectors,
            pattern_seed,
            depth_weight,
            timing,
            area_con,
            budget,
            threads,
            simd_width,
            mut optimizer,
            mut observer,
        } = self;
        if let Some(threads) = threads {
            optimizer.set_threads(threads);
        }
        let start = clock::now();
        let bound = error_bound.ok_or(FlowError::MissingErrorBound)?;
        if !(0.0..=1.0).contains(&bound) {
            // NaN fails the range check too.
            return Err(FlowError::InvalidErrorBound { bound });
        }

        // The outermost span; phases and iterations nest inside it.
        let _flow_span = trace::span(trace::cat::FLOW, optimizer.name());
        let setup_span = trace::span(trace::cat::PHASE, "setup");
        let built;
        let ctx: &EvalContext = match &source {
            Source::Context(ctx) => ctx,
            Source::Borrowed(netlist) => {
                built = build_context(
                    netlist,
                    metric,
                    vectors,
                    pattern_seed,
                    depth_weight,
                    timing,
                    simd_width,
                )?;
                &built
            }
            Source::Owned(netlist) => {
                built = build_context(
                    netlist,
                    metric,
                    vectors,
                    pattern_seed,
                    depth_weight,
                    timing,
                    simd_width,
                )?;
                &built
            }
        };

        drop(setup_span);

        let mut instrumented = InstrumentedObserver {
            inner: &mut *observer,
            iteration: None,
        };
        let obs: &mut dyn Observer = &mut instrumented;
        obs.on_event(&FlowEvent::FlowStarted {
            optimizer: optimizer.name().to_owned(),
            gates: ctx.accurate().logic_gate_count(),
            cpd_ori: ctx.cpd_ori(),
            area_ori: ctx.area_ori(),
            metric: ctx.metric(),
            error_bound: bound,
        });
        let optimize_span = trace::span(trace::cat::PHASE, "optimize")
            .arg("gates", ctx.accurate().logic_gate_count() as u64);
        let outcome = optimizer.optimize(ctx, bound, &budget, obs);
        drop(optimize_span);

        let mut netlist = outcome.best.netlist.clone();
        let area_con = area_con.unwrap_or_else(|| ctx.area_ori());
        obs.on_event(&FlowEvent::PostOptStarted { area_con });
        let post_opt_span = trace::span(trace::cat::PHASE, "post-opt");
        let post_opt = post_optimize(&mut netlist, ctx.timing(), &PostOptConfig::new(area_con));
        drop(post_opt_span);
        obs.on_event(&FlowEvent::PostOptFinished { report: post_opt });
        #[cfg(debug_assertions)]
        {
            let report = tdals_lint::lint_netlist(&netlist);
            debug_assert!(
                report.has_no_errors(),
                "flow produced a structurally invalid netlist after post-optimization:\n{report}"
            );
        }

        let cpd_ori = ctx.cpd_ori();
        let cpd_fac = post_opt.cpd_final;
        let ratio_cpd = cpd_fac / cpd_ori.max(1e-9);
        // Error is invariant under post-optimization (sweep + sizing
        // are function-preserving), but re-measure for the report.
        let error = ctx.evaluator().error_of(&netlist);
        let runtime_s = start.elapsed().as_secs_f64();
        obs.on_event(&FlowEvent::FlowFinished {
            ratio_cpd,
            error,
            runtime_s,
        });
        Ok(FlowOutcome {
            method: optimizer.name().to_owned(),
            cpd_ori,
            cpd_fac,
            ratio_cpd,
            error,
            area: netlist.area_live(),
            area_con,
            optimize: outcome,
            post_opt,
            runtime_s,
            netlist,
        })
    }
}

fn build_context(
    netlist: &Netlist,
    metric: ErrorMetric,
    vectors: usize,
    pattern_seed: u64,
    depth_weight: f64,
    timing: TimingConfig,
    simd_width: Option<SimdWidth>,
) -> Result<EvalContext, FlowError> {
    if netlist.input_count() == 0 || netlist.output_count() == 0 {
        return Err(FlowError::EmptyNetlist {
            name: netlist.name().to_owned(),
        });
    }
    if vectors == 0 {
        return Err(FlowError::NoVectors);
    }
    if !(0.0..=1.0).contains(&depth_weight) {
        return Err(FlowError::InvalidDepthWeight {
            weight: depth_weight,
        });
    }
    let patterns = Patterns::random(netlist.input_count(), vectors, pattern_seed);
    let mut ctx = EvalContext::new(netlist, patterns, metric, timing, depth_weight);
    if let Some(width) = simd_width {
        ctx = ctx.with_simd_width(width);
    }
    Ok(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::builder::Builder;
    use tdals_netlist::SignalRef;

    fn adder() -> Netlist {
        let mut b = Builder::new("add6");
        let a = b.inputs("a", 6);
        let x = b.inputs("b", 6);
        let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &s);
        b.output("c", c);
        b.finish()
    }

    fn quick_dcgwo() -> Dcgwo {
        Dcgwo::paper().quick(8, 6)
    }

    #[test]
    fn flow_session_runs_end_to_end() {
        let n = adder();
        let outcome = Flow::for_netlist(&n)
            .error_bound(0.08)
            .vectors(1024)
            .optimizer(quick_dcgwo())
            .run()
            .expect("valid session");
        assert!(outcome.error <= 0.08 + 1e-12);
        assert!(outcome.ratio_cpd <= 1.0 + 1e-9);
        assert!(outcome.area <= outcome.area_con + 1e-9);
        assert_eq!(outcome.method, "DCGWO");
        assert_eq!(outcome.stop(), StopReason::Completed);
        assert!(outcome.optimize.evaluations > 0);
        outcome.netlist.check_invariants().expect("valid netlist");
    }

    #[test]
    fn flow_under_nmed() {
        let n = adder();
        let outcome = Flow::for_netlist(&n)
            .metric(ErrorMetric::Nmed)
            .error_bound(0.02)
            .vectors(1024)
            .optimizer(Dcgwo::paper_for(ErrorMetric::Nmed).quick(8, 6))
            .run()
            .expect("valid session");
        assert!(outcome.error <= 0.02 + 1e-12);
        assert!(outcome.ratio_cpd <= 1.0 + 1e-9);
    }

    #[test]
    fn single_chase_flow_runs() {
        let n = adder();
        let outcome = Flow::for_netlist(&n)
            .error_bound(0.08)
            .vectors(1024)
            .optimizer(Dcgwo::single_chase().quick(8, 6))
            .run()
            .expect("valid session");
        assert!(outcome.error <= 0.08 + 1e-12);
    }

    #[test]
    fn stop_reason_wire_names_round_trip() {
        for reason in [
            StopReason::Completed,
            StopReason::IterationLimit,
            StopReason::EvaluationLimit,
            StopReason::DeadlineExpired,
            StopReason::Cancelled,
        ] {
            assert_eq!(
                StopReason::parse_wire_name(reason.wire_name()),
                Some(reason)
            );
        }
        assert_eq!(StopReason::parse_wire_name("iteration limit"), None);
    }

    #[test]
    fn missing_bound_is_an_error() {
        let n = adder();
        let err = Flow::for_netlist(&n).run().unwrap_err();
        assert_eq!(err, FlowError::MissingErrorBound);
    }

    #[test]
    fn bad_bounds_are_typed_errors() {
        let n = adder();
        for bad in [f64::NAN, -0.1, 1.5] {
            let err = Flow::for_netlist(&n).error_bound(bad).run().unwrap_err();
            assert!(
                matches!(err, FlowError::InvalidErrorBound { .. }),
                "bound {bad}: {err}"
            );
        }
    }

    #[test]
    fn empty_netlist_is_a_typed_error() {
        let empty = Netlist::new("void");
        let err = Flow::for_netlist(&empty)
            .error_bound(0.05)
            .run()
            .unwrap_err();
        assert!(matches!(err, FlowError::EmptyNetlist { .. }));
    }

    #[test]
    fn bad_verilog_is_a_typed_error() {
        let err = Flow::for_verilog("module oops(")
            .err()
            .expect("parse must fail");
        assert!(matches!(err, FlowError::Verilog(_)));
    }

    #[test]
    fn verilog_source_runs() {
        let n = adder();
        let text = verilog::to_verilog(&n);
        let outcome = Flow::for_verilog(&text)
            .expect("round-trip parses")
            .error_bound(0.08)
            .vectors(512)
            .optimizer(Dcgwo::paper().quick(6, 3))
            .run()
            .expect("valid session");
        assert!(outcome.error <= 0.08 + 1e-12);
    }

    #[test]
    fn depth_weight_and_vectors_are_validated() {
        let n = adder();
        let err = Flow::for_netlist(&n)
            .error_bound(0.05)
            .depth_weight(1.5)
            .run()
            .unwrap_err();
        assert!(matches!(err, FlowError::InvalidDepthWeight { .. }));
        let err = Flow::for_netlist(&n)
            .error_bound(0.05)
            .vectors(0)
            .run()
            .unwrap_err();
        assert_eq!(err, FlowError::NoVectors);
    }

    #[test]
    fn iteration_budget_stops_early() {
        let n = adder();
        let outcome = Flow::for_netlist(&n)
            .error_bound(0.08)
            .vectors(512)
            .optimizer(quick_dcgwo())
            .budget(Budget::unlimited().with_max_iterations(2))
            .run()
            .expect("valid session");
        assert_eq!(outcome.stop(), StopReason::IterationLimit);
        assert_eq!(outcome.history().len(), 2);
        assert!(outcome.error <= 0.08 + 1e-12, "best is still feasible");
    }

    #[test]
    fn evaluation_budget_stops_early() {
        let n = adder();
        let outcome = Flow::for_netlist(&n)
            .error_bound(0.08)
            .vectors(512)
            .optimizer(quick_dcgwo())
            .budget(Budget::unlimited().with_max_evaluations(10))
            .run()
            .expect("valid session");
        assert_eq!(outcome.stop(), StopReason::EvaluationLimit);
        assert!(outcome.history().len() < 6);
    }

    #[test]
    fn pre_cancelled_budget_runs_no_iterations() {
        let n = adder();
        let budget = Budget::unlimited();
        budget.cancel_flag().cancel();
        let outcome = Flow::for_netlist(&n)
            .error_bound(0.08)
            .vectors(512)
            .optimizer(quick_dcgwo())
            .budget(budget)
            .run()
            .expect("valid session");
        assert_eq!(outcome.stop(), StopReason::Cancelled);
        assert!(outcome.history().is_empty());
        // Even a cancelled run reports a feasible best: the accurate
        // circuit anchors the search.
        assert!(outcome.error <= 0.08 + 1e-12);
    }

    #[test]
    fn observed_events_bracket_the_run() {
        let n = adder();
        let mut events: Vec<String> = Vec::new();
        let outcome = Flow::for_netlist(&n)
            .error_bound(0.08)
            .vectors(512)
            .optimizer(quick_dcgwo())
            .observe(|ev: &FlowEvent| {
                events.push(match ev {
                    FlowEvent::FlowStarted { .. } => "start".into(),
                    FlowEvent::OptimizeFinished { .. } => "opt-done".into(),
                    FlowEvent::FlowFinished { .. } => "done".into(),
                    _ => "mid".into(),
                });
            })
            .run()
            .expect("valid session");
        assert_eq!(events.first().map(String::as_str), Some("start"));
        assert_eq!(events.last().map(String::as_str), Some("done"));
        assert_eq!(events.iter().filter(|e| *e == "opt-done").count(), 1);
        assert!(outcome.ratio_cpd <= 1.0 + 1e-9);
    }

    #[test]
    fn stop_reasons_display() {
        assert_eq!(StopReason::Completed.to_string(), "completed");
        assert_eq!(StopReason::Cancelled.to_string(), "cancelled");
    }
}

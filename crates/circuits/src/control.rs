//! Control-oriented generators: a parametric ALU, a Hamming SEC/DED
//! decoder, and an adder/comparator unit — the structured cores of the
//! paper's random/control benchmarks (ISCAS'85-class circuits).

use tdals_netlist::builder::Builder;
use tdals_netlist::SignalRef;

/// Outputs of [`alu`].
#[derive(Debug, Clone)]
pub struct AluOutputs {
    /// Result bus, same width as the operands.
    pub result: Vec<SignalRef>,
    /// Carry/borrow out of the adder path.
    pub carry: SignalRef,
    /// `1` when the result is all zeros.
    pub zero: SignalRef,
}

/// Parametric ALU over two `w`-bit operands with a 3-bit opcode —
/// the datapath shape of c880/c2670/c3540/c5315.
///
/// Opcode map (`sel[2] sel[1] sel[0]`):
///
/// | op  | function        |
/// |-----|-----------------|
/// | 000 | `a + x + cin`   |
/// | 001 | `a - x`         |
/// | 010 | `a & x`         |
/// | 011 | `a \| x`        |
/// | 100 | `a ^ x`         |
/// | 101 | `~(a \| x)`     |
/// | 110 | `a << 1`        |
/// | 111 | `a`             |
///
/// # Panics
///
/// Panics if the operand buses differ in width.
pub fn alu(
    b: &mut Builder,
    a: &[SignalRef],
    x: &[SignalRef],
    sel: [SignalRef; 3],
    cin: SignalRef,
) -> AluOutputs {
    assert_eq!(a.len(), x.len(), "alu operands must match in width");
    let w = a.len();

    let (sum, cout) = b.ripple_add(a, x, cin);
    let (diff, borrow) = b.ripple_sub(a, x);
    let and_bus: Vec<SignalRef> = a.iter().zip(x).map(|(&p, &q)| b.and(p, q)).collect();
    let or_bus: Vec<SignalRef> = a.iter().zip(x).map(|(&p, &q)| b.or(p, q)).collect();
    let xor_bus: Vec<SignalRef> = a.iter().zip(x).map(|(&p, &q)| b.xor(p, q)).collect();
    let nor_bus: Vec<SignalRef> = a.iter().zip(x).map(|(&p, &q)| b.nor(p, q)).collect();
    let mut shl: Vec<SignalRef> = vec![SignalRef::Const0];
    shl.extend_from_slice(&a[..w - 1]);
    let pass = a.to_vec();

    // 8:1 selection as a mux tree per bit: sel[0] picks within pairs,
    // sel[1] within quads, sel[2] between halves.
    let m0 = b.mux_word(sel[0], &sum, &diff);
    let m1 = b.mux_word(sel[0], &and_bus, &or_bus);
    let m2 = b.mux_word(sel[0], &xor_bus, &nor_bus);
    let m3 = b.mux_word(sel[0], &shl, &pass);
    let lo = b.mux_word(sel[1], &m0, &m1);
    let hi = b.mux_word(sel[1], &m2, &m3);
    let result = b.mux_word(sel[2], &lo, &hi);

    let carry = b.mux(sel[0], cout, borrow);
    let any = b.or_tree(&result);
    let zero = b.not(any);
    AluOutputs {
        result,
        carry,
        zero,
    }
}

/// Outputs of [`hamming_secded`].
#[derive(Debug, Clone)]
pub struct SecDedOutputs {
    /// Corrected 16-bit data word.
    pub corrected: Vec<SignalRef>,
    /// 5-bit Hamming syndrome plus the overall-parity check bit.
    pub syndrome: Vec<SignalRef>,
    /// `1` when an uncorrectable double error is detected.
    pub double_error: SignalRef,
}

/// Position (1-based, in the 21-bit Hamming codeword) of data bit `d`.
///
/// Power-of-two positions hold check bits; data fills the rest in order.
fn data_position(d: usize) -> usize {
    let mut pos = 1usize;
    let mut remaining = d;
    loop {
        if !pos.is_power_of_two() {
            if remaining == 0 {
                return pos;
            }
            remaining -= 1;
        }
        pos += 1;
    }
}

/// Computes the five Hamming check bits plus overall parity for a
/// 16-bit data word (the encoder half of SEC/DED; used by tests and the
/// c1908 benchmark to feed itself consistent codewords).
///
/// # Panics
///
/// Panics if `data` is not 16 bits.
pub fn hamming_encode(b: &mut Builder, data: &[SignalRef]) -> Vec<SignalRef> {
    assert_eq!(data.len(), 16, "SEC/DED encodes 16 data bits");
    let mut checks = Vec::with_capacity(6);
    for c in 0..5usize {
        let members: Vec<SignalRef> = (0..16)
            .filter(|&d| data_position(d) >> c & 1 == 1)
            .map(|d| data[d])
            .collect();
        checks.push(b.xor_tree(&members));
    }
    // Overall parity across data + the five check bits.
    let mut all: Vec<SignalRef> = data.to_vec();
    all.extend_from_slice(&checks);
    checks.push(b.xor_tree(&all));
    checks
}

/// Hamming(21,16) single-error-correct / double-error-detect decoder —
/// the function of the c1908 benchmark ("16-bit SEC/DED circuit").
///
/// # Panics
///
/// Panics if `data` is not 16 bits or `checks` is not 6 bits.
pub fn hamming_secded(b: &mut Builder, data: &[SignalRef], checks: &[SignalRef]) -> SecDedOutputs {
    assert_eq!(data.len(), 16, "SEC/DED decodes 16 data bits");
    assert_eq!(checks.len(), 6, "SEC/DED uses 5 check bits + parity");
    // Hamming syndrome: recomputed check bits vs the received ones.
    let recomputed = hamming_encode(b, data);
    let mut syndrome: Vec<SignalRef> = recomputed[..5]
        .iter()
        .zip(&checks[..5])
        .map(|(&r, &c)| b.xor(r, c))
        .collect();
    // Overall parity over the *received* codeword (data + all checks):
    // trips on any odd number of bit flips.
    let mut received: Vec<SignalRef> = data.to_vec();
    received.extend_from_slice(checks);
    let parity_err = b.xor_tree(&received);
    syndrome.push(parity_err);
    let any_syndrome = b.or_tree(&syndrome[..5]);

    // Single correctable error: syndrome non-zero and overall parity
    // trips. Double error: syndrome non-zero but parity consistent.
    let notp = b.not(parity_err);
    let double_error = b.and(any_syndrome, notp);
    let correct_en = b.and(any_syndrome, parity_err);

    // Flip data bit d when the syndrome equals its codeword position.
    let mut corrected = Vec::with_capacity(16);
    for (d, &dbit) in data.iter().enumerate() {
        let pos = data_position(d);
        let mut terms = Vec::with_capacity(5);
        for (c, &s) in syndrome[..5].iter().enumerate() {
            terms.push(if pos >> c & 1 == 1 { s } else { b.not(s) });
        }
        let hit = b.and_tree(&terms);
        let flip = b.and(hit, correct_en);
        corrected.push(b.xor(dbit, flip));
    }
    SecDedOutputs {
        corrected,
        syndrome,
        double_error,
    }
}

/// Outputs of [`add_compare`].
#[derive(Debug, Clone)]
pub struct AddCompareOutputs {
    /// Sum bus (`w` bits).
    pub sum: Vec<SignalRef>,
    /// Adder carry out.
    pub carry: SignalRef,
    /// `a == x`.
    pub eq: SignalRef,
    /// `a > x` (unsigned).
    pub gt: SignalRef,
    /// `a < x` (unsigned).
    pub lt: SignalRef,
}

/// Combined adder and magnitude comparator — the arithmetic heart of the
/// c7552 benchmark ("32-bit adder/comparator").
///
/// # Panics
///
/// Panics if the buses differ in width.
pub fn add_compare(
    b: &mut Builder,
    a: &[SignalRef],
    x: &[SignalRef],
    cin: SignalRef,
) -> AddCompareOutputs {
    assert_eq!(a.len(), x.len(), "operands must match in width");
    let (sum, carry) = crate::arith::carry_select_add(b, a, x, cin, 4);
    let diffs: Vec<SignalRef> = a.iter().zip(x).map(|(&p, &q)| b.xor(p, q)).collect();
    let any_diff = b.or_tree(&diffs);
    let eq = b.not(any_diff);
    let ge = b.ge(a, x);
    let gt = b.and(ge, any_diff);
    let nge = b.not(ge);
    let lt = nge;
    AddCompareOutputs {
        sum,
        carry,
        eq,
        gt,
        lt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::Netlist;
    use tdals_sim::{simulate, Patterns};

    fn output_values(n: &Netlist, width_in: usize) -> Vec<Vec<bool>> {
        let p = Patterns::exhaustive(width_in);
        let r = simulate(n, &p);
        (0..p.vector_count())
            .map(|v| {
                (0..n.output_count())
                    .map(|po| r.po_word(po, v / 64) >> (v % 64) & 1 == 1)
                    .collect()
            })
            .collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .map(|(i, &b)| u64::from(b) << i)
            .sum()
    }

    #[test]
    fn alu_all_ops_width3() {
        let mut b = Builder::new("alu3");
        let a = b.inputs("a", 3);
        let x = b.inputs("x", 3);
        let s0 = b.input("s0");
        let s1 = b.input("s1");
        let s2 = b.input("s2");
        let out = alu(&mut b, &a, &x, [s0, s1, s2], SignalRef::Const0);
        b.outputs("r", &out.result);
        b.output("carry", out.carry);
        b.output("zero", out.zero);
        let n = b.finish();
        let outs = output_values(&n, 9);
        for (v, bits) in outs.iter().enumerate() {
            let av = (v & 7) as u64;
            let xv = (v >> 3 & 7) as u64;
            let op = v >> 6 & 7;
            let r = from_bits(&bits[0..3]);
            let want = match op {
                0 => (av + xv) & 7,
                1 => av.wrapping_sub(xv) & 7,
                2 => av & xv,
                3 => av | xv,
                4 => av ^ xv,
                5 => !(av | xv) & 7,
                6 => (av << 1) & 7,
                _ => av,
            };
            assert_eq!(r, want, "op {op} a={av} x={xv}");
            assert_eq!(bits[4], r == 0, "zero flag");
            if op == 0 {
                assert_eq!(bits[3], av + xv > 7, "carry");
            }
            if op == 1 {
                assert_eq!(bits[3], av < xv, "borrow");
            }
        }
    }

    #[test]
    fn secded_corrects_single_data_errors() {
        // Encode a data word, flip one data bit, decode.
        let mut b = Builder::new("secded");
        let data = b.inputs("d", 8); // 8 free bits; upper 8 tied to 0
        let mut word: Vec<SignalRef> = data.clone();
        word.extend(vec![SignalRef::Const0; 8]);
        let checks = hamming_encode(&mut b, &word);
        // Flip data bit 3 unconditionally.
        let flipped: Vec<SignalRef> = word
            .iter()
            .enumerate()
            .map(|(i, &d)| if i == 3 { b.not(d) } else { d })
            .collect();
        let dec = hamming_secded(&mut b, &flipped, &checks);
        b.outputs("c", &dec.corrected);
        b.output("derr", dec.double_error);
        let n = b.finish();
        let outs = output_values(&n, 8);
        for (v, bits) in outs.iter().enumerate() {
            let corrected = from_bits(&bits[0..16]);
            assert_eq!(corrected, v as u64, "corrects bit-3 flip of {v}");
            assert!(!bits[16], "single error is not a double error");
        }
    }

    #[test]
    fn secded_flags_double_errors() {
        let mut b = Builder::new("secded2");
        let data = b.inputs("d", 6);
        let mut word: Vec<SignalRef> = data.clone();
        word.extend(vec![SignalRef::Const0; 10]);
        let checks = hamming_encode(&mut b, &word);
        let flipped: Vec<SignalRef> = word
            .iter()
            .enumerate()
            .map(|(i, &d)| if i == 2 || i == 9 { b.not(d) } else { d })
            .collect();
        let dec = hamming_secded(&mut b, &flipped, &checks);
        b.output("derr", dec.double_error);
        let n = b.finish();
        let outs = output_values(&n, 6);
        for bits in outs {
            assert!(bits[0], "two flips must raise double_error");
        }
    }

    #[test]
    fn clean_codeword_passes_through() {
        let mut b = Builder::new("secded0");
        let data = b.inputs("d", 8);
        let mut word: Vec<SignalRef> = data.clone();
        word.extend(vec![SignalRef::Const0; 8]);
        let checks = hamming_encode(&mut b, &word);
        let dec = hamming_secded(&mut b, &word, &checks);
        b.outputs("c", &dec.corrected);
        b.output("derr", dec.double_error);
        let syn = dec.syndrome.clone();
        b.outputs("s", &syn);
        let n = b.finish();
        let outs = output_values(&n, 8);
        for (v, bits) in outs.iter().enumerate() {
            assert_eq!(from_bits(&bits[0..16]), v as u64);
            assert!(!bits[16], "no double error");
            assert!(bits[17..23].iter().all(|&s| !s), "zero syndrome");
        }
    }

    #[test]
    fn add_compare_exhaustive_4bit() {
        let mut b = Builder::new("addcmp");
        let a = b.inputs("a", 4);
        let x = b.inputs("x", 4);
        let out = add_compare(&mut b, &a, &x, SignalRef::Const0);
        b.outputs("s", &out.sum);
        b.output("c", out.carry);
        b.output("eq", out.eq);
        b.output("gt", out.gt);
        b.output("lt", out.lt);
        let n = b.finish();
        let outs = output_values(&n, 8);
        for (v, bits) in outs.iter().enumerate() {
            let av = (v & 15) as u64;
            let xv = (v >> 4) as u64;
            assert_eq!(from_bits(&bits[0..4]), (av + xv) & 15);
            assert_eq!(bits[4], av + xv > 15, "carry");
            assert_eq!(bits[5], av == xv, "eq");
            assert_eq!(bits[6], av > xv, "gt");
            assert_eq!(bits[7], av < xv, "lt");
        }
    }
}

//! Arithmetic datapath generators: adders, multipliers, max units,
//! int-to-float conversion, polynomial sine, and integer square root.
//!
//! These are the combinational cores behind the paper's arithmetic
//! benchmarks (TABLE I). All buses are LSB-first `SignalRef` slices and
//! all generators append gates to a caller-provided [`Builder`], so they
//! compose freely.

use tdals_netlist::builder::Builder;
use tdals_netlist::SignalRef;

/// Carry-select addition: the bus is split into blocks; each non-initial
/// block is computed for both carry-in values and selected by the real
/// carry. Returns `(sum, carry_out)`.
///
/// Compared to a plain ripple adder this is faster and larger — closer
/// to what Design Compiler produces for the paper's `Adder16`/`Adder`
/// benchmarks.
///
/// # Panics
///
/// Panics if the buses differ in width or `block` is zero.
pub fn carry_select_add(
    b: &mut Builder,
    a: &[SignalRef],
    x: &[SignalRef],
    cin: SignalRef,
    block: usize,
) -> (Vec<SignalRef>, SignalRef) {
    assert_eq!(a.len(), x.len(), "adder operands must match in width");
    assert!(block > 0, "block size must be positive");
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = cin;
    let mut base = 0usize;
    while base < a.len() {
        let end = (base + block).min(a.len());
        let ab = &a[base..end];
        let xb = &x[base..end];
        if base == 0 {
            let (s, c) = b.ripple_add(ab, xb, carry);
            sum.extend(s);
            carry = c;
        } else {
            let (s0, c0) = b.ripple_add(ab, xb, SignalRef::Const0);
            let (s1, c1) = b.ripple_add(ab, xb, SignalRef::Const1);
            let sel = b.mux_word(carry, &s0, &s1);
            sum.extend(sel);
            carry = b.mux(carry, c0, c1);
        }
        base = end;
    }
    (sum, carry)
}

/// Kogge-Stone parallel-prefix addition: logarithmic depth at the cost
/// of a dense prefix network, matching the delay-optimized adders a
/// commercial synthesis flow emits for the paper's `Adder16`/`Adder`
/// benchmarks. Returns `(sum, carry_out)`.
///
/// # Panics
///
/// Panics if the buses differ in width.
pub fn kogge_stone_add(
    b: &mut Builder,
    a: &[SignalRef],
    x: &[SignalRef],
    cin: SignalRef,
) -> (Vec<SignalRef>, SignalRef) {
    assert_eq!(a.len(), x.len(), "adder operands must match in width");
    let n = a.len();
    let p: Vec<SignalRef> = a.iter().zip(x).map(|(&u, &v)| b.xor(u, v)).collect();
    let g: Vec<SignalRef> = a.iter().zip(x).map(|(&u, &v)| b.and(u, v)).collect();

    // Prefix elements indexed 0..=n: element 0 is the carry-in
    // (G = cin, P = 0), element i+1 covers bit i.
    let mut gs: Vec<SignalRef> = Vec::with_capacity(n + 1);
    let mut ps: Vec<SignalRef> = Vec::with_capacity(n + 1);
    gs.push(cin);
    ps.push(SignalRef::Const0);
    gs.extend(&g);
    ps.extend(&p);

    let mut dist = 1usize;
    while dist <= n {
        let mut next_g = gs.clone();
        let mut next_p = ps.clone();
        for i in dist..=n {
            let t = b.and(ps[i], gs[i - dist]);
            next_g[i] = b.or(gs[i], t);
            next_p[i] = b.and(ps[i], ps[i - dist]);
        }
        gs = next_g;
        ps = next_p;
        dist *= 2;
    }

    // carry into bit i is the full prefix G over elements 0..=i.
    let sum: Vec<SignalRef> = (0..n).map(|i| b.xor(p[i], gs[i])).collect();
    (sum, gs[n])
}

/// Unsigned array multiplier (`a × x`), the structure of the paper's
/// `c6288` 16×16 benchmark. Returns `a.len() + x.len()` product bits.
pub fn array_multiplier(b: &mut Builder, a: &[SignalRef], x: &[SignalRef]) -> Vec<SignalRef> {
    let (wa, wx) = (a.len(), x.len());
    let width = wa + wx;
    // Accumulate partial products row by row with ripple adders.
    let mut acc: Vec<SignalRef> = vec![SignalRef::Const0; width];
    for (j, &xj) in x.iter().enumerate() {
        let mut row: Vec<SignalRef> = vec![SignalRef::Const0; width];
        for (i, &ai) in a.iter().enumerate() {
            row[i + j] = b.and(ai, xj);
        }
        let (sum, _) = b.ripple_add(&acc, &row, SignalRef::Const0);
        acc = sum;
    }
    acc
}

/// Parallel-prefix unsigned `a >= x` comparator: per-bit equal/greater
/// signals combined in a balanced tree (logarithmic depth, the shape a
/// delay-optimized synthesis run produces for wide compares).
///
/// # Panics
///
/// Panics if the buses differ in width or are empty.
pub fn prefix_ge(b: &mut Builder, a: &[SignalRef], x: &[SignalRef]) -> SignalRef {
    assert_eq!(a.len(), x.len(), "comparator operands must match in width");
    assert!(!a.is_empty(), "comparator needs at least one bit");
    // Per-bit: eq_i = a_i XNOR x_i, gt_i = a_i & !x_i.
    let mut eq: Vec<SignalRef> = Vec::with_capacity(a.len());
    let mut gt: Vec<SignalRef> = Vec::with_capacity(a.len());
    for (&ai, &xi) in a.iter().zip(x) {
        eq.push(b.xnor(ai, xi));
        let nx = b.not(xi);
        gt.push(b.and(ai, nx));
    }
    // Combine pairs MSB-down: (eq, gt)_hi ∘ (eq, gt)_lo =
    //   (eq_hi & eq_lo, gt_hi | (eq_hi & gt_lo)).
    while eq.len() > 1 {
        let mut next_eq = Vec::with_capacity(eq.len().div_ceil(2));
        let mut next_gt = Vec::with_capacity(eq.len().div_ceil(2));
        let mut i = 0;
        while i + 1 < eq.len() {
            let (eq_lo, gt_lo) = (eq[i], gt[i]);
            let (eq_hi, gt_hi) = (eq[i + 1], gt[i + 1]);
            let carry = b.and(eq_hi, gt_lo);
            next_gt.push(b.or(gt_hi, carry));
            next_eq.push(b.and(eq_hi, eq_lo));
            i += 2;
        }
        if i < eq.len() {
            next_eq.push(eq[i]);
            next_gt.push(gt[i]);
        }
        eq = next_eq;
        gt = next_gt;
    }
    // a >= x  <=>  a > x or a == x.
    b.or(gt[0], eq[0])
}

/// Unsigned maximum of two equal-width buses (`max(a, x)`), the paper's
/// `Max16` core: a parallel-prefix ≥ comparator steering a word mux.
///
/// # Panics
///
/// Panics if the buses differ in width.
pub fn max2(b: &mut Builder, a: &[SignalRef], x: &[SignalRef]) -> Vec<SignalRef> {
    let a_ge = prefix_ge(b, a, x);
    b.mux_word(a_ge, x, a)
}

/// Unsigned maximum of four equal-width buses (the paper's 4-to-1 `Max`
/// benchmark) via a tournament of [`max2`] units.
///
/// # Panics
///
/// Panics if the buses differ in width.
pub fn max4(
    b: &mut Builder,
    x0: &[SignalRef],
    x1: &[SignalRef],
    x2: &[SignalRef],
    x3: &[SignalRef],
) -> Vec<SignalRef> {
    let m01 = max2(b, x0, x1);
    let m23 = max2(b, x2, x3);
    max2(b, &m01, &m23)
}

/// Integer-to-float conversion (the MCNC `int2float` benchmark shape):
/// an 11-bit unsigned integer becomes a 7-bit float with a 3-bit
/// exponent and 4-bit mantissa.
///
/// Semantics: for input `v`, let `p` be the position of the leading one
/// (`p = floor(log2 v)`, `v > 0`). The exponent is `max(p - 3, 0)` and
/// the mantissa is `v >> max(p - 3, 0)` truncated to 4 bits; inputs
/// below 16 pass through with exponent 0. Output bus: mantissa bits 0-3,
/// then exponent bits 4-6.
///
/// # Panics
///
/// Panics if `v` is not 11 bits wide.
pub fn int2float(b: &mut Builder, v: &[SignalRef]) -> Vec<SignalRef> {
    assert_eq!(v.len(), 11, "int2float takes an 11-bit integer");
    // Shift amount s in 0..=7 with s = max(p-3, 0): v >= 2^(s+3) iff
    // shift >= s. one_hot[s] selects the exact shift.
    // any_at_or_above[k] = OR of v[k..].
    let mut any_above = [SignalRef::Const0; 12];
    for k in (0..11).rev() {
        any_above[k] = b.or(v[k], any_above[k + 1]);
    }
    // shift s chosen when leading one is at position s+3 (for s>=1);
    // s=0 when v < 2^4.
    let mut mantissa = [SignalRef::Const0; 4];
    let mut exponent = [SignalRef::Const0; 3];
    // Exponent bits: s = sum of one-hot selections; s in 0..=7.
    let mut one_hot = Vec::with_capacity(8);
    for s in 0..8usize {
        let sel = if s == 0 {
            // v < 16.
            b.not(any_above[4])
        } else if s < 7 {
            // Leading one exactly at position s+3.
            let not_higher = b.not(any_above[s + 4]);
            b.and(v[s + 3], not_higher)
        } else {
            // s = 7: leading one at position 10.
            v[10]
        };
        one_hot.push(sel);
    }
    for (s, &sel) in one_hot.iter().enumerate() {
        for (bit, e) in exponent.iter_mut().enumerate() {
            if s >> bit & 1 == 1 {
                *e = b.or(*e, sel);
            }
        }
        // Mantissa: (v >> s) & 0xF gated by this selection.
        for bit in 0..4 {
            if s + bit < 11 {
                let gated = b.and(sel, v[s + bit]);
                mantissa[bit] = b.or(mantissa[bit], gated);
            }
        }
    }
    let mut out = mantissa.to_vec();
    out.extend_from_slice(&exponent);
    out
}

/// Reference model for [`int2float`] (used by tests and examples).
pub fn int2float_reference(v: u32) -> u32 {
    assert!(v < (1 << 11));
    let p = 31 - v.leading_zeros().min(31);
    let s = if v < 16 { 0 } else { (p - 3).min(7) };
    let mantissa = (v >> s) & 0xF;
    let exponent = s & 0x7;
    mantissa | (exponent << 4)
}

/// Fixed-point sine approximation (the paper's `Sin` benchmark shape).
///
/// Input: 24-bit fraction `x ∈ [0, 1)`. Output: 25 bits approximating
/// `sin(πx)` in unsigned fixed point with 24 fractional bits, using the
/// refined parabola
///
/// ```text
/// y = 4·x·(1 − x)          (one 24×24 multiplier)
/// sin(πx) ≈ y + 0.225·(y − y²)   (a squarer + constant shift-adds)
/// ```
///
/// which is accurate to ~1.4e-3 — and, with its two array multipliers,
/// lands in the gate-count regime of the paper's 24-bit sine unit.
///
/// # Panics
///
/// Panics if `x` is not 24 bits wide.
pub fn sin_poly(b: &mut Builder, x: &[SignalRef]) -> Vec<SignalRef> {
    assert_eq!(x.len(), 24, "sin takes a 24-bit fraction");
    // 1 - x ≈ ~x (ones' complement; ≤ 1 ulp short, and 4x(1-x) has zero
    // slope nowhere it matters).
    let nx: Vec<SignalRef> = x.iter().map(|&v| b.not(v)).collect();
    let p = array_multiplier(b, x, &nx); // x(1-x), Q0.48
                                         // y = 4·x·(1-x) as Q0.24: < 1.0 strictly since x(~x) < 0.25.
    let y: Vec<SignalRef> = p[22..46].to_vec();

    let sq = array_multiplier(b, &y, &y); // y², Q0.48
    let y2: Vec<SignalRef> = sq[24..48].to_vec(); // Q0.24
    let (t, _) = b.ripple_sub(&y, &y2); // y - y² >= 0

    // 0.225·t by shift-add: 2^-3 + 2^-4 + 2^-5 + 2^-8 + 2^-9 + 2^-12
    // + 2^-13 = 0.224975.
    let mut scaled: Vec<SignalRef> = vec![SignalRef::Const0; 24];
    for shift in [3usize, 4, 5, 8, 9, 12, 13] {
        let mut term: Vec<SignalRef> = t[shift..].to_vec();
        term.resize(24, SignalRef::Const0);
        let (s, _) = b.ripple_add(&scaled, &term, SignalRef::Const0);
        scaled = s;
    }

    // result = y + 0.225(y - y²), up to ~1.225 -> Q1.24 (25 bits).
    let (mut out, carry) = b.ripple_add(&y, &scaled, SignalRef::Const0);
    out.push(carry);
    out
}

/// Reference model for [`sin_poly`]: the same refined parabola in `f64`.
pub fn sin_poly_reference(x: f64) -> f64 {
    let y = 4.0 * x * (1.0 - x);
    y + 0.224975 * (y - y * y)
}

/// Combinational non-restoring integer square root.
///
/// Input: unsigned integer of even width `n`; output: `n/2`-bit
/// `floor(sqrt(input))`. One controlled add/subtract stage per result
/// bit — the array structure behind the paper's `Sqrt` benchmark
/// (128-bit operand, 64-bit root).
///
/// # Panics
///
/// Panics if the input width is odd or zero.
pub fn isqrt(b: &mut Builder, x: &[SignalRef]) -> Vec<SignalRef> {
    let n = x.len();
    assert!(
        n > 0 && n.is_multiple_of(2),
        "isqrt needs an even, positive width"
    );
    let half = n / 2;
    let w = half + 4; // two's-complement working width for the remainder
    let mut r: Vec<SignalRef> = vec![SignalRef::Const0; w];
    let mut sign = SignalRef::Const0; // r >= 0 initially
    let mut q: Vec<SignalRef> = Vec::with_capacity(half); // MSB first

    for step in 0..half {
        let i = half - 1 - step;
        // shifted = (r << 2) | x[2i+1..2i], truncated to w bits.
        let mut shifted: Vec<SignalRef> = Vec::with_capacity(w);
        shifted.push(x[2 * i]);
        shifted.push(x[2 * i + 1]);
        shifted.extend_from_slice(&r[..w - 2]);

        // Operand m = (q << 2) | (sign ? 3 : 1); add when r < 0,
        // subtract when r >= 0. Implemented as shifted + (m ^ sub) + sub
        // with sub = !sign.
        let sub = b.not(sign);
        let mut addend: Vec<SignalRef> = Vec::with_capacity(w);
        addend.push(sign); // bit0: 1 ^ sub = !sub = sign
        addend.push(SignalRef::Const1); // bit1: sign ^ sub = 1
        for j in 2..w {
            let qi = step as isize - 1 - (j as isize - 2);
            // q is stored MSB-first: q[k] is result bit half-1-k; the
            // value (q << 2) has q's LSB (latest bit) at position 2.
            if qi >= 0 && (qi as usize) < q.len() {
                addend.push(b.xor(q[qi as usize], sub));
            } else {
                addend.push(sub); // 0 ^ sub
            }
        }
        let (next_r, _) = b.ripple_add(&shifted, &addend, sub);
        sign = next_r[w - 1];
        let bit = b.not(sign);
        q.push(bit);
        r = next_r;
    }

    q.reverse(); // LSB-first
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::Netlist;
    use tdals_sim::{simulate, Patterns};

    fn eval_all(n: &Netlist, width_in: usize) -> Vec<u64> {
        // Exhaustive simulation; returns the output value per vector.
        let p = Patterns::exhaustive(width_in);
        let r = simulate(n, &p);
        (0..p.vector_count())
            .map(|v| {
                (0..n.output_count())
                    .map(|po| (r.po_word(po, v / 64) >> (v % 64) & 1) << po)
                    .sum()
            })
            .collect()
    }

    #[test]
    fn carry_select_matches_addition() {
        let mut b = Builder::new("csa");
        let a = b.inputs("a", 5);
        let x = b.inputs("b", 5);
        let (s, c) = carry_select_add(&mut b, &a, &x, SignalRef::Const0, 2);
        b.outputs("s", &s);
        b.output("c", c);
        let n = b.finish();
        let outs = eval_all(&n, 10);
        for av in 0..32u64 {
            for xv in 0..32u64 {
                let v = outs[(av + (xv << 5)) as usize];
                assert_eq!(v, av + xv, "{av}+{xv}");
            }
        }
    }

    #[test]
    fn carry_select_is_larger_but_not_slower_than_ripple() {
        use tdals_sta::{analyze, TimingConfig};
        let build = |select: bool| {
            let mut b = Builder::new("add16");
            let a = b.inputs("a", 16);
            let x = b.inputs("b", 16);
            let (s, c) = if select {
                carry_select_add(&mut b, &a, &x, SignalRef::Const0, 4)
            } else {
                b.ripple_add(&a, &x, SignalRef::Const0)
            };
            b.outputs("s", &s);
            b.output("c", c);
            b.finish()
        };
        let csa = build(true);
        let rca = build(false);
        assert!(csa.logic_gate_count() > rca.logic_gate_count());
        let cfg = TimingConfig::default();
        let csa_d = analyze(&csa, &cfg).max_depth();
        let rca_d = analyze(&rca, &cfg).max_depth();
        assert!(
            csa_d < rca_d,
            "carry-select is shallower: {csa_d} vs {rca_d}"
        );
    }

    #[test]
    fn multiplier_4x4_exhaustive() {
        let mut b = Builder::new("mul4");
        let a = b.inputs("a", 4);
        let x = b.inputs("b", 4);
        let p = array_multiplier(&mut b, &a, &x);
        b.outputs("p", &p);
        let n = b.finish();
        let outs = eval_all(&n, 8);
        for av in 0..16u64 {
            for xv in 0..16u64 {
                assert_eq!(outs[(av + (xv << 4)) as usize], av * xv, "{av}*{xv}");
            }
        }
    }

    #[test]
    fn prefix_ge_exhaustive() {
        for width in [1usize, 3, 4] {
            let mut b = Builder::new("ge");
            let a = b.inputs("a", width);
            let x = b.inputs("b", width);
            let ge = prefix_ge(&mut b, &a, &x);
            b.output("ge", ge);
            let n = b.finish();
            let outs = eval_all(&n, 2 * width);
            for av in 0..(1u64 << width) {
                for xv in 0..(1u64 << width) {
                    let idx = (av + (xv << width)) as usize;
                    assert_eq!(outs[idx] == 1, av >= xv, "w{width}: {av} >= {xv}");
                }
            }
        }
    }

    #[test]
    fn max2_exhaustive() {
        let mut b = Builder::new("max4b");
        let a = b.inputs("a", 4);
        let x = b.inputs("b", 4);
        let m = max2(&mut b, &a, &x);
        b.outputs("m", &m);
        let n = b.finish();
        let outs = eval_all(&n, 8);
        for av in 0..16u64 {
            for xv in 0..16u64 {
                assert_eq!(outs[(av + (xv << 4)) as usize], av.max(xv));
            }
        }
    }

    #[test]
    fn max4_exhaustive_small() {
        let mut b = Builder::new("max4x2");
        let x0 = b.inputs("x0", 2);
        let x1 = b.inputs("x1", 2);
        let x2 = b.inputs("x2", 2);
        let x3 = b.inputs("x3", 2);
        let m = max4(&mut b, &x0, &x1, &x2, &x3);
        b.outputs("m", &m);
        let n = b.finish();
        let outs = eval_all(&n, 8);
        for v in 0..256u64 {
            let xs = [v & 3, v >> 2 & 3, v >> 4 & 3, v >> 6 & 3];
            assert_eq!(outs[v as usize], *xs.iter().max().expect("4 values"));
        }
    }

    #[test]
    fn int2float_matches_reference() {
        let mut b = Builder::new("i2f");
        let v = b.inputs("v", 11);
        let f = int2float(&mut b, &v);
        assert_eq!(f.len(), 7);
        b.outputs("f", &f);
        let n = b.finish();
        let outs = eval_all(&n, 11);
        for v in 0..(1u64 << 11) {
            assert_eq!(
                outs[v as usize],
                u64::from(int2float_reference(v as u32)),
                "int2float({v})"
            );
        }
    }

    #[test]
    fn isqrt_8bit_exhaustive() {
        let mut b = Builder::new("sqrt8");
        let x = b.inputs("x", 8);
        let q = isqrt(&mut b, &x);
        assert_eq!(q.len(), 4);
        b.outputs("q", &q);
        let n = b.finish();
        let outs = eval_all(&n, 8);
        for v in 0..256u64 {
            let want = (v as f64).sqrt().floor() as u64;
            assert_eq!(outs[v as usize], want, "isqrt({v})");
        }
    }

    #[test]
    fn isqrt_12bit_exhaustive() {
        let mut b = Builder::new("sqrt12");
        let x = b.inputs("x", 12);
        let q = isqrt(&mut b, &x);
        b.outputs("q", &q);
        let n = b.finish();
        let outs = eval_all(&n, 12);
        for v in 0..(1u64 << 12) {
            let want = (v as f64).sqrt().floor() as u64;
            assert_eq!(outs[v as usize], want, "isqrt({v})");
        }
    }

    #[test]
    fn sin_poly_tracks_reference() {
        // Spot-check the 24-bit sine unit on a handful of fractions via
        // random (not exhaustive) patterns: feed specific values by
        // building a tiny wrapper with constant inputs is overkill —
        // instead simulate random vectors and compare per-vector.
        let mut b = Builder::new("sin");
        let x = b.inputs("x", 24);
        let y = sin_poly(&mut b, &x);
        assert_eq!(y.len(), 25);
        b.outputs("y", &y);
        let n = b.finish();
        let p = Patterns::random(24, 256, 12345);
        let r = simulate(&n, &p);
        for v in 0..p.vector_count() {
            let xv: u64 = (0..24).map(|i| u64::from(p.bit(i, v)) << i).sum();
            let yv: u64 = (0..25)
                .map(|po| (r.po_word(po, v / 64) >> (v % 64) & 1) << po)
                .sum();
            let x_frac = xv as f64 / (1u64 << 24) as f64;
            let y_frac = yv as f64 / (1u64 << 24) as f64;
            let want = sin_poly_reference(x_frac);
            assert!(
                (y_frac - want).abs() < 1e-4,
                "sin({x_frac}) = {y_frac}, want ~{want}"
            );
        }
    }
}

//! # tdals-circuits
//!
//! Programmatic regeneration of the paper's benchmark suite (TABLE I) —
//! the workspace's substitute for "synthesized by Design Compiler under
//! TSMC 28nm technology" applied to ISCAS'85 and EPFL sources.
//!
//! [`Benchmark`] enumerates all fifteen circuits with their paper
//! metadata; [`arith`], [`control`] and [`random_logic`] expose the
//! underlying generators (adders, multipliers, max units, ALUs, SEC/DED,
//! seeded random control logic) for building custom workloads.
//!
//! # Examples
//!
//! ```
//! use tdals_circuits::{Benchmark, CircuitClass};
//!
//! let netlist = Benchmark::Max16.build();
//! assert_eq!(netlist.input_count(), 32);
//! assert_eq!(Benchmark::Max16.class(), CircuitClass::Arithmetic);
//! assert!(netlist.logic_gate_count() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arith;
mod benchmarks;
pub mod control;
pub mod random_logic;
pub mod synthesis;

pub use benchmarks::{Benchmark, CircuitClass, ALL_BENCHMARKS};

//! Post-synthesis drive assignment.
//!
//! The paper's benchmarks come out of Design Compiler under area
//! pressure: cells are at (near-)minimum size except where fan-out
//! forces a stronger buffer. That sizing profile is what gives the
//! post-optimization its leverage — deleting gates frees area that the
//! sizer can spend upsizing critical cells. This module applies the
//! same profile to generated netlists.

use tdals_netlist::cell::Drive;
use tdals_netlist::Netlist;

/// Assigns area-optimized drive strengths by fan-out: minimum size for
/// local nets, one/two steps up for high-fanout nets, as an
/// area-constrained synthesis run would leave them.
///
/// | fan-out | drive |
/// |---------|-------|
/// | 0–2     | X0    |
/// | 3–6     | X1    |
/// | ≥ 7     | X2    |
///
/// # Examples
///
/// ```
/// use tdals_circuits::synthesis::assign_synthesis_drives;
/// use tdals_netlist::builder::Builder;
/// use tdals_netlist::cell::Drive;
///
/// let mut b = Builder::new("t");
/// let a = b.input("a");
/// let x = b.input("x");
/// let g = b.and(a, x);
/// b.output("y", g);
/// let mut n = b.finish();
/// assign_synthesis_drives(&mut n);
/// let gate = g.gate().expect("gate");
/// assert_eq!(n.gate(gate).cell().drive(), Drive::X0); // fan-out 1
/// ```
pub fn assign_synthesis_drives(netlist: &mut Netlist) {
    let counts = netlist.fanout_counts();
    let ids: Vec<_> = netlist
        .iter()
        .filter(|(_, g)| !g.is_input())
        .map(|(id, _)| id)
        .collect();
    for id in ids {
        let drive = match counts[id.index()] {
            0..=2 => Drive::X0,
            3..=6 => Drive::X1,
            _ => Drive::X2,
        };
        netlist.set_drive(id, drive);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::builder::Builder;

    #[test]
    fn drives_follow_fanout() {
        let mut b = Builder::new("t");
        let a = b.input("a");
        // `hub` drives 8 readers; each reader drives one output.
        let hub = b.not(a);
        for i in 0..8 {
            let r = b.not(hub);
            b.output(format!("y{i}"), r);
        }
        let mut n = b.finish();
        assign_synthesis_drives(&mut n);
        let hub_gate = hub.gate().expect("gate");
        assert_eq!(n.gate(hub_gate).cell().drive(), Drive::X2, "hub upsized");
        for (id, gate) in n.iter() {
            if !gate.is_input() && id != hub_gate {
                assert_eq!(gate.cell().drive(), Drive::X0, "leaf at min size");
            }
        }
    }

    #[test]
    fn assignment_reduces_area_vs_uniform_x1() {
        let n = crate::Benchmark::C880.build();
        // Benchmarks already carry synthesis drives; re-uniform to X1
        // and compare.
        let mut uniform = n.clone();
        let ids: Vec<_> = uniform
            .iter()
            .filter(|(_, g)| !g.is_input())
            .map(|(id, _)| id)
            .collect();
        for id in ids {
            uniform.set_drive(id, Drive::X1);
        }
        assert!(
            n.area_live() < uniform.area_live(),
            "area-optimized sizing is smaller"
        );
    }
}

//! Seeded random layered logic.
//!
//! Several of the paper's random/control benchmarks (CAVLC coding logic,
//! the controller part of c2670, glue logic around ALU cores) are
//! irregular multi-level networks. This module synthesizes deterministic
//! pseudo-random networks with a controllable gate budget so the
//! regenerated benchmarks land near the paper's TABLE I statistics. A
//! locality window biases fan-in selection toward recently created
//! signals, which produces deep, path-rich structures rather than flat
//! ones — exactly the shape critical-path optimization needs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdals_netlist::builder::Builder;
use tdals_netlist::cell::CellFunc;
use tdals_netlist::SignalRef;

/// Parameters for [`grow`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomLogicSpec {
    /// Number of logic gates to create.
    pub gate_budget: usize,
    /// Number of output signals to return.
    pub output_count: usize,
    /// RNG seed; equal seeds give identical logic.
    pub seed: u64,
    /// Fan-in locality window: candidates are drawn from the most recent
    /// `window` signals (larger ⇒ shallower, wider circuits).
    pub window: usize,
}

impl RandomLogicSpec {
    /// A reasonable default: depth-heavy logic with a window of 24.
    pub fn new(gate_budget: usize, output_count: usize, seed: u64) -> RandomLogicSpec {
        RandomLogicSpec {
            gate_budget,
            output_count,
            seed,
            window: 24,
        }
    }
}

const FUNC_POOL: [CellFunc; 10] = [
    CellFunc::And2,
    CellFunc::Or2,
    CellFunc::Nand2,
    CellFunc::Nor2,
    CellFunc::Xor2,
    CellFunc::Xnor2,
    CellFunc::Aoi21,
    CellFunc::Oai21,
    CellFunc::Mux2,
    CellFunc::Inv,
];

/// Grows a random multi-level network over the given seed signals and
/// returns `spec.output_count` output signals.
///
/// All gates are appended to `b`; the outputs are drawn from the deepest
/// recently-created signals so every returned signal has a non-trivial
/// cone.
///
/// # Panics
///
/// Panics if `seeds` is empty or `spec.output_count` is zero.
pub fn grow(b: &mut Builder, seeds: &[SignalRef], spec: &RandomLogicSpec) -> Vec<SignalRef> {
    assert!(!seeds.is_empty(), "random logic needs seed signals");
    assert!(spec.output_count > 0, "must request at least one output");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut pool: Vec<SignalRef> = seeds.to_vec();
    let first_created = pool.len();

    for _ in 0..spec.gate_budget {
        let func = FUNC_POOL[rng.gen_range(0..FUNC_POOL.len())];
        let arity = func.arity();
        let mut fanins = Vec::with_capacity(arity);
        for _ in 0..arity {
            // Prefer recent signals (deep paths), occasionally reach back
            // to any signal or a primary seed for reconvergence.
            let idx = if rng.gen_bool(0.75) {
                let lo = pool.len().saturating_sub(spec.window);
                rng.gen_range(lo..pool.len())
            } else {
                rng.gen_range(0..pool.len())
            };
            fanins.push(pool[idx]);
        }
        let out = b.raw_gate(func, &fanins);
        pool.push(out);
    }

    // Outputs: the most recent distinct signals (deepest cones first).
    let candidates = &pool[first_created.min(pool.len())..];
    let take = spec.output_count.min(candidates.len());
    let mut outputs: Vec<SignalRef> = candidates[candidates.len() - take..].to_vec();
    // If the budget was smaller than the requested outputs, recycle seeds.
    let mut i = 0;
    while outputs.len() < spec.output_count {
        outputs.push(seeds[i % seeds.len()]);
        i += 1;
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let build = |seed| {
            let mut b = Builder::new("r");
            let ins = b.inputs("x", 6);
            let outs = grow(&mut b, &ins, &RandomLogicSpec::new(50, 4, seed));
            b.outputs("y", &outs);
            b.finish()
        };
        assert_eq!(build(3), build(3));
        assert_ne!(build(3), build(4));
    }

    #[test]
    fn respects_gate_budget() {
        let mut b = Builder::new("r");
        let ins = b.inputs("x", 6);
        let before = b.gate_count();
        let _ = grow(&mut b, &ins, &RandomLogicSpec::new(120, 5, 1));
        assert_eq!(b.gate_count() - before, 120);
    }

    #[test]
    fn outputs_have_depth() {
        use tdals_sta::{analyze, TimingConfig};
        let mut b = Builder::new("r");
        let ins = b.inputs("x", 8);
        let outs = grow(&mut b, &ins, &RandomLogicSpec::new(200, 6, 7));
        b.outputs("y", &outs);
        let n = b.finish();
        let report = analyze(&n, &TimingConfig::default());
        assert!(
            report.max_depth() >= 8,
            "depth {} too shallow",
            report.max_depth()
        );
    }

    #[test]
    fn small_budget_recycles_seeds() {
        let mut b = Builder::new("r");
        let ins = b.inputs("x", 3);
        let outs = grow(&mut b, &ins, &RandomLogicSpec::new(2, 6, 9));
        assert_eq!(outs.len(), 6);
    }
}

//! The paper's benchmark suite (TABLE I), regenerated.
//!
//! The paper synthesizes ISCAS'85 and EPFL circuits with Design Compiler
//! onto TSMC 28nm. Neither the tool nor the library is available, so each
//! benchmark is rebuilt programmatically from its documented function
//! ("8-bit ALU", "16×16 multiplier", …) with primary-input/-output counts
//! matching TABLE I and gate counts in the same regime. Random/control
//! circuits combine a structured core (ALU, SEC/DED decoder,
//! adder/comparator) with seeded pseudo-random control logic, mirroring
//! the controller/glue content of the originals; arithmetic circuits are
//! pure datapaths so NMED keeps its numeric meaning.

use tdals_netlist::builder::Builder;
use tdals_netlist::{Netlist, SignalRef};

use crate::arith;
use crate::control;
use crate::random_logic::{grow, RandomLogicSpec};

/// Which error metric the paper applies to a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CircuitClass {
    /// Optimized under error-rate (ER) constraints.
    RandomControl,
    /// Optimized under NMED constraints (outputs form a binary number).
    Arithmetic,
}

/// One benchmark of TABLE I.
///
/// # Examples
///
/// ```
/// use tdals_circuits::Benchmark;
///
/// let netlist = Benchmark::Adder16.build();
/// assert_eq!(netlist.input_count(), 32);
/// assert_eq!(netlist.output_count(), 17);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// CAVLC coding logic (10 PI / 11 PO).
    Cavlc,
    /// 8-bit ALU (c880; 60 PI / 26 PO).
    C880,
    /// 16-bit SEC/DED circuit (c1908; 33 PI / 25 PO).
    C1908,
    /// 12-bit ALU and controller (c2670; 233 PI / 140 PO).
    C2670,
    /// 8-bit ALU (c3540; 50 PI / 22 PO).
    C3540,
    /// 9-bit ALU (c5315; 178 PI / 123 PO).
    C5315,
    /// 32-bit adder/comparator (c7552; 207 PI / 108 PO).
    C7552,
    /// Int-to-float converter (11 PI / 7 PO).
    Int2float,
    /// 16-bit adder (32 PI / 17 PO).
    Adder16,
    /// 16-bit 2-to-1 max unit (32 PI / 16 PO).
    Max16,
    /// 16×16 multiplier (c6288; 32 PI / 32 PO).
    C6288,
    /// 128-bit adder (256 PI / 129 PO).
    Adder,
    /// 128-bit 4-to-1 max unit (512 PI / 128 PO; the paper lists 120).
    Max,
    /// 24-bit sine unit (24 PI / 25 PO).
    Sin,
    /// 128-bit square-root unit (128 PI / 64 PO).
    Sqrt,
}

/// All benchmarks in TABLE I order.
pub const ALL_BENCHMARKS: [Benchmark; 15] = [
    Benchmark::Cavlc,
    Benchmark::C880,
    Benchmark::C1908,
    Benchmark::C2670,
    Benchmark::C3540,
    Benchmark::C5315,
    Benchmark::C7552,
    Benchmark::Int2float,
    Benchmark::Adder16,
    Benchmark::Max16,
    Benchmark::C6288,
    Benchmark::Adder,
    Benchmark::Max,
    Benchmark::Sin,
    Benchmark::Sqrt,
];

impl Benchmark {
    /// TABLE I name.
    pub const fn name(self) -> &'static str {
        match self {
            Benchmark::Cavlc => "Cavlc",
            Benchmark::C880 => "c880",
            Benchmark::C1908 => "c1908",
            Benchmark::C2670 => "c2670",
            Benchmark::C3540 => "c3540",
            Benchmark::C5315 => "c5315",
            Benchmark::C7552 => "c7552",
            Benchmark::Int2float => "Int2float",
            Benchmark::Adder16 => "Adder16",
            Benchmark::Max16 => "Max16",
            Benchmark::C6288 => "c6288",
            Benchmark::Adder => "Adder",
            Benchmark::Max => "Max",
            Benchmark::Sin => "Sin",
            Benchmark::Sqrt => "Sqrt",
        }
    }

    /// TABLE I description.
    pub const fn description(self) -> &'static str {
        match self {
            Benchmark::Cavlc => "Coding Cavlc",
            Benchmark::C880 => "8-bit ALU",
            Benchmark::C1908 => "16-bit SEC/DED circuit",
            Benchmark::C2670 => "12-bit ALU and controller",
            Benchmark::C3540 => "8-bit ALU",
            Benchmark::C5315 => "9-bit ALU",
            Benchmark::C7552 => "32-bit adder/comparator",
            Benchmark::Int2float => "int to float converter",
            Benchmark::Adder16 => "16-bit adder",
            Benchmark::Max16 => "16-bit 2-1 max unit",
            Benchmark::C6288 => "16x16 multiplier",
            Benchmark::Adder => "128-bit adder",
            Benchmark::Max => "128-bit 4-1 max unit",
            Benchmark::Sin => "24-bit sine unit",
            Benchmark::Sqrt => "128-bit square root unit",
        }
    }

    /// Error-metric class (ER vs NMED) per the paper.
    pub const fn class(self) -> CircuitClass {
        match self {
            Benchmark::Cavlc
            | Benchmark::C880
            | Benchmark::C1908
            | Benchmark::C2670
            | Benchmark::C3540
            | Benchmark::C5315
            | Benchmark::C7552 => CircuitClass::RandomControl,
            _ => CircuitClass::Arithmetic,
        }
    }

    /// The seven random/control benchmarks (TABLE II rows).
    pub fn random_control() -> Vec<Benchmark> {
        ALL_BENCHMARKS
            .into_iter()
            .filter(|b| b.class() == CircuitClass::RandomControl)
            .collect()
    }

    /// The eight arithmetic benchmarks (TABLE III rows).
    pub fn arithmetic() -> Vec<Benchmark> {
        ALL_BENCHMARKS
            .into_iter()
            .filter(|b| b.class() == CircuitClass::Arithmetic)
            .collect()
    }

    /// Generates the gate-level netlist.
    ///
    /// The result mirrors an area-constrained synthesis run: it is
    /// dangling-free (gates the pseudo-random glue created outside any
    /// output cone are swept) and carries area-optimized drive
    /// strengths ([`crate::synthesis::assign_synthesis_drives`]), which
    /// is what leaves the post-optimization sizer real headroom.
    pub fn build(self) -> Netlist {
        let mut netlist = self.build_raw();
        netlist.sweep_dangling();
        crate::synthesis::assign_synthesis_drives(&mut netlist);
        netlist
    }

    fn build_raw(self) -> Netlist {
        match self {
            Benchmark::Cavlc => build_cavlc(),
            Benchmark::C880 => build_c880(),
            Benchmark::C1908 => build_c1908(),
            Benchmark::C2670 => build_c2670(),
            Benchmark::C3540 => build_c3540(),
            Benchmark::C5315 => build_c5315(),
            Benchmark::C7552 => build_c7552(),
            Benchmark::Int2float => build_int2float(),
            Benchmark::Adder16 => build_adder16(),
            Benchmark::Max16 => build_max16(),
            Benchmark::C6288 => build_c6288(),
            Benchmark::Adder => build_adder128(),
            Benchmark::Max => build_max128(),
            Benchmark::Sin => build_sin(),
            Benchmark::Sqrt => build_sqrt(),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn build_cavlc() -> Netlist {
    let mut b = Builder::new("cavlc");
    let ins = b.inputs("pi", 10);
    let outs = grow(&mut b, &ins, &RandomLogicSpec::new(560, 11, 0xCA51C));
    b.outputs("po", &outs);
    b.finish()
}

/// ALU core + random controller glue, the recipe shared by the
/// ISCAS'85-style benchmarks.
fn alu_with_glue(
    name: &str,
    width: usize,
    extra_pis: usize,
    extra_pos: usize,
    glue_gates: usize,
    seed: u64,
) -> Netlist {
    let mut b = Builder::new(name);
    let a = b.inputs("a", width);
    let x = b.inputs("b", width);
    let cin = b.input("cin");
    let s0 = b.input("s0");
    let s1 = b.input("s1");
    let s2 = b.input("s2");
    let extra = b.inputs("ctl", extra_pis);
    let out = control::alu(&mut b, &a, &x, [s0, s1, s2], cin);
    b.outputs("r", &out.result);
    b.output("carry", out.carry);
    b.output("zero", out.zero);
    if extra_pos > 0 {
        // Glue logic sees the controller inputs and taps the datapath.
        let mut seeds = extra;
        seeds.push(out.result[0]);
        seeds.push(out.result[width - 1]);
        seeds.push(out.carry);
        let glue = grow(
            &mut b,
            &seeds,
            &RandomLogicSpec::new(glue_gates, extra_pos, seed),
        );
        b.outputs("g", &glue);
    }
    b.finish()
}

fn build_c880() -> Netlist {
    // 60 PI = 8+8 operands + cin + 3 sel + 40 glue; 26 PO = 10 ALU + 16.
    alu_with_glue("c880", 8, 40, 16, 190, 0x0880)
}

fn build_c2670() -> Netlist {
    // 233 PI = 12+12+4 + 205 glue; 140 PO = 14 ALU + 126 glue.
    alu_with_glue("c2670", 12, 205, 126, 680, 0x2670)
}

fn build_c3540() -> Netlist {
    // 50 PI = 8+8+4 + 30 glue; 22 PO = 10 ALU + 12 glue.
    alu_with_glue("c3540", 8, 30, 12, 520, 0x3540)
}

fn build_c5315() -> Netlist {
    // 178 PI = 9+9+4 + 156 glue; 123 PO = 11 ALU + 112 glue.
    alu_with_glue("c5315", 9, 156, 112, 2340, 0x5315)
}

fn build_c1908() -> Netlist {
    let mut b = Builder::new("c1908");
    let data = b.inputs("d", 16);
    let checks = b.inputs("c", 6);
    let extra = b.inputs("x", 11);
    let dec = control::hamming_secded(&mut b, &data, &checks);
    b.outputs("q", &dec.corrected);
    let syndrome = dec.syndrome.clone();
    b.outputs("s", &syndrome);
    b.output("derr", dec.double_error);
    // 16 + 6 + 1 = 23 POs so far; two glue outputs reach 25, and the glue
    // absorbs the spare inputs like the original's datapath padding.
    let mut seeds = extra;
    seeds.push(dec.double_error);
    seeds.push(dec.corrected[0]);
    let glue = grow(&mut b, &seeds, &RandomLogicSpec::new(140, 2, 0x1908));
    b.outputs("g", &glue);
    b.finish()
}

fn build_c7552() -> Netlist {
    let mut b = Builder::new("c7552");
    let a = b.inputs("a", 32);
    let x = b.inputs("b", 32);
    let cin = b.input("cin");
    let extra = b.inputs("k", 142);
    let out = control::add_compare(&mut b, &a, &x, cin);
    b.outputs("s", &out.sum);
    b.output("carry", out.carry);
    b.output("eq", out.eq);
    b.output("gt", out.gt);
    b.output("lt", out.lt);
    // 32 + 4 = 36 POs so far; 72 glue outputs reach 108.
    let mut seeds = extra;
    seeds.push(out.eq);
    seeds.push(out.gt);
    seeds.push(out.sum[31]);
    let glue = grow(&mut b, &seeds, &RandomLogicSpec::new(900, 72, 0x7552));
    b.outputs("g", &glue);
    b.finish()
}

fn build_int2float() -> Netlist {
    let mut b = Builder::new("int2float");
    let v = b.inputs("v", 11);
    let f = arith::int2float(&mut b, &v);
    b.outputs("f", &f);
    b.finish()
}

fn build_adder16() -> Netlist {
    let mut b = Builder::new("adder16");
    let a = b.inputs("a", 16);
    let x = b.inputs("b", 16);
    let (sum, carry) = arith::kogge_stone_add(&mut b, &a, &x, SignalRef::Const0);
    b.outputs("s", &sum);
    b.output("cout", carry);
    b.finish()
}

fn build_max16() -> Netlist {
    let mut b = Builder::new("max16");
    let a = b.inputs("a", 16);
    let x = b.inputs("b", 16);
    let m = arith::max2(&mut b, &a, &x);
    b.outputs("m", &m);
    b.finish()
}

fn build_c6288() -> Netlist {
    let mut b = Builder::new("c6288");
    let a = b.inputs("a", 16);
    let x = b.inputs("b", 16);
    let p = arith::array_multiplier(&mut b, &a, &x);
    b.outputs("p", &p);
    b.finish()
}

fn build_adder128() -> Netlist {
    let mut b = Builder::new("adder");
    let a = b.inputs("a", 128);
    let x = b.inputs("b", 128);
    let (sum, carry) = arith::kogge_stone_add(&mut b, &a, &x, SignalRef::Const0);
    b.outputs("s", &sum);
    b.output("cout", carry);
    b.finish()
}

fn build_max128() -> Netlist {
    let mut b = Builder::new("max");
    let x0 = b.inputs("a", 128);
    let x1 = b.inputs("b", 128);
    let x2 = b.inputs("c", 128);
    let x3 = b.inputs("d", 128);
    let m = arith::max4(&mut b, &x0, &x1, &x2, &x3);
    b.outputs("m", &m);
    b.finish()
}

fn build_sin() -> Netlist {
    let mut b = Builder::new("sin");
    let x = b.inputs("x", 24);
    let y = arith::sin_poly(&mut b, &x);
    b.outputs("y", &y);
    b.finish()
}

fn build_sqrt() -> Netlist {
    let mut b = Builder::new("sqrt");
    let x = b.inputs("x", 128);
    let q = arith::isqrt(&mut b, &x);
    b.outputs("q", &q);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi_po_counts_match_table1() {
        let expected: [(Benchmark, usize, usize); 15] = [
            (Benchmark::Cavlc, 10, 11),
            (Benchmark::C880, 60, 26),
            (Benchmark::C1908, 33, 25),
            (Benchmark::C2670, 233, 140),
            (Benchmark::C3540, 50, 22),
            (Benchmark::C5315, 178, 123),
            (Benchmark::C7552, 207, 108),
            (Benchmark::Int2float, 11, 7),
            (Benchmark::Adder16, 32, 17),
            (Benchmark::Max16, 32, 16),
            (Benchmark::C6288, 32, 32),
            (Benchmark::Adder, 256, 129),
            (Benchmark::Max, 512, 128),
            (Benchmark::Sin, 24, 25),
            (Benchmark::Sqrt, 128, 64),
        ];
        for (bench, pi, po) in expected {
            let n = bench.build();
            assert_eq!(n.input_count(), pi, "{bench} PI count");
            assert_eq!(n.output_count(), po, "{bench} PO count");
            n.check_invariants().expect("valid netlist");
        }
    }

    #[test]
    fn builds_are_deterministic() {
        for bench in [Benchmark::Cavlc, Benchmark::C880, Benchmark::C7552] {
            assert_eq!(bench.build(), bench.build(), "{bench}");
        }
    }

    #[test]
    fn gate_counts_are_in_regime() {
        // Within a factor of ~2.5 of TABLE I (exact counts depend on the
        // synthesis recipe, which we do not reproduce).
        let expected: [(Benchmark, usize); 15] = [
            (Benchmark::Cavlc, 573),
            (Benchmark::C880, 322),
            (Benchmark::C1908, 366),
            (Benchmark::C2670, 922),
            (Benchmark::C3540, 667),
            (Benchmark::C5315, 2595),
            (Benchmark::C7552, 1576),
            (Benchmark::Int2float, 198),
            (Benchmark::Adder16, 269),
            (Benchmark::Max16, 154),
            (Benchmark::C6288, 1641),
            (Benchmark::Adder, 1639),
            (Benchmark::Max, 2940),
            (Benchmark::Sin, 10962),
            (Benchmark::Sqrt, 13542),
        ];
        for (bench, gates) in expected {
            let got = bench.build().logic_gate_count();
            let lo = gates as f64 / 2.5;
            let hi = gates as f64 * 2.5;
            assert!(
                (lo..hi).contains(&(got as f64)),
                "{bench}: {got} gates vs paper {gates}"
            );
        }
    }

    #[test]
    fn classes_partition_the_suite() {
        assert_eq!(Benchmark::random_control().len(), 7);
        assert_eq!(Benchmark::arithmetic().len(), 8);
    }

    #[test]
    fn verilog_round_trip_medium_benchmark() {
        use tdals_netlist::verilog;
        let n = Benchmark::Adder16.build();
        let text = verilog::to_verilog(&n);
        let again = verilog::parse(&text).expect("reparse");
        assert_eq!(again.logic_gate_count(), n.logic_gate_count());
        assert_eq!(again.input_count(), n.input_count());
    }
}

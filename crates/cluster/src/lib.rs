//! # tdals-cluster
//!
//! The multi-process shard coordinator: fan one `serve-batch`
//! [`Manifest`](tdals_server::Manifest) across N worker processes and
//! merge the per-shard results back into a file **byte-identical to
//! the single-process run**.
//!
//! The stack's determinism ladder makes this almost free: one flow is
//! bit-identical at any thread count (PR 4), a batch's results file is
//! byte-identical at any pool width (PR 5), and a wire-reassembled
//! results file is byte-identical to `serve-batch`'s (PR 7). Every
//! result record is a pure function of its job description — seeds
//! drive all randomness and wall-clock never enters a record — so
//! *where* a job runs cannot change its bytes. What a coordinator must
//! add is exactly three things, and they are the three modules here:
//!
//! * [`plan`](mod@plan) — split the manifest into per-shard index sets
//!   ([`ShardPlan`]) under a [`ShardPolicy`], recorded in a JSON shard
//!   map so the merge is order-reconstructible;
//! * [`supervisor`] — run one worker per shard: spawn
//!   `tdals serve-batch` child processes ([`run_children`], mode A) or
//!   drive already-running `tdals serve` daemons over the wire
//!   protocol ([`run_daemons`], mode B), with per-shard timeouts and a
//!   bounded restart for crashed children (safe to re-run precisely
//!   because results are seed-driven);
//! * [`merge`](mod@merge) — stitch the per-shard, submission-ordered
//!   result records back into manifest order ([`merge()`]).
//!
//! Everything failure-shaped surfaces as a typed [`ClusterError`].
//!
//! # Example
//!
//! ```
//! use tdals_circuits::Benchmark;
//! use tdals_cluster::{merge, plan, ShardPolicy};
//! use tdals_server::{BatchOptions, BatchRun, FlowJob, Manifest};
//!
//! let jobs: Vec<FlowJob> = [3u64, 5, 7]
//!     .iter()
//!     .map(|&seed| {
//!         FlowJob::benchmark(Benchmark::Int2float)
//!             .with_bound(0.05)
//!             .with_scale(4, 1)
//!             .with_vectors(256)
//!             .with_seed(seed)
//!             .with_name(format!("job-{seed}"))
//!     })
//!     .collect();
//! let manifest = Manifest::new(jobs);
//! let plan = plan(&manifest, 2, ShardPolicy::RoundRobin).expect("plannable");
//!
//! // Run each shard through the same engine a worker process runs
//! // (in-process here; the supervisor does this across processes).
//! let opts = BatchOptions::new().with_total_threads(1);
//! let docs: Vec<String> = (0..plan.shard_count())
//!     .map(|s| {
//!         let run = BatchRun::prepare(&plan.manifest_for(&manifest, s), &opts).unwrap();
//!         format!("{}\n", run.run(&mut |_, _, _| {}).unwrap().document())
//!     })
//!     .collect();
//! let merged = merge(&plan, &docs).expect("merges");
//!
//! // Byte-identical to the unsharded run.
//! let solo = BatchRun::prepare(&manifest, &opts).unwrap();
//! let solo_doc = format!("{}\n", solo.run(&mut |_, _, _| {}).unwrap().document());
//! assert_eq!(merged, solo_doc);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod merge;
pub mod plan;
pub mod supervisor;

pub use merge::merge;
pub use plan::{plan, ShardPlan, ShardPolicy, SHARD_MAP_SCHEMA};
pub use supervisor::{run_children, run_daemons, SupervisorOptions};

/// Why a sharded run failed. Each variant names the layer that broke:
/// planning, process management, the results a worker produced, the
/// wire protocol, or the merge invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The shard plan (or a shard map being parsed) is invalid.
    Plan {
        /// What is wrong.
        what: String,
    },
    /// A filesystem or process-spawn operation failed.
    Io {
        /// What failed, with the OS error.
        what: String,
    },
    /// A worker process died without producing a complete results file,
    /// even after the bounded restart.
    Worker {
        /// Which shard's worker.
        shard: usize,
        /// The exit status (or how the process died).
        status: String,
        /// Diagnosis, including the worker's last stderr lines.
        what: String,
    },
    /// A worker exited cleanly but its results file does not cover its
    /// shard (missing, unparseable, or short), even after the bounded
    /// restart.
    PartialResults {
        /// Which shard's worker.
        shard: usize,
        /// What the file looked like.
        what: String,
    },
    /// A mode B daemon conversation failed (dial, error frame, or a
    /// malformed reply).
    Protocol {
        /// Which shard's daemon.
        shard: usize,
        /// The protocol-level error.
        what: String,
    },
    /// A shard blew its per-shard timeout.
    Timeout {
        /// Which shard.
        shard: usize,
        /// The limit that fired, in seconds.
        seconds: u64,
    },
    /// The per-shard documents cannot be stitched back into manifest
    /// order (count/index/schema mismatch).
    Merge {
        /// Which invariant broke.
        what: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Plan { what } => write!(f, "shard plan: {what}"),
            ClusterError::Io { what } => write!(f, "cluster i/o: {what}"),
            ClusterError::Worker {
                shard,
                status,
                what,
            } => write!(f, "shard {shard} worker died ({status}): {what}"),
            ClusterError::PartialResults { shard, what } => {
                write!(f, "shard {shard} produced partial results: {what}")
            }
            ClusterError::Protocol { shard, what } => {
                write!(f, "shard {shard} protocol error: {what}")
            }
            ClusterError::Timeout { shard, seconds } => {
                write!(f, "shard {shard} timed out after {seconds}s")
            }
            ClusterError::Merge { what } => write!(f, "merge: {what}"),
        }
    }
}

impl std::error::Error for ClusterError {}

//! The worker supervisor: one worker per shard, two ways to get one.
//!
//! **Mode A** ([`run_children`]) spawns one `tdals serve-batch` child
//! process per shard with a per-shard manifest and results file. A
//! worker that dies without a complete results file is restarted once
//! from its manifest — safe because results are seed-driven, so the
//! re-run writes the same bytes the first run would have. A worker
//! that *exits* nonzero but leaves a complete results file is fine:
//! that is `serve-batch`'s normal exit for a batch with failed jobs,
//! and the per-job failure records are part of the deterministic
//! output.
//!
//! **Mode B** ([`run_daemons`]) drives already-running `tdals serve`
//! daemons over the wire protocol — one submit client per shard,
//! reassembling each shard's records exactly as `tdals submit` does.
//!
//! Both modes return one results-document text per shard, ready for
//! [`merge`](crate::merge::merge), and both multiplex worker progress
//! frames through a caller-supplied callback with a `shard` tag
//! spliced in. The multiplexed *order* across shards is wall-clock
//! (it is a progress stream on stderr); the results documents are not.

use std::collections::VecDeque;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use tdals_obs::clock::{self, Instant};
use tdals_obs::trace;

use tdals_bench::json::Json;
use tdals_server::{
    as_error, connect_retry, results_document_from_records, Connection, FlowJob, Manifest, Request,
    Stream, PROTOCOL_SCHEMA,
};

use crate::plan::ShardPlan;
use crate::ClusterError;

/// Environment hook for the crash-restart soak: when set to a shard
/// number, that shard's **first** child process is killed right after
/// spawning, forcing the supervisor down the restart path. The restart
/// must still converge to byte-identical output — which is what the
/// `shard-soak` CI job asserts.
pub const CRASH_SHARD_ENV: &str = "TDALS_CLUSTER_CRASH_SHARD";

/// How many trailing worker stderr lines are kept for diagnostics.
const STDERR_TAIL: usize = 20;

/// Supervision knobs shared by both worker modes.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct SupervisorOptions {
    /// Per-shard wall-clock limit. A shard that blows it is killed and
    /// reported as [`ClusterError::Timeout`] — no restart, since a
    /// re-run would spend the same time again. `None` means unbounded.
    pub timeout: Option<Duration>,
    /// Worker pool width forwarded to each mode A child
    /// (`--total-threads`); `None` lets each child pick its own core
    /// count. Results are width-invariant either way.
    pub total_threads: Option<usize>,
    /// Mode B dial retries per daemon ([`connect_retry`]).
    pub retries: usize,
    /// Forward worker progress frames to the callback (mode A children
    /// additionally get `--progress` only when set).
    pub progress: bool,
    /// Mode A scratch directory for per-shard manifests/results. A
    /// caller-provided directory is created if needed and left in
    /// place; `None` uses a fresh temp directory that is removed after
    /// the run.
    pub workdir: Option<PathBuf>,
}

impl SupervisorOptions {
    /// Defaults: no timeout, worker-chosen widths, no dial retries, no
    /// progress forwarding, temp scratch.
    pub fn new() -> SupervisorOptions {
        SupervisorOptions::default()
    }

    /// Sets the per-shard wall-clock limit.
    pub fn with_timeout(mut self, timeout: impl Into<Option<Duration>>) -> SupervisorOptions {
        self.timeout = timeout.into();
        self
    }

    /// Sets the per-child pool width (mode A).
    pub fn with_total_threads(mut self, total: impl Into<Option<usize>>) -> SupervisorOptions {
        self.total_threads = total.into();
        self
    }

    /// Sets the dial retry budget (mode B).
    pub fn with_retries(mut self, retries: usize) -> SupervisorOptions {
        self.retries = retries;
        self
    }

    /// Enables progress-frame forwarding.
    pub fn with_progress(mut self, progress: bool) -> SupervisorOptions {
        self.progress = progress;
        self
    }

    /// Sets the mode A scratch directory.
    pub fn with_workdir(mut self, workdir: impl Into<PathBuf>) -> SupervisorOptions {
        self.workdir = Some(workdir.into());
        self
    }
}

/// Splices `"shard": n` into a worker's event frame, right after the
/// `schema` member, so multiplexed streams from different shards stay
/// distinguishable.
fn tag_shard(frame: Json, shard: usize) -> Json {
    let Json::Obj(members) = frame else {
        return frame;
    };
    let mut out = Vec::with_capacity(members.len() + 1);
    let mut inserted = false;
    for (key, value) in members {
        let after = key == "schema";
        out.push((key, value));
        if after && !inserted {
            out.push(("shard".into(), Json::Num(shard as f64)));
            inserted = true;
        }
    }
    if !inserted {
        out.insert(0, ("shard".into(), Json::Num(shard as f64)));
    }
    Json::Obj(out)
}

/// The frame mode B emits per event — field-for-field the frame a mode
/// A child prints (via the CLI's shared renderer) after shard tagging.
fn shard_frame(shard: usize, session: usize, name: &str, event: Json) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Num(PROTOCOL_SCHEMA as f64)),
        ("shard".into(), Json::Num(shard as f64)),
        ("session".into(), Json::Num(session as f64)),
        ("name".into(), Json::Str(name.into())),
        ("event".into(), event),
    ])
}

// ---------------------------------------------------------------------
// Mode A: child worker processes
// ---------------------------------------------------------------------

/// Distinguishes concurrent supervisors inside one process (tests run
/// several at once) when naming the temp scratch directory.
static SCRATCH_COUNTER: AtomicUsize = AtomicUsize::new(0);

struct Worker {
    shard: usize,
    attempt: usize,
    child: Child,
    /// Start of this attempt, for the per-shard timeout.
    started: Instant,
    tail: Arc<Mutex<VecDeque<String>>>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl Worker {
    fn tail_text(&self) -> String {
        let tail = self.tail.lock().unwrap_or_else(PoisonError::into_inner);
        if tail.is_empty() {
            "worker wrote nothing to stderr".into()
        } else {
            format!(
                "last stderr lines:\n{}",
                tail.iter().cloned().collect::<Vec<_>>().join("\n")
            )
        }
    }
}

struct Scratch {
    dir: PathBuf,
    /// Whether the supervisor owns (and removes) the directory.
    owned: bool,
}

impl Scratch {
    fn prepare(opts: &SupervisorOptions) -> Result<Scratch, ClusterError> {
        let (dir, owned) = match &opts.workdir {
            Some(dir) => (dir.clone(), false),
            None => {
                let nonce = SCRATCH_COUNTER.fetch_add(1, Ordering::Relaxed);
                let dir = std::env::temp_dir()
                    .join(format!("tdals-shard-{}-{nonce}", std::process::id()));
                (dir, true)
            }
        };
        std::fs::create_dir_all(&dir).map_err(|e| ClusterError::Io {
            what: format!("creating scratch dir {}: {e}", dir.display()),
        })?;
        Ok(Scratch { dir, owned })
    }

    fn manifest_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard{shard}-manifest.json"))
    }

    fn results_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard{shard}-results.json"))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        if self.owned {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

fn spawn_worker(
    shard: usize,
    attempt: usize,
    exe: &Path,
    scratch: &Scratch,
    opts: &SupervisorOptions,
    frames: &Sender<Json>,
) -> Result<Worker, ClusterError> {
    // A fresh attempt must not inherit a half-written results file.
    let _ = std::fs::remove_file(scratch.results_path(shard));
    let mut command = Command::new(exe);
    command
        .arg("serve-batch")
        .arg("--manifest")
        .arg(scratch.manifest_path(shard))
        .arg("--out")
        .arg(scratch.results_path(shard))
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    if let Some(total) = opts.total_threads {
        command.arg("--total-threads").arg(total.to_string());
    }
    if opts.progress {
        command.arg("--progress");
    }
    let mut child = command.spawn().map_err(|e| ClusterError::Io {
        what: format!("spawning shard {shard} worker {}: {e}", exe.display()),
    })?;

    // The crash-soak hook: kill the first attempt immediately so the
    // restart path runs under CI. Only ever the first attempt — the
    // restart must be allowed to converge.
    if attempt == 0 {
        if let Ok(target) = std::env::var(CRASH_SHARD_ENV) {
            if target == shard.to_string() {
                let _ = child.kill();
            }
        }
    }

    let tail = Arc::new(Mutex::new(VecDeque::with_capacity(STDERR_TAIL)));
    let reader = child.stderr.take().map(|stderr| {
        let tail = Arc::clone(&tail);
        let frames = frames.clone();
        let forward = opts.progress;
        std::thread::spawn(move || {
            for line in std::io::BufReader::new(stderr).lines() {
                let Ok(line) = line else { break };
                // Progress frames are one-line JSON objects with an
                // `event` member; everything else is diagnostics.
                if forward && line.starts_with('{') {
                    if let Ok(frame) = Json::parse(&line) {
                        if frame.get("event").is_some() {
                            let _ = frames.send(tag_shard(frame, shard));
                            continue;
                        }
                    }
                }
                let mut tail = tail.lock().unwrap_or_else(PoisonError::into_inner);
                if tail.len() == STDERR_TAIL {
                    tail.pop_front();
                }
                tail.push_back(line);
            }
        })
    });
    Ok(Worker {
        shard,
        attempt,
        child,
        started: clock::now(),
        tail,
        reader,
    })
}

/// Checks that a shard's results file covers its whole assignment;
/// returns the raw text (the merge re-parses it).
fn read_shard_doc(path: &Path, expected: usize) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("results file {} is unreadable: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("results file is not valid JSON: {e}"))?;
    if doc.get("schema").and_then(Json::as_uint) != Some(1) {
        return Err("results file schema is not 1".into());
    }
    match doc.get("results").and_then(Json::as_array) {
        Some(records) if records.len() == expected => Ok(text),
        Some(records) => Err(format!(
            "{} record(s) for {expected} assigned job(s)",
            records.len()
        )),
        None => Err("results file has no `results` array".into()),
    }
}

fn kill_all(workers: &mut [Option<Worker>]) {
    for worker in workers.iter_mut().flatten() {
        let _ = worker.child.kill();
        let _ = worker.child.wait();
        if let Some(reader) = worker.reader.take() {
            let _ = reader.join();
        }
    }
}

fn status_label(status: &ExitStatus) -> String {
    match status.code() {
        Some(code) => format!("exit code {code}"),
        None => "killed by signal".into(),
    }
}

/// Mode A: one `tdals serve-batch` child process per shard, restart
/// once on crash, per-shard results documents back in shard order.
/// `exe` is the `tdals` binary (a coordinator CLI passes its own
/// `current_exe`). Worker progress frames stream through `on_frame`
/// when [`SupervisorOptions::progress`] is set.
///
/// # Errors
///
/// The typed [`ClusterError`] taxonomy: spawn/scratch I/O, a worker
/// dead twice without complete results ([`ClusterError::Worker`]), a
/// clean exit with an incomplete file ([`ClusterError::PartialResults`]),
/// or a blown per-shard timeout.
pub fn run_children(
    manifest: &Manifest,
    plan: &ShardPlan,
    exe: &Path,
    opts: &SupervisorOptions,
    on_frame: &mut dyn FnMut(&Json),
) -> Result<Vec<String>, ClusterError> {
    let count = plan.shard_count();
    // The flows themselves run in child processes — their spans land in
    // those processes' (disabled) recorders. The coordinator's trace
    // covers what *this* process does: the supervision window.
    let _span = trace::span(trace::cat::FLOW, "shard-children").arg("shards", count as u64);
    let scratch = Scratch::prepare(opts)?;
    for shard in 0..count {
        let path = scratch.manifest_path(shard);
        let text = format!("{}\n", plan.manifest_for(manifest, shard).to_json());
        std::fs::write(&path, text).map_err(|e| ClusterError::Io {
            what: format!("writing shard manifest {}: {e}", path.display()),
        })?;
    }

    let (frames_tx, frames_rx) = std::sync::mpsc::channel::<Json>();
    let mut workers: Vec<Option<Worker>> = Vec::with_capacity(count);
    for shard in 0..count {
        match spawn_worker(shard, 0, exe, &scratch, opts, &frames_tx) {
            Ok(worker) => workers.push(Some(worker)),
            Err(e) => {
                kill_all(&mut workers);
                return Err(e);
            }
        }
    }

    let mut docs: Vec<Option<String>> = vec![None; count];
    let result = supervise_children(
        plan,
        exe,
        &scratch,
        opts,
        &frames_tx,
        &frames_rx,
        &mut workers,
        &mut docs,
        on_frame,
    );
    drop(frames_tx);
    while let Ok(frame) = frames_rx.try_recv() {
        on_frame(&frame);
    }
    result?;
    Ok(docs
        .into_iter()
        .map(|d| d.expect("supervision completed every shard"))
        .collect())
}

/// The child-worker supervision loop, factored out so `run_children`
/// can flush the frame channel on both the success and error paths.
#[allow(clippy::too_many_arguments)]
fn supervise_children(
    plan: &ShardPlan,
    exe: &Path,
    scratch: &Scratch,
    opts: &SupervisorOptions,
    frames_tx: &Sender<Json>,
    frames_rx: &Receiver<Json>,
    workers: &mut [Option<Worker>],
    docs: &mut [Option<String>],
    on_frame: &mut dyn FnMut(&Json),
) -> Result<(), ClusterError> {
    loop {
        while let Ok(frame) = frames_rx.try_recv() {
            on_frame(&frame);
        }
        let mut live = false;
        for slot in 0..workers.len() {
            let Some(worker) = workers[slot].as_mut() else {
                continue;
            };
            live = true;
            if let Some(limit) = opts.timeout {
                if worker.started.elapsed() >= limit {
                    let shard = worker.shard;
                    kill_all(workers);
                    return Err(ClusterError::Timeout {
                        shard,
                        seconds: limit.as_secs(),
                    });
                }
            }
            let status = match worker.child.try_wait() {
                Ok(None) => continue,
                Ok(Some(status)) => status,
                Err(e) => {
                    let shard = worker.shard;
                    kill_all(workers);
                    return Err(ClusterError::Io {
                        what: format!("waiting on shard {shard} worker: {e}"),
                    });
                }
            };
            let mut worker = workers[slot].take().expect("checked Some above");
            if let Some(reader) = worker.reader.take() {
                let _ = reader.join();
            }
            let shard = worker.shard;
            match read_shard_doc(&scratch.results_path(shard), plan.jobs_of(shard).len()) {
                // A complete results file is authoritative whatever the
                // exit status: serve-batch exits nonzero when jobs
                // *fail*, and failure records are part of the output.
                Ok(text) => docs[shard] = Some(text),
                Err(_) if worker.attempt == 0 => {
                    // Crashed (or corrupted) on the first attempt:
                    // deterministic re-run from the same manifest.
                    tdals_obs::metrics().shard_restarts.incr();
                    match spawn_worker(shard, 1, exe, scratch, opts, frames_tx) {
                        Ok(respawned) => workers[slot] = Some(respawned),
                        Err(e) => {
                            kill_all(workers);
                            return Err(e);
                        }
                    }
                }
                Err(what) => {
                    let diagnosis = format!("{what}; {}", worker.tail_text());
                    kill_all(workers);
                    return Err(if status.success() {
                        ClusterError::PartialResults {
                            shard,
                            what: diagnosis,
                        }
                    } else {
                        ClusterError::Worker {
                            shard,
                            status: status_label(&status),
                            what: diagnosis,
                        }
                    });
                }
            }
        }
        if !live {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

// ---------------------------------------------------------------------
// Mode B: remote daemons over the wire protocol
// ---------------------------------------------------------------------

/// One wire round-trip with typed shard-tagged errors.
fn wire(
    shard: usize,
    conn: &mut Connection<Stream>,
    request: &Request,
) -> Result<Json, ClusterError> {
    let protocol = |what: String| ClusterError::Protocol { shard, what };
    conn.send(&request.to_json())
        .map_err(|e| protocol(format!("sending to daemon: {e}")))?;
    let frame = match conn.receive() {
        Ok(Some(frame)) => frame,
        Ok(None) => return Err(protocol("daemon closed the connection".into())),
        Err(e) => return Err(protocol(format!("reading from daemon: {e}"))),
    };
    if let Some((code, message)) = as_error(&frame) {
        return Err(protocol(format!("{code}: {message}")));
    }
    Ok(frame)
}

fn reply_session_id(shard: usize, frame: &Json) -> Result<u64, ClusterError> {
    frame
        .get("session")
        .and_then(|v| {
            v.as_uint()
                .or_else(|| v.as_str().and_then(|s| s.parse().ok()))
        })
        .ok_or_else(|| ClusterError::Protocol {
            shard,
            what: "daemon reply is missing `session`".into(),
        })
}

/// One shard's full conversation with its daemon: submit every
/// assigned job, pump events and results, reassemble the shard-local
/// results document exactly as `tdals submit` would.
fn drive_daemon(
    shard: usize,
    jobs: Vec<FlowJob>,
    spec: &str,
    opts: &SupervisorOptions,
    frames: &Sender<Json>,
) -> Result<String, ClusterError> {
    let _span =
        trace::span(trace::cat::PAR, format!("shard-{shard}")).arg("jobs", jobs.len() as u64);
    let started = clock::now();
    let stream = connect_retry(spec, opts.retries).map_err(|e| ClusterError::Protocol {
        shard,
        what: e.to_string(),
    })?;
    let mut conn = Connection::new(stream);
    let mut sessions: Vec<(u64, String)> = Vec::with_capacity(jobs.len());
    for job in &jobs {
        let reply = wire(
            shard,
            &mut conn,
            &Request::Submit {
                job: job.clone(),
                tenant: None,
            },
        )?;
        sessions.push((reply_session_id(shard, &reply)?, job.name.clone()));
    }

    let mut records: Vec<Option<Json>> = vec![None; sessions.len()];
    loop {
        if let Some(limit) = opts.timeout {
            if started.elapsed() >= limit {
                return Err(ClusterError::Timeout {
                    shard,
                    seconds: limit.as_secs(),
                });
            }
        }
        let mut pending = false;
        for (i, (id, name)) in sessions.iter().enumerate() {
            if records[i].is_some() {
                continue;
            }
            let pump_events = |conn: &mut Connection<Stream>| -> Result<(), ClusterError> {
                let reply = wire(shard, conn, &Request::Events { session: *id })?;
                if opts.progress {
                    if let Some(Json::Arr(items)) = reply.get("events") {
                        for ev in items {
                            let _ = frames.send(shard_frame(shard, i, name, ev.clone()));
                        }
                    }
                }
                Ok(())
            };
            pump_events(&mut conn)?;
            let reply = wire(
                shard,
                &mut conn,
                &Request::Result {
                    session: *id,
                    wait: false,
                },
            )?;
            if reply.get("done") == Some(&Json::Bool(true)) {
                records[i] = Some(reply.get("record").cloned().unwrap_or(Json::Null));
                // One more drain: events that landed between the last
                // poll and the session finishing.
                pump_events(&mut conn)?;
            } else {
                pending = true;
            }
        }
        if !pending {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Per-shard stats for the merge report, best-effort: an older
    // daemon answers `unknown-verb` and the summary frame is simply
    // skipped — the stats verb is additive, never load-bearing.
    if conn.send(&Request::Stats.to_json()).is_ok() {
        if let Ok(Some(reply)) = conn.receive() {
            if reply.get("ok").and_then(Json::as_str) == Some("stats") {
                let _ = frames.send(Json::Obj(vec![
                    ("schema".into(), Json::Num(PROTOCOL_SCHEMA as f64)),
                    ("shard".into(), Json::Num(shard as f64)),
                    (
                        "stats".into(),
                        reply.get("metrics").cloned().unwrap_or(Json::Null),
                    ),
                ]));
            }
        }
    }

    // The daemon ships each record without its `job` index; the shard
    // knows its own submission order, so prepending the local index
    // reassembles the document the shard's serve-batch run would write.
    let rows: Vec<Json> = records
        .into_iter()
        .enumerate()
        .map(|(i, record)| {
            let mut members = vec![("job".to_owned(), Json::Num(i as f64))];
            if let Some(Json::Obj(fields)) = record {
                members.extend(fields);
            }
            Json::Obj(members)
        })
        .collect();
    Ok(format!("{}\n", results_document_from_records(rows)))
}

/// Mode B: one submit client per shard against already-running
/// `tdals serve` daemons. `specs` lists one daemon address per shard
/// (the first [`ShardPlan::shard_count`] entries are used — extra
/// addresses are tolerated, since the plan may hold fewer shards than
/// requested when the manifest is small). Worker progress frames
/// stream through `on_frame` when [`SupervisorOptions::progress`] is
/// set.
///
/// # Errors
///
/// [`ClusterError::Plan`] when too few addresses are given;
/// [`ClusterError::Protocol`] (dial, error frame, malformed reply) or
/// [`ClusterError::Timeout`] from any shard — the lowest-numbered
/// failing shard wins.
pub fn run_daemons(
    manifest: &Manifest,
    plan: &ShardPlan,
    specs: &[String],
    opts: &SupervisorOptions,
    on_frame: &mut dyn FnMut(&Json),
) -> Result<Vec<String>, ClusterError> {
    let count = plan.shard_count();
    let _span = trace::span(trace::cat::FLOW, "shard-daemons").arg("shards", count as u64);
    if specs.len() < count {
        return Err(ClusterError::Plan {
            what: format!(
                "{} daemon address(es) for a {count}-shard plan; pass one --connect \
                 address per shard",
                specs.len()
            ),
        });
    }
    let (frames_tx, frames_rx) = std::sync::mpsc::channel::<Json>();
    let mut handles = Vec::with_capacity(count);
    for (shard, spec) in specs.iter().enumerate().take(count) {
        let jobs: Vec<FlowJob> = plan.manifest_for(manifest, shard).jobs;
        let spec = spec.clone();
        let opts = opts.clone();
        let frames = frames_tx.clone();
        handles.push(std::thread::spawn(move || {
            drive_daemon(shard, jobs, &spec, &opts, &frames)
        }));
    }
    drop(frames_tx);
    // Multiplex frames until every shard thread has dropped its sender
    // (i.e. finished), then collect in shard order.
    while let Ok(frame) = frames_rx.recv() {
        on_frame(&frame);
    }
    let mut docs = Vec::with_capacity(count);
    let mut first_error: Option<ClusterError> = None;
    for (shard, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Ok(doc)) => docs.push(doc),
            Ok(Err(e)) => first_error = first_error.or(Some(e)),
            Err(_) => {
                first_error = first_error.or(Some(ClusterError::Protocol {
                    shard,
                    what: "shard client thread panicked".into(),
                }))
            }
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok(docs),
    }
}

//! The deterministic merger: per-shard results documents back into
//! manifest order, byte-identical to the unsharded run.
//!
//! Why byte-identity holds: a result record is a pure function of its
//! job (seeds drive all randomness, wall-clock is excluded), a shard's
//! worker emits records in shard-local submission order with local
//! `job` indices, and the JSON printer is roundtrip-stable
//! (`print ∘ parse ∘ print = print`, pinned by the codec's golden
//! tests). So parsing each shard document, rewriting each record's
//! local index to the global one the [`ShardPlan`] recorded, and
//! reprinting in global order reproduces exactly the bytes
//! `tdals serve-batch` would have written for the whole manifest.

use tdals_bench::json::Json;
use tdals_server::results_document_from_records;

use crate::plan::ShardPlan;
use crate::ClusterError;

/// Stitches the per-shard results documents (one text per shard, in
/// shard order) into the unsharded results document, trailing newline
/// included. Every record's shard-local `job` index is validated
/// against its position before being rewritten to the global index, so
/// a worker that reordered or dropped records is caught here rather
/// than silently merged.
///
/// # Errors
///
/// [`ClusterError::Merge`] naming the count, schema, or index
/// invariant that broke.
pub fn merge(plan: &ShardPlan, shard_docs: &[String]) -> Result<String, ClusterError> {
    let bad = |what: String| ClusterError::Merge { what };
    if shard_docs.len() != plan.shard_count() {
        return Err(bad(format!(
            "{} shard document(s) for a {}-shard plan",
            shard_docs.len(),
            plan.shard_count()
        )));
    }
    let mut global: Vec<Option<Json>> = vec![None; plan.job_count()];
    for (shard, text) in shard_docs.iter().enumerate() {
        let doc = Json::parse(text)
            .map_err(|e| bad(format!("shard {shard} results are not valid JSON: {e}")))?;
        let schema = doc.get("schema").and_then(Json::as_uint);
        if schema != Some(1) {
            return Err(bad(format!(
                "shard {shard} results schema is {schema:?}, expected 1"
            )));
        }
        let records = doc
            .get("results")
            .and_then(Json::as_array)
            .ok_or_else(|| bad(format!("shard {shard} results have no `results` array")))?;
        let indices = plan.jobs_of(shard);
        if records.len() != indices.len() {
            return Err(bad(format!(
                "shard {shard} holds {} record(s) for {} assigned job(s)",
                records.len(),
                indices.len()
            )));
        }
        for (local, (record, &global_index)) in records.iter().zip(indices).enumerate() {
            let Json::Obj(members) = record else {
                return Err(bad(format!(
                    "shard {shard} record {local} is not an object"
                )));
            };
            // The worker wrote shard-local submission indices; they
            // must match positions exactly or the order contract broke.
            let written = record.get("job").and_then(Json::as_uint);
            if written != Some(local as u64) {
                return Err(bad(format!(
                    "shard {shard} record {local} carries job index {written:?}"
                )));
            }
            let rewritten: Vec<(String, Json)> = members
                .iter()
                .map(|(k, v)| {
                    if k == "job" {
                        (k.clone(), Json::Num(global_index as f64))
                    } else {
                        (k.clone(), v.clone())
                    }
                })
                .collect();
            global[global_index] = Some(Json::Obj(rewritten));
        }
    }
    let records: Vec<Json> = global
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.ok_or_else(|| bad(format!("job {i} has no record after the merge"))))
        .collect::<Result<_, _>>()?;
    Ok(format!("{}\n", results_document_from_records(records)))
}

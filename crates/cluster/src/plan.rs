//! Shard planning: a stable job→shard assignment recorded in a JSON
//! shard map.
//!
//! A [`ShardPlan`] is a partition of the manifest's job indices into
//! per-shard index sets, each kept in ascending manifest order — so a
//! shard's submission order is the manifest's relative order, and the
//! merge can reconstruct the global order from positions alone. The
//! plan is a pure function of the manifest and the policy (no
//! wall-clock, no RNG), so planning the same manifest twice — on the
//! coordinator and in a post-mortem — yields the same map.

use tdals_bench::json::Json;
use tdals_server::Manifest;

use crate::ClusterError;

/// How jobs are dealt onto shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Job `i` goes to shard `i % shards`: even counts, zero
    /// assumptions about cost.
    #[default]
    RoundRobin,
    /// Longest-processing-time-first over a per-job cost estimate
    /// (`population × iterations × vectors`, the knobs that scale the
    /// Monte-Carlo evaluation loop), so one heavy job does not serialize
    /// its shard behind it. The estimate never touches the circuit, so
    /// planning stays cheap and deterministic.
    SizeWeighted,
}

impl ShardPolicy {
    /// The CLI spelling (`--policy` value).
    pub fn cli_name(self) -> &'static str {
        match self {
            ShardPolicy::RoundRobin => "round-robin",
            ShardPolicy::SizeWeighted => "size-weighted",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(name: &str) -> Option<ShardPolicy> {
        match name {
            "round-robin" => Some(ShardPolicy::RoundRobin),
            "size-weighted" => Some(ShardPolicy::SizeWeighted),
            _ => None,
        }
    }
}

impl std::fmt::Display for ShardPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.cli_name())
    }
}

/// A stable partition of manifest job indices into shards; see the
/// module docs. Build one with [`plan`] or parse a recorded shard map
/// with [`ShardPlan::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    policy: ShardPolicy,
    jobs: usize,
    shards: Vec<Vec<usize>>,
}

/// Shard-map document schema version.
pub const SHARD_MAP_SCHEMA: u64 = 1;

/// Splits `manifest` into at most `shards` shards under `policy`.
/// Empty shards are never planned: the effective shard count is
/// `min(shards, jobs)`, because a worker runs a real sub-manifest and
/// an empty manifest is rejected everywhere else in the stack.
///
/// # Errors
///
/// [`ClusterError::Plan`] for zero shards or an empty manifest.
pub fn plan(
    manifest: &Manifest,
    shards: usize,
    policy: ShardPolicy,
) -> Result<ShardPlan, ClusterError> {
    if shards == 0 {
        return Err(ClusterError::Plan {
            what: "0 shards cannot run anything; pass 1 or more".into(),
        });
    }
    let jobs = manifest.jobs.len();
    if jobs == 0 {
        return Err(ClusterError::Plan {
            what: "manifest has no jobs to shard".into(),
        });
    }
    let count = shards.min(jobs);
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); count];
    match policy {
        ShardPolicy::RoundRobin => {
            for i in 0..jobs {
                assignment[i % count].push(i);
            }
        }
        ShardPolicy::SizeWeighted => {
            // LPT greedy: heaviest job first onto the least-loaded
            // shard. Ties break on index (weights) and on shard number
            // (loads), so the assignment is total-order deterministic.
            let weight = |i: usize| -> u128 {
                let j = &manifest.jobs[i];
                (j.population.max(1) as u128)
                    * (j.iterations.max(1) as u128)
                    * (j.vectors.max(1) as u128)
            };
            let mut order: Vec<usize> = (0..jobs).collect();
            order.sort_by(|&a, &b| weight(b).cmp(&weight(a)).then(a.cmp(&b)));
            let mut load = vec![0u128; count];
            for i in order {
                let lightest = (0..count)
                    .min_by_key(|&s| (load[s], s))
                    .expect("count >= 1");
                load[lightest] += weight(i);
                assignment[lightest].push(i);
            }
            // Ascending within each shard: shard-local submission order
            // must be the manifest's relative order for the merge to
            // reconstruct positions.
            for indices in &mut assignment {
                indices.sort_unstable();
            }
        }
    }
    Ok(ShardPlan {
        policy,
        jobs,
        shards: assignment,
    })
}

impl ShardPlan {
    /// How many (non-empty) shards the plan holds.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// How many jobs the planned manifest holds.
    pub fn job_count(&self) -> usize {
        self.jobs
    }

    /// The policy the plan was built under.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// The manifest indices assigned to `shard`, ascending.
    pub fn jobs_of(&self, shard: usize) -> &[usize] {
        &self.shards[shard]
    }

    /// The sub-manifest `shard`'s worker runs: the assigned jobs in
    /// manifest-relative order, batch defaults carried over.
    pub fn manifest_for(&self, manifest: &Manifest, shard: usize) -> Manifest {
        manifest.subset(&self.shards[shard])
    }

    /// The shard map as a JSON document ([`ShardPlan::from_json`]
    /// round-trips it): schema, policy, job count, and the per-shard
    /// index arrays.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Num(SHARD_MAP_SCHEMA as f64)),
            ("policy".into(), Json::Str(self.policy.cli_name().into())),
            ("jobs".into(), Json::Num(self.jobs as f64)),
            (
                "shards".into(),
                Json::Arr(
                    self.shards
                        .iter()
                        .map(|indices| {
                            Json::Arr(indices.iter().map(|&i| Json::Num(i as f64)).collect())
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses and validates a recorded shard map: schema 1, a known
    /// policy, and index arrays that form a partition of `0..jobs` with
    /// each shard ascending and non-empty.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Plan`] naming the violated invariant.
    pub fn from_json(value: &Json) -> Result<ShardPlan, ClusterError> {
        let bad = |what: String| ClusterError::Plan { what };
        let schema = value
            .get("schema")
            .and_then(Json::as_uint)
            .ok_or_else(|| bad("shard map is missing `schema`".into()))?;
        if schema != SHARD_MAP_SCHEMA {
            return Err(bad(format!(
                "shard map schema {schema} is not the supported {SHARD_MAP_SCHEMA}"
            )));
        }
        let policy_name = value
            .get("policy")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("shard map is missing string `policy`".into()))?;
        let policy = ShardPolicy::parse(policy_name)
            .ok_or_else(|| bad(format!("unknown shard policy `{policy_name}`")))?;
        let jobs = value
            .get("jobs")
            .and_then(Json::as_uint)
            .ok_or_else(|| bad("shard map is missing integer `jobs`".into()))?
            as usize;
        let shard_arrays = value
            .get("shards")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("shard map is missing `shards` array".into()))?;
        let mut shards: Vec<Vec<usize>> = Vec::with_capacity(shard_arrays.len());
        let mut seen = vec![false; jobs];
        for (s, arr) in shard_arrays.iter().enumerate() {
            let indices = arr
                .as_array()
                .ok_or_else(|| bad(format!("shard {s} is not an index array")))?;
            if indices.is_empty() {
                return Err(bad(format!("shard {s} is empty; plans never hold one")));
            }
            let mut out = Vec::with_capacity(indices.len());
            for v in indices {
                let i = v
                    .as_uint()
                    .ok_or_else(|| bad(format!("shard {s} holds a non-index value")))?
                    as usize;
                if i >= jobs {
                    return Err(bad(format!(
                        "shard {s} references job {i}, but the manifest has {jobs}"
                    )));
                }
                if seen[i] {
                    return Err(bad(format!("job {i} is assigned to two shards")));
                }
                seen[i] = true;
                if let Some(&prev) = out.last() {
                    if prev >= i {
                        return Err(bad(format!(
                            "shard {s} indices are not ascending ({prev} before {i})"
                        )));
                    }
                }
                out.push(i);
            }
            shards.push(out);
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(bad(format!("job {missing} is assigned to no shard")));
        }
        Ok(ShardPlan {
            policy,
            jobs,
            shards,
        })
    }
}

//! # tdals-baselines
//!
//! Re-implementations of the ALS methods the paper compares against,
//! running on the same netlist/STA/simulation substrate as the DCGWO
//! flow so that TABLEs II/III and Figs. 7/8 can be regenerated
//! method-for-method:
//!
//! * [`greedy_area`] — VECBEE-SASIMI-style greedy area-driven selection;
//! * [`genetic_depth`] — VaACS-style genetic optimization;
//! * [`depth_driven`] — HEDALS-style critical-path depth reduction;
//! * the single-chase GWO baseline lives in
//!   [`tdals_core::ChaseStrategy::SingleChase`].
//!
//! [`Method`] enumerates all five flows (baselines + ours) behind one
//! entry point, [`run_method`], which also applies the shared
//! post-optimization so every method converts its area savings into
//! timing, exactly as the paper's evaluation protocol requires.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod genetic;
mod greedy;
mod hedals;

use std::time::Instant;

pub use genetic::{genetic_depth, GeneticConfig};
pub use greedy::{greedy_area, GreedyConfig};
pub use hedals::{depth_driven, HedalsConfig};

use tdals_core::{
    optimize, post_optimize, ChaseStrategy, EvalContext, OptimizerConfig, PostOptConfig,
};
use tdals_netlist::Netlist;

/// The five flows compared in TABLEs II and III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// VECBEE-SASIMI-style greedy area-driven ALS (`VECBEE-S`).
    VecbeeSasimi,
    /// VaACS-style genetic ALS.
    Vaacs,
    /// HEDALS-style depth-driven ALS.
    Hedals,
    /// Traditional single-chase grey wolf optimizer.
    SingleChaseGwo,
    /// The paper's double-chase grey wolf optimizer (`Ours`).
    Dcgwo,
}

/// All methods in the paper's column order.
pub const ALL_METHODS: [Method; 5] = [
    Method::VecbeeSasimi,
    Method::Vaacs,
    Method::Hedals,
    Method::SingleChaseGwo,
    Method::Dcgwo,
];

impl Method {
    /// Column label used in the paper's tables.
    pub const fn label(self) -> &'static str {
        match self {
            Method::VecbeeSasimi => "VECBEE-S",
            Method::Vaacs => "VaACS",
            Method::Hedals => "HEDALS",
            Method::SingleChaseGwo => "GWO",
            Method::Dcgwo => "Ours",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Shared knobs for [`run_method`]; per-method details keep their own
/// defaults scaled to `population`/`iterations`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodConfig {
    /// Population size for the population-based methods.
    pub population: usize,
    /// Iterations / generations / greedy-round budget.
    pub iterations: usize,
    /// `we` of the reproduction level function (0.1 ER / 0.2 NMED).
    pub level_we: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MethodConfig {
    fn default() -> MethodConfig {
        MethodConfig {
            population: 30,
            iterations: 20,
            level_we: 0.1,
            seed: 1,
        }
    }
}

/// Outcome of one method run, post-optimization included.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Final approximate netlist.
    pub netlist: Netlist,
    /// `Ratio_cpd = CPD_fac / CPD_ori`.
    pub ratio_cpd: f64,
    /// Final CPD in ps.
    pub cpd_fac: f64,
    /// Final measured error.
    pub error: f64,
    /// Final live area in µm².
    pub area: f64,
    /// Wall-clock runtime in seconds (optimization + post-opt).
    pub runtime_s: f64,
}

/// Runs one method end-to-end: optimization, then the shared
/// post-optimization under `area_con` (defaults to the accurate
/// circuit's area when `None`), per the paper's evaluation protocol.
pub fn run_method(
    ctx: &EvalContext,
    method: Method,
    error_bound: f64,
    area_con: Option<f64>,
    cfg: &MethodConfig,
) -> MethodResult {
    let start = Instant::now();
    let mut netlist = match method {
        Method::VecbeeSasimi => {
            let greedy_cfg = GreedyConfig {
                candidates_per_round: cfg.population.max(8),
                max_rounds: cfg.iterations * 10,
                seed: cfg.seed,
                ..GreedyConfig::default()
            };
            greedy_area(ctx, error_bound, &greedy_cfg)
        }
        Method::Vaacs => {
            let ga_cfg = GeneticConfig {
                population: cfg.population,
                generations: cfg.iterations,
                level_we: cfg.level_we,
                seed: cfg.seed,
                ..GeneticConfig::default()
            };
            genetic_depth(ctx, error_bound, &ga_cfg)
        }
        Method::Hedals => {
            let h_cfg = HedalsConfig {
                max_rounds: cfg.iterations * 10,
                seed: cfg.seed,
                ..HedalsConfig::default()
            };
            depth_driven(ctx, error_bound, &h_cfg)
        }
        Method::SingleChaseGwo | Method::Dcgwo => {
            let opt_cfg = OptimizerConfig {
                population: cfg.population,
                iterations: cfg.iterations,
                level_we: cfg.level_we,
                seed: cfg.seed,
                chase: if method == Method::Dcgwo {
                    ChaseStrategy::DoubleChase
                } else {
                    ChaseStrategy::SingleChase
                },
                ..OptimizerConfig::default()
            };
            optimize(ctx, error_bound, &opt_cfg).best.netlist
        }
    };

    let area_con = area_con.unwrap_or_else(|| ctx.area_ori());
    let post = post_optimize(&mut netlist, ctx.timing(), &PostOptConfig::new(area_con));
    let error = ctx.evaluator().error_of(&netlist);
    MethodResult {
        ratio_cpd: post.cpd_final / ctx.cpd_ori().max(1e-9),
        cpd_fac: post.cpd_final,
        error,
        area: netlist.area_live(),
        runtime_s: start.elapsed().as_secs_f64(),
        netlist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::builder::Builder;
    use tdals_netlist::SignalRef;
    use tdals_sim::{ErrorMetric, Patterns};
    use tdals_sta::TimingConfig;

    fn ctx() -> EvalContext {
        let mut b = Builder::new("add6");
        let a = b.inputs("a", 6);
        let x = b.inputs("b", 6);
        let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &s);
        b.output("c", c);
        let n = b.finish();
        EvalContext::new(
            &n,
            Patterns::exhaustive(12),
            ErrorMetric::Nmed,
            TimingConfig::default(),
            0.8,
        )
    }

    #[test]
    fn all_methods_run_and_respect_constraints() {
        let ctx = ctx();
        let cfg = MethodConfig {
            population: 8,
            iterations: 5,
            level_we: 0.2,
            seed: 3,
        };
        let bound = 0.03;
        for method in ALL_METHODS {
            let result = run_method(&ctx, method, bound, None, &cfg);
            assert!(
                result.error <= bound + 1e-12,
                "{method} violates the error bound: {}",
                result.error
            );
            assert!(
                result.area <= ctx.area_ori() + 1e-9,
                "{method} violates the area constraint"
            );
            assert!(result.ratio_cpd <= 1.0 + 1e-9, "{method} made timing worse");
            result.netlist.check_invariants().expect("valid netlist");
        }
    }

    #[test]
    fn method_labels_are_distinct() {
        let mut labels: Vec<&str> = ALL_METHODS.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ALL_METHODS.len());
    }
}

//! # tdals-baselines
//!
//! Re-implementations of the ALS methods the paper compares against,
//! running on the same netlist/STA/simulation substrate as the DCGWO
//! flow so that TABLEs II/III and Figs. 7/8 can be regenerated
//! method-for-method:
//!
//! * [`greedy_area`] / [`Greedy`] — VECBEE-SASIMI-style greedy
//!   area-driven selection;
//! * [`genetic_depth`] / [`Genetic`] — VaACS-style genetic
//!   optimization;
//! * [`depth_driven`] / [`Hedals`] — HEDALS-style critical-path depth
//!   reduction;
//! * the single-chase GWO baseline lives in
//!   [`tdals_core::ChaseStrategy::SingleChase`]
//!   (see [`tdals_core::api::Dcgwo::single_chase`]).
//!
//! Every method implements the [`tdals_core::api::Optimizer`] trait,
//! so all five flows plug into the same [`tdals_core::api::Flow`]
//! session, honor the same budget/cancellation, and stream the same
//! progress events. [`Method`] enumerates them and
//! [`Method::optimizer`] builds the matching trait object:
//!
//! ```
//! use tdals_baselines::{Method, MethodConfig};
//! use tdals_core::api::Flow;
//! use tdals_core::EvalContext;
//! use tdals_netlist::builder::Builder;
//! use tdals_netlist::SignalRef;
//! use tdals_sim::{ErrorMetric, Patterns};
//! use tdals_sta::TimingConfig;
//!
//! let mut b = Builder::new("add4");
//! let a = b.inputs("a", 4);
//! let x = b.inputs("b", 4);
//! let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
//! b.outputs("s", &s);
//! b.output("c", c);
//! let accurate = b.finish();
//! let ctx = EvalContext::new(
//!     &accurate,
//!     Patterns::random(accurate.input_count(), 256, 1),
//!     ErrorMetric::ErrorRate,
//!     TimingConfig::default(),
//!     0.8,
//! );
//! let cfg = MethodConfig::default().with_population(6).with_iterations(3);
//! let outcome = Flow::for_context(&ctx)
//!     .error_bound(0.05)
//!     .optimizer(Method::Hedals.optimizer(&cfg))
//!     .run()
//!     .expect("valid session");
//! assert!(outcome.error <= 0.05);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod genetic;
mod greedy;
mod hedals;
mod optimizers;

pub use genetic::{genetic_depth, genetic_depth_session, GeneticConfig};
pub use greedy::{greedy_area, greedy_area_session, GreedyConfig};
pub use hedals::{depth_driven, depth_driven_session, HedalsConfig};
pub use optimizers::{Genetic, Greedy, Hedals};

use tdals_core::api::{Dcgwo, Optimizer};
use tdals_core::{ChaseStrategy, EvalContext, IterationStats, OptimizerConfig};
use tdals_netlist::Netlist;

/// The five flows compared in TABLEs II and III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// VECBEE-SASIMI-style greedy area-driven ALS (`VECBEE-S`).
    VecbeeSasimi,
    /// VaACS-style genetic ALS.
    Vaacs,
    /// HEDALS-style depth-driven ALS.
    Hedals,
    /// Traditional single-chase grey wolf optimizer.
    SingleChaseGwo,
    /// The paper's double-chase grey wolf optimizer (`Ours`).
    Dcgwo,
}

/// All methods in the paper's column order.
pub const ALL_METHODS: [Method; 5] = [
    Method::VecbeeSasimi,
    Method::Vaacs,
    Method::Hedals,
    Method::SingleChaseGwo,
    Method::Dcgwo,
];

impl Method {
    /// Lowercase name used by the `tdals` CLI and job manifests:
    /// `dcgwo`, `gwo`, `hedals`, `greedy`, `vaacs`.
    pub const fn cli_name(self) -> &'static str {
        match self {
            Method::VecbeeSasimi => "greedy",
            Method::Vaacs => "vaacs",
            Method::Hedals => "hedals",
            Method::SingleChaseGwo => "gwo",
            Method::Dcgwo => "dcgwo",
        }
    }

    /// Parses a [`Method::cli_name`]; `None` for unknown names.
    pub fn parse(name: &str) -> Option<Method> {
        ALL_METHODS.into_iter().find(|m| m.cli_name() == name)
    }

    /// Column label used in the paper's tables.
    pub const fn label(self) -> &'static str {
        match self {
            Method::VecbeeSasimi => "VECBEE-S",
            Method::Vaacs => "VaACS",
            Method::Hedals => "HEDALS",
            Method::SingleChaseGwo => "GWO",
            Method::Dcgwo => "Ours",
        }
    }

    /// Builds this method's [`Optimizer`] from the shared knobs,
    /// scaling per-method details exactly as the paper's evaluation
    /// protocol does (greedy/HEDALS get `iterations × 10` rounds, the
    /// population methods get `population`/`iterations` directly).
    pub fn optimizer(self, cfg: &MethodConfig) -> Box<dyn Optimizer> {
        match self {
            Method::VecbeeSasimi => Box::new(Greedy::new(GreedyConfig {
                candidates_per_round: cfg.population.max(8),
                max_rounds: cfg.iterations * 10,
                seed: cfg.seed,
                threads: cfg.threads,
                ..GreedyConfig::default()
            })),
            Method::Vaacs => Box::new(Genetic::new(GeneticConfig {
                population: cfg.population,
                generations: cfg.iterations,
                level_we: cfg.level_we,
                seed: cfg.seed,
                threads: cfg.threads,
                ..GeneticConfig::default()
            })),
            Method::Hedals => Box::new(Hedals::new(HedalsConfig {
                max_rounds: cfg.iterations * 10,
                seed: cfg.seed,
                threads: cfg.threads,
                ..HedalsConfig::default()
            })),
            Method::SingleChaseGwo | Method::Dcgwo => Box::new(Dcgwo::new(
                OptimizerConfig::default()
                    .with_population(cfg.population)
                    .with_iterations(cfg.iterations)
                    .with_level_we(cfg.level_we)
                    .with_seed(cfg.seed)
                    .with_threads(cfg.threads)
                    .with_chase(if self == Method::Dcgwo {
                        ChaseStrategy::DoubleChase
                    } else {
                        ChaseStrategy::SingleChase
                    }),
            )),
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Shared knobs for [`Method::optimizer`]; per-method details keep
/// their own defaults scaled to `population`/`iterations`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct MethodConfig {
    /// Population size for the population-based methods.
    pub population: usize,
    /// Iterations / generations / greedy-round budget.
    pub iterations: usize,
    /// `we` of the reproduction level function (0.1 ER / 0.2 NMED).
    pub level_we: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for candidate evaluation; `1` evaluates inline,
    /// `0` means one worker per available core. Every method returns
    /// bit-identical results for any thread count (see
    /// [`tdals_core::par`]).
    pub threads: usize,
}

impl Default for MethodConfig {
    fn default() -> MethodConfig {
        MethodConfig {
            population: 30,
            iterations: 20,
            level_we: 0.1,
            seed: 1,
            threads: 1,
        }
    }
}

impl MethodConfig {
    /// Sets the population size.
    pub fn with_population(mut self, population: usize) -> MethodConfig {
        self.population = population;
        self
    }

    /// Sets the iteration / generation / round budget.
    pub fn with_iterations(mut self, iterations: usize) -> MethodConfig {
        self.iterations = iterations;
        self
    }

    /// Sets the `we` of the reproduction level function.
    pub fn with_level_we(mut self, level_we: f64) -> MethodConfig {
        self.level_we = level_we;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> MethodConfig {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count for candidate evaluation (`0` means
    /// one worker per available core).
    pub fn with_threads(mut self, threads: usize) -> MethodConfig {
        self.threads = threads;
        self
    }
}

/// Per-round statistics for the accept-one-LAC-per-round methods when
/// the round's depth is already known (HEDALS keeps it from the
/// scoring STA): the working netlist is the round's best, scored with
/// the shared Eq. 8 fitness terms. No timing analysis is run.
pub(crate) fn stats_from_depth(
    ctx: &EvalContext,
    netlist: &Netlist,
    iteration: usize,
    constraint: f64,
    feasible: usize,
    depth: u32,
) -> IterationStats {
    let area = netlist.area_live();
    IterationStats {
        iteration,
        constraint,
        best_fitness: ctx.fitness_from(depth, area),
        best_depth: depth,
        best_area: area,
        feasible,
    }
}

/// [`stats_from_depth`] for loops that carry no timing state (the
/// area-driven greedy method): one STA pass per committed round. That
/// is noise next to the round's candidate evaluations — each candidate
/// pays a full Monte-Carlo simulation, O(gates × words), while STA is
/// O(gates) — but it is the only timing the greedy loop performs.
pub(crate) fn round_stats(
    ctx: &EvalContext,
    netlist: &Netlist,
    iteration: usize,
    constraint: f64,
    feasible: usize,
) -> IterationStats {
    let depth = ctx.analyze(netlist).max_depth();
    stats_from_depth(ctx, netlist, iteration, constraint, feasible, depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_core::api::Flow;
    use tdals_netlist::builder::Builder;
    use tdals_netlist::SignalRef;
    use tdals_sim::{ErrorMetric, Patterns};
    use tdals_sta::TimingConfig;

    fn ctx() -> EvalContext {
        let mut b = Builder::new("add6");
        let a = b.inputs("a", 6);
        let x = b.inputs("b", 6);
        let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &s);
        b.output("c", c);
        let n = b.finish();
        EvalContext::new(
            &n,
            Patterns::exhaustive(12),
            ErrorMetric::Nmed,
            TimingConfig::default(),
            0.8,
        )
    }

    #[test]
    fn all_methods_run_and_respect_constraints() {
        let ctx = ctx();
        let cfg = MethodConfig::default()
            .with_population(8)
            .with_iterations(5)
            .with_level_we(0.2)
            .with_seed(3);
        let bound = 0.03;
        for method in ALL_METHODS {
            let result = Flow::for_context(&ctx)
                .error_bound(bound)
                .optimizer(method.optimizer(&cfg))
                .run()
                .expect("valid session");
            assert!(
                result.error <= bound + 1e-12,
                "{method} violates the error bound: {}",
                result.error
            );
            assert!(
                result.area <= ctx.area_ori() + 1e-9,
                "{method} violates the area constraint"
            );
            assert!(result.ratio_cpd <= 1.0 + 1e-9, "{method} made timing worse");
            result.netlist.check_invariants().expect("valid netlist");
        }
    }

    #[test]
    fn optimizer_names_match_labels() {
        let cfg = MethodConfig::default();
        for method in ALL_METHODS {
            let opt = method.optimizer(&cfg);
            if method == Method::Dcgwo {
                assert_eq!(opt.name(), "DCGWO");
            } else {
                assert_eq!(opt.name(), method.label());
            }
        }
    }

    #[test]
    fn cli_names_round_trip() {
        for method in ALL_METHODS {
            assert_eq!(Method::parse(method.cli_name()), Some(method));
        }
        assert_eq!(Method::parse("annealer"), None);
        assert_eq!(Method::parse("DCGWO"), None, "names are lowercase");
    }

    #[test]
    fn method_labels_are_distinct() {
        let mut labels: Vec<&str> = ALL_METHODS.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ALL_METHODS.len());
    }
}

//! VECBEE-SASIMI-style greedy **area-driven** ALS.
//!
//! The reference method (Su et al., TCAD'22 + the SASIMI LAC family)
//! iteratively applies the substitution with the best area-reduction
//! potential per unit of introduced error, using Monte-Carlo batch error
//! estimation, until the error budget is exhausted. It does not look at
//! timing at all — the paper's point is that pure area reduction leaves
//! critical-path delay on the table even after post-optimization.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdals_core::api::{Budget, FlowEvent, NopObserver, Observer, OptimizeOutcome, StopReason};
use tdals_core::{par, select_switch, EvalContext, Lac};
use tdals_netlist::{GateId, Netlist, SignalRef};

use crate::round_stats;

/// Tunables for [`greedy_area`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedyConfig {
    /// Candidate targets sampled and scored per round.
    pub candidates_per_round: usize,
    /// Cap on applied LACs (safety valve).
    pub max_rounds: usize,
    /// Cap on TFI switch candidates scored per target.
    pub max_switch_candidates: usize,
    /// Minimum output similarity a switch must reach before SASIMI
    /// considers the pair substitutable. SASIMI's premise is pairing
    /// "similar signals"; `0.0` (the default) accepts whatever the
    /// best-similarity scan returns, while values around 0.85-0.95
    /// emulate a strict similar-signal pairing rule and markedly weaken
    /// the method on arithmetic circuits.
    pub min_similarity: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for candidate evaluation; `1` evaluates inline,
    /// `0` means one worker per available core. Results are
    /// bit-identical for any thread count (see [`tdals_core::par`]).
    pub threads: usize,
}

impl Default for GreedyConfig {
    fn default() -> GreedyConfig {
        GreedyConfig {
            candidates_per_round: 24,
            max_rounds: 200,
            max_switch_candidates: usize::MAX,
            min_similarity: 0.0,
            seed: 0x5A51,
            threads: 1,
        }
    }
}

/// Runs the greedy area-driven selection loop and returns the
/// approximate netlist (pre-post-optimization).
///
/// Each round samples live logic gates, pairs each with its best
/// similarity switch, and commits the error-feasible candidate with the
/// **largest area reduction** — the SASIMI/SEALS selection rule ("LACs
/// with the best area reduction potential"); the introduced error is a
/// feasibility filter and tie-break only, and timing is never consulted
/// (that blindness is exactly what the paper holds against area-driven
/// methods). The loop stops when no sampled candidate fits the budget.
pub fn greedy_area(ctx: &EvalContext, error_bound: f64, cfg: &GreedyConfig) -> Netlist {
    greedy_area_session(
        ctx,
        error_bound,
        cfg,
        &Budget::unlimited(),
        &mut NopObserver,
    )
    .best
    .netlist
}

/// [`greedy_area`] with a [`Budget`] honored at every round boundary
/// and progress streamed to `obs` (one [`FlowEvent::LacAccepted`] per
/// committed substitution). Under [`Budget::unlimited`] the final
/// netlist is identical to [`greedy_area`]'s.
pub fn greedy_area_session(
    ctx: &EvalContext,
    error_bound: f64,
    cfg: &GreedyConfig,
    budget: &Budget,
    obs: &mut dyn Observer,
) -> OptimizeOutcome {
    let mut tracker = budget.start_tracking();
    let mut stop = StopReason::Completed;
    let mut history = Vec::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let threads = par::resolve_threads(cfg.threads);
    let mut netlist = ctx.accurate().clone();
    let mut current_error = 0.0f64;
    let mut current_area = netlist.area_live();

    for round in 0..cfg.max_rounds {
        if let Some(reason) = tracker.stop_before_iteration(round) {
            stop = reason;
            break;
        }
        obs.on_event(&FlowEvent::IterationStarted {
            iteration: round,
            constraint: error_bound,
        });
        let sim = ctx.simulate(&netlist);
        let live = netlist.live_mask();
        let targets: Vec<GateId> = netlist
            .iter()
            .filter(|(id, g)| live[id.index()] && !g.is_input())
            .map(|(id, _)| id)
            .collect();
        if targets.is_empty() {
            break;
        }

        // Serial draft phase: target sampling and switch selection draw
        // from the round's shared RNG stream in the exact order the
        // sequential loop used — nothing here depends on a candidate's
        // evaluation, so the stream is thread-count-independent.
        let mut drafts: Vec<Lac> = Vec::with_capacity(cfg.candidates_per_round);
        for _ in 0..cfg.candidates_per_round {
            let target = targets[rng.gen_range(0..targets.len())];
            let Some(lac) =
                select_switch(&netlist, &sim, target, cfg.max_switch_candidates, &mut rng)
            else {
                continue;
            };
            let similarity = sim.similarity(SignalRef::Gate(lac.target()), lac.switch());
            if similarity < cfg.min_similarity {
                continue;
            }
            drafts.push(lac);
        }

        // Parallel evaluation phase: each worker owns its trial clone;
        // the pool returns (trial, error) pairs in draft order.
        let evaluated = par::par_map_batched(
            threads,
            drafts,
            |lac| {
                let mut trial = netlist.clone();
                lac.apply(&mut trial).expect("legal LAC");
                let err = ctx.evaluator().error_of(&trial);
                (trial, err)
            },
            || tracker.interrupted().is_none(),
        );
        tracker.record_evaluations(evaluated.results.len() as u64);

        // Serial reduction in draft order: identical best-candidate
        // choice for every thread count.
        let mut best: Option<(Netlist, f64, f64, f64)> = None; // (netlist, err, area, score)
        let mut feasible = 0usize;
        for (trial, err) in evaluated.results {
            if err > error_bound {
                continue;
            }
            feasible += 1;
            let area = trial.area_live();
            let area_gain = current_area - area;
            if area_gain <= 0.0 {
                continue;
            }
            // Area-first score; a microscopic error penalty breaks ties
            // toward the cheaper LAC without ever out-voting area.
            let err_cost = (err - current_error).max(0.0);
            let score = area_gain - 1e-3 * err_cost;
            if best.as_ref().is_none_or(|(_, _, _, s)| score > *s) {
                best = Some((trial, err, area, score));
            }
        }
        if !evaluated.completed {
            stop = tracker
                .interrupted()
                .expect("aborted batches imply a sticky interrupt");
            break;
        }
        let Some((next, err, area, _)) = best else {
            break;
        };
        netlist = next;
        current_error = err;
        current_area = area;
        obs.on_event(&FlowEvent::LacAccepted {
            iteration: round,
            error: current_error,
            area: current_area,
        });
        let stats = round_stats(ctx, &netlist, round, error_bound, feasible);
        history.push(stats);
        obs.on_event(&FlowEvent::IterationFinished { stats });
    }

    let best = ctx.evaluate(netlist);
    tracker.record_evaluations(1);
    obs.on_event(&FlowEvent::OptimizeFinished {
        stop,
        evaluations: tracker.evaluations(),
    });
    OptimizeOutcome {
        population: vec![best.clone()],
        best,
        history,
        evaluations: tracker.evaluations(),
        stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::builder::Builder;
    use tdals_netlist::SignalRef;
    use tdals_sim::{ErrorMetric, Patterns};
    use tdals_sta::TimingConfig;

    fn ctx() -> EvalContext {
        let mut b = Builder::new("add6");
        let a = b.inputs("a", 6);
        let x = b.inputs("b", 6);
        let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &s);
        b.output("c", c);
        let n = b.finish();
        EvalContext::new(
            &n,
            Patterns::exhaustive(12),
            ErrorMetric::Nmed,
            TimingConfig::default(),
            0.8,
        )
    }

    #[test]
    fn greedy_reduces_area_within_budget() {
        let ctx = ctx();
        let bound = 0.03;
        let approx = greedy_area(&ctx, bound, &GreedyConfig::default());
        approx.check_invariants().expect("valid");
        assert!(ctx.evaluator().error_of(&approx) <= bound + 1e-12);
        assert!(
            approx.area_live() < ctx.area_ori(),
            "area-driven method reduces area"
        );
    }

    #[test]
    fn zero_budget_returns_accurate() {
        let ctx = ctx();
        let approx = greedy_area(&ctx, 0.0, &GreedyConfig::default());
        assert_eq!(ctx.evaluator().error_of(&approx), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let ctx = ctx();
        let cfg = GreedyConfig {
            max_rounds: 10,
            ..GreedyConfig::default()
        };
        let a = greedy_area(&ctx, 0.02, &cfg);
        let b = greedy_area(&ctx, 0.02, &cfg);
        assert_eq!(a, b);
    }
}

//! HEDALS-style **depth-driven** ALS.
//!
//! HEDALS (Meng et al., TCAD'23) drives LAC selection by critical-path
//! depth: it maintains the timing-critical region (via its critical
//! error graph) and repeatedly commits the substitution that buys the
//! most depth reduction per unit of *estimated* error. Crucially, the
//! real HEDALS ranks candidates with a cheap local error estimate and
//! only validates committed moves ("strictly control the introduced
//! errors"); it cannot afford an exact re-simulation per candidate.
//! This re-implementation mirrors that structure on this workspace's
//! substrate:
//!
//! * candidates come only from the worst-PO paths;
//! * each candidate is scored by `(Δdepth, Δcpd)` from STA against a
//!   **cheap probe estimate** of its error — a Monte-Carlo measurement
//!   at one eighth of the full vector budget, the "efficiency–accuracy
//!   configurable" trade VECBEE/HEDALS make for candidate ranking;
//! * the single committed move per round is validated at full
//!   resolution and rolled back (and blacklisted) if it violates the
//!   budget.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tdals_core::api::{Budget, FlowEvent, NopObserver, Observer, OptimizeOutcome, StopReason};
use tdals_core::{collect_targets, par, select_switch, EvalContext, Lac};
use tdals_netlist::{GateId, Netlist, SignalRef};
use tdals_sim::{ErrorEvaluator, Patterns};

use crate::stats_from_depth;

/// Tunables for [`depth_driven`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedalsConfig {
    /// Worst-PO paths feeding the candidate set each round.
    pub path_count: usize,
    /// Cap on applied LACs.
    pub max_rounds: usize,
    /// Cap on TFI switch candidates scored per target.
    pub max_switch_candidates: usize,
    /// RNG seed (used for fan-in sampling in the target set).
    pub seed: u64,
    /// Worker threads for candidate scoring; `1` evaluates inline, `0`
    /// means one worker per available core. Results are bit-identical
    /// for any thread count (see [`tdals_core::par`]).
    pub threads: usize,
}

impl Default for HedalsConfig {
    fn default() -> HedalsConfig {
        HedalsConfig {
            path_count: 3,
            max_rounds: 200,
            max_switch_candidates: usize::MAX,
            seed: 0x4EDA,
            threads: 1,
        }
    }
}

/// Runs the depth-driven loop and returns the approximate netlist.
///
/// Each round scores every critical-path target's best-similarity
/// substitution by `(Δdepth, Δcpd)` per *estimated* error and commits
/// the winner after exact validation; the loop stops when no
/// critical-path LAC fits the error budget or none improves timing.
pub fn depth_driven(ctx: &EvalContext, error_bound: f64, cfg: &HedalsConfig) -> Netlist {
    depth_driven_session(
        ctx,
        error_bound,
        cfg,
        &Budget::unlimited(),
        &mut NopObserver,
    )
    .best
    .netlist
}

/// [`depth_driven`] with a [`Budget`] honored at every round boundary
/// and progress streamed to `obs` (one [`FlowEvent::LacAccepted`] per
/// validated commit). Under [`Budget::unlimited`] the final netlist is
/// identical to [`depth_driven`]'s.
pub fn depth_driven_session(
    ctx: &EvalContext,
    error_bound: f64,
    cfg: &HedalsConfig,
    budget: &Budget,
    obs: &mut dyn Observer,
) -> OptimizeOutcome {
    let mut tracker = budget.start_tracking();
    let mut stop = StopReason::Completed;
    let mut history = Vec::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let threads = par::resolve_threads(cfg.threads);
    let mut netlist = ctx.accurate().clone();
    let mut blacklist: HashSet<(GateId, SignalRef)> = HashSet::new();

    // Probe evaluator: same metric, one eighth of the vectors, a
    // different stimulus draw (candidate ranking only).
    let probe_vectors = (ctx.evaluator().patterns().vector_count() / 8).max(256);
    let probe = ErrorEvaluator::new(
        ctx.accurate(),
        Patterns::random(
            ctx.accurate().input_count(),
            probe_vectors,
            cfg.seed ^ 0x9E37,
        ),
        ctx.metric(),
    );

    for round in 0..cfg.max_rounds {
        if let Some(reason) = tracker.stop_before_iteration(round) {
            stop = reason;
            break;
        }
        obs.on_event(&FlowEvent::IterationStarted {
            iteration: round,
            constraint: error_bound,
        });
        let report = ctx.analyze(&netlist);
        let depth_now = report.max_depth();
        let cpd_now = report.critical_path_delay();
        let targets = collect_targets(&netlist, &report, cfg.path_count, &mut rng);
        if targets.is_empty() {
            break;
        }
        let sim = ctx.simulate(&netlist);

        // Rank candidates by timing gain per estimated error.
        struct Scored {
            target: GateId,
            switch: SignalRef,
            score: f64,
            /// Depth of the trial netlist, kept from the scoring STA so
            /// the committed round's stats need no re-analysis.
            depth: u32,
        }
        // Serial draft phase: switch selection draws from the round's
        // shared RNG stream in target order, exactly as the sequential
        // loop did (no draw depends on a candidate's evaluation).
        let mut drafts: Vec<Lac> = Vec::new();
        for target in targets {
            let Some(lac) =
                select_switch(&netlist, &sim, target, cfg.max_switch_candidates, &mut rng)
            else {
                continue;
            };
            if blacklist.contains(&(lac.target(), lac.switch())) {
                continue;
            }
            drafts.push(lac);
        }
        // Parallel scoring phase: each worker owns its trial clone and
        // pays the probe-resolution error estimate plus — for estimate-
        // feasible candidates — the scoring STA. Results come back in
        // draft order.
        let evaluated = par::par_map_batched(
            threads,
            drafts,
            |lac| -> Option<Scored> {
                let mut trial = netlist.clone();
                lac.apply(&mut trial).expect("legal LAC");
                // Probe-resolution error estimate for ranking.
                let est_err = probe.error_of(&trial);
                if est_err > error_bound {
                    return None;
                }
                let trial_report = ctx.analyze(&trial);
                let depth_gain = f64::from(depth_now) - f64::from(trial_report.max_depth());
                let cpd_gain = cpd_now - trial_report.critical_path_delay();
                if depth_gain <= 0.0 && cpd_gain <= 0.0 {
                    return None;
                }
                let score = (depth_gain * 1e3 + cpd_gain) / est_err.max(1e-6);
                Some(Scored {
                    target: lac.target(),
                    switch: lac.switch(),
                    score,
                    depth: trial_report.max_depth(),
                })
            },
            || tracker.interrupted().is_none(),
        );
        tracker.record_evaluations(evaluated.results.len() as u64);
        let completed = evaluated.completed;
        let mut scored: Vec<Scored> = evaluated.results.into_iter().flatten().collect();
        if !completed {
            stop = tracker
                .interrupted()
                .expect("aborted batches imply a sticky interrupt");
            break;
        }
        // Stable sort: tied scores keep draft order, so the ranking is
        // identical for every thread count.
        scored.sort_by(|a, b| b.score.total_cmp(&a.score));

        // Commit the best candidate that survives exact validation.
        let probe_feasible = scored.len();
        let mut rejected = 0usize;
        let mut committed: Option<u32> = None;
        for cand in scored {
            let mut trial = netlist.clone();
            trial
                .substitute(cand.target, cand.switch)
                .expect("legal LAC");
            let exact = ctx.evaluator().error_of(&trial);
            tracker.record_evaluations(1);
            if exact <= error_bound {
                netlist = trial;
                committed = Some(cand.depth);
                obs.on_event(&FlowEvent::LacAccepted {
                    iteration: round,
                    error: exact,
                    area: netlist.area_live(),
                });
                break;
            }
            blacklist.insert((cand.target, cand.switch));
            rejected += 1;
        }
        let Some(depth) = committed else {
            break;
        };
        // Probe-feasible candidates net of the exact-validation
        // rejections observed this round (the commit itself is exact-
        // feasible) — the closest exact count available without
        // validating every candidate.
        let feasible = probe_feasible - rejected;
        let stats = stats_from_depth(ctx, &netlist, round, error_bound, feasible, depth);
        history.push(stats);
        obs.on_event(&FlowEvent::IterationFinished { stats });
    }

    let best = ctx.evaluate(netlist);
    tracker.record_evaluations(1);
    obs.on_event(&FlowEvent::OptimizeFinished {
        stop,
        evaluations: tracker.evaluations(),
    });
    OptimizeOutcome {
        population: vec![best.clone()],
        best,
        history,
        evaluations: tracker.evaluations(),
        stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::builder::Builder;
    use tdals_sim::{ErrorMetric, Patterns};
    use tdals_sta::TimingConfig;

    fn ctx() -> EvalContext {
        let mut b = Builder::new("add6");
        let a = b.inputs("a", 6);
        let x = b.inputs("b", 6);
        let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &s);
        b.output("c", c);
        let n = b.finish();
        EvalContext::new(
            &n,
            Patterns::exhaustive(12),
            ErrorMetric::Nmed,
            TimingConfig::default(),
            0.8,
        )
    }

    #[test]
    fn depth_driven_shortens_critical_path() {
        let ctx = ctx();
        let bound = 0.05;
        let approx = depth_driven(&ctx, bound, &HedalsConfig::default());
        approx.check_invariants().expect("valid");
        assert!(ctx.evaluator().error_of(&approx) <= bound + 1e-12);
        let depth = ctx.analyze(&approx).max_depth();
        assert!(
            depth < ctx.depth_ori(),
            "depth {depth} vs accurate {}",
            ctx.depth_ori()
        );
    }

    #[test]
    fn zero_budget_changes_nothing() {
        let ctx = ctx();
        let approx = depth_driven(&ctx, 0.0, &HedalsConfig::default());
        assert_eq!(ctx.evaluator().error_of(&approx), 0.0);
        assert_eq!(ctx.analyze(&approx).max_depth(), ctx.depth_ori());
    }

    #[test]
    fn committed_moves_are_always_validated() {
        // Whatever the estimates said, the final circuit must satisfy
        // the exact error bound.
        let ctx = ctx();
        for bound in [0.005, 0.02, 0.08] {
            let approx = depth_driven(&ctx, bound, &HedalsConfig::default());
            assert!(
                ctx.evaluator().error_of(&approx) <= bound + 1e-12,
                "bound {bound}"
            );
        }
    }
}

//! VaACS-style **genetic** ALS.
//!
//! VaACS (Balaskas et al., TCSI'22) evolves approximate circuits with a
//! genetic algorithm: mutation applies approximate transformations,
//! crossover recombines circuit structures, and a scalar delay-oriented
//! fitness with tournament selection drives convergence under a fixed
//! error constraint (no Pareto ranking, no constraint relaxation — the
//! structural differences from the paper's DCGWO).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdals_core::api::{Budget, FlowEvent, NopObserver, Observer, OptimizeOutcome, StopReason};
use tdals_core::{
    par, random_lac, reproduce, Candidate, EvalContext, IterationStats, Lac, LevelWeights,
};
use tdals_netlist::Netlist;

/// Tunables for [`genetic_depth`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticConfig {
    /// Population size.
    pub population: usize,
    /// Generations.
    pub generations: usize,
    /// Per-individual mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Elite individuals copied unchanged each generation.
    pub elitism: usize,
    /// Cap on TFI switch candidates per mutation.
    pub max_switch_candidates: usize,
    /// `we` of the reproduction level function.
    pub level_we: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for child evaluation; `1` evaluates inline, `0`
    /// means one worker per available core. Results are bit-identical
    /// for any thread count (see [`tdals_core::par`]).
    pub threads: usize,
}

impl Default for GeneticConfig {
    fn default() -> GeneticConfig {
        GeneticConfig {
            population: 30,
            generations: 20,
            mutation_rate: 0.6,
            tournament: 3,
            elitism: 2,
            max_switch_candidates: 48,
            level_we: 0.1,
            seed: 0x6A6A,
            threads: 1,
        }
    }
}

/// Delay-oriented scalar fitness: `CPD_ori / CPD_app`, zeroed out for
/// circuits over the error budget.
fn ga_fitness(ctx: &EvalContext, cand: &Candidate, error_bound: f64) -> f64 {
    if cand.error > error_bound {
        return 0.0;
    }
    ctx.cpd_ori() / cand.cpd.max(1e-9)
}

/// Runs the genetic loop and returns the best feasible netlist.
pub fn genetic_depth(ctx: &EvalContext, error_bound: f64, cfg: &GeneticConfig) -> Netlist {
    genetic_depth_session(
        ctx,
        error_bound,
        cfg,
        &Budget::unlimited(),
        &mut NopObserver,
    )
    .best
    .netlist
}

/// [`genetic_depth`] with a [`Budget`] honored at every generation
/// boundary and progress streamed to `obs`. Under
/// [`Budget::unlimited`] the final netlist is identical to
/// [`genetic_depth`]'s.
pub fn genetic_depth_session(
    ctx: &EvalContext,
    error_bound: f64,
    cfg: &GeneticConfig,
    budget: &Budget,
    obs: &mut dyn Observer,
) -> OptimizeOutcome {
    let mut tracker = budget.start_tracking();
    let mut stop = StopReason::Completed;
    let mut history = Vec::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let threads = par::resolve_threads(cfg.threads);
    let weights = LevelWeights::paper_defaults(ctx.cpd_ori(), cfg.level_we);

    let accurate = ctx.evaluate(ctx.accurate().clone());
    tracker.record_evaluations(1);
    let mut best = accurate.clone();
    let mut best_fit = ga_fitness(ctx, &best, error_bound);

    let mut population: Vec<Candidate> = vec![accurate.clone()];
    // Deterministic pre-truncation: never fan out work a deterministic
    // cap will refuse to admit — a pre-stopped budget seeds nothing, an
    // evaluation cap bounds the member count, and both depend only on
    // counts, so the truncation is identical for every thread width.
    let seed_budget = match tracker.stop_before_iteration(0) {
        Some(_) => 0,
        None => tracker
            .remaining_evaluations()
            .map_or(usize::MAX, |n| usize::try_from(n).unwrap_or(usize::MAX)),
    };
    let seed_want = (cfg.population.max(2) - 1).min(seed_budget);
    if seed_want > 0 {
        // Serial draft phase: every seed member mutates the *same*
        // accurate netlist, so one simulation serves all draws and the
        // shared RNG stream is consumed in member order, independent of
        // thread count.
        let accurate_sim = ctx.simulate(&accurate.netlist);
        let seed_drafts: Vec<Option<Lac>> = (0..seed_want)
            .map(|_| {
                random_lac(
                    &accurate.netlist,
                    &accurate_sim,
                    cfg.max_switch_candidates,
                    &mut rng,
                )
            })
            .collect();
        // Parallel evaluation, then serial admission in member order:
        // the budget is honored during seeding as well — deterministic
        // caps stop admission at the same member for every thread
        // count, and the accurate anchor is already in, so stopping
        // early is always safe.
        let seeded = par::par_map_batched(
            threads,
            seed_drafts,
            |lac| {
                let mut netlist = accurate.netlist.clone();
                if let Some(lac) = lac {
                    lac.apply(&mut netlist).expect("legal LAC");
                }
                ctx.evaluate(netlist)
            },
            || tracker.interrupted().is_none(),
        );
        for cand in seeded.results {
            if tracker.stop_before_iteration(0).is_some() {
                break;
            }
            population.push(cand);
            tracker.record_evaluations(1);
        }
    }

    for generation in 0..cfg.generations {
        if let Some(reason) = tracker.stop_before_iteration(generation) {
            stop = reason;
            break;
        }
        obs.on_event(&FlowEvent::IterationStarted {
            iteration: generation,
            constraint: error_bound,
        });
        let fits: Vec<f64> = population
            .iter()
            .map(|c| ga_fitness(ctx, c, error_bound))
            .collect();
        for (cand, &fit) in population.iter().zip(&fits) {
            if fit > best_fit {
                best_fit = fit;
                best = cand.clone();
                obs.on_event(&FlowEvent::BestImproved {
                    iteration: generation,
                    fitness: best.fitness,
                    error: best.error,
                    depth: best.depth,
                    area: best.area,
                });
            }
        }

        let tournament_pick = |rng: &mut StdRng| -> usize {
            let mut winner = rng.gen_range(0..population.len());
            for _ in 1..cfg.tournament.max(1) {
                let challenger = rng.gen_range(0..population.len());
                if fits[challenger] > fits[winner] {
                    winner = challenger;
                }
            }
            winner
        };

        // Elites survive unchanged.
        let mut order: Vec<usize> = (0..population.len()).collect();
        order.sort_by(|&a, &b| fits[b].total_cmp(&fits[a]));
        let mut next: Vec<Candidate> = order
            .iter()
            .take(cfg.elitism.min(population.len()))
            .map(|&i| population[i].clone())
            .collect();

        // Serial plan phase: tournament picks and mutation coins come
        // off the shared stream in child order. A mutating child gets a
        // private stream split off the shared one, because its LAC draw
        // reads the child's own simulation — which only exists inside
        // the worker that builds it.
        struct ChildPlan {
            pa: usize,
            pb: usize,
            mutation_seed: Option<u64>,
        }
        let want = cfg.population.max(2).saturating_sub(next.len());
        let plans: Vec<ChildPlan> = (0..want)
            .map(|_| {
                let pa = tournament_pick(&mut rng);
                let pb = tournament_pick(&mut rng);
                let mutation_seed =
                    (rng.gen::<f64>() < cfg.mutation_rate).then(|| rng.gen::<u64>());
                ChildPlan {
                    pa,
                    pb,
                    mutation_seed,
                }
            })
            .collect();
        // Parallel build-and-evaluate phase (crossover, optional
        // mutation, full evaluation), reduced in child order.
        let population_ref = &population;
        let children = par::par_map_batched(
            threads,
            plans,
            |plan| {
                let mut child = if plan.pa == plan.pb {
                    population_ref[plan.pa].netlist.clone()
                } else {
                    reproduce(&population_ref[plan.pa], &population_ref[plan.pb], &weights)
                };
                if let Some(seed) = plan.mutation_seed {
                    let mut crng = StdRng::seed_from_u64(seed);
                    let sim = ctx.simulate(&child);
                    if let Some(lac) =
                        random_lac(&child, &sim, cfg.max_switch_candidates, &mut crng)
                    {
                        lac.apply(&mut child).expect("legal LAC");
                    }
                }
                ctx.evaluate(child)
            },
            || tracker.interrupted().is_none(),
        );
        tracker.record_evaluations(children.results.len() as u64);
        if !children.completed {
            // The previous generation survives; the partial next
            // generation is discarded (its evaluations are recorded).
            stop = tracker
                .interrupted()
                .expect("aborted batches imply a sticky interrupt");
            break;
        }
        next.extend(children.results);
        population = next;

        let feasible = population.iter().filter(|c| c.error <= error_bound).count();
        let best_now = population
            .iter()
            .max_by(|a, b| a.fitness.total_cmp(&b.fitness))
            .expect("population is never empty");
        let stats = IterationStats {
            iteration: generation,
            constraint: error_bound,
            best_fitness: best_now.fitness,
            best_depth: best_now.depth,
            best_area: best_now.area,
            feasible,
        };
        history.push(stats);
        obs.on_event(&FlowEvent::IterationFinished { stats });
    }

    // Final sweep over the last generation: the per-generation scan at
    // the loop top only covers the *previous* generation's population,
    // so improvements born in the last one are found (and reported)
    // here.
    let final_generation = history.last().map_or(0, |s| s.iteration);
    for cand in &population {
        let fit = ga_fitness(ctx, cand, error_bound);
        if fit > best_fit {
            best_fit = fit;
            best = cand.clone();
            obs.on_event(&FlowEvent::BestImproved {
                iteration: final_generation,
                fitness: best.fitness,
                error: best.error,
                depth: best.depth,
                area: best.area,
            });
        }
    }
    obs.on_event(&FlowEvent::OptimizeFinished {
        stop,
        evaluations: tracker.evaluations(),
    });
    OptimizeOutcome {
        best,
        population,
        history,
        evaluations: tracker.evaluations(),
        stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::builder::Builder;
    use tdals_netlist::SignalRef;
    use tdals_sim::{ErrorMetric, Patterns};
    use tdals_sta::TimingConfig;

    fn ctx() -> EvalContext {
        let mut b = Builder::new("add6");
        let a = b.inputs("a", 6);
        let x = b.inputs("b", 6);
        let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &s);
        b.output("c", c);
        let n = b.finish();
        EvalContext::new(
            &n,
            Patterns::exhaustive(12),
            ErrorMetric::Nmed,
            TimingConfig::default(),
            0.8,
        )
    }

    fn quick_cfg() -> GeneticConfig {
        GeneticConfig {
            population: 8,
            generations: 6,
            ..GeneticConfig::default()
        }
    }

    #[test]
    fn genetic_respects_error_bound() {
        let ctx = ctx();
        let approx = genetic_depth(&ctx, 0.03, &quick_cfg());
        approx.check_invariants().expect("valid");
        assert!(ctx.evaluator().error_of(&approx) <= 0.03 + 1e-12);
    }

    #[test]
    fn genetic_improves_delay_given_budget() {
        let ctx = ctx();
        let approx = genetic_depth(&ctx, 0.05, &quick_cfg());
        let cpd = ctx.analyze(&approx).critical_path_delay();
        assert!(
            cpd <= ctx.cpd_ori() + 1e-9,
            "cpd {cpd} vs accurate {}",
            ctx.cpd_ori()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let ctx = ctx();
        let a = genetic_depth(&ctx, 0.03, &quick_cfg());
        let b = genetic_depth(&ctx, 0.03, &quick_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn pre_stopped_budget_pays_no_seeding_work() {
        // Seeding truncates to the budget before fanning out: an
        // exhausted budget evaluates only the accurate anchor, a tiny
        // evaluation cap exactly as many members as it admits.
        use tdals_core::api::{Budget, NopObserver, StopReason};
        let ctx = ctx();
        let outcome = genetic_depth_session(
            &ctx,
            0.03,
            &quick_cfg(),
            &Budget::unlimited().with_max_iterations(0),
            &mut NopObserver,
        );
        assert_eq!(outcome.stop, StopReason::IterationLimit);
        assert_eq!(outcome.evaluations, 1, "accurate anchor only");
        assert_eq!(outcome.population.len(), 1);

        let outcome = genetic_depth_session(
            &ctx,
            0.03,
            &quick_cfg(),
            &Budget::unlimited().with_max_evaluations(3),
            &mut NopObserver,
        );
        assert_eq!(outcome.stop, StopReason::EvaluationLimit);
        assert_eq!(outcome.evaluations, 3, "anchor + two capped members");
        assert_eq!(outcome.population.len(), 3);
    }
}

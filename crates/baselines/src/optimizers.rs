//! The baseline methods behind the [`Optimizer`] trait, so every flow
//! in the paper's comparison — DCGWO included — plugs into the same
//! [`tdals_core::api::Flow`] session, honors the same
//! [`tdals_core::api::Budget`], and streams the same
//! [`tdals_core::api::FlowEvent`]s.

use tdals_core::api::{Budget, Observer, OptimizeOutcome, Optimizer};
use tdals_core::EvalContext;

use crate::genetic::{genetic_depth_session, GeneticConfig};
use crate::greedy::{greedy_area_session, GreedyConfig};
use crate::hedals::{depth_driven_session, HedalsConfig};

/// VECBEE-SASIMI-style greedy area-driven ALS behind the
/// [`Optimizer`] trait (column `VECBEE-S`).
#[derive(Debug, Clone, Default)]
pub struct Greedy {
    cfg: GreedyConfig,
}

impl Greedy {
    /// Wraps an explicit configuration.
    pub fn new(cfg: GreedyConfig) -> Greedy {
        Greedy { cfg }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &GreedyConfig {
        &self.cfg
    }

    /// Mutable access to the wrapped configuration.
    pub fn config_mut(&mut self) -> &mut GreedyConfig {
        &mut self.cfg
    }
}

impl Optimizer for Greedy {
    fn set_threads(&mut self, threads: usize) {
        self.cfg.threads = threads;
    }

    fn name(&self) -> &str {
        "VECBEE-S"
    }

    fn optimize(
        &mut self,
        ctx: &EvalContext,
        error_bound: f64,
        budget: &Budget,
        obs: &mut dyn Observer,
    ) -> OptimizeOutcome {
        greedy_area_session(ctx, error_bound, &self.cfg, budget, obs)
    }
}

/// VaACS-style genetic ALS behind the [`Optimizer`] trait.
#[derive(Debug, Clone, Default)]
pub struct Genetic {
    cfg: GeneticConfig,
}

impl Genetic {
    /// Wraps an explicit configuration.
    pub fn new(cfg: GeneticConfig) -> Genetic {
        Genetic { cfg }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &GeneticConfig {
        &self.cfg
    }

    /// Mutable access to the wrapped configuration.
    pub fn config_mut(&mut self) -> &mut GeneticConfig {
        &mut self.cfg
    }
}

impl Optimizer for Genetic {
    fn set_threads(&mut self, threads: usize) {
        self.cfg.threads = threads;
    }

    fn name(&self) -> &str {
        "VaACS"
    }

    fn optimize(
        &mut self,
        ctx: &EvalContext,
        error_bound: f64,
        budget: &Budget,
        obs: &mut dyn Observer,
    ) -> OptimizeOutcome {
        genetic_depth_session(ctx, error_bound, &self.cfg, budget, obs)
    }
}

/// HEDALS-style depth-driven ALS behind the [`Optimizer`] trait.
#[derive(Debug, Clone, Default)]
pub struct Hedals {
    cfg: HedalsConfig,
}

impl Hedals {
    /// Wraps an explicit configuration.
    pub fn new(cfg: HedalsConfig) -> Hedals {
        Hedals { cfg }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &HedalsConfig {
        &self.cfg
    }

    /// Mutable access to the wrapped configuration.
    pub fn config_mut(&mut self) -> &mut HedalsConfig {
        &mut self.cfg
    }
}

impl Optimizer for Hedals {
    fn set_threads(&mut self, threads: usize) {
        self.cfg.threads = threads;
    }

    fn name(&self) -> &str {
        "HEDALS"
    }

    fn optimize(
        &mut self,
        ctx: &EvalContext,
        error_bound: f64,
        budget: &Budget,
        obs: &mut dyn Observer,
    ) -> OptimizeOutcome {
        depth_driven_session(ctx, error_bound, &self.cfg, budget, obs)
    }
}

//! # tdals-netlist
//!
//! Gate-level netlist substrate for the timing-driven approximate logic
//! synthesis (ALS) framework of *"Timing-driven Approximate Logic
//! Synthesis Based on Double-chase Grey Wolf Optimizer"* (DATE 2025).
//!
//! The crate provides the three foundations everything else builds on:
//!
//! * [`cell`] — a synthetic 28nm-class standard-cell library with
//!   discrete drive strengths and a linear delay model (substitute for
//!   the proprietary TSMC 28nm library used in the paper);
//! * [`Netlist`] — circuits stored as **gate fan-in adjacency lists**
//!   (§III-A of the paper) with a topological id invariant that makes
//!   local approximate changes loop-free by construction;
//! * [`verilog`] — a structural Verilog reader/writer for the
//!   post-synthesis `.v` files the flow consumes and produces.
//!
//! # Examples
//!
//! ```
//! use tdals_netlist::{Netlist, SignalRef};
//! use tdals_netlist::cell::{Cell, CellFunc, Drive};
//!
//! // Build `y = !(a & b)`, then apply a wire-by-constant LAC.
//! let mut n = Netlist::new("demo");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let g = n.add_gate("u1", Cell::new(CellFunc::And2, Drive::X1),
//!                    vec![a.into(), b.into()])?;
//! let inv = n.add_gate("u2", Cell::new(CellFunc::Inv, Drive::X1),
//!                      vec![g.into()])?;
//! n.add_output("y", inv.into());
//!
//! // Substitute the AND gate's output wire with constant 0.
//! n.substitute(g, SignalRef::Const0)?;
//! assert!(!n.live_mask()[g.index()]); // the AND gate is now dangling
//! # Ok::<(), tdals_netlist::NetlistError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod cell;
mod error;
pub mod liberty;
mod netlist;
pub mod verilog;

pub use cell::{Cell, CellFunc, Drive};
pub use error::{Loc, NetlistError, ParseVerilogError};
pub use netlist::{Gate, GateId, Netlist, Output, SignalRef};

//! Gate fan-in adjacency netlists (§III-A of the paper).
//!
//! A [`Netlist`] stores the circuit **solely as fan-in relationships
//! between gates**, discarding wire identity: each gate records the cell
//! it instantiates and, per input pin, a [`SignalRef`] naming the driving
//! gate or a constant. Constants `0`/`1` are treated as pseudo-gates,
//! exactly as the paper does, so local approximate changes reduce to
//! rewriting fan-in entries.
//!
//! Every gate carries a unique integer id ([`GateId`]) and the structure
//! maintains the **topological id invariant**: every fan-in of gate `g`
//! has an id strictly smaller than `g`'s. The paper introduces integer ids
//! to "check for circuit loop violations"; with this invariant, *any*
//! mixture of fan-in rows from approximate variants of the same circuit is
//! acyclic by construction, which is what makes circuit searching and
//! circuit reproduction safe and fast.

use std::collections::HashMap;
use std::fmt;

use crate::cell::{Cell, CellFunc, Drive};
use crate::error::NetlistError;

/// Identifier of a gate inside one [`Netlist`].
///
/// Ids are dense (`0..gate_count`) and topologically ordered: fan-ins
/// always have smaller ids than the gates they drive.
///
/// # Examples
///
/// ```
/// use tdals_netlist::GateId;
/// let id = GateId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(id.to_string(), "g3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(u32);

impl GateId {
    /// Creates a gate id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    pub fn new(index: usize) -> GateId {
        GateId(u32::try_from(index).expect("gate index exceeds u32::MAX"))
    }

    /// Dense index of this gate.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A signal that can drive a gate input: a constant or another gate's
/// output.
///
/// The paper treats constants as gates usable as *switch gates* in
/// wire-by-constant substitutions.
///
/// # Examples
///
/// ```
/// use tdals_netlist::{GateId, SignalRef};
/// let s = SignalRef::Gate(GateId::new(7));
/// assert_eq!(s.gate(), Some(GateId::new(7)));
/// assert!(SignalRef::Const1.is_const());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SignalRef {
    /// Constant logic `0`.
    Const0,
    /// Constant logic `1`.
    Const1,
    /// Output of the gate with the given id.
    Gate(GateId),
}

impl SignalRef {
    /// The driving gate, if this is not a constant.
    pub const fn gate(self) -> Option<GateId> {
        match self {
            SignalRef::Gate(id) => Some(id),
            _ => None,
        }
    }

    /// `true` for `Const0`/`Const1`.
    pub const fn is_const(self) -> bool {
        matches!(self, SignalRef::Const0 | SignalRef::Const1)
    }

    /// Constant value carried, if any.
    pub const fn const_value(self) -> Option<bool> {
        match self {
            SignalRef::Const0 => Some(false),
            SignalRef::Const1 => Some(true),
            SignalRef::Gate(_) => None,
        }
    }

    /// Builds a constant reference from a boolean.
    pub const fn constant(value: bool) -> SignalRef {
        if value {
            SignalRef::Const1
        } else {
            SignalRef::Const0
        }
    }
}

impl From<GateId> for SignalRef {
    fn from(id: GateId) -> SignalRef {
        SignalRef::Gate(id)
    }
}

impl fmt::Display for SignalRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalRef::Const0 => f.write_str("1'b0"),
            SignalRef::Const1 => f.write_str("1'b1"),
            SignalRef::Gate(id) => write!(f, "{id}"),
        }
    }
}

/// One gate instance: a cell plus its fan-in adjacency row.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    name: String,
    cell: Cell,
    fanins: Vec<SignalRef>,
}

impl Gate {
    /// Instance name (unique within the netlist).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Library cell instantiated by this gate.
    pub fn cell(&self) -> Cell {
        self.cell
    }

    /// Fan-in adjacency row, one entry per input pin.
    pub fn fanins(&self) -> &[SignalRef] {
        &self.fanins
    }

    /// `true` if this gate is a primary input.
    pub fn is_input(&self) -> bool {
        self.cell.is_input()
    }
}

/// A named primary output and the signal driving it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Output {
    driver: SignalRef,
}

/// A combinational gate-level netlist in fan-in adjacency form.
///
/// # Examples
///
/// Building the half-adder `sum = a ^ b`, `carry = a & b`:
///
/// ```
/// use tdals_netlist::{Netlist, SignalRef};
/// use tdals_netlist::cell::{Cell, CellFunc, Drive};
///
/// let mut n = Netlist::new("half_adder");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let sum = n.add_gate("u_sum", Cell::new(CellFunc::Xor2, Drive::X1),
///                      vec![a.into(), b.into()])?;
/// let carry = n.add_gate("u_carry", Cell::new(CellFunc::And2, Drive::X1),
///                        vec![a.into(), b.into()])?;
/// n.add_output("sum", sum.into());
/// n.add_output("carry", carry.into());
/// assert_eq!(n.gate_count(), 4); // 2 PIs + 2 gates
/// assert_eq!(n.logic_gate_count(), 2);
/// # Ok::<(), tdals_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    inputs: Vec<GateId>,
    output_names: Vec<String>,
    outputs: Vec<Output>,
}

impl Netlist {
    /// Creates an empty netlist with the given module name.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            gates: Vec::new(),
            inputs: Vec::new(),
            output_names: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the module.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a primary input and returns its gate id.
    pub fn add_input(&mut self, name: impl Into<String>) -> GateId {
        let id = GateId::new(self.gates.len());
        self.gates.push(Gate {
            name: name.into(),
            cell: Cell::input(),
            fanins: Vec::new(),
        });
        self.inputs.push(id);
        id
    }

    /// Adds a logic gate and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if `fanins.len()` differs
    /// from the cell arity, and [`NetlistError::FaninOrder`] if any fan-in
    /// id is not strictly smaller than the new gate's id (which would
    /// break the topological id invariant).
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        cell: Cell,
        fanins: Vec<SignalRef>,
    ) -> Result<GateId, NetlistError> {
        let id = GateId::new(self.gates.len());
        if fanins.len() != cell.arity() {
            return Err(NetlistError::ArityMismatch {
                gate: id,
                cell,
                expected: cell.arity(),
                actual: fanins.len(),
            });
        }
        for &fanin in &fanins {
            if let SignalRef::Gate(src) = fanin {
                if src >= id {
                    return Err(NetlistError::FaninOrder {
                        gate: id,
                        fanin: src,
                    });
                }
            }
        }
        self.gates.push(Gate {
            name: name.into(),
            cell,
            fanins,
        });
        Ok(id)
    }

    /// Declares a primary output driven by `driver`.
    pub fn add_output(&mut self, name: impl Into<String>, driver: SignalRef) {
        self.output_names.push(name.into());
        self.outputs.push(Output { driver });
    }

    /// Total number of gates including primary-input pseudo-gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of logic gates (excludes primary inputs).
    pub fn logic_gate_count(&self) -> usize {
        self.gates.len() - self.inputs.len()
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Iterates over `(id, gate)` pairs in topological (id) order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId::new(i), g))
    }

    /// Ids of the primary inputs, in declaration order.
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// Signal driving primary output `po`.
    ///
    /// # Panics
    ///
    /// Panics if `po` is out of bounds.
    pub fn output_driver(&self, po: usize) -> SignalRef {
        self.outputs[po].driver
    }

    /// Name of primary output `po`.
    ///
    /// # Panics
    ///
    /// Panics if `po` is out of bounds.
    pub fn output_name(&self, po: usize) -> &str {
        &self.output_names[po]
    }

    /// Iterates over `(name, driver)` of all primary outputs.
    pub fn outputs(&self) -> impl Iterator<Item = (&str, SignalRef)> {
        self.output_names
            .iter()
            .map(String::as_str)
            .zip(self.outputs.iter().map(|o| o.driver))
    }

    /// Re-points primary output `po` at a new driver.
    ///
    /// # Panics
    ///
    /// Panics if `po` is out of bounds.
    pub fn set_output_driver(&mut self, po: usize, driver: SignalRef) {
        self.outputs[po].driver = driver;
    }

    /// Overwrites one fan-in pin of a gate.
    ///
    /// This is the primitive beneath wire-by-wire and wire-by-constant
    /// substitutions.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::FaninOrder`] if the new signal references a
    /// gate with id ≥ the edited gate (this would permit combinational
    /// loops).
    ///
    /// # Panics
    ///
    /// Panics if `gate` or `pin` is out of bounds.
    pub fn set_fanin(
        &mut self,
        gate: GateId,
        pin: usize,
        signal: SignalRef,
    ) -> Result<(), NetlistError> {
        if let SignalRef::Gate(src) = signal {
            if src >= gate {
                return Err(NetlistError::FaninOrder { gate, fanin: src });
            }
        }
        self.gates[gate.index()].fanins[pin] = signal;
        Ok(())
    }

    /// Replaces the whole fan-in row of a gate (used by circuit
    /// reproduction, which copies adjacency rows between population
    /// members).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] or
    /// [`NetlistError::FaninOrder`] under the same conditions as
    /// [`Netlist::add_gate`].
    pub fn set_fanins(&mut self, gate: GateId, fanins: Vec<SignalRef>) -> Result<(), NetlistError> {
        let cell = self.gates[gate.index()].cell;
        if fanins.len() != cell.arity() {
            return Err(NetlistError::ArityMismatch {
                gate,
                cell,
                expected: cell.arity(),
                actual: fanins.len(),
            });
        }
        for &fanin in &fanins {
            if let SignalRef::Gate(src) = fanin {
                if src >= gate {
                    return Err(NetlistError::FaninOrder { gate, fanin: src });
                }
            }
        }
        self.gates[gate.index()].fanins = fanins;
        Ok(())
    }

    /// Substitutes every reference to `target`'s output (gate fan-ins and
    /// primary-output drivers alike) with `switch`, returning how many
    /// references were rewritten.
    ///
    /// This implements the paper's wire-by-wire (`switch` a gate) and
    /// wire-by-constant (`switch` a constant) local approximate changes:
    /// after the call the target gate drives nothing and becomes dangling.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::FaninOrder`] if `switch` is a gate with
    /// id ≥ `target`; the paper avoids this case by drawing switch gates
    /// from the target's transitive fan-in.
    pub fn substitute(&mut self, target: GateId, switch: SignalRef) -> Result<usize, NetlistError> {
        if let SignalRef::Gate(s) = switch {
            if s >= target {
                return Err(NetlistError::FaninOrder {
                    gate: target,
                    fanin: s,
                });
            }
        }
        let old = SignalRef::Gate(target);
        let mut rewritten = 0;
        for gate in &mut self.gates {
            for fanin in &mut gate.fanins {
                if *fanin == old {
                    *fanin = switch;
                    rewritten += 1;
                }
            }
        }
        for out in &mut self.outputs {
            if out.driver == old {
                out.driver = switch;
                rewritten += 1;
            }
        }
        Ok(rewritten)
    }

    /// Changes the drive strength of a gate (function preserved).
    ///
    /// # Panics
    ///
    /// Panics if `gate` is out of bounds or names a primary input.
    pub fn set_drive(&mut self, gate: GateId, drive: Drive) {
        let g = &mut self.gates[gate.index()];
        assert!(!g.cell.is_input(), "cannot size a primary input");
        g.cell = g.cell.with_drive(drive);
    }

    /// Number of fan-in references (gate pins plus PO drivers) fed by each
    /// gate.
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.gates.len()];
        for gate in &self.gates {
            for fanin in &gate.fanins {
                if let SignalRef::Gate(src) = fanin {
                    counts[src.index()] += 1;
                }
            }
        }
        for out in &self.outputs {
            if let SignalRef::Gate(src) = out.driver {
                counts[src.index()] += 1;
            }
        }
        counts
    }

    /// For each gate, the list of gates reading its output.
    ///
    /// PO fan-outs are not included; combine with
    /// [`Netlist::outputs`] when they matter.
    pub fn fanout_lists(&self) -> Vec<Vec<GateId>> {
        let mut lists = vec![Vec::new(); self.gates.len()];
        for (id, gate) in self.iter() {
            for fanin in gate.fanins() {
                if let SignalRef::Gate(src) = fanin {
                    lists[src.index()].push(id);
                }
            }
        }
        lists
    }

    /// Marks gates transitively reachable from any primary output
    /// (`true` = live). Primary inputs are always considered live.
    ///
    /// Dangling (dead) gates are the by-product of substitutions; the
    /// paper subtracts their area from `Area_app` and deletes them in
    /// post-optimization.
    pub fn live_mask(&self) -> Vec<bool> {
        let mut live = vec![false; self.gates.len()];
        let mut stack: Vec<GateId> = Vec::new();
        for out in &self.outputs {
            if let SignalRef::Gate(src) = out.driver {
                if !live[src.index()] {
                    live[src.index()] = true;
                    stack.push(src);
                }
            }
        }
        while let Some(id) = stack.pop() {
            for fanin in self.gates[id.index()].fanins() {
                if let SignalRef::Gate(src) = fanin {
                    if !live[src.index()] {
                        live[src.index()] = true;
                        stack.push(*src);
                    }
                }
            }
        }
        for &pi in &self.inputs {
            live[pi.index()] = true;
        }
        live
    }

    /// Total area in µm² of all logic gates (dangling included).
    pub fn area_total(&self) -> f64 {
        self.gates.iter().map(|g| g.cell.area()).sum()
    }

    /// Area in µm² of gates reachable from a primary output
    /// (`Area_app` in the paper: dangling gates do not count).
    pub fn area_live(&self) -> f64 {
        let live = self.live_mask();
        self.iter()
            .filter(|(id, _)| live[id.index()])
            .map(|(_, g)| g.cell.area())
            .sum()
    }

    /// Deletes every dangling gate, compacting ids, and returns the number
    /// of gates removed.
    ///
    /// This is the "dangling gates deletion" step of the paper's
    /// post-optimization: gates with empty transitive fan-out are removed
    /// iteratively until none remain. Primary inputs are never removed.
    /// The topological id invariant is preserved because compaction keeps
    /// relative id order.
    pub fn sweep_dangling(&mut self) -> usize {
        let live = self.live_mask();
        let removed = live.iter().filter(|&&l| !l).count();
        if removed == 0 {
            return 0;
        }
        let mut remap: Vec<Option<GateId>> = vec![None; self.gates.len()];
        let mut next = 0usize;
        for (i, &keep) in live.iter().enumerate() {
            if keep {
                remap[i] = Some(GateId::new(next));
                next += 1;
            }
        }
        let remap_sig = |s: SignalRef| match s {
            SignalRef::Gate(g) => {
                SignalRef::Gate(remap[g.index()].expect("live gate references dead gate"))
            }
            c => c,
        };
        let mut gates = Vec::with_capacity(next);
        for (i, gate) in self.gates.drain(..).enumerate() {
            if live[i] {
                let fanins = gate.fanins.iter().map(|&f| remap_sig(f)).collect();
                gates.push(Gate {
                    name: gate.name,
                    cell: gate.cell,
                    fanins,
                });
            }
        }
        self.gates = gates;
        for pi in &mut self.inputs {
            *pi = remap[pi.index()].expect("primary input removed");
        }
        for out in &mut self.outputs {
            out.driver = remap_sig(out.driver);
        }
        removed
    }

    /// Gates in the transitive fan-in of `root` (excluding `root`
    /// itself), as a boolean mask.
    pub fn tfi_mask(&self, root: GateId) -> Vec<bool> {
        let mut mask = vec![false; self.gates.len()];
        let mut stack = vec![root];
        let mut first = true;
        while let Some(id) = stack.pop() {
            for fanin in self.gates[id.index()].fanins() {
                if let SignalRef::Gate(src) = fanin {
                    if !mask[src.index()] {
                        mask[src.index()] = true;
                        stack.push(*src);
                    }
                }
            }
            if first {
                first = false;
            }
        }
        mask[root.index()] = false;
        mask
    }

    /// Gates in the transitive fan-out of `root` (excluding `root`).
    pub fn tfo_mask(&self, root: GateId) -> Vec<bool> {
        let fanouts = self.fanout_lists();
        let mut mask = vec![false; self.gates.len()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            for &dst in &fanouts[id.index()] {
                if !mask[dst.index()] {
                    mask[dst.index()] = true;
                    stack.push(dst);
                }
            }
        }
        mask[root.index()] = false;
        mask
    }

    /// Gates in the transitive fan-in cones of the given primary outputs,
    /// including the driving gates themselves.
    pub fn po_cone_mask(&self, pos: &[usize]) -> Vec<bool> {
        let mut mask = vec![false; self.gates.len()];
        let mut stack: Vec<GateId> = Vec::new();
        for &po in pos {
            if let SignalRef::Gate(src) = self.outputs[po].driver {
                if !mask[src.index()] {
                    mask[src.index()] = true;
                    stack.push(src);
                }
            }
        }
        while let Some(id) = stack.pop() {
            for fanin in self.gates[id.index()].fanins() {
                if let SignalRef::Gate(src) = fanin {
                    if !mask[src.index()] {
                        mask[src.index()] = true;
                        stack.push(*src);
                    }
                }
            }
        }
        mask
    }

    /// Validates all structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: pin-count mismatches
    /// ([`NetlistError::ArityMismatch`]), fan-in id ordering
    /// ([`NetlistError::FaninOrder`]), inputs that are not `Input` cells
    /// or vice versa ([`NetlistError::MalformedInput`]), or dangling
    /// output references ([`NetlistError::UnknownGate`]).
    pub fn check_invariants(&self) -> Result<(), NetlistError> {
        let mut is_pi = vec![false; self.gates.len()];
        for &pi in &self.inputs {
            if pi.index() >= self.gates.len() {
                return Err(NetlistError::UnknownGate { gate: pi });
            }
            is_pi[pi.index()] = true;
        }
        for (id, gate) in self.iter() {
            if gate.cell.is_input() != is_pi[id.index()] {
                return Err(NetlistError::MalformedInput { gate: id });
            }
            if gate.fanins.len() != gate.cell.arity() {
                return Err(NetlistError::ArityMismatch {
                    gate: id,
                    cell: gate.cell,
                    expected: gate.cell.arity(),
                    actual: gate.fanins.len(),
                });
            }
            for fanin in gate.fanins() {
                if let SignalRef::Gate(src) = fanin {
                    if *src >= id {
                        return Err(NetlistError::FaninOrder {
                            gate: id,
                            fanin: *src,
                        });
                    }
                }
            }
        }
        for out in &self.outputs {
            if let SignalRef::Gate(src) = out.driver {
                if src.index() >= self.gates.len() {
                    return Err(NetlistError::UnknownGate { gate: src });
                }
            }
        }
        Ok(())
    }

    /// Looks up a gate id by instance name (linear scan; intended for
    /// tests and tooling, not hot paths).
    pub fn find_gate(&self, name: &str) -> Option<GateId> {
        self.iter()
            .find(|(_, g)| g.name() == name)
            .map(|(id, _)| id)
    }

    /// Builds a map from instance name to gate id.
    pub fn name_map(&self) -> HashMap<&str, GateId> {
        self.iter().map(|(id, g)| (g.name(), id)).collect()
    }

    /// Histogram of cell functions over live gates (useful for reports).
    pub fn func_histogram(&self) -> HashMap<CellFunc, usize> {
        let live = self.live_mask();
        let mut hist = HashMap::new();
        for (id, gate) in self.iter() {
            if live[id.index()] && !gate.is_input() {
                *hist.entry(gate.cell().func()).or_insert(0) += 1;
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, CellFunc, Drive};

    fn x1(func: CellFunc) -> Cell {
        Cell::new(func, Drive::X1)
    }

    /// The running example from Fig. 3 of the paper: 4 PIs (ids 1-4 in
    /// the paper, 0-3 here), gates 5-15 (4-14 here).
    pub(crate) fn fig3_netlist() -> Netlist {
        let mut n = Netlist::new("fig3");
        let pis: Vec<GateId> = (0..4).map(|i| n.add_input(format!("n{}", i + 1))).collect();
        let add = |n: &mut Netlist, name: &str, func, fi: Vec<SignalRef>| {
            n.add_gate(name, x1(func), fi).expect("valid gate")
        };
        // Paper id 5 .. 15 -> ours 4 .. 14.
        let g5 = add(
            &mut n,
            "u5",
            CellFunc::And2,
            vec![pis[0].into(), pis[1].into()],
        );
        let g6 = add(
            &mut n,
            "u6",
            CellFunc::Or2,
            vec![pis[1].into(), pis[2].into()],
        );
        let g7 = add(
            &mut n,
            "u7",
            CellFunc::Nand2,
            vec![pis[2].into(), pis[3].into()],
        );
        let g8 = add(&mut n, "u8", CellFunc::And2, vec![g5.into(), g6.into()]);
        let g9 = add(&mut n, "u9", CellFunc::Xor2, vec![g6.into(), g7.into()]);
        let g10 = add(&mut n, "u10", CellFunc::Or2, vec![pis[3].into(), g7.into()]);
        let g11 = add(&mut n, "u11", CellFunc::Or2, vec![g5.into(), g8.into()]);
        let g12 = add(&mut n, "u12", CellFunc::And2, vec![g9.into(), g10.into()]);
        let g13 = add(&mut n, "u13", CellFunc::Inv, vec![g11.into()]);
        let g14 = add(&mut n, "u14", CellFunc::Buf, vec![g9.into()]);
        let g15 = add(&mut n, "u15", CellFunc::Inv, vec![g12.into()]);
        n.add_output("po1", g13.into());
        n.add_output("po2", g14.into());
        n.add_output("po3", g15.into());
        n
    }

    #[test]
    fn fig3_structure() {
        let n = fig3_netlist();
        n.check_invariants().expect("fig3 invariants");
        assert_eq!(n.input_count(), 4);
        assert_eq!(n.output_count(), 3);
        assert_eq!(n.gate_count(), 15);
        assert_eq!(n.logic_gate_count(), 11);
        // Fan-in adjacency of gate 12 (paper id 12: (9,10)).
        let g12 = n.find_gate("u12").expect("u12 exists");
        let fi = n.gate(g12).fanins();
        assert_eq!(fi.len(), 2);
    }

    #[test]
    fn add_gate_rejects_wrong_arity() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let err = n
            .add_gate("u", x1(CellFunc::And2), vec![a.into()])
            .unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
    }

    #[test]
    fn add_gate_rejects_forward_reference() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let fwd = GateId::new(10);
        let err = n
            .add_gate("u", x1(CellFunc::And2), vec![a.into(), fwd.into()])
            .unwrap_err();
        assert!(matches!(err, NetlistError::FaninOrder { .. }));
    }

    #[test]
    fn substitute_rewrites_all_readers() {
        // Fig. 5 wire-by-constant example: target paper-id 8, switch con0.
        let mut n = fig3_netlist();
        let g8 = n.find_gate("u8").expect("u8");
        let rewritten = n.substitute(g8, SignalRef::Const0).expect("legal LAC");
        assert_eq!(rewritten, 1); // only gate 11 reads gate 8
        let g11 = n.find_gate("u11").expect("u11");
        assert_eq!(n.gate(g11).fanins()[1], SignalRef::Const0);
        n.check_invariants().expect("still valid");
    }

    #[test]
    fn substitute_rejects_downstream_switch() {
        let mut n = fig3_netlist();
        let g5 = n.find_gate("u5").expect("u5");
        let g11 = n.find_gate("u11").expect("u11");
        let err = n.substitute(g5, g11.into()).unwrap_err();
        assert!(matches!(err, NetlistError::FaninOrder { .. }));
    }

    #[test]
    fn substitution_makes_target_dangling() {
        let mut n = fig3_netlist();
        let g8 = n.find_gate("u8").expect("u8");
        n.substitute(g8, SignalRef::Const0).expect("legal LAC");
        let live = n.live_mask();
        assert!(!live[g8.index()], "substituted gate must be dangling");
    }

    #[test]
    fn live_area_shrinks_after_substitution() {
        let mut n = fig3_netlist();
        let before = n.area_live();
        let g8 = n.find_gate("u8").expect("u8");
        n.substitute(g8, SignalRef::Const0).expect("legal LAC");
        let after = n.area_live();
        assert!(after < before);
        assert_eq!(n.area_total(), before, "total area unchanged before sweep");
    }

    #[test]
    fn sweep_dangling_removes_dead_cone() {
        let mut n = fig3_netlist();
        let g12 = n.find_gate("u12").expect("u12");
        // Re-point po3 from gate 15 to gate 7's output through substitute on 12:
        n.substitute(g12, SignalRef::Const1).expect("legal LAC");
        let dead_before = n.live_mask().iter().filter(|&&l| !l).count();
        assert!(dead_before >= 1);
        let removed = n.sweep_dangling();
        assert_eq!(removed, dead_before);
        n.check_invariants().expect("valid after sweep");
        assert!(n.live_mask().iter().all(|&l| l), "no dead gates remain");
        // PO count unchanged.
        assert_eq!(n.output_count(), 3);
    }

    #[test]
    fn sweep_preserves_input_count() {
        let mut n = fig3_netlist();
        // Kill everything: tie all POs to constants.
        for po in 0..n.output_count() {
            n.set_output_driver(po, SignalRef::Const0);
        }
        n.sweep_dangling();
        assert_eq!(n.input_count(), 4);
        assert_eq!(n.logic_gate_count(), 0);
        n.check_invariants().expect("valid after full sweep");
    }

    #[test]
    fn tfi_tfo_are_consistent() {
        let n = fig3_netlist();
        let g9 = n.find_gate("u9").expect("u9");
        let tfi = n.tfi_mask(g9);
        let g6 = n.find_gate("u6").expect("u6");
        let g7 = n.find_gate("u7").expect("u7");
        assert!(tfi[g6.index()] && tfi[g7.index()]);
        assert!(!tfi[g9.index()], "root excluded from its own TFI");
        // TFO of 9 contains 12, 14, 15.
        let tfo = n.tfo_mask(g9);
        for name in ["u12", "u14", "u15"] {
            let id = n.find_gate(name).expect(name);
            assert!(tfo[id.index()], "{name} in TFO of u9");
        }
        // Membership duality on every pair.
        for (a, _) in n.iter() {
            let tfo_a = n.tfo_mask(a);
            for (b, _) in n.iter() {
                if tfo_a[b.index()] {
                    assert!(n.tfi_mask(b)[a.index()], "{a} in TFI({b})");
                }
            }
        }
    }

    #[test]
    fn po_cone_mask_covers_example_from_fig5() {
        let n = fig3_netlist();
        // PO1 cone (paper): 13, 11, 8, 5 + PIs 1, 2.
        let mask = n.po_cone_mask(&[0]);
        for name in ["u13", "u11", "u8", "u5"] {
            let id = n.find_gate(name).expect(name);
            assert!(mask[id.index()], "{name} in PO1 cone");
        }
        let g9 = n.find_gate("u9").expect("u9");
        assert!(!mask[g9.index()], "u9 not in PO1 cone");
    }

    #[test]
    fn fanout_counts_match_lists() {
        let n = fig3_netlist();
        let counts = n.fanout_counts();
        let lists = n.fanout_lists();
        for (id, _) in n.iter() {
            let po_fanout = n
                .outputs()
                .filter(|(_, d)| *d == SignalRef::Gate(id))
                .count();
            assert_eq!(counts[id.index()], lists[id.index()].len() + po_fanout);
        }
    }

    #[test]
    fn signalref_display() {
        assert_eq!(SignalRef::Const0.to_string(), "1'b0");
        assert_eq!(SignalRef::Const1.to_string(), "1'b1");
        assert_eq!(SignalRef::Gate(GateId::new(4)).to_string(), "g4");
    }

    #[test]
    fn func_histogram_ignores_dangling() {
        let mut n = fig3_netlist();
        // Summing the histogram's values is commutative, so the map's
        // visit order cannot reach either total.
        let totals = n.func_histogram();
        let before: usize = totals.values().sum();
        assert_eq!(before, 11);
        let g8 = n.find_gate("u8").expect("u8");
        n.substitute(g8, SignalRef::Const0).expect("lac");
        let totals = n.func_histogram();
        let after: usize = totals.values().sum();
        assert!(after < before);
    }
}

//! Ergonomic netlist construction.
//!
//! [`Builder`] wraps [`Netlist`] with auto-named gates, logic-operator
//! helpers, and light constant folding, so benchmark generators and
//! examples can express datapaths (`b.xor(a, c)`, ripple-carry loops, …)
//! without hand-managing instance names or trivial constants.
//!
//! # Examples
//!
//! Build a full adder in five lines:
//!
//! ```
//! use tdals_netlist::builder::Builder;
//!
//! let mut b = Builder::new("fa");
//! let a = b.input("a");
//! let x = b.input("b");
//! let cin = b.input("cin");
//! let ax = b.xor(a, x);
//! let sum = b.xor(ax, cin);
//! let cout = b.maj(a, x, cin);
//! b.output("sum", sum);
//! b.output("cout", cout);
//! let netlist = b.finish();
//! assert_eq!(netlist.logic_gate_count(), 3);
//! ```

use crate::cell::{Cell, CellFunc, Drive};
use crate::netlist::{Netlist, SignalRef};

/// Incremental netlist builder with auto-naming and constant folding.
///
/// All gates are instantiated at [`Drive::X1`]; sizing is the
/// post-optimization's job. Folding rules cover identities involving
/// constants (`a & 0 = 0`, `a ^ 0 = a`, …) and equal operands
/// (`a & a = a`, `a ^ a = 0`), which keeps generated arithmetic blocks
/// free of degenerate gates.
#[derive(Debug, Clone)]
pub struct Builder {
    netlist: Netlist,
    counter: usize,
}

impl Builder {
    /// Starts building a module with the given name.
    pub fn new(name: impl Into<String>) -> Builder {
        Builder {
            netlist: Netlist::new(name),
            counter: 0,
        }
    }

    /// Declares one primary input.
    pub fn input(&mut self, name: impl Into<String>) -> SignalRef {
        self.netlist.add_input(name).into()
    }

    /// Declares `count` primary inputs named `prefix0..prefixN-1`,
    /// index 0 first (LSB-first for buses).
    pub fn inputs(&mut self, prefix: &str, count: usize) -> Vec<SignalRef> {
        (0..count)
            .map(|i| self.input(format!("{prefix}{i}")))
            .collect()
    }

    /// Declares one primary output.
    pub fn output(&mut self, name: impl Into<String>, signal: SignalRef) {
        self.netlist.add_output(name, signal);
    }

    /// Declares a bus of primary outputs, LSB first.
    pub fn outputs(&mut self, prefix: &str, signals: &[SignalRef]) {
        for (i, &s) in signals.iter().enumerate() {
            self.output(format!("{prefix}{i}"), s);
        }
    }

    /// Number of gates added so far (including inputs).
    pub fn gate_count(&self) -> usize {
        self.netlist.gate_count()
    }

    /// Finalizes and returns the netlist.
    ///
    /// # Panics
    ///
    /// Panics if an internal invariant was violated (a bug in the
    /// builder itself).
    pub fn finish(self) -> Netlist {
        self.netlist
            .check_invariants()
            .expect("builder must construct valid netlists");
        self.netlist
    }

    /// Emits a raw gate with the given function (no folding).
    pub fn raw_gate(&mut self, func: CellFunc, fanins: &[SignalRef]) -> SignalRef {
        self.counter += 1;
        let name = format!("u{}", self.counter);
        self.netlist
            .add_gate(name, Cell::new(func, Drive::X1), fanins.to_vec())
            .expect("builder fanins are always older than the new gate")
            .into()
    }

    /// NOT, folding constants and double inversions where trivial.
    pub fn not(&mut self, a: SignalRef) -> SignalRef {
        match a {
            SignalRef::Const0 => SignalRef::Const1,
            SignalRef::Const1 => SignalRef::Const0,
            _ => self.raw_gate(CellFunc::Inv, &[a]),
        }
    }

    /// Buffer (no folding value, but useful for fan-out isolation).
    pub fn buf(&mut self, a: SignalRef) -> SignalRef {
        self.raw_gate(CellFunc::Buf, &[a])
    }

    /// 2-input AND with constant folding.
    pub fn and(&mut self, a: SignalRef, b: SignalRef) -> SignalRef {
        match (a, b) {
            (SignalRef::Const0, _) | (_, SignalRef::Const0) => SignalRef::Const0,
            (SignalRef::Const1, x) | (x, SignalRef::Const1) => x,
            (x, y) if x == y => x,
            (x, y) => self.raw_gate(CellFunc::And2, &[x, y]),
        }
    }

    /// 2-input OR with constant folding.
    pub fn or(&mut self, a: SignalRef, b: SignalRef) -> SignalRef {
        match (a, b) {
            (SignalRef::Const1, _) | (_, SignalRef::Const1) => SignalRef::Const1,
            (SignalRef::Const0, x) | (x, SignalRef::Const0) => x,
            (x, y) if x == y => x,
            (x, y) => self.raw_gate(CellFunc::Or2, &[x, y]),
        }
    }

    /// 2-input XOR with constant folding.
    pub fn xor(&mut self, a: SignalRef, b: SignalRef) -> SignalRef {
        match (a, b) {
            (SignalRef::Const0, x) | (x, SignalRef::Const0) => x,
            (SignalRef::Const1, x) | (x, SignalRef::Const1) => self.not(x),
            (x, y) if x == y => SignalRef::Const0,
            (x, y) => self.raw_gate(CellFunc::Xor2, &[x, y]),
        }
    }

    /// 2-input XNOR with constant folding.
    pub fn xnor(&mut self, a: SignalRef, b: SignalRef) -> SignalRef {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// 2-input NAND with constant folding.
    pub fn nand(&mut self, a: SignalRef, b: SignalRef) -> SignalRef {
        match (a, b) {
            (SignalRef::Const0, _) | (_, SignalRef::Const0) => SignalRef::Const1,
            (SignalRef::Const1, x) | (x, SignalRef::Const1) => self.not(x),
            (x, y) if x == y => self.not(x),
            (x, y) => self.raw_gate(CellFunc::Nand2, &[x, y]),
        }
    }

    /// 2-input NOR with constant folding.
    pub fn nor(&mut self, a: SignalRef, b: SignalRef) -> SignalRef {
        match (a, b) {
            (SignalRef::Const1, _) | (_, SignalRef::Const1) => SignalRef::Const0,
            (SignalRef::Const0, x) | (x, SignalRef::Const0) => self.not(x),
            (x, y) if x == y => self.not(x),
            (x, y) => self.raw_gate(CellFunc::Nor2, &[x, y]),
        }
    }

    /// 3-input majority (full-adder carry) with constant folding.
    pub fn maj(&mut self, a: SignalRef, b: SignalRef, c: SignalRef) -> SignalRef {
        match (a, b, c) {
            (SignalRef::Const0, x, y) | (x, SignalRef::Const0, y) | (x, y, SignalRef::Const0) => {
                self.and(x, y)
            }
            (SignalRef::Const1, x, y) | (x, SignalRef::Const1, y) | (x, y, SignalRef::Const1) => {
                self.or(x, y)
            }
            (x, y, z) if x == y => self.mux_fold(x, z),
            (x, y, z) if x == z || y == z => {
                // maj(x, y, x) = x or (x & y) = x when duplicated; the
                // duplicated operand dominates.
                if x == z {
                    self.maj_dup(x, y)
                } else {
                    self.maj_dup(z, x)
                }
            }
            (x, y, z) => self.raw_gate(CellFunc::Maj3, &[x, y, z]),
        }
    }

    fn maj_dup(&mut self, dup: SignalRef, _other: SignalRef) -> SignalRef {
        // maj(d, o, d) = (d&o) | (d&d) | (o&d) = d.
        dup
    }

    fn mux_fold(&mut self, dup: SignalRef, _other: SignalRef) -> SignalRef {
        // maj(x, x, z) = x (two votes out of three).
        dup
    }

    /// 2:1 multiplexer `sel ? hi : lo`, with constant folding.
    pub fn mux(&mut self, sel: SignalRef, lo: SignalRef, hi: SignalRef) -> SignalRef {
        match (sel, lo, hi) {
            (SignalRef::Const0, lo, _) => lo,
            (SignalRef::Const1, _, hi) => hi,
            (_, lo, hi) if lo == hi => lo,
            (s, SignalRef::Const0, hi) => self.and(s, hi),
            (s, lo, SignalRef::Const0) => {
                let ns = self.not(s);
                self.and(ns, lo)
            }
            (s, SignalRef::Const1, hi) => {
                let ns = self.not(s);
                self.or(ns, hi)
            }
            (s, lo, SignalRef::Const1) => self.or(s, lo),
            (s, lo, hi) => self.raw_gate(CellFunc::Mux2, &[s, lo, hi]),
        }
    }

    /// Word-wide 2:1 multiplexer.
    pub fn mux_word(
        &mut self,
        sel: SignalRef,
        lo: &[SignalRef],
        hi: &[SignalRef],
    ) -> Vec<SignalRef> {
        assert_eq!(lo.len(), hi.len(), "mux operands must match in width");
        lo.iter()
            .zip(hi)
            .map(|(&l, &h)| self.mux(sel, l, h))
            .collect()
    }

    /// Balanced reduction tree (e.g. wide OR/AND/XOR).
    pub fn reduce(
        &mut self,
        signals: &[SignalRef],
        mut op: impl FnMut(&mut Builder, SignalRef, SignalRef) -> SignalRef,
        empty: SignalRef,
    ) -> SignalRef {
        if signals.is_empty() {
            return empty;
        }
        let mut layer: Vec<SignalRef> = signals.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(op(self, pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    /// Wide OR via a balanced tree (`0` for an empty slice).
    pub fn or_tree(&mut self, signals: &[SignalRef]) -> SignalRef {
        self.reduce(signals, Builder::or, SignalRef::Const0)
    }

    /// Wide AND via a balanced tree (`1` for an empty slice).
    pub fn and_tree(&mut self, signals: &[SignalRef]) -> SignalRef {
        self.reduce(signals, Builder::and, SignalRef::Const1)
    }

    /// Wide XOR (parity) via a balanced tree (`0` for an empty slice).
    pub fn xor_tree(&mut self, signals: &[SignalRef]) -> SignalRef {
        self.reduce(signals, Builder::xor, SignalRef::Const0)
    }

    /// Full adder returning `(sum, carry)`.
    pub fn full_adder(
        &mut self,
        a: SignalRef,
        b: SignalRef,
        cin: SignalRef,
    ) -> (SignalRef, SignalRef) {
        let ab = self.xor(a, b);
        let sum = self.xor(ab, cin);
        let carry = self.maj(a, b, cin);
        (sum, carry)
    }

    /// Ripple-carry addition of two equal-width buses; returns
    /// `(sum_bits, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics if the buses differ in width.
    pub fn ripple_add(
        &mut self,
        a: &[SignalRef],
        b: &[SignalRef],
        cin: SignalRef,
    ) -> (Vec<SignalRef>, SignalRef) {
        assert_eq!(a.len(), b.len(), "adder operands must match in width");
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = self.full_adder(x, y, carry);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// Ripple-borrow subtraction `a - b`; returns
    /// `(difference_bits, borrow_out)` where `borrow_out = 1` iff
    /// `a < b`.
    ///
    /// # Panics
    ///
    /// Panics if the buses differ in width.
    pub fn ripple_sub(&mut self, a: &[SignalRef], b: &[SignalRef]) -> (Vec<SignalRef>, SignalRef) {
        assert_eq!(a.len(), b.len(), "subtractor operands must match in width");
        let nb: Vec<SignalRef> = b.iter().map(|&x| self.not(x)).collect();
        let (diff, carry) = self.ripple_add(a, &nb, SignalRef::Const1);
        let borrow = self.not(carry);
        (diff, borrow)
    }

    /// Unsigned `a >= b` comparator over equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics if the buses differ in width.
    pub fn ge(&mut self, a: &[SignalRef], b: &[SignalRef]) -> SignalRef {
        let (_, borrow) = self.ripple_sub(a, b);
        self.not(borrow)
    }

    /// Read-only access to the netlist under construction.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folding_rules() {
        let mut b = Builder::new("fold");
        let a = b.input("a");
        assert_eq!(b.and(a, SignalRef::Const0), SignalRef::Const0);
        assert_eq!(b.and(a, SignalRef::Const1), a);
        assert_eq!(b.or(a, SignalRef::Const1), SignalRef::Const1);
        assert_eq!(b.or(a, SignalRef::Const0), a);
        assert_eq!(b.xor(a, SignalRef::Const0), a);
        assert_eq!(b.xor(a, a), SignalRef::Const0);
        assert_eq!(b.and(a, a), a);
        assert_eq!(b.mux(SignalRef::Const1, SignalRef::Const0, a), a);
        assert_eq!(b.maj(a, a, SignalRef::Const0), a);
        // None of the above created a gate.
        assert_eq!(b.netlist().logic_gate_count(), 0);
    }

    /// Evaluates a netlist on one boolean input assignment (test helper;
    /// the real simulator lives in `tdals-sim`).
    fn eval(netlist: &Netlist, inputs: &[bool]) -> Vec<bool> {
        let mut vals = vec![false; netlist.gate_count()];
        for (i, &pi) in netlist.inputs().iter().enumerate() {
            vals[pi.index()] = inputs[i];
        }
        for (id, gate) in netlist.iter() {
            if gate.is_input() {
                continue;
            }
            let ins: Vec<bool> = gate
                .fanins()
                .iter()
                .map(|f| match f {
                    SignalRef::Const0 => false,
                    SignalRef::Const1 => true,
                    SignalRef::Gate(s) => vals[s.index()],
                })
                .collect();
            vals[id.index()] = gate.cell().eval_bool(&ins);
        }
        netlist
            .outputs()
            .map(|(_, d)| match d {
                SignalRef::Const0 => false,
                SignalRef::Const1 => true,
                SignalRef::Gate(s) => vals[s.index()],
            })
            .collect()
    }

    fn to_bits(value: usize, width: usize) -> Vec<bool> {
        (0..width).map(|i| value >> i & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> usize {
        bits.iter()
            .enumerate()
            .map(|(i, &b)| usize::from(b) << i)
            .sum()
    }

    #[test]
    fn ripple_add_is_correct() {
        let mut b = Builder::new("add4");
        let a = b.inputs("a", 4);
        let x = b.inputs("b", 4);
        let (sum, cout) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &sum);
        b.output("cout", cout);
        let n = b.finish();
        for av in 0..16usize {
            for bv in 0..16usize {
                let mut ins = to_bits(av, 4);
                ins.extend(to_bits(bv, 4));
                let outs = eval(&n, &ins);
                let got = from_bits(&outs);
                assert_eq!(got, av + bv, "{av}+{bv}");
            }
        }
    }

    #[test]
    fn ripple_sub_and_ge() {
        let mut b = Builder::new("sub4");
        let a = b.inputs("a", 4);
        let x = b.inputs("b", 4);
        let (diff, borrow) = b.ripple_sub(&a, &x);
        let ge = b.ge(&a, &x);
        b.outputs("d", &diff);
        b.output("borrow", borrow);
        b.output("ge", ge);
        let n = b.finish();
        for av in 0..16usize {
            for bv in 0..16usize {
                let mut ins = to_bits(av, 4);
                ins.extend(to_bits(bv, 4));
                let outs = eval(&n, &ins);
                let diff = from_bits(&outs[0..4]);
                assert_eq!(diff, (av.wrapping_sub(bv)) & 0xF, "{av}-{bv}");
                assert_eq!(outs[4], av < bv, "borrow {av} {bv}");
                assert_eq!(outs[5], av >= bv, "ge {av} {bv}");
            }
        }
    }

    #[test]
    fn trees_compute_reductions() {
        let mut b = Builder::new("trees");
        let xs = b.inputs("x", 5);
        let or = b.or_tree(&xs);
        let and = b.and_tree(&xs);
        let parity = b.xor_tree(&xs);
        b.output("or", or);
        b.output("and", and);
        b.output("parity", parity);
        let n = b.finish();
        for v in 0..32usize {
            let ins = to_bits(v, 5);
            let outs = eval(&n, &ins);
            assert_eq!(outs[0], v != 0);
            assert_eq!(outs[1], v == 31);
            assert_eq!(outs[2], (v.count_ones() % 2) == 1);
        }
    }

    #[test]
    fn mux_word_selects() {
        let mut b = Builder::new("muxw");
        let s = b.input("s");
        let lo = b.inputs("lo", 3);
        let hi = b.inputs("hi", 3);
        let out = b.mux_word(s, &lo, &hi);
        b.outputs("y", &out);
        let n = b.finish();
        for sel in [false, true] {
            for l in 0..8usize {
                for h in 0..8usize {
                    let mut ins = vec![sel];
                    ins.extend(to_bits(l, 3));
                    ins.extend(to_bits(h, 3));
                    let outs = eval(&n, &ins);
                    let want = if sel { h } else { l };
                    assert_eq!(from_bits(&outs), want);
                }
            }
        }
    }

    #[test]
    fn empty_trees_return_identity() {
        let mut b = Builder::new("empty");
        assert_eq!(b.or_tree(&[]), SignalRef::Const0);
        assert_eq!(b.and_tree(&[]), SignalRef::Const1);
        assert_eq!(b.xor_tree(&[]), SignalRef::Const0);
    }
}

//! Structural Verilog reader and writer.
//!
//! The paper's flow consumes a post-synthesis gate-level netlist (`.v`)
//! and emits the approximate netlist in the same format. This module
//! implements the subset of structural Verilog those files use:
//!
//! * scalar `input` / `output` / `wire` declarations,
//! * library-cell instances with named connections
//!   (`NAND2X1 u3 ( .Y(n5), .A(n1), .B(n2) );`),
//! * `assign` of a net to another net or to `1'b0` / `1'b1`,
//! * `//` and `/* */` comments.
//!
//! Instances may appear in any order; the parser topologically sorts them
//! (rejecting combinational loops) so the resulting [`Netlist`] satisfies
//! the topological id invariant.
//!
//! # Examples
//!
//! ```
//! use tdals_netlist::verilog;
//!
//! let src = "
//! module tiny (a, b, y);
//!   input a, b;
//!   output y;
//!   wire n1;
//!   NAND2X1 u1 ( .Y(n1), .A(a), .B(b) );
//!   INVX1 u2 ( .Y(y), .A(n1) );
//! endmodule";
//! let netlist = verilog::parse(src)?;
//! assert_eq!(netlist.name(), "tiny");
//! assert_eq!(netlist.logic_gate_count(), 2);
//! let round_trip = verilog::parse(&verilog::to_verilog(&netlist))?;
//! assert_eq!(round_trip.logic_gate_count(), 2);
//! # Ok::<(), tdals_netlist::ParseVerilogError>(())
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::cell::Cell;
use crate::error::{Loc, ParseVerilogError};
use crate::netlist::{GateId, Netlist, SignalRef};

/// Input pin names used in emitted Verilog, by pin position.
const PIN_NAMES: [&str; 3] = ["A", "B", "C"];

/// Serializes a netlist as structural Verilog.
///
/// Dangling gates are emitted too (they are part of the circuit until the
/// post-optimization sweep deletes them); nets are named `w<id>` and
/// primary inputs/outputs keep their declared names.
pub fn to_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let mut ports: Vec<String> = Vec::new();
    for &pi in netlist.inputs() {
        ports.push(netlist.gate(pi).name().to_owned());
    }
    for (name, _) in netlist.outputs() {
        ports.push(name.to_owned());
    }
    let _ = writeln!(out, "module {} ({});", netlist.name(), ports.join(", "));
    for &pi in netlist.inputs() {
        let _ = writeln!(out, "  input {};", netlist.gate(pi).name());
    }
    for (name, _) in netlist.outputs() {
        let _ = writeln!(out, "  output {};", name);
    }

    // Net name for each gate output.
    let net_name = |id: GateId| -> String {
        let gate = netlist.gate(id);
        if gate.is_input() {
            gate.name().to_owned()
        } else {
            format!("w{}", id.index())
        }
    };
    let sig_name = |s: SignalRef| -> String {
        match s {
            SignalRef::Const0 => "1'b0".to_owned(),
            SignalRef::Const1 => "1'b1".to_owned(),
            SignalRef::Gate(id) => net_name(id),
        }
    };

    let mut wires: Vec<String> = Vec::new();
    for (id, gate) in netlist.iter() {
        if !gate.is_input() {
            wires.push(net_name(id));
        }
    }
    if !wires.is_empty() {
        let _ = writeln!(out, "  wire {};", wires.join(", "));
    }

    for (id, gate) in netlist.iter() {
        if gate.is_input() {
            continue;
        }
        let mut conns = vec![format!(".Y({})", net_name(id))];
        for (pin, fanin) in gate.fanins().iter().enumerate() {
            conns.push(format!(".{}({})", PIN_NAMES[pin], sig_name(*fanin)));
        }
        let _ = writeln!(
            out,
            "  {} {} ( {} );",
            gate.cell().lib_name(),
            gate.name(),
            conns.join(", ")
        );
    }
    for (name, driver) in netlist.outputs() {
        let _ = writeln!(out, "  assign {} = {};", name, sig_name(driver));
    }
    let _ = writeln!(out, "endmodule");
    out
}

#[derive(Debug, Clone, PartialEq)]
struct Token {
    text: String,
    /// Position of the token's first character.
    loc: Loc,
}

fn tokenize(src: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    // Current position (1-based line and character column).
    let mut line = 1usize;
    let mut col = 1usize;
    let mut cur = String::new();
    let mut cur_loc = Loc::new(1, 1);
    let flush = |cur: &mut String, cur_loc: Loc, tokens: &mut Vec<Token>| {
        if !cur.is_empty() {
            tokens.push(Token {
                text: std::mem::take(cur),
                loc: cur_loc,
            });
        }
    };
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                flush(&mut cur, cur_loc, &mut tokens);
                line += 1;
                col = 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                flush(&mut cur, cur_loc, &mut tokens);
                col += 1;
                i += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                flush(&mut cur, cur_loc, &mut tokens);
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                    col += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '*' => {
                flush(&mut cur, cur_loc, &mut tokens);
                i += 2;
                col += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
                col += 2;
            }
            '(' | ')' | ',' | ';' | '.' | '=' => {
                flush(&mut cur, cur_loc, &mut tokens);
                tokens.push(Token {
                    text: c.to_string(),
                    loc: Loc::new(line, col),
                });
                col += 1;
                i += 1;
            }
            _ => {
                if cur.is_empty() {
                    cur_loc = Loc::new(line, col);
                }
                cur.push(c);
                col += 1;
                i += 1;
            }
        }
    }
    flush(&mut cur, cur_loc, &mut tokens);
    tokens
}

/// A net value during elaboration.
#[derive(Debug, Clone, Copy, PartialEq)]
enum NetDriver {
    Undriven,
    Const(bool),
    Instance(usize),
    /// `assign lhs = rhs;` alias to another net.
    Alias(usize),
    PrimaryInput(usize),
}

#[derive(Debug)]
struct RawInstance {
    name: String,
    cell: Cell,
    loc: Loc,
    /// Net index per input pin.
    input_nets: Vec<Option<usize>>,
    output_net: Option<usize>,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn next(&mut self) -> Result<Token, ParseVerilogError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or(ParseVerilogError::UnexpectedEof)?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, text: &str) -> Result<Token, ParseVerilogError> {
        let t = self.next()?;
        if t.text != text {
            return Err(ParseVerilogError::Syntax {
                loc: t.loc,
                message: format!("expected `{text}`, found `{}`", t.text),
            });
        }
        Ok(t)
    }

    fn ident(&mut self) -> Result<Token, ParseVerilogError> {
        let t = self.next()?;
        let ok = t
            .text
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '\'' || c == '[' || c == ']');
        if t.text.is_empty() || !ok {
            return Err(ParseVerilogError::Syntax {
                loc: t.loc,
                message: format!("expected identifier, found `{}`", t.text),
            });
        }
        Ok(t)
    }
}

/// Parses structural Verilog into a [`Netlist`].
///
/// # Errors
///
/// Returns [`ParseVerilogError`] on malformed syntax, unknown cells or
/// nets, multiply-driven nets, or combinational loops. Only the first
/// module in the source is read.
pub fn parse(src: &str) -> Result<Netlist, ParseVerilogError> {
    let mut p = Parser {
        tokens: tokenize(src),
        pos: 0,
    };
    p.expect("module")?;
    let module_name = p.ident()?.text;

    // Port list (names repeated in input/output declarations).
    p.expect("(")?;
    loop {
        let t = p.next()?;
        match t.text.as_str() {
            ")" => break,
            "," => continue,
            _ => continue, // port name; direction comes from declarations
        }
    }
    p.expect(";")?;

    let mut net_ids: HashMap<String, usize> = HashMap::new();
    let mut drivers: Vec<NetDriver> = Vec::new();
    let mut net_names: Vec<String> = Vec::new();
    // First-seen position of each net, so diagnostics discovered during
    // elaboration (undriven nets, alias cycles) still point into the
    // source.
    let mut net_locs: Vec<Loc> = Vec::new();
    let intern = |tok: &Token,
                  net_ids: &mut HashMap<String, usize>,
                  drivers: &mut Vec<NetDriver>,
                  net_names: &mut Vec<String>,
                  net_locs: &mut Vec<Loc>|
     -> usize {
        if let Some(&id) = net_ids.get(&tok.text) {
            return id;
        }
        let id = drivers.len();
        net_ids.insert(tok.text.clone(), id);
        // Constant literals used directly as operands are pre-driven nets.
        drivers.push(match tok.text.as_str() {
            "1'b0" => NetDriver::Const(false),
            "1'b1" => NetDriver::Const(true),
            _ => NetDriver::Undriven,
        });
        net_names.push(tok.text.clone());
        net_locs.push(tok.loc);
        id
    };

    let mut input_order: Vec<usize> = Vec::new();
    let mut output_order: Vec<(String, usize)> = Vec::new();
    let mut instances: Vec<RawInstance> = Vec::new();

    loop {
        let t = p.next()?;
        match t.text.as_str() {
            "endmodule" => break,
            "input" | "output" | "wire" => {
                let kind = t.text.clone();
                loop {
                    let name_tok = p.ident()?;
                    let net = intern(
                        &name_tok,
                        &mut net_ids,
                        &mut drivers,
                        &mut net_names,
                        &mut net_locs,
                    );
                    if kind == "input" {
                        if drivers[net] != NetDriver::Undriven {
                            return Err(ParseVerilogError::MultipleDrivers {
                                net: name_tok.text,
                                loc: name_tok.loc,
                            });
                        }
                        drivers[net] = NetDriver::PrimaryInput(input_order.len());
                        input_order.push(net);
                    } else if kind == "output" {
                        output_order.push((name_tok.text.clone(), net));
                    }
                    let sep = p.next()?;
                    match sep.text.as_str() {
                        "," => continue,
                        ";" => break,
                        other => {
                            return Err(ParseVerilogError::Syntax {
                                loc: sep.loc,
                                message: format!("expected `,` or `;`, found `{other}`"),
                            })
                        }
                    }
                }
            }
            "assign" => {
                let lhs_tok = p.ident()?;
                let lhs = intern(
                    &lhs_tok,
                    &mut net_ids,
                    &mut drivers,
                    &mut net_names,
                    &mut net_locs,
                );
                p.expect("=")?;
                let rhs_tok = p.ident()?;
                let value = match rhs_tok.text.as_str() {
                    "1'b0" => NetDriver::Const(false),
                    "1'b1" => NetDriver::Const(true),
                    _ => {
                        let rhs = intern(
                            &rhs_tok,
                            &mut net_ids,
                            &mut drivers,
                            &mut net_names,
                            &mut net_locs,
                        );
                        NetDriver::Alias(rhs)
                    }
                };
                if !matches!(drivers[lhs], NetDriver::Undriven) {
                    return Err(ParseVerilogError::MultipleDrivers {
                        net: lhs_tok.text,
                        loc: lhs_tok.loc,
                    });
                }
                drivers[lhs] = value;
                p.expect(";")?;
            }
            cell_name => {
                // A cell instance.
                let cell: Cell = cell_name
                    .parse()
                    .map_err(|_| ParseVerilogError::UnknownCell {
                        loc: t.loc,
                        cell: cell_name.to_owned(),
                    })?;
                let inst_name = p.ident()?.text;
                p.expect("(")?;
                let mut input_nets: Vec<Option<usize>> = vec![None; cell.arity()];
                let mut output_net: Option<usize> = None;
                loop {
                    let tok = p.next()?;
                    match tok.text.as_str() {
                        ")" => break,
                        "," => continue,
                        "." => {
                            let pin_tok = p.ident()?;
                            p.expect("(")?;
                            let net_tok = p.ident()?;
                            p.expect(")")?;
                            let pin = pin_tok.text.as_str();
                            if pin == "Y" {
                                if net_tok.text == "1'b0" || net_tok.text == "1'b1" {
                                    return Err(ParseVerilogError::Syntax {
                                        loc: net_tok.loc,
                                        message: "constant on output pin".to_owned(),
                                    });
                                }
                                let net = intern(
                                    &net_tok,
                                    &mut net_ids,
                                    &mut drivers,
                                    &mut net_names,
                                    &mut net_locs,
                                );
                                if !matches!(drivers[net], NetDriver::Undriven) {
                                    return Err(ParseVerilogError::MultipleDrivers {
                                        net: net_tok.text,
                                        loc: net_tok.loc,
                                    });
                                }
                                drivers[net] = NetDriver::Instance(instances.len());
                                output_net = Some(net);
                            } else {
                                let idx = PIN_NAMES
                                    .iter()
                                    .position(|&n| n == pin)
                                    .filter(|&i| i < cell.arity())
                                    .ok_or_else(|| ParseVerilogError::Syntax {
                                        loc: pin_tok.loc,
                                        message: format!("unknown pin `{pin}` on cell {cell_name}"),
                                    })?;
                                let net = intern(
                                    &net_tok,
                                    &mut net_ids,
                                    &mut drivers,
                                    &mut net_names,
                                    &mut net_locs,
                                );
                                input_nets[idx] = Some(net);
                            }
                        }
                        other => {
                            return Err(ParseVerilogError::Syntax {
                                loc: tok.loc,
                                message: format!("unexpected token `{other}` in instance"),
                            })
                        }
                    }
                }
                p.expect(";")?;
                instances.push(RawInstance {
                    name: inst_name,
                    cell,
                    loc: t.loc,
                    input_nets,
                    output_net,
                });
            }
        }
    }

    // Mark constants for nets driven by `assign x = 1'bX` chains and
    // detect alias cycles while resolving.
    fn resolve(
        net: usize,
        drivers: &[NetDriver],
        net_names: &[String],
        net_locs: &[Loc],
        depth: usize,
    ) -> Result<NetDriver, ParseVerilogError> {
        if depth > drivers.len() {
            return Err(ParseVerilogError::CombinationalLoop {
                instance: net_names[net].clone(),
                loc: net_locs[net],
            });
        }
        match drivers[net] {
            NetDriver::Alias(next) => resolve(next, drivers, net_names, net_locs, depth + 1),
            other => Ok(other),
        }
    }

    // Topological sort of instances (Kahn) over instance->instance deps.
    let inst_of_net = |net: usize| -> Result<Option<usize>, ParseVerilogError> {
        match resolve(net, &drivers, &net_names, &net_locs, 0)? {
            NetDriver::Instance(i) => Ok(Some(i)),
            NetDriver::Undriven => Err(ParseVerilogError::UnknownNet {
                loc: net_locs[net],
                net: net_names[net].clone(),
            }),
            _ => Ok(None),
        }
    };

    let mut indegree = vec![0usize; instances.len()];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); instances.len()];
    for (i, inst) in instances.iter().enumerate() {
        for (pin, net) in inst.input_nets.iter().enumerate() {
            let net = net.ok_or_else(|| ParseVerilogError::Syntax {
                loc: inst.loc,
                message: format!(
                    "instance `{}` leaves pin {} unconnected",
                    inst.name, PIN_NAMES[pin]
                ),
            })?;
            if let Some(src) = inst_of_net(net)? {
                dependents[src].push(i);
                indegree[i] += 1;
            }
        }
    }

    let mut ready: Vec<usize> = indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut order: Vec<usize> = Vec::with_capacity(instances.len());
    while let Some(i) = ready.pop() {
        order.push(i);
        for &j in &dependents[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                ready.push(j);
            }
        }
    }
    if order.len() != instances.len() {
        let stuck = indegree
            .iter()
            .position(|&d| d > 0)
            .expect("cycle implies positive indegree");
        return Err(ParseVerilogError::CombinationalLoop {
            instance: instances[stuck].name.clone(),
            loc: instances[stuck].loc,
        });
    }

    // Build the netlist: PIs first, then instances in topological order.
    let mut netlist = Netlist::new(module_name);
    let mut pi_gate: Vec<GateId> = Vec::new();
    for &net in &input_order {
        pi_gate.push(netlist.add_input(net_names[net].clone()));
    }
    let mut inst_gate: Vec<Option<GateId>> = vec![None; instances.len()];
    let signal_of_net = |net: usize,
                         inst_gate: &[Option<GateId>],
                         loc: Loc|
     -> Result<SignalRef, ParseVerilogError> {
        match resolve(net, &drivers, &net_names, &net_locs, 0)? {
            NetDriver::Const(false) => Ok(SignalRef::Const0),
            NetDriver::Const(true) => Ok(SignalRef::Const1),
            NetDriver::PrimaryInput(idx) => Ok(SignalRef::Gate(pi_gate[idx])),
            NetDriver::Instance(i) => {
                inst_gate[i]
                    .map(SignalRef::Gate)
                    .ok_or(ParseVerilogError::CombinationalLoop {
                        instance: instances[i].name.clone(),
                        loc: instances[i].loc,
                    })
            }
            NetDriver::Undriven | NetDriver::Alias(_) => Err(ParseVerilogError::UnknownNet {
                loc,
                net: net_names[net].clone(),
            }),
        }
    };

    for &i in &order {
        let inst = &instances[i];
        let mut fanins = Vec::with_capacity(inst.cell.arity());
        for net in &inst.input_nets {
            let net = net.expect("checked above");
            fanins.push(signal_of_net(net, &inst_gate, inst.loc)?);
        }
        if inst.output_net.is_none() {
            return Err(ParseVerilogError::Syntax {
                loc: inst.loc,
                message: format!("instance `{}` has no output connection", inst.name),
            });
        }
        let id = netlist.add_gate(inst.name.clone(), inst.cell, fanins)?;
        inst_gate[i] = Some(id);
    }

    for (name, net) in output_order {
        let driver = signal_of_net(net, &inst_gate, net_locs[net])?;
        netlist.add_output(name, driver);
    }
    netlist.check_invariants()?;
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellFunc, Drive};

    fn tiny_source() -> &'static str {
        "module tiny (a, b, c, y, z);\n\
         input a, b, c;\n\
         output y, z;\n\
         wire n1, n2;\n\
         NAND2X1 u1 ( .Y(n1), .A(a), .B(b) );\n\
         XOR2X2 u2 ( .Y(n2), .A(n1), .B(c) );\n\
         assign y = n2;\n\
         assign z = 1'b1;\n\
         endmodule\n"
    }

    #[test]
    fn parses_tiny_module() {
        let n = parse(tiny_source()).expect("parse");
        assert_eq!(n.name(), "tiny");
        assert_eq!(n.input_count(), 3);
        assert_eq!(n.output_count(), 2);
        assert_eq!(n.logic_gate_count(), 2);
        let u2 = n.find_gate("u2").expect("u2");
        assert_eq!(n.gate(u2).cell().func(), CellFunc::Xor2);
        assert_eq!(n.gate(u2).cell().drive(), Drive::X2);
        assert_eq!(n.output_driver(1), SignalRef::Const1);
    }

    #[test]
    fn parses_out_of_order_instances() {
        let src = "module ooo (a, y);\n\
                   input a;\n output y;\n wire n1, n2;\n\
                   INVX1 u2 ( .Y(n2), .A(n1) );\n\
                   INVX1 u1 ( .Y(n1), .A(a) );\n\
                   assign y = n2;\n\
                   endmodule";
        let n = parse(src).expect("parse out of order");
        n.check_invariants().expect("invariants hold");
        let u1 = n.find_gate("u1").expect("u1");
        let u2 = n.find_gate("u2").expect("u2");
        assert!(u1 < u2, "u1 must be renumbered before u2");
    }

    #[test]
    fn detects_combinational_loop() {
        let src = "module looped (a, y);\n\
                   input a;\n output y;\n wire n1, n2;\n\
                   AND2X1 u1 ( .Y(n1), .A(a), .B(n2) );\n\
                   INVX1 u2 ( .Y(n2), .A(n1) );\n\
                   assign y = n2;\n\
                   endmodule";
        let err = parse(src).unwrap_err();
        assert!(matches!(err, ParseVerilogError::CombinationalLoop { .. }));
    }

    #[test]
    fn detects_multiple_drivers() {
        let src = "module md (a, y);\n\
                   input a;\n output y;\n wire n1;\n\
                   INVX1 u1 ( .Y(n1), .A(a) );\n\
                   BUFX1 u2 ( .Y(n1), .A(a) );\n\
                   assign y = n1;\n\
                   endmodule";
        let err = parse(src).unwrap_err();
        assert!(matches!(err, ParseVerilogError::MultipleDrivers { .. }));
    }

    #[test]
    fn detects_unknown_cell() {
        let src = "module uc (a, y);\n input a;\n output y;\n wire n1;\n\
                   FROBX1 u1 ( .Y(n1), .A(a) );\n assign y = n1;\n endmodule";
        let err = parse(src).unwrap_err();
        assert!(matches!(err, ParseVerilogError::UnknownCell { .. }));
    }

    #[test]
    fn detects_undriven_net() {
        let src = "module un (a, y);\n input a;\n output y;\n wire n1, ghost;\n\
                   AND2X1 u1 ( .Y(n1), .A(a), .B(ghost) );\n assign y = n1;\n endmodule";
        let err = parse(src).unwrap_err();
        assert!(matches!(err, ParseVerilogError::UnknownNet { .. }));
    }

    #[test]
    fn comments_are_ignored() {
        let src = "// header comment\nmodule c (a, y); /* inline */\n\
                   input a;\n output y;\n wire n1;\n\
                   INVX1 u1 ( .Y(n1), .A(a) ); // trailing\n\
                   assign y = n1;\n endmodule";
        let n = parse(src).expect("parse with comments");
        assert_eq!(n.logic_gate_count(), 1);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let original = parse(tiny_source()).expect("parse");
        let emitted = to_verilog(&original);
        let reparsed = parse(&emitted).expect("reparse");
        assert_eq!(reparsed.input_count(), original.input_count());
        assert_eq!(reparsed.output_count(), original.output_count());
        assert_eq!(reparsed.logic_gate_count(), original.logic_gate_count());
        // Same cells in same topological positions.
        for (id, gate) in original.iter() {
            assert_eq!(reparsed.gate(id).cell(), gate.cell());
            assert_eq!(reparsed.gate(id).fanins(), gate.fanins());
        }
    }

    #[test]
    fn writer_emits_constants() {
        let mut n = parse(tiny_source()).expect("parse");
        let u1 = n.find_gate("u1").expect("u1");
        n.substitute(u1, SignalRef::Const0).expect("lac");
        let text = to_verilog(&n);
        assert!(
            text.contains("1'b0"),
            "constant operand serialized:\n{text}"
        );
        let reparsed = parse(&text).expect("reparse with constant");
        reparsed.check_invariants().expect("valid");
    }

    #[test]
    fn three_input_cells_round_trip() {
        let src = "module t3 (a, b, c, y);\n input a, b, c;\n output y;\n wire n1;\n\
                   MAJ3X2 u1 ( .Y(n1), .A(a), .B(b), .C(c) );\n\
                   assign y = n1;\n endmodule";
        let n = parse(src).expect("parse maj3");
        let again = parse(&to_verilog(&n)).expect("round trip");
        let u1 = again.find_gate("u1").expect("u1");
        assert_eq!(again.gate(u1).cell().func(), CellFunc::Maj3);
        assert_eq!(again.gate(u1).fanins().len(), 3);
    }

    #[test]
    fn truncated_input_is_eof() {
        let err = parse("module broken (a").unwrap_err();
        assert!(matches!(err, ParseVerilogError::UnexpectedEof));
    }
}

//! Liberty-style export of the synthetic cell library.
//!
//! EDA flows exchange cell libraries as `.lib` (Liberty) files. This
//! module serializes the workspace's 28nm-class library in a compact
//! Liberty-like dialect — enough for inspection, diffing, and for
//! downstream tooling that wants the exact area/capacitance/delay
//! numbers the timing engine uses — and parses that dialect back for
//! round-trip verification.

use std::fmt::Write as _;

use crate::cell::{Cell, ALL_DRIVES, ALL_FUNCS};

/// Serializes the whole library (every function at every drive) as a
/// Liberty-style document.
///
/// Each cell carries its area, per-pin input capacitance, and the two
/// linear-delay coefficients (`intrinsic`, `resistance`) the timing
/// model uses.
///
/// # Examples
///
/// ```
/// use tdals_netlist::liberty;
/// let text = liberty::to_liberty("tdals28");
/// assert!(text.contains("library (tdals28)"));
/// assert!(text.contains("cell (NAND2X1)"));
/// ```
pub fn to_liberty(library_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "library ({library_name}) {{");
    let _ = writeln!(out, "  delay_model : linear;");
    let _ = writeln!(out, "  time_unit : \"1ps\";");
    let _ = writeln!(out, "  capacitive_load_unit : \"1fF\";");
    let _ = writeln!(out, "  area_unit : \"1um2\";");
    for func in ALL_FUNCS {
        for drive in ALL_DRIVES {
            let cell = Cell::new(func, drive);
            let _ = writeln!(out, "  cell ({}) {{", cell.lib_name());
            let _ = writeln!(out, "    area : {:.4};", cell.area());
            let _ = writeln!(out, "    pin_count : {};", cell.arity());
            let _ = writeln!(out, "    input_cap : {:.4};", cell.input_cap());
            let _ = writeln!(out, "    intrinsic : {:.4};", cell.intrinsic());
            let _ = writeln!(out, "    resistance : {:.4};", cell.resistance());
            let _ = writeln!(out, "  }}");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// One parsed cell record from a Liberty-style document.
#[derive(Debug, Clone, PartialEq)]
pub struct LibertyCell {
    /// Library cell name, e.g. `NAND2X1`.
    pub name: String,
    /// Cell area in µm².
    pub area: f64,
    /// Input pin count.
    pub pin_count: usize,
    /// Input capacitance per pin in fF.
    pub input_cap: f64,
    /// Intrinsic delay in ps.
    pub intrinsic: f64,
    /// Drive resistance in ps/fF.
    pub resistance: f64,
}

/// Parses the Liberty-style dialect emitted by [`to_liberty`].
///
/// Returns `(library_name, cells)`; unknown attributes are ignored so
/// hand-edited files stay readable.
///
/// # Errors
///
/// Returns a human-readable message on malformed structure.
pub fn parse_liberty(text: &str) -> Result<(String, Vec<LibertyCell>), String> {
    let mut name = String::new();
    let mut cells = Vec::new();
    let mut current: Option<LibertyCell> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("library (") {
            name = rest
                .split(')')
                .next()
                .ok_or_else(|| format!("line {}: malformed library header", lineno + 1))?
                .to_owned();
        } else if let Some(rest) = line.strip_prefix("cell (") {
            if current.is_some() {
                return Err(format!("line {}: nested cell", lineno + 1));
            }
            let cell_name = rest
                .split(')')
                .next()
                .ok_or_else(|| format!("line {}: malformed cell header", lineno + 1))?;
            current = Some(LibertyCell {
                name: cell_name.to_owned(),
                area: 0.0,
                pin_count: 0,
                input_cap: 0.0,
                intrinsic: 0.0,
                resistance: 0.0,
            });
        } else if line == "}" {
            if let Some(cell) = current.take() {
                cells.push(cell);
            }
        } else if let Some((key, value)) = line.split_once(':') {
            let value = value.trim().trim_end_matches(';').trim().trim_matches('"');
            if let Some(cell) = current.as_mut() {
                let parse = |v: &str| -> Result<f64, String> {
                    v.parse()
                        .map_err(|_| format!("line {}: bad number `{v}`", lineno + 1))
                };
                match key.trim() {
                    "area" => cell.area = parse(value)?,
                    "pin_count" => {
                        cell.pin_count = value
                            .parse()
                            .map_err(|_| format!("line {}: bad pin count", lineno + 1))?;
                    }
                    "input_cap" => cell.input_cap = parse(value)?,
                    "intrinsic" => cell.intrinsic = parse(value)?,
                    "resistance" => cell.resistance = parse(value)?,
                    _ => {}
                }
            }
        }
    }
    if name.is_empty() {
        return Err("missing library header".to_owned());
    }
    Ok((name, cells))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellFunc, Drive};

    #[test]
    fn round_trip_covers_full_library() {
        let text = to_liberty("tdals28");
        let (name, cells) = parse_liberty(&text).expect("parse");
        assert_eq!(name, "tdals28");
        assert_eq!(cells.len(), ALL_FUNCS.len() * ALL_DRIVES.len());
        // Spot-check one record against the source of truth.
        let nand = cells
            .iter()
            .find(|c| c.name == "NAND2X2")
            .expect("NAND2X2 present");
        let cell = Cell::new(CellFunc::Nand2, Drive::X2);
        assert!((nand.area - cell.area()).abs() < 1e-4);
        assert!((nand.input_cap - cell.input_cap()).abs() < 1e-4);
        assert!((nand.resistance - cell.resistance()).abs() < 1e-4);
        assert_eq!(nand.pin_count, 2);
    }

    #[test]
    fn parsed_names_resolve_to_cells() {
        let (_, cells) = parse_liberty(&to_liberty("lib")).expect("parse");
        for record in cells {
            let cell: Cell = record.name.parse().expect("known cell name");
            assert_eq!(cell.lib_name(), record.name);
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_liberty("").is_err());
        assert!(parse_liberty("cell (X) {").is_err());
    }

    #[test]
    fn unknown_attributes_are_ignored() {
        let text = "library (l) {\n  cell (INVX1) {\n    area : 1.0;\n    vendor : acme;\n  }\n}\n";
        let (_, cells) = parse_liberty(text).expect("parse");
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].area, 1.0);
    }
}

//! Synthetic 28nm-class standard-cell library.
//!
//! The paper synthesizes its benchmarks onto the TSMC 28nm library and
//! queries that library for gate area and delay. The foundry library is
//! proprietary, so this module provides a self-contained substitute with
//! the properties ALS actually depends on:
//!
//! * a set of combinational functions ([`CellFunc`]) with fixed arity,
//! * several discrete **drive strengths** per function ([`Drive`]), and
//! * a linear delay model `delay = intrinsic + resistance × C_load`
//!   calibrated to picosecond/femtofarad scales typical of a 28nm node.
//!
//! Bigger drives are faster into a given load but cost more area and
//! present more input capacitance to their own drivers — exactly the
//! trade-off the paper's post-optimization (gate re-sizing under an area
//! constraint) exploits.
//!
//! # Examples
//!
//! ```
//! use tdals_netlist::cell::{Cell, CellFunc, Drive};
//!
//! let nand = Cell::new(CellFunc::Nand2, Drive::X1);
//! assert_eq!(nand.arity(), 2);
//! // A NAND2 is false only when both inputs are true.
//! assert!(!nand.eval_bool(&[true, true]));
//! assert!(nand.eval_bool(&[true, false]));
//! // Upsizing lowers drive resistance but raises area.
//! let big = nand.with_drive(Drive::X4);
//! assert!(big.resistance() < nand.resistance());
//! assert!(big.area() > nand.area());
//! ```

use std::fmt;
use std::str::FromStr;

/// Combinational function implemented by a standard cell.
///
/// `Input` is a pseudo-function marking primary-input gates; it has arity
/// zero and never appears in timing arcs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellFunc {
    /// Primary input placeholder (arity 0).
    Input,
    /// Inverter.
    Inv,
    /// Buffer.
    Buf,
    /// 2-input AND.
    And2,
    /// 3-input AND.
    And3,
    /// 2-input OR.
    Or2,
    /// 3-input OR.
    Or3,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// AND-OR-invert: `!((a & b) | c)`.
    Aoi21,
    /// OR-AND-invert: `!((a | b) & c)`.
    Oai21,
    /// 2:1 multiplexer: `s ? b : a` with pin order `(s, a, b)`.
    Mux2,
    /// 3-input majority (full-adder carry).
    Maj3,
}

/// All real (non-`Input`) cell functions, in a stable order.
pub const ALL_FUNCS: [CellFunc; 16] = [
    CellFunc::Inv,
    CellFunc::Buf,
    CellFunc::And2,
    CellFunc::And3,
    CellFunc::Or2,
    CellFunc::Or3,
    CellFunc::Nand2,
    CellFunc::Nand3,
    CellFunc::Nor2,
    CellFunc::Nor3,
    CellFunc::Xor2,
    CellFunc::Xnor2,
    CellFunc::Aoi21,
    CellFunc::Oai21,
    CellFunc::Mux2,
    CellFunc::Maj3,
];

impl CellFunc {
    /// Number of input pins of this function.
    ///
    /// # Examples
    ///
    /// ```
    /// use tdals_netlist::cell::CellFunc;
    /// assert_eq!(CellFunc::Input.arity(), 0);
    /// assert_eq!(CellFunc::Inv.arity(), 1);
    /// assert_eq!(CellFunc::Maj3.arity(), 3);
    /// ```
    pub const fn arity(self) -> usize {
        match self {
            CellFunc::Input => 0,
            CellFunc::Inv | CellFunc::Buf => 1,
            CellFunc::And2
            | CellFunc::Or2
            | CellFunc::Nand2
            | CellFunc::Nor2
            | CellFunc::Xor2
            | CellFunc::Xnor2 => 2,
            CellFunc::And3
            | CellFunc::Or3
            | CellFunc::Nand3
            | CellFunc::Nor3
            | CellFunc::Aoi21
            | CellFunc::Oai21
            | CellFunc::Mux2
            | CellFunc::Maj3 => 3,
        }
    }

    /// Library name stem, e.g. `NAND2` for [`CellFunc::Nand2`].
    pub const fn stem(self) -> &'static str {
        match self {
            CellFunc::Input => "INPUT",
            CellFunc::Inv => "INV",
            CellFunc::Buf => "BUF",
            CellFunc::And2 => "AND2",
            CellFunc::And3 => "AND3",
            CellFunc::Or2 => "OR2",
            CellFunc::Or3 => "OR3",
            CellFunc::Nand2 => "NAND2",
            CellFunc::Nand3 => "NAND3",
            CellFunc::Nor2 => "NOR2",
            CellFunc::Nor3 => "NOR3",
            CellFunc::Xor2 => "XOR2",
            CellFunc::Xnor2 => "XNOR2",
            CellFunc::Aoi21 => "AOI21",
            CellFunc::Oai21 => "OAI21",
            CellFunc::Mux2 => "MUX2",
            CellFunc::Maj3 => "MAJ3",
        }
    }

    /// Evaluate the function on `64 × W` input vectors at once: lane `l`
    /// of block `i` carries samples `64·l .. 64·l+63` of input pin `i`.
    ///
    /// This is the single source of truth for every cell's bitwise
    /// semantics — [`CellFunc::eval_word`] is the `W = 1` instance — and
    /// the per-lane loops are written so LLVM can fold a whole block
    /// into vector registers (SSE2/AVX2/AVX-512/NEON, whatever the
    /// target provides; no intrinsics, no `unsafe`).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`CellFunc::arity`].
    #[inline]
    pub fn eval_block<const W: usize>(self, inputs: &[[u64; W]]) -> [u64; W] {
        assert_eq!(
            inputs.len(),
            self.arity(),
            "cell {self:?} expects {} inputs, got {}",
            self.arity(),
            inputs.len()
        );
        use std::array::from_fn;
        match self {
            CellFunc::Input => [0; W],
            CellFunc::Inv => from_fn(|l| !inputs[0][l]),
            CellFunc::Buf => inputs[0],
            CellFunc::And2 => from_fn(|l| inputs[0][l] & inputs[1][l]),
            CellFunc::And3 => from_fn(|l| inputs[0][l] & inputs[1][l] & inputs[2][l]),
            CellFunc::Or2 => from_fn(|l| inputs[0][l] | inputs[1][l]),
            CellFunc::Or3 => from_fn(|l| inputs[0][l] | inputs[1][l] | inputs[2][l]),
            CellFunc::Nand2 => from_fn(|l| !(inputs[0][l] & inputs[1][l])),
            CellFunc::Nand3 => from_fn(|l| !(inputs[0][l] & inputs[1][l] & inputs[2][l])),
            CellFunc::Nor2 => from_fn(|l| !(inputs[0][l] | inputs[1][l])),
            CellFunc::Nor3 => from_fn(|l| !(inputs[0][l] | inputs[1][l] | inputs[2][l])),
            CellFunc::Xor2 => from_fn(|l| inputs[0][l] ^ inputs[1][l]),
            CellFunc::Xnor2 => from_fn(|l| !(inputs[0][l] ^ inputs[1][l])),
            CellFunc::Aoi21 => from_fn(|l| !((inputs[0][l] & inputs[1][l]) | inputs[2][l])),
            CellFunc::Oai21 => from_fn(|l| !((inputs[0][l] | inputs[1][l]) & inputs[2][l])),
            CellFunc::Mux2 => {
                from_fn(|l| (inputs[0][l] & inputs[2][l]) | (!inputs[0][l] & inputs[1][l]))
            }
            CellFunc::Maj3 => from_fn(|l| {
                (inputs[0][l] & inputs[1][l])
                    | (inputs[0][l] & inputs[2][l])
                    | (inputs[1][l] & inputs[2][l])
            }),
        }
    }

    /// Evaluate the function on 64 input vectors at once (bit-parallel).
    ///
    /// Word `i` of `inputs` carries 64 samples of input pin `i`. This is
    /// [`CellFunc::eval_block`] at `W = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`CellFunc::arity`].
    #[inline]
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        assert_eq!(
            inputs.len(),
            self.arity(),
            "cell {self:?} expects {} inputs, got {}",
            self.arity(),
            inputs.len()
        );
        let mut blocks = [[0u64; 1]; 3];
        for (block, &word) in blocks.iter_mut().zip(inputs) {
            block[0] = word;
        }
        self.eval_block::<1>(&blocks[..inputs.len()])[0]
    }

    /// Evaluate the function on a single boolean input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`CellFunc::arity`].
    pub fn eval_bool(self, inputs: &[bool]) -> bool {
        let words: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
        self.eval_word(&words) & 1 == 1
    }

    /// Base area in µm² of the X1 variant of this function.
    ///
    /// Values are representative of a 28nm high-density library.
    pub const fn base_area(self) -> f64 {
        match self {
            CellFunc::Input => 0.0,
            CellFunc::Inv => 0.49,
            CellFunc::Buf => 0.65,
            CellFunc::And2 => 0.98,
            CellFunc::And3 => 1.31,
            CellFunc::Or2 => 0.98,
            CellFunc::Or3 => 1.31,
            CellFunc::Nand2 => 0.65,
            CellFunc::Nand3 => 0.98,
            CellFunc::Nor2 => 0.65,
            CellFunc::Nor3 => 0.98,
            CellFunc::Xor2 => 1.47,
            CellFunc::Xnor2 => 1.47,
            CellFunc::Aoi21 => 0.98,
            CellFunc::Oai21 => 0.98,
            CellFunc::Mux2 => 1.47,
            CellFunc::Maj3 => 1.63,
        }
    }

    /// Base input-pin capacitance in fF of the X1 variant.
    pub const fn base_cin(self) -> f64 {
        match self {
            CellFunc::Input => 0.0,
            CellFunc::Inv => 0.9,
            CellFunc::Buf => 0.9,
            CellFunc::And2 | CellFunc::Or2 => 1.0,
            CellFunc::And3 | CellFunc::Or3 => 1.1,
            CellFunc::Nand2 | CellFunc::Nor2 => 1.1,
            CellFunc::Nand3 | CellFunc::Nor3 => 1.2,
            CellFunc::Xor2 | CellFunc::Xnor2 => 1.6,
            CellFunc::Aoi21 | CellFunc::Oai21 => 1.2,
            CellFunc::Mux2 => 1.5,
            CellFunc::Maj3 => 1.6,
        }
    }

    /// Intrinsic (zero-load) delay in ps of this function.
    ///
    /// Shared by all drive strengths; sizing affects only the
    /// load-dependent term.
    pub const fn intrinsic_ps(self) -> f64 {
        match self {
            CellFunc::Input => 0.0,
            CellFunc::Inv => 6.0,
            CellFunc::Buf => 11.0,
            CellFunc::And2 => 16.0,
            CellFunc::And3 => 19.0,
            CellFunc::Or2 => 16.0,
            CellFunc::Or3 => 19.0,
            CellFunc::Nand2 => 10.0,
            CellFunc::Nand3 => 13.0,
            CellFunc::Nor2 => 11.0,
            CellFunc::Nor3 => 15.0,
            CellFunc::Xor2 => 24.0,
            CellFunc::Xnor2 => 24.0,
            CellFunc::Aoi21 => 14.0,
            CellFunc::Oai21 => 14.0,
            CellFunc::Mux2 => 20.0,
            CellFunc::Maj3 => 22.0,
        }
    }

    /// Base drive resistance in ps/fF of the X1 variant.
    pub const fn base_resistance(self) -> f64 {
        match self {
            CellFunc::Input => 0.0,
            CellFunc::Inv => 2.2,
            CellFunc::Buf => 2.0,
            CellFunc::And2 | CellFunc::Or2 => 2.4,
            CellFunc::And3 | CellFunc::Or3 => 2.6,
            CellFunc::Nand2 | CellFunc::Nor2 => 2.6,
            CellFunc::Nand3 | CellFunc::Nor3 => 2.9,
            CellFunc::Xor2 | CellFunc::Xnor2 => 3.0,
            CellFunc::Aoi21 | CellFunc::Oai21 => 2.8,
            CellFunc::Mux2 => 2.8,
            CellFunc::Maj3 => 3.0,
        }
    }

    /// `true` for the `Input` pseudo-function.
    pub const fn is_input(self) -> bool {
        matches!(self, CellFunc::Input)
    }
}

impl fmt::Display for CellFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.stem())
    }
}

/// Discrete drive strength of a standard cell.
///
/// The multiplier scales transistor widths: input capacitance grows
/// linearly, drive resistance shrinks linearly, and area grows
/// sub-linearly (shared diffusion), matching real library trends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Drive {
    /// Half-strength (0.5×).
    X0,
    /// Unit strength (1×).
    X1,
    /// Double strength (2×).
    X2,
    /// Quadruple strength (4×).
    X4,
    /// Octuple strength (8×).
    X8,
}

/// All drive strengths from weakest to strongest.
pub const ALL_DRIVES: [Drive; 5] = [Drive::X0, Drive::X1, Drive::X2, Drive::X4, Drive::X8];

impl Drive {
    /// Transistor-width multiplier relative to X1.
    pub const fn factor(self) -> f64 {
        match self {
            Drive::X0 => 0.5,
            Drive::X1 => 1.0,
            Drive::X2 => 2.0,
            Drive::X4 => 4.0,
            Drive::X8 => 8.0,
        }
    }

    /// Next stronger drive, or `None` if already at [`Drive::X8`].
    ///
    /// # Examples
    ///
    /// ```
    /// use tdals_netlist::cell::Drive;
    /// assert_eq!(Drive::X1.upsize(), Some(Drive::X2));
    /// assert_eq!(Drive::X8.upsize(), None);
    /// ```
    pub const fn upsize(self) -> Option<Drive> {
        match self {
            Drive::X0 => Some(Drive::X1),
            Drive::X1 => Some(Drive::X2),
            Drive::X2 => Some(Drive::X4),
            Drive::X4 => Some(Drive::X8),
            Drive::X8 => None,
        }
    }

    /// Next weaker drive, or `None` if already at [`Drive::X0`].
    pub const fn downsize(self) -> Option<Drive> {
        match self {
            Drive::X0 => None,
            Drive::X1 => Some(Drive::X0),
            Drive::X2 => Some(Drive::X1),
            Drive::X4 => Some(Drive::X2),
            Drive::X8 => Some(Drive::X4),
        }
    }

    /// Library-name suffix, e.g. `X2`.
    pub const fn suffix(self) -> &'static str {
        match self {
            Drive::X0 => "X0",
            Drive::X1 => "X1",
            Drive::X2 => "X2",
            Drive::X4 => "X4",
            Drive::X8 => "X8",
        }
    }
}

impl fmt::Display for Drive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// A concrete library cell: a function at a drive strength.
///
/// # Examples
///
/// ```
/// use tdals_netlist::cell::{Cell, CellFunc, Drive};
///
/// let c: Cell = "XOR2X2".parse()?;
/// assert_eq!(c.func(), CellFunc::Xor2);
/// assert_eq!(c.drive(), Drive::X2);
/// assert_eq!(c.to_string(), "XOR2X2");
/// # Ok::<(), tdals_netlist::cell::ParseCellError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cell {
    func: CellFunc,
    drive: Drive,
}

impl Cell {
    /// Creates a cell from a function and drive strength.
    pub const fn new(func: CellFunc, drive: Drive) -> Cell {
        Cell { func, drive }
    }

    /// The primary-input pseudo-cell.
    pub const fn input() -> Cell {
        Cell::new(CellFunc::Input, Drive::X1)
    }

    /// Function implemented by this cell.
    pub const fn func(self) -> CellFunc {
        self.func
    }

    /// Drive strength of this cell.
    pub const fn drive(self) -> Drive {
        self.drive
    }

    /// Same function at a different drive strength.
    pub const fn with_drive(self, drive: Drive) -> Cell {
        Cell::new(self.func, drive)
    }

    /// Number of input pins.
    pub const fn arity(self) -> usize {
        self.func.arity()
    }

    /// `true` for the primary-input pseudo-cell.
    pub const fn is_input(self) -> bool {
        self.func.is_input()
    }

    /// Cell area in µm².
    ///
    /// Area grows sub-linearly in the drive factor (`0.55 + 0.45·f`),
    /// reflecting diffusion sharing in real layouts.
    pub fn area(self) -> f64 {
        if self.is_input() {
            return 0.0;
        }
        self.func.base_area() * (0.55 + 0.45 * self.drive.factor())
    }

    /// Capacitance in fF presented by each input pin.
    pub fn input_cap(self) -> f64 {
        self.func.base_cin() * self.drive.factor()
    }

    /// Intrinsic (zero-load) delay in ps.
    pub fn intrinsic(self) -> f64 {
        self.func.intrinsic_ps()
    }

    /// Output drive resistance in ps/fF.
    pub fn resistance(self) -> f64 {
        if self.is_input() {
            return 0.0;
        }
        self.func.base_resistance() / self.drive.factor()
    }

    /// Propagation delay in ps into an external load of `load_ff` fF.
    ///
    /// The model is the standard linear approximation
    /// `intrinsic + resistance × load`.
    ///
    /// # Examples
    ///
    /// ```
    /// use tdals_netlist::cell::{Cell, CellFunc, Drive};
    /// let g = Cell::new(CellFunc::Nand2, Drive::X1);
    /// assert!(g.delay(4.0) > g.delay(1.0));
    /// ```
    pub fn delay(self, load_ff: f64) -> f64 {
        self.intrinsic() + self.resistance() * load_ff
    }

    /// Evaluate 64 samples at once; see [`CellFunc::eval_word`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the cell arity.
    #[inline]
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        self.func.eval_word(inputs)
    }

    /// Evaluate `64 × W` samples at once; see [`CellFunc::eval_block`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the cell arity.
    #[inline]
    pub fn eval_block<const W: usize>(self, inputs: &[[u64; W]]) -> [u64; W] {
        self.func.eval_block(inputs)
    }

    /// Evaluate a single boolean assignment; see [`CellFunc::eval_bool`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the cell arity.
    pub fn eval_bool(self, inputs: &[bool]) -> bool {
        self.func.eval_bool(inputs)
    }

    /// Library name, e.g. `NAND2X1`.
    pub fn lib_name(self) -> String {
        format!("{}{}", self.func.stem(), self.drive.suffix())
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.func.stem(), self.drive.suffix())
    }
}

/// Error returned when a cell library name fails to parse.
///
/// # Examples
///
/// ```
/// use tdals_netlist::cell::Cell;
/// assert!("FROB3X1".parse::<Cell>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCellError {
    name: String,
}

impl ParseCellError {
    /// The string that failed to parse.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for ParseCellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown cell name `{}`", self.name)
    }
}

impl std::error::Error for ParseCellError {}

impl FromStr for Cell {
    type Err = ParseCellError;

    fn from_str(s: &str) -> Result<Cell, ParseCellError> {
        let err = || ParseCellError { name: s.to_owned() };
        for func in ALL_FUNCS {
            let stem = func.stem();
            if let Some(rest) = s.strip_prefix(stem) {
                for drive in ALL_DRIVES {
                    if rest == drive.suffix() {
                        return Ok(Cell::new(func, drive));
                    }
                }
            }
        }
        Err(err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_eval_expectations() {
        for func in ALL_FUNCS {
            let n = func.arity();
            let inputs = vec![0u64; n];
            // Must not panic with the right arity.
            let _ = func.eval_word(&inputs);
        }
    }

    #[test]
    fn truth_tables_two_input() {
        let cases: [(CellFunc, [bool; 4]); 6] = [
            (CellFunc::And2, [false, false, false, true]),
            (CellFunc::Or2, [false, true, true, true]),
            (CellFunc::Nand2, [true, true, true, false]),
            (CellFunc::Nor2, [true, false, false, false]),
            (CellFunc::Xor2, [false, true, true, false]),
            (CellFunc::Xnor2, [true, false, false, true]),
        ];
        for (func, expect) in cases {
            for (idx, want) in expect.iter().enumerate() {
                let a = idx & 1 == 1;
                let b = idx & 2 == 2;
                assert_eq!(func.eval_bool(&[a, b]), *want, "{func} on ({a},{b})");
            }
        }
    }

    #[test]
    fn truth_tables_three_input() {
        for idx in 0..8usize {
            let a = idx & 1 == 1;
            let b = idx & 2 == 2;
            let c = idx & 4 == 4;
            assert_eq!(CellFunc::And3.eval_bool(&[a, b, c]), a && b && c);
            assert_eq!(CellFunc::Or3.eval_bool(&[a, b, c]), a || b || c);
            assert_eq!(CellFunc::Nand3.eval_bool(&[a, b, c]), !(a && b && c));
            assert_eq!(CellFunc::Nor3.eval_bool(&[a, b, c]), !(a || b || c));
            assert_eq!(CellFunc::Aoi21.eval_bool(&[a, b, c]), !((a && b) || c));
            assert_eq!(CellFunc::Oai21.eval_bool(&[a, b, c]), !((a || b) && c));
            assert_eq!(CellFunc::Mux2.eval_bool(&[a, b, c]), if a { c } else { b });
            let maj = [a, b, c].iter().filter(|&&x| x).count() >= 2;
            assert_eq!(CellFunc::Maj3.eval_bool(&[a, b, c]), maj);
        }
    }

    #[test]
    fn inv_buf() {
        assert!(CellFunc::Inv.eval_bool(&[false]));
        assert!(!CellFunc::Inv.eval_bool(&[true]));
        assert!(CellFunc::Buf.eval_bool(&[true]));
        assert!(!CellFunc::Buf.eval_bool(&[false]));
    }

    #[test]
    fn word_eval_matches_bool_eval() {
        for func in ALL_FUNCS {
            let n = func.arity();
            for assignment in 0..(1usize << n) {
                let bools: Vec<bool> = (0..n).map(|i| assignment & (1 << i) != 0).collect();
                let words: Vec<u64> = bools
                    .iter()
                    .map(|&b| if b { u64::MAX } else { 0 })
                    .collect();
                let word_out = func.eval_word(&words);
                let expect = func.eval_bool(&bools);
                assert_eq!(word_out, if expect { u64::MAX } else { 0 }, "{func}");
            }
        }
    }

    #[test]
    fn block_eval_matches_word_eval_lane_by_lane() {
        // Each lane of a block must compute exactly what eval_word
        // computes on that lane's words, for every function.
        fn lane_words(n: usize, salt: u64) -> Vec<u64> {
            (0..n)
                .map(|p| {
                    let x = salt
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(p as u64 + 1);
                    x ^ (x >> 31) ^ (x << 7)
                })
                .collect()
        }
        for func in ALL_FUNCS {
            let n = func.arity();
            let mut blocks = [[0u64; 4]; 3];
            for l in 0..4u64 {
                let words = lane_words(n, l);
                for p in 0..n {
                    blocks[p][l as usize] = words[p];
                }
            }
            let out = func.eval_block::<4>(&blocks[..n]);
            for (l, &got) in out.iter().enumerate() {
                let words = lane_words(n, l as u64);
                assert_eq!(got, func.eval_word(&words), "{func} lane {l}");
            }
        }
    }

    #[test]
    fn drive_ladder_round_trips() {
        for d in ALL_DRIVES {
            if let Some(up) = d.upsize() {
                assert_eq!(up.downsize(), Some(d));
            }
            if let Some(down) = d.downsize() {
                assert_eq!(down.upsize(), Some(d));
            }
        }
    }

    #[test]
    fn upsizing_monotone_in_area_cap_resistance() {
        for func in ALL_FUNCS {
            let mut d = Drive::X0;
            while let Some(up) = d.upsize() {
                let small = Cell::new(func, d);
                let big = Cell::new(func, up);
                assert!(big.area() > small.area(), "{func} area");
                assert!(big.input_cap() > small.input_cap(), "{func} cap");
                assert!(big.resistance() < small.resistance(), "{func} res");
                d = up;
            }
        }
    }

    #[test]
    fn delay_decreases_with_upsizing_under_load() {
        let load = 8.0;
        let small = Cell::new(CellFunc::Xor2, Drive::X1);
        let big = Cell::new(CellFunc::Xor2, Drive::X4);
        assert!(big.delay(load) < small.delay(load));
    }

    #[test]
    fn name_round_trip_all_cells() {
        for func in ALL_FUNCS {
            for drive in ALL_DRIVES {
                let cell = Cell::new(func, drive);
                let name = cell.lib_name();
                let parsed: Cell = name.parse().expect("round trip");
                assert_eq!(parsed, cell);
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "NAND2", "NAND2X3", "X1", "INVX12", "nandx1"] {
            assert!(bad.parse::<Cell>().is_err(), "{bad}");
        }
    }

    #[test]
    fn input_cell_has_no_timing_footprint() {
        let c = Cell::input();
        assert_eq!(c.area(), 0.0);
        assert_eq!(c.resistance(), 0.0);
        assert_eq!(c.arity(), 0);
        assert!(c.is_input());
    }
}

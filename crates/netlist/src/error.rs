//! Error types for netlist construction, mutation, and parsing.

use std::fmt;

use crate::cell::Cell;
use crate::netlist::GateId;

/// Error produced by netlist construction or mutation.
///
/// # Examples
///
/// ```
/// use tdals_netlist::{Netlist, NetlistError};
/// use tdals_netlist::cell::{Cell, CellFunc, Drive};
///
/// let mut n = Netlist::new("t");
/// let a = n.add_input("a");
/// let err = n
///     .add_gate("u", Cell::new(CellFunc::And2, Drive::X1), vec![a.into()])
///     .unwrap_err();
/// assert!(matches!(err, NetlistError::ArityMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// A gate was given a number of fan-ins different from its cell arity.
    ArityMismatch {
        /// Gate being constructed or edited.
        gate: GateId,
        /// Cell whose arity was violated.
        cell: Cell,
        /// Pins required by the cell.
        expected: usize,
        /// Fan-ins supplied.
        actual: usize,
    },
    /// A fan-in reference points at a gate with an id not strictly
    /// smaller than the gate it feeds, which would allow combinational
    /// loops.
    FaninOrder {
        /// Gate whose fan-in row is invalid.
        gate: GateId,
        /// Offending fan-in gate.
        fanin: GateId,
    },
    /// A reference names a gate id outside the netlist.
    UnknownGate {
        /// The out-of-range id.
        gate: GateId,
    },
    /// A primary input is not an `Input` cell, or an `Input` cell is not
    /// registered as a primary input.
    MalformedInput {
        /// The inconsistent gate.
        gate: GateId,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ArityMismatch {
                gate,
                cell,
                expected,
                actual,
            } => write!(
                f,
                "gate {gate} instantiates {cell} with {actual} fan-ins, expected {expected}"
            ),
            NetlistError::FaninOrder { gate, fanin } => write!(
                f,
                "gate {gate} reads {fanin}, violating the topological id invariant"
            ),
            NetlistError::UnknownGate { gate } => {
                write!(f, "reference to unknown gate {gate}")
            }
            NetlistError::MalformedInput { gate } => {
                write!(f, "gate {gate} is inconsistently marked as a primary input")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// A 1-based line/column position in Verilog source text.
///
/// Every parse diagnostic carries one, so tooling (and `tdals lint`)
/// can point at the offending token instead of just naming it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Loc {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in characters).
    pub column: usize,
}

impl Loc {
    /// A new position.
    pub fn new(line: usize, column: usize) -> Loc {
        Loc { line, column }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}", self.line, self.column)
    }
}

/// Error produced while parsing structural Verilog.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseVerilogError {
    /// Input ended before the module was complete.
    UnexpectedEof,
    /// A token violated the expected grammar.
    Syntax {
        /// Position of the offending token.
        loc: Loc,
        /// Explanation of the problem.
        message: String,
    },
    /// An instance or output referenced a net nothing drives.
    UnknownNet {
        /// Position of the reference (or of the net's declaration when
        /// the undriven use is discovered during elaboration).
        loc: Loc,
        /// Name of the undeclared net.
        net: String,
    },
    /// An instance used a cell name absent from the library.
    UnknownCell {
        /// Position of the cell name.
        loc: Loc,
        /// The unknown cell name.
        cell: String,
    },
    /// The instance graph contains a combinational cycle.
    CombinationalLoop {
        /// Name of one instance (or `assign` net) on the cycle.
        instance: String,
        /// Position of that instance or net.
        loc: Loc,
    },
    /// A net is driven by more than one instance output.
    MultipleDrivers {
        /// The multiply-driven net.
        net: String,
        /// Position of the second driver.
        loc: Loc,
    },
    /// The netlist violated a structural invariant after construction.
    Netlist(NetlistError),
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseVerilogError::UnexpectedEof => f.write_str("unexpected end of file"),
            ParseVerilogError::Syntax { loc, message } => {
                write!(f, "{loc}: syntax error: {message}")
            }
            ParseVerilogError::UnknownNet { loc, net } => {
                write!(f, "{loc}: unknown net `{net}`")
            }
            ParseVerilogError::UnknownCell { loc, cell } => {
                write!(f, "{loc}: unknown cell `{cell}`")
            }
            ParseVerilogError::CombinationalLoop { instance, loc } => {
                write!(f, "{loc}: combinational loop through `{instance}`")
            }
            ParseVerilogError::MultipleDrivers { net, loc } => {
                write!(f, "{loc}: net `{net}` has multiple drivers")
            }
            ParseVerilogError::Netlist(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl std::error::Error for ParseVerilogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseVerilogError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for ParseVerilogError {
    fn from(e: NetlistError) -> ParseVerilogError {
        ParseVerilogError::Netlist(e)
    }
}

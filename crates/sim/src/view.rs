//! The read-side abstraction over simulated gate values.
//!
//! Both the full-resimulation result ([`SimResult`](crate::SimResult))
//! and the incremental evaluators ([`DeltaSim`](crate::DeltaSim),
//! [`DeltaView`](crate::DeltaView)) answer the same queries — word `w`
//! of a signal, a primary output, a similarity — so the error metrics
//! and the optimizers' similarity scoring are written once against the
//! [`SimWords`] trait and cannot diverge between the two paths.

use tdals_netlist::SignalRef;

/// Raw (tail-unmasked) 64-sample word of `signal` over gate-major
/// storage `values[g * word_count + w]`.
///
/// This is **the** shared expansion rule for constants: `Const0` is
/// all-zeros, `Const1` is all-ones, gates read their stored word. Every
/// evaluator in the crate — full simulation, incremental re-simulation,
/// and the query API — goes through this helper (or its masked twin
/// [`masked_signal_word`]) so the `Const0`/`Const1`/tail handling can
/// never drift apart.
#[inline]
pub(crate) fn raw_signal_word(
    values: &[u64],
    word_count: usize,
    signal: SignalRef,
    w: usize,
) -> u64 {
    match signal {
        SignalRef::Const0 => 0,
        SignalRef::Const1 => u64::MAX,
        SignalRef::Gate(id) => values[id.index() * word_count + w],
    }
}

/// Raw (tail-unmasked) block of `W` consecutive words of `signal`
/// starting at word `w0` — the blockwise twin of [`raw_signal_word`],
/// with the same `Const0`/`Const1`/gate expansion rule. The caller must
/// ensure `w0 + W <= word_count`.
#[inline]
pub(crate) fn raw_signal_block<const W: usize>(
    values: &[u64],
    word_count: usize,
    signal: SignalRef,
    w0: usize,
) -> [u64; W] {
    match signal {
        SignalRef::Const0 => [0; W],
        SignalRef::Const1 => [u64::MAX; W],
        SignalRef::Gate(id) => {
            let base = id.index() * word_count + w0;
            let mut block = [0u64; W];
            block.copy_from_slice(&values[base..base + W]);
            block
        }
    }
}

/// **The** tail rule, shared by every read path: a raw word is masked
/// iff it is the final word of its signal. Hoisted here so the full
/// engine, the incremental engine, and the query API cannot diverge on
/// which word gets clipped.
#[inline]
pub(crate) fn mask_tail(raw: u64, w: usize, word_count: usize, tail_mask: u64) -> u64 {
    if w + 1 == word_count {
        raw & tail_mask
    } else {
        raw
    }
}

/// [`raw_signal_word`] with the invalid tail bits of the final word
/// cleared, so popcount-based statistics stay exact.
#[inline]
pub(crate) fn masked_signal_word(
    values: &[u64],
    word_count: usize,
    tail_mask: u64,
    signal: SignalRef,
    w: usize,
) -> u64 {
    mask_tail(
        raw_signal_word(values, word_count, signal, w),
        w,
        word_count,
        tail_mask,
    )
}

/// The write-side twin of [`mask_tail`]: zeroes the invalid tail bits
/// of the **final word of every row** in `word_count`-word row-major
/// storage (gate-major simulation values, input-major stimulus words).
/// Both the full engine and pattern generation defer to this one
/// helper, so a future width bug cannot clip different bits on the two
/// sides.
pub(crate) fn zero_tail_words(values: &mut [u64], word_count: usize, tail_mask: u64) {
    if tail_mask == u64::MAX || word_count == 0 {
        return;
    }
    let mut i = word_count - 1;
    while i < values.len() {
        values[i] &= tail_mask;
        i += word_count;
    }
}

/// Read access to one batch of simulated gate values.
///
/// Implemented by [`SimResult`](crate::SimResult) (full re-simulation),
/// [`DeltaSim`](crate::DeltaSim) (the incremental engine's current
/// state) and [`DeltaView`](crate::DeltaView) (a scored-but-uncommitted
/// mutation). Error metrics and similarity scoring accept any
/// implementor, which is what lets candidate scoring run on the
/// incremental path without materializing a full `SimResult`.
pub trait SimWords {
    /// Number of vectors simulated.
    fn vector_count(&self) -> usize;

    /// Number of 64-bit words per signal.
    fn word_count(&self) -> usize;

    /// Number of primary outputs.
    fn output_count(&self) -> usize;

    /// Mask of valid bits in the final word.
    fn tail_mask(&self) -> u64;

    /// Word `w` of an arbitrary signal, tail-masked.
    ///
    /// The scalar shim over [`SimWords::signal_block`]-style access:
    /// metrics that walk whole blocks use the block accessors below,
    /// but per-word reads stay available for tests and tooling.
    fn signal_word(&self, signal: SignalRef, w: usize) -> u64;

    /// Word `w` of primary output `po`, tail-masked.
    fn po_word(&self, po: usize, w: usize) -> u64;

    /// Fills `out` with words `w0 .. w0 + out.len()` of `signal`,
    /// tail-masked — the block-indexed accessor the widened kernels and
    /// metrics read through. `w0 + out.len()` must not exceed
    /// [`SimWords::word_count`].
    ///
    /// The default forwards to [`SimWords::signal_word`] per word;
    /// implementors with contiguous storage override it with a slice
    /// copy.
    fn signal_block(&self, signal: SignalRef, w0: usize, out: &mut [u64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.signal_word(signal, w0 + i);
        }
    }

    /// Fills `out` with words `w0 .. w0 + out.len()` of primary output
    /// `po`, tail-masked; the block twin of [`SimWords::po_word`].
    fn po_block(&self, po: usize, w0: usize, out: &mut [u64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.po_word(po, w0 + i);
        }
    }

    /// Counts vectors on which the two signals differ.
    fn diff_count(&self, a: SignalRef, b: SignalRef) -> usize {
        let mut diff = 0usize;
        for w in 0..self.word_count() {
            diff += (self.signal_word(a, w) ^ self.signal_word(b, w)).count_ones() as usize;
        }
        diff
    }

    /// Fraction of vectors on which the two signals agree — the paper's
    /// *similarity* measure driving switch-gate selection.
    fn similarity(&self, a: SignalRef, b: SignalRef) -> f64 {
        1.0 - self.diff_count(a, b) as f64 / self.vector_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::GateId;

    #[test]
    fn raw_word_expands_constants() {
        let values = vec![0xAB, 0xCD];
        assert_eq!(raw_signal_word(&values, 1, SignalRef::Const0, 0), 0);
        assert_eq!(raw_signal_word(&values, 1, SignalRef::Const1, 0), u64::MAX);
        assert_eq!(
            raw_signal_word(&values, 1, SignalRef::Gate(GateId::new(1)), 0),
            0xCD
        );
    }

    #[test]
    fn masked_word_clips_only_the_tail() {
        let values = vec![u64::MAX, u64::MAX];
        let m = masked_signal_word(&values, 2, 0xF, SignalRef::Const1, 1);
        assert_eq!(m, 0xF);
        let m = masked_signal_word(&values, 2, 0xF, SignalRef::Const1, 0);
        assert_eq!(m, u64::MAX);
    }

    #[test]
    fn raw_block_expands_constants_and_gates() {
        let values = vec![1, 2, 3, 4, 5, 6];
        assert_eq!(
            raw_signal_block::<2>(&values, 3, SignalRef::Const0, 1),
            [0, 0]
        );
        assert_eq!(
            raw_signal_block::<2>(&values, 3, SignalRef::Const1, 1),
            [u64::MAX; 2]
        );
        assert_eq!(
            raw_signal_block::<2>(&values, 3, SignalRef::Gate(GateId::new(1)), 1),
            [5, 6]
        );
    }

    /// The corner the duplicated masking logic used to guard twice:
    /// `Const1` reads are all-ones *except* the tail bits of the final
    /// word, and only there.
    #[test]
    fn mask_tail_clips_const1_final_word_only() {
        let tail = 0x3F; // 70 vectors -> 6 valid bits in word 1 of 2
        assert_eq!(mask_tail(u64::MAX, 1, 2, tail), 0x3F);
        assert_eq!(mask_tail(u64::MAX, 0, 2, tail), u64::MAX);
        // Word-aligned batches mask nothing.
        assert_eq!(mask_tail(u64::MAX, 1, 2, u64::MAX), u64::MAX);
    }

    #[test]
    fn zero_tail_words_hits_every_rows_final_word() {
        // Two 3-word rows, all ones.
        let mut values = vec![u64::MAX; 6];
        zero_tail_words(&mut values, 3, 0xF);
        assert_eq!(
            values,
            vec![u64::MAX, u64::MAX, 0xF, u64::MAX, u64::MAX, 0xF]
        );
        // Full mask is a no-op.
        let mut values = vec![u64::MAX; 6];
        zero_tail_words(&mut values, 3, u64::MAX);
        assert_eq!(values, vec![u64::MAX; 6]);
    }
}

//! The read-side abstraction over simulated gate values.
//!
//! Both the full-resimulation result ([`SimResult`](crate::SimResult))
//! and the incremental evaluators ([`DeltaSim`](crate::DeltaSim),
//! [`DeltaView`](crate::DeltaView)) answer the same queries — word `w`
//! of a signal, a primary output, a similarity — so the error metrics
//! and the optimizers' similarity scoring are written once against the
//! [`SimWords`] trait and cannot diverge between the two paths.

use tdals_netlist::SignalRef;

/// Raw (tail-unmasked) 64-sample word of `signal` over gate-major
/// storage `values[g * word_count + w]`.
///
/// This is **the** shared expansion rule for constants: `Const0` is
/// all-zeros, `Const1` is all-ones, gates read their stored word. Every
/// evaluator in the crate — full simulation, incremental re-simulation,
/// and the query API — goes through this helper (or its masked twin
/// [`masked_signal_word`]) so the `Const0`/`Const1`/tail handling can
/// never drift apart.
#[inline]
pub(crate) fn raw_signal_word(
    values: &[u64],
    word_count: usize,
    signal: SignalRef,
    w: usize,
) -> u64 {
    match signal {
        SignalRef::Const0 => 0,
        SignalRef::Const1 => u64::MAX,
        SignalRef::Gate(id) => values[id.index() * word_count + w],
    }
}

/// [`raw_signal_word`] with the invalid tail bits of the final word
/// cleared, so popcount-based statistics stay exact.
#[inline]
pub(crate) fn masked_signal_word(
    values: &[u64],
    word_count: usize,
    tail_mask: u64,
    signal: SignalRef,
    w: usize,
) -> u64 {
    let raw = raw_signal_word(values, word_count, signal, w);
    if w + 1 == word_count {
        raw & tail_mask
    } else {
        raw
    }
}

/// Read access to one batch of simulated gate values.
///
/// Implemented by [`SimResult`](crate::SimResult) (full re-simulation),
/// [`DeltaSim`](crate::DeltaSim) (the incremental engine's current
/// state) and [`DeltaView`](crate::DeltaView) (a scored-but-uncommitted
/// mutation). Error metrics and similarity scoring accept any
/// implementor, which is what lets candidate scoring run on the
/// incremental path without materializing a full `SimResult`.
pub trait SimWords {
    /// Number of vectors simulated.
    fn vector_count(&self) -> usize;

    /// Number of 64-bit words per signal.
    fn word_count(&self) -> usize;

    /// Number of primary outputs.
    fn output_count(&self) -> usize;

    /// Mask of valid bits in the final word.
    fn tail_mask(&self) -> u64;

    /// Word `w` of an arbitrary signal, tail-masked.
    fn signal_word(&self, signal: SignalRef, w: usize) -> u64;

    /// Word `w` of primary output `po`, tail-masked.
    fn po_word(&self, po: usize, w: usize) -> u64;

    /// Counts vectors on which the two signals differ.
    fn diff_count(&self, a: SignalRef, b: SignalRef) -> usize {
        let mut diff = 0usize;
        for w in 0..self.word_count() {
            diff += (self.signal_word(a, w) ^ self.signal_word(b, w)).count_ones() as usize;
        }
        diff
    }

    /// Fraction of vectors on which the two signals agree — the paper's
    /// *similarity* measure driving switch-gate selection.
    fn similarity(&self, a: SignalRef, b: SignalRef) -> f64 {
        1.0 - self.diff_count(a, b) as f64 / self.vector_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::GateId;

    #[test]
    fn raw_word_expands_constants() {
        let values = vec![0xAB, 0xCD];
        assert_eq!(raw_signal_word(&values, 1, SignalRef::Const0, 0), 0);
        assert_eq!(raw_signal_word(&values, 1, SignalRef::Const1, 0), u64::MAX);
        assert_eq!(
            raw_signal_word(&values, 1, SignalRef::Gate(GateId::new(1)), 0),
            0xCD
        );
    }

    #[test]
    fn masked_word_clips_only_the_tail() {
        let values = vec![u64::MAX, u64::MAX];
        let m = masked_signal_word(&values, 2, 0xF, SignalRef::Const1, 1);
        assert_eq!(m, 0xF);
        let m = masked_signal_word(&values, 2, 0xF, SignalRef::Const1, 0);
        assert_eq!(m, u64::MAX);
    }
}

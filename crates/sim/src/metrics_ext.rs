//! Additional error metrics used across the ALS literature.
//!
//! The paper constrains ER and NMED; neighbouring work (SALSA, BLASYS,
//! HEDALS's EMax mode, …) also reports mean error distance, worst-case
//! error distance, mean relative error, and average bit-flip rate.
//! Having them here lets downstream users evaluate circuits produced by
//! this workspace under whichever contract their application needs.

use crate::engine::SimResult;

fn check_compat(ori: &SimResult, app: &SimResult) {
    assert_eq!(
        ori.vector_count(),
        app.vector_count(),
        "results must cover the same vectors"
    );
    assert_eq!(
        ori.output_count(),
        app.output_count(),
        "results must cover the same outputs"
    );
}

/// Interprets one vector's outputs as an unsigned value (PO 0 = LSB),
/// in `f64` (exact up to 53 output bits).
fn output_value(sim: &SimResult, v: usize) -> f64 {
    let mut value = 0.0;
    for po in 0..sim.output_count() {
        if sim.po_word(po, v / 64) >> (v % 64) & 1 == 1 {
            value += (2f64).powi(po as i32);
        }
    }
    value
}

/// Mean error distance: `E[|V_ori − V_app|]`, unnormalized.
///
/// # Panics
///
/// Panics if the results cover different vector or output counts.
///
/// # Examples
///
/// ```
/// use tdals_netlist::{Netlist, SignalRef};
/// use tdals_netlist::cell::{Cell, CellFunc, Drive};
/// use tdals_sim::{med, simulate, Patterns};
///
/// let mut n = Netlist::new("buf");
/// let a = n.add_input("a");
/// let g = n.add_gate("u", Cell::new(CellFunc::Buf, Drive::X1), vec![a.into()])?;
/// n.add_output("y", g.into());
///
/// let mut approx = n.clone();
/// approx.substitute(g, SignalRef::Const0)?; // y := 0
///
/// let p = Patterns::exhaustive(1);
/// let m = med(&simulate(&n, &p), &simulate(&approx, &p));
/// assert!((m - 0.5).abs() < 1e-12); // wrong by 1 on half the vectors
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn med(ori: &SimResult, app: &SimResult) -> f64 {
    check_compat(ori, app);
    let mut total = 0.0;
    for v in 0..ori.vector_count() {
        total += (output_value(ori, v) - output_value(app, v)).abs();
    }
    total / ori.vector_count() as f64
}

/// Worst-case error distance over the simulated vectors:
/// `max_v |V_ori − V_app|` (the sampled estimate of EMax).
///
/// # Panics
///
/// Panics if the results cover different vector or output counts.
pub fn worst_case_error_distance(ori: &SimResult, app: &SimResult) -> f64 {
    check_compat(ori, app);
    (0..ori.vector_count())
        .map(|v| (output_value(ori, v) - output_value(app, v)).abs())
        .fold(0.0, f64::max)
}

/// Mean relative error distance: `E[|V_ori − V_app| / max(V_ori, 1)]`.
///
/// # Panics
///
/// Panics if the results cover different vector or output counts.
pub fn mean_relative_error(ori: &SimResult, app: &SimResult) -> f64 {
    check_compat(ori, app);
    let mut total = 0.0;
    for v in 0..ori.vector_count() {
        let o = output_value(ori, v);
        let a = output_value(app, v);
        total += (o - a).abs() / o.max(1.0);
    }
    total / ori.vector_count() as f64
}

/// Average bit-flip rate: mean Hamming distance between output vectors
/// divided by the output count (each PO weighted equally).
///
/// # Panics
///
/// Panics if the results cover different vector or output counts.
pub fn bit_flip_rate(ori: &SimResult, app: &SimResult) -> f64 {
    check_compat(ori, app);
    let mut flips = 0usize;
    for po in 0..ori.output_count() {
        for w in 0..ori.word_count() {
            flips += (ori.po_word(po, w) ^ app.po_word(po, w)).count_ones() as usize;
        }
    }
    flips as f64 / (ori.vector_count() * ori.output_count()) as f64
}

/// `true` when the two results agree on every output of every vector —
/// a sampled functional-equivalence check (exact when the stimulus is
/// exhaustive).
///
/// # Panics
///
/// Panics if the results cover different vector or output counts.
pub fn outputs_identical(ori: &SimResult, app: &SimResult) -> bool {
    check_compat(ori, app);
    for po in 0..ori.output_count() {
        for w in 0..ori.word_count() {
            if ori.po_word(po, w) != app.po_word(po, w) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::patterns::Patterns;
    use tdals_netlist::builder::Builder;
    use tdals_netlist::{Netlist, SignalRef};

    fn adder3() -> Netlist {
        let mut b = Builder::new("add3");
        let a = b.inputs("a", 3);
        let x = b.inputs("b", 3);
        let (s, c) = b.ripple_add(&a, &x, SignalRef::Const0);
        b.outputs("s", &s);
        b.output("c", c);
        b.finish()
    }

    #[test]
    fn med_vs_nmed_scaling() {
        let n = adder3();
        let mut approx = n.clone();
        let d = approx.output_driver(1).gate().expect("gate");
        approx.substitute(d, SignalRef::Const0).expect("lac");
        let p = Patterns::exhaustive(6);
        let ori = simulate(&n, &p);
        let app = simulate(&approx, &p);
        let med_v = med(&ori, &app);
        let nmed_v = crate::metrics::nmed(&ori, &app);
        // NMED = MED / (2^4 - 1) for a 4-output circuit.
        assert!((med_v / 15.0 - nmed_v).abs() < 1e-12);
    }

    #[test]
    fn worst_case_bounds_mean() {
        let n = adder3();
        let mut approx = n.clone();
        let d = approx.output_driver(3).gate().expect("gate");
        approx.substitute(d, SignalRef::Const0).expect("lac");
        let p = Patterns::exhaustive(6);
        let ori = simulate(&n, &p);
        let app = simulate(&approx, &p);
        let wc = worst_case_error_distance(&ori, &app);
        assert!(wc >= med(&ori, &app));
        assert_eq!(wc, 8.0, "dropping the carry loses exactly 8");
    }

    #[test]
    fn relative_error_is_scale_free() {
        let n = adder3();
        let mut approx = n.clone();
        let d = approx.output_driver(0).gate().expect("gate");
        approx.substitute(d, SignalRef::Const1).expect("lac");
        let p = Patterns::exhaustive(6);
        let ori = simulate(&n, &p);
        let app = simulate(&approx, &p);
        let rel = mean_relative_error(&ori, &app);
        assert!(rel > 0.0 && rel < 1.0);
    }

    #[test]
    fn bit_flip_rate_counts_all_pos() {
        let n = adder3();
        let mut approx = n.clone();
        // Invert the LSB: flips PO 0 on every vector -> rate = 1/4.
        let d = approx.output_driver(0).gate().expect("gate");
        let inv = approx
            .add_gate(
                "inv",
                tdals_netlist::cell::Cell::new(
                    tdals_netlist::cell::CellFunc::Inv,
                    tdals_netlist::cell::Drive::X1,
                ),
                vec![d.into()],
            )
            .expect("gate");
        approx.set_output_driver(0, inv.into());
        let p = Patterns::exhaustive(6);
        let rate = bit_flip_rate(&simulate(&n, &p), &simulate(&approx, &p));
        assert!((rate - 0.25).abs() < 1e-12);
    }

    #[test]
    fn identical_circuits_are_equivalent() {
        let n = adder3();
        let p = Patterns::exhaustive(6);
        let r = simulate(&n, &p);
        assert!(outputs_identical(&r, &r));
        assert_eq!(med(&r, &r), 0.0);
        assert_eq!(worst_case_error_distance(&r, &r), 0.0);
        assert_eq!(bit_flip_rate(&r, &r), 0.0);
    }

    #[test]
    fn equivalence_detects_difference() {
        let n = adder3();
        let mut approx = n.clone();
        let d = approx.output_driver(2).gate().expect("gate");
        approx.substitute(d, SignalRef::Const0).expect("lac");
        let p = Patterns::exhaustive(6);
        assert!(!outputs_identical(
            &simulate(&n, &p),
            &simulate(&approx, &p)
        ));
    }
}

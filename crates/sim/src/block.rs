//! SIMD block width selection.
//!
//! Simulation storage is a flat `Vec<u64>` of 64-sample words at every
//! width — what [`SimdWidth`] selects is the **loop structure** of the
//! gate-evaluation kernels: how many words one trip through the inner
//! loop gathers, evaluates ([`eval_block`](tdals_netlist::cell::CellFunc::eval_block)),
//! and stores. A `[u64; 8]` block is 512 bits of straight-line bitwise
//! ops with no per-word branching, which LLVM folds into whatever
//! vector registers the target offers (SSE2 → 2 lanes, AVX2 → 4,
//! AVX-512 → 8, NEON → 2) — no intrinsics, no `unsafe`, no new
//! dependencies.
//!
//! Because the ops are pure bitwise functions of the same words in the
//! same storage, **results are identical at every width, bit for bit**:
//! width is a throughput knob, never a semantics knob. The cross-width
//! equivalence suite (`tests/simd_words.rs`, `crates/sim/tests/`) pins
//! this end to end.

use std::fmt;

/// Block width of the simulation kernels: how many 64-bit words one
/// inner-loop trip evaluates.
///
/// # Examples
///
/// ```
/// use tdals_sim::SimdWidth;
///
/// assert_eq!(SimdWidth::W8.lanes(), 8);
/// assert_eq!("4".parse::<SimdWidth>()?, SimdWidth::W4);
/// // The default is the widest kernel; the TDALS_SIMD_WIDTH
/// // environment variable can narrow it process-wide.
/// assert!(SimdWidth::default().lanes() >= 1);
/// # Ok::<(), tdals_sim::ParseSimdWidthError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SimdWidth {
    /// Scalar reference: one word per trip.
    W1,
    /// 4-word (256-bit) blocks.
    W4,
    /// 8-word (512-bit) blocks.
    W8,
}

/// All widths from narrowest to widest, in a stable order.
pub const ALL_WIDTHS: [SimdWidth; 3] = [SimdWidth::W1, SimdWidth::W4, SimdWidth::W8];

impl SimdWidth {
    /// Number of 64-bit words per block.
    pub const fn lanes(self) -> usize {
        match self {
            SimdWidth::W1 => 1,
            SimdWidth::W4 => 4,
            SimdWidth::W8 => 8,
        }
    }

    /// The width every engine uses unless told otherwise: the widest
    /// kernel, optionally narrowed process-wide by the
    /// `TDALS_SIMD_WIDTH` environment variable (`1`, `4` or `8`;
    /// anything else is ignored).
    ///
    /// W8 is always safe to default to — blocks are plain `u64` lane
    /// loops, so on a narrow machine LLVM simply emits more scalar ops
    /// per trip and the result is unchanged. The env knob exists for
    /// process-level A/B comparison (the `simd-equivalence` CI job runs
    /// whole batches under different widths and byte-compares the
    /// results files), not for correctness.
    pub fn auto() -> SimdWidth {
        match std::env::var("TDALS_SIMD_WIDTH") {
            Ok(s) => s.parse().unwrap_or(SimdWidth::W8),
            Err(_) => SimdWidth::W8,
        }
    }

    /// Name used on CLIs and in bench JSON (`"1"`, `"4"`, `"8"`).
    pub const fn cli_name(self) -> &'static str {
        match self {
            SimdWidth::W1 => "1",
            SimdWidth::W4 => "4",
            SimdWidth::W8 => "8",
        }
    }
}

impl Default for SimdWidth {
    /// [`SimdWidth::auto`].
    fn default() -> SimdWidth {
        SimdWidth::auto()
    }
}

impl fmt::Display for SimdWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.cli_name())
    }
}

/// Error returned when a width string is not `1`, `4` or `8`.
///
/// # Examples
///
/// ```
/// use tdals_sim::SimdWidth;
/// assert!("2".parse::<SimdWidth>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSimdWidthError {
    input: String,
}

impl ParseSimdWidthError {
    /// The string that failed to parse.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseSimdWidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown SIMD width `{}` (expected 1, 4 or 8)",
            self.input
        )
    }
}

impl std::error::Error for ParseSimdWidthError {}

impl std::str::FromStr for SimdWidth {
    type Err = ParseSimdWidthError;

    fn from_str(s: &str) -> Result<SimdWidth, ParseSimdWidthError> {
        match s.trim() {
            "1" => Ok(SimdWidth::W1),
            "4" => Ok(SimdWidth::W4),
            "8" => Ok(SimdWidth::W8),
            _ => Err(ParseSimdWidthError {
                input: s.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate_with_width, SimResult};
    use crate::patterns::Patterns;
    use tdals_netlist::cell::{Cell, CellFunc, Drive};
    use tdals_netlist::{Netlist, SignalRef};

    #[test]
    fn lanes_and_names_round_trip() {
        for w in ALL_WIDTHS {
            assert_eq!(w.cli_name().parse::<SimdWidth>().unwrap(), w);
            assert_eq!(w.to_string(), w.cli_name());
        }
        assert!("2".parse::<SimdWidth>().is_err());
        assert!("".parse::<SimdWidth>().is_err());
        assert_eq!(" 8 ".parse::<SimdWidth>().unwrap(), SimdWidth::W8);
    }

    /// A small but representative circuit: every arity, constants on
    /// pins, a Const1-driven PO, and enough gates for a multi-block
    /// word range.
    fn kernel_netlist() -> Netlist {
        let mut n = Netlist::new("kernel");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let x1 = |f| Cell::new(f, Drive::X1);
        let g1 = n
            .add_gate("g1", x1(CellFunc::Xor2), vec![a.into(), b.into()])
            .expect("gate");
        let g2 = n
            .add_gate(
                "g2",
                x1(CellFunc::Maj3),
                vec![a.into(), c.into(), g1.into()],
            )
            .expect("gate");
        let g3 = n
            .add_gate(
                "g3",
                x1(CellFunc::Aoi21),
                vec![g1.into(), g2.into(), SignalRef::Const0],
            )
            .expect("gate");
        let g4 = n
            .add_gate("g4", x1(CellFunc::Inv), vec![g3.into()])
            .expect("gate");
        n.add_output("y", g4.into());
        n.add_output("k", SignalRef::Const1);
        n
    }

    fn assert_same(a: &SimResult, b: &SimResult) {
        assert_eq!(a.vector_count(), b.vector_count());
        assert_eq!(a.word_count(), b.word_count());
        assert_eq!(a.values, b.values);
    }

    /// The Miri-covered kernel pin (see the `miri` CI job): every width
    /// over word-aligned and ragged-tail vector counts must produce the
    /// same storage as the scalar reference. Kept small so Miri's
    /// interpreter finishes quickly even at W=8.
    #[test]
    fn widths_agree_on_aligned_and_ragged_tails() {
        let n = kernel_netlist();
        for vectors in [64, 70, 512, 513] {
            let p = Patterns::random(3, vectors, 0xB10C);
            let scalar = simulate_with_width(&n, &p, SimdWidth::W1);
            for w in [SimdWidth::W4, SimdWidth::W8] {
                assert_same(&scalar, &simulate_with_width(&n, &p, w));
            }
        }
    }
}

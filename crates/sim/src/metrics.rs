//! Circuit error metrics: error rate (ER) and normalized mean error
//! distance (NMED), per §II-A of the paper.

use tdals_netlist::Netlist;

use crate::block::SimdWidth;
use crate::engine::{simulate_with_width, SimResult};
use crate::patterns::Patterns;
use crate::view::SimWords;

/// Which error metric constrains the optimization.
///
/// The paper optimizes random/control circuits under **ER** and
/// arithmetic circuits under **NMED**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorMetric {
    /// Probability that any output bit differs (Eq. 1).
    ErrorRate,
    /// Mean |V_ori − V_app| normalized by the maximum output value
    /// `2^n − 1` (Eq. 2); outputs are interpreted as an unsigned binary
    /// number with PO 0 as the least significant bit.
    Nmed,
}

impl ErrorMetric {
    /// Computes this metric between two simulation results (any
    /// [`SimWords`] implementors — full results, incremental state, or
    /// uncommitted [`DeltaView`](crate::DeltaView)s mix freely).
    ///
    /// # Panics
    ///
    /// Panics if the results cover different vector or output counts.
    pub fn compute<A: SimWords, B: SimWords>(self, ori: &A, app: &B) -> f64 {
        match self {
            ErrorMetric::ErrorRate => error_rate(ori, app),
            ErrorMetric::Nmed => nmed(ori, app),
        }
    }

    /// Lowercase name used by the `tdals` CLI and job manifests:
    /// `er` / `nmed`.
    pub const fn cli_name(self) -> &'static str {
        match self {
            ErrorMetric::ErrorRate => "er",
            ErrorMetric::Nmed => "nmed",
        }
    }

    /// Parses an [`ErrorMetric::cli_name`]; `None` for unknown names.
    pub fn parse(name: &str) -> Option<ErrorMetric> {
        match name {
            "er" => Some(ErrorMetric::ErrorRate),
            "nmed" => Some(ErrorMetric::Nmed),
            _ => None,
        }
    }
}

fn check_compat<A: SimWords, B: SimWords>(ori: &A, app: &B) {
    assert_eq!(
        ori.vector_count(),
        app.vector_count(),
        "results must cover the same vectors"
    );
    assert_eq!(
        ori.output_count(),
        app.output_count(),
        "results must cover the same outputs"
    );
}

/// Error rate (Eq. 1): fraction of input vectors on which the
/// approximate outputs differ from the accurate outputs in any bit.
///
/// # Panics
///
/// Panics if the results cover different vector or output counts.
///
/// # Examples
///
/// ```
/// use tdals_netlist::{Netlist, SignalRef};
/// use tdals_netlist::cell::{Cell, CellFunc, Drive};
/// use tdals_sim::{error_rate, simulate, Patterns};
///
/// let mut n = Netlist::new("and");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let g = n.add_gate("u", Cell::new(CellFunc::And2, Drive::X1),
///                    vec![a.into(), b.into()])?;
/// n.add_output("y", g.into());
///
/// let mut approx = n.clone();
/// approx.substitute(g, SignalRef::Const0)?; // y := 0
///
/// let p = Patterns::exhaustive(2);
/// let er = error_rate(&simulate(&n, &p), &simulate(&approx, &p));
/// assert!((er - 0.25).abs() < 1e-12); // wrong only on a=b=1
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn error_rate<A: SimWords, B: SimWords>(ori: &A, app: &B) -> f64 {
    check_compat(ori, app);
    // Walk whole blocks through the SimWords block accessors so
    // contiguous implementors serve slice copies instead of per-word
    // calls. Popcount accumulation is per-word and order-preserving:
    // the result is exactly the scalar loop's.
    const B: usize = 8;
    let words = ori.word_count();
    let mut wrong = 0usize;
    let mut w = 0;
    while w < words {
        let n = B.min(words - w);
        let mut any_diff = [0u64; B];
        let mut o = [0u64; B];
        let mut a = [0u64; B];
        for po in 0..ori.output_count() {
            ori.po_block(po, w, &mut o[..n]);
            app.po_block(po, w, &mut a[..n]);
            for l in 0..n {
                any_diff[l] |= o[l] ^ a[l];
            }
        }
        for &d in &any_diff[..n] {
            wrong += d.count_ones() as usize;
        }
        w += n;
    }
    wrong as f64 / ori.vector_count() as f64
}

/// Per-output flip probabilities: element `j` is the fraction of vectors
/// on which PO `j` differs between the two results.
///
/// This is the per-PO error term feeding the paper's PO-TFI `Level`
/// evaluation (Eq. 3).
///
/// # Panics
///
/// Panics if the results cover different vector or output counts.
pub fn po_flip_rates<A: SimWords, B: SimWords>(ori: &A, app: &B) -> Vec<f64> {
    check_compat(ori, app);
    let n_vec = ori.vector_count() as f64;
    const B: usize = 8;
    let words = ori.word_count();
    (0..ori.output_count())
        .map(|po| {
            let mut diff = 0usize;
            let mut o = [0u64; B];
            let mut a = [0u64; B];
            let mut w = 0;
            while w < words {
                let n = B.min(words - w);
                ori.po_block(po, w, &mut o[..n]);
                app.po_block(po, w, &mut a[..n]);
                for l in 0..n {
                    diff += (o[l] ^ a[l]).count_ones() as usize;
                }
                w += n;
            }
            diff as f64 / n_vec
        })
        .collect()
}

/// Normalized mean error distance (Eq. 2).
///
/// Outputs are read as an unsigned binary number (PO 0 = LSB). The mean
/// of `|V_ori − V_app|` over all vectors is normalized by `2^n − 1`.
/// Computation is done in `f64`, which keeps full precision up to 53
/// output bits and a faithful approximation beyond (the paper's widest
/// circuit has 129 outputs; NMED is a ratio, so the relative error of the
/// f64 path is negligible).
///
/// # Panics
///
/// Panics if the results cover different vector or output counts.
pub fn nmed<A: SimWords, B: SimWords>(ori: &A, app: &B) -> f64 {
    check_compat(ori, app);
    let n_out = ori.output_count();
    let n_vec = ori.vector_count();
    let words = ori.word_count();
    // Normalized weight of each output bit: 2^j / (2^n - 1).
    // Computed as exp2(j - n_bits) style scaling to avoid overflow.
    let max_value = (2f64).powi(n_out as i32) - 1.0;
    let weights: Vec<f64> = (0..n_out)
        .map(|j| (2f64).powi(j as i32) / max_value)
        .collect();

    let mut total = 0f64;
    for w in 0..words {
        let diffs: Vec<u64> = (0..n_out)
            .map(|po| ori.po_word(po, w) ^ app.po_word(po, w))
            .collect();
        let oris: Vec<u64> = (0..n_out).map(|po| ori.po_word(po, w)).collect();
        let mut remaining: u64 = diffs.iter().fold(0, |acc, d| acc | d);
        while remaining != 0 {
            let bit = remaining.trailing_zeros();
            remaining &= remaining - 1;
            let mask = 1u64 << bit;
            let mut signed = 0f64;
            for j in 0..n_out {
                if diffs[j] & mask != 0 {
                    // ori bit set -> app cleared it: +w_j; else -w_j.
                    if oris[j] & mask != 0 {
                        signed += weights[j];
                    } else {
                        signed -= weights[j];
                    }
                }
            }
            total += signed.abs();
        }
    }
    total / n_vec as f64
}

/// Cached golden-reference evaluator.
///
/// Simulates the accurate circuit once and scores approximate variants
/// against it; this is what every optimizer in the workspace uses in its
/// inner loop.
///
/// # Examples
///
/// ```
/// use tdals_netlist::{Netlist, SignalRef};
/// use tdals_netlist::cell::{Cell, CellFunc, Drive};
/// use tdals_sim::{ErrorEvaluator, ErrorMetric, Patterns};
///
/// let mut n = Netlist::new("and");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let g = n.add_gate("u", Cell::new(CellFunc::And2, Drive::X1),
///                    vec![a.into(), b.into()])?;
/// n.add_output("y", g.into());
///
/// let eval = ErrorEvaluator::new(&n, Patterns::exhaustive(2), ErrorMetric::ErrorRate);
/// assert_eq!(eval.error_of(&n), 0.0);
///
/// let mut approx = n.clone();
/// approx.substitute(g, SignalRef::Const1)?;
/// assert!(eval.error_of(&approx) > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ErrorEvaluator {
    patterns: Patterns,
    golden: SimResult,
    metric: ErrorMetric,
    simd: SimdWidth,
}

impl ErrorEvaluator {
    /// Simulates `accurate` once and prepares to score variants with the
    /// given metric, at the default block width ([`SimdWidth::auto`]).
    pub fn new(accurate: &Netlist, patterns: Patterns, metric: ErrorMetric) -> ErrorEvaluator {
        let simd = SimdWidth::auto();
        let golden = simulate_with_width(accurate, &patterns, simd);
        ErrorEvaluator {
            patterns,
            golden,
            metric,
            simd,
        }
    }

    /// Sets the block width of every simulation this evaluator runs.
    /// Width is a throughput knob only — the cached golden result stays
    /// valid because words are bit-identical at every width. Returns
    /// `self` for builder-style chaining.
    pub fn with_simd_width(mut self, width: SimdWidth) -> ErrorEvaluator {
        self.simd = width;
        self
    }

    /// Current block width of the simulation kernels.
    pub fn simd_width(&self) -> SimdWidth {
        self.simd
    }

    /// Metric being evaluated.
    pub fn metric(&self) -> ErrorMetric {
        self.metric
    }

    /// The stimulus shared by all evaluations.
    pub fn patterns(&self) -> &Patterns {
        &self.patterns
    }

    /// Golden (accurate-circuit) simulation result.
    pub fn golden(&self) -> &SimResult {
        &self.golden
    }

    /// Simulates an approximate variant on the shared stimulus.
    pub fn simulate(&self, approx: &Netlist) -> SimResult {
        simulate_with_width(approx, &self.patterns, self.simd)
    }

    /// Metric value of an approximate variant.
    pub fn error_of(&self, approx: &Netlist) -> f64 {
        self.metric.compute(&self.golden, &self.simulate(approx))
    }

    /// Metric value given an already-computed simulation of the variant
    /// (a full [`SimResult`], a [`DeltaSim`](crate::DeltaSim) state, or
    /// an uncommitted [`DeltaView`](crate::DeltaView)).
    pub fn error_of_sim<V: SimWords>(&self, app: &V) -> f64 {
        self.metric.compute(&self.golden, app)
    }

    /// Per-PO error contributions of a variant (flip rates under ER;
    /// weighted flip rates under NMED), given its simulation.
    pub fn po_errors_of_sim<V: SimWords>(&self, app: &V) -> Vec<f64> {
        let flips = po_flip_rates(&self.golden, app);
        match self.metric {
            ErrorMetric::ErrorRate => flips,
            ErrorMetric::Nmed => {
                let n_out = flips.len();
                let max_value = (2f64).powi(n_out as i32) - 1.0;
                flips
                    .iter()
                    .enumerate()
                    .map(|(j, f)| f * (2f64).powi(j as i32) / max_value)
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use tdals_netlist::cell::{Cell, CellFunc, Drive};
    use tdals_netlist::SignalRef;

    fn x1(func: CellFunc) -> Cell {
        Cell::new(func, Drive::X1)
    }

    /// 2-bit adder: s = a + b over 2-bit inputs, 3-bit output.
    fn adder2() -> Netlist {
        let mut n = Netlist::new("adder2");
        let a0 = n.add_input("a0");
        let a1 = n.add_input("a1");
        let b0 = n.add_input("b0");
        let b1 = n.add_input("b1");
        let s0 = n
            .add_gate("s0", x1(CellFunc::Xor2), vec![a0.into(), b0.into()])
            .expect("gate");
        let c0 = n
            .add_gate("c0", x1(CellFunc::And2), vec![a0.into(), b0.into()])
            .expect("gate");
        let t1 = n
            .add_gate("t1", x1(CellFunc::Xor2), vec![a1.into(), b1.into()])
            .expect("gate");
        let s1 = n
            .add_gate("s1", x1(CellFunc::Xor2), vec![t1.into(), c0.into()])
            .expect("gate");
        let c1 = n
            .add_gate(
                "c1",
                x1(CellFunc::Maj3),
                vec![a1.into(), b1.into(), c0.into()],
            )
            .expect("gate");
        n.add_output("s0", s0.into());
        n.add_output("s1", s1.into());
        n.add_output("s2", c1.into());
        n
    }

    #[test]
    fn identical_circuits_have_zero_error() {
        let n = adder2();
        let p = Patterns::exhaustive(4);
        let r = simulate(&n, &p);
        assert_eq!(error_rate(&r, &r), 0.0);
        assert_eq!(nmed(&r, &r), 0.0);
    }

    #[test]
    fn er_counts_any_output_difference_once() {
        let n = adder2();
        let mut approx = n.clone();
        // Kill the carry chain: c0 := 0. This flips multiple outputs on
        // some vectors but each wrong vector counts once.
        let c0 = approx.find_gate("c0").expect("c0");
        approx.substitute(c0, SignalRef::Const0).expect("lac");
        let p = Patterns::exhaustive(4);
        let er = error_rate(&simulate(&n, &p), &simulate(&approx, &p));
        // c0=1 requires a0&b0: 4 of 16 vectors.
        assert!((er - 0.25).abs() < 1e-12, "er = {er}");
    }

    #[test]
    fn nmed_matches_hand_computation() {
        let n = adder2();
        let mut approx = n.clone();
        let c0 = approx.find_gate("c0").expect("c0");
        approx.substitute(c0, SignalRef::Const0).expect("lac");
        let p = Patterns::exhaustive(4);
        // When a0=b0=1 the true sum exceeds the approximate sum by 2
        // (carry dropped); 4 of 16 vectors, ED=2, max=7.
        let expected = 4.0 * 2.0 / (16.0 * 7.0);
        let m = nmed(&simulate(&n, &p), &simulate(&approx, &p));
        assert!((m - expected).abs() < 1e-12, "nmed = {m}, want {expected}");
    }

    #[test]
    fn nmed_uses_distance_not_flip_count() {
        // Flipping the MSB must weigh 4x flipping bit 0 of a 3-bit value.
        let n = adder2();
        let p = Patterns::exhaustive(4);
        let golden = simulate(&n, &p);

        let mut lsb = n.clone();
        let s0 = lsb.find_gate("s0").expect("s0");
        lsb.substitute(s0, SignalRef::Const0).expect("lac");
        let nmed_lsb = nmed(&golden, &simulate(&lsb, &p));

        let mut msb = n.clone();
        let c1 = msb.find_gate("c1").expect("c1");
        msb.substitute(c1, SignalRef::Const0).expect("lac");
        let nmed_msb = nmed(&golden, &simulate(&msb, &p));

        // s0 = 1 on half the vectors (ED 1); c1 = 1 on 6/16 (ED 4).
        assert!((nmed_lsb - 8.0 / (16.0 * 7.0)).abs() < 1e-12);
        assert!((nmed_msb - 6.0 * 4.0 / (16.0 * 7.0)).abs() < 1e-12);
        assert!(nmed_msb > nmed_lsb);
    }

    #[test]
    fn po_flip_rates_localize_damage() {
        let n = adder2();
        let mut approx = n.clone();
        let s0 = approx.find_gate("s0").expect("s0");
        approx.substitute(s0, SignalRef::Const1).expect("lac");
        let p = Patterns::exhaustive(4);
        let flips = po_flip_rates(&simulate(&n, &p), &simulate(&approx, &p));
        assert!(flips[0] > 0.0, "damaged PO flips");
        assert_eq!(flips[1], 0.0, "untouched PO clean");
        assert_eq!(flips[2], 0.0, "untouched PO clean");
    }

    #[test]
    fn evaluator_matches_direct_computation() {
        let n = adder2();
        let mut approx = n.clone();
        let c0 = approx.find_gate("c0").expect("c0");
        approx.substitute(c0, SignalRef::Const0).expect("lac");
        let p = Patterns::exhaustive(4);

        let eval = ErrorEvaluator::new(&n, p.clone(), ErrorMetric::ErrorRate);
        let direct = error_rate(&simulate(&n, &p), &simulate(&approx, &p));
        assert_eq!(eval.error_of(&approx), direct);

        let eval = ErrorEvaluator::new(&n, p.clone(), ErrorMetric::Nmed);
        let direct = nmed(&simulate(&n, &p), &simulate(&approx, &p));
        assert_eq!(eval.error_of(&approx), direct);
    }

    #[test]
    fn nmed_per_po_weighting() {
        let n = adder2();
        let mut approx = n.clone();
        let c1 = approx.find_gate("c1").expect("c1");
        approx.substitute(c1, SignalRef::Const0).expect("lac");
        let p = Patterns::exhaustive(4);
        let eval = ErrorEvaluator::new(&n, p, ErrorMetric::Nmed);
        let app = eval.simulate(&approx);
        let po = eval.po_errors_of_sim(&app);
        // Only the MSB is damaged; its weighted error equals total NMED.
        assert!(po[2] > 0.0);
        assert_eq!(po[0], 0.0);
        assert!((po[2] - eval.error_of_sim(&app)).abs() < 1e-12);
    }

    #[test]
    fn metrics_are_bounded() {
        let n = adder2();
        let mut worst = n.clone();
        for po in 0..worst.output_count() {
            // Invert every output by pointing it at an inverted driver.
            let driver = worst.output_driver(po);
            if let SignalRef::Gate(g) = driver {
                let inv = worst
                    .add_gate(format!("inv{po}"), x1(CellFunc::Inv), vec![g.into()])
                    .expect("gate");
                worst.set_output_driver(po, inv.into());
            }
        }
        let p = Patterns::exhaustive(4);
        let golden = simulate(&n, &p);
        let bad = simulate(&worst, &p);
        let er = error_rate(&golden, &bad);
        let m = nmed(&golden, &bad);
        assert!((0.0..=1.0).contains(&er));
        assert!((0.0..=1.0).contains(&m));
        assert_eq!(er, 1.0, "every vector differs");
    }
}

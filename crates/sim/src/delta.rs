//! Incremental cone re-simulation.
//!
//! The optimizers score every approximate-change candidate by comparing
//! its outputs against the golden circuit. A full [`simulate`] is
//! O(gates × words) even when the candidate differs from its parent by
//! one gate substitution whose influence is confined to the target's
//! transitive fan-out. [`DeltaSim`] keeps the parent's simulated words
//! and re-evaluates **only the affected cone**, in topological id
//! order, with event-driven damping: a gate whose recomputed words
//! equal its old words stops the wavefront, so logically masked changes
//! die out early.
//!
//! Two entry points:
//!
//! * [`DeltaSim::preview`] — score a prospective substitution without
//!   committing it. Returns a [`DeltaView`] (an overlay over the base
//!   words) that answers every [`SimWords`] query bit-identically to a
//!   full re-simulation of the mutated netlist.
//! * [`DeltaSim::substitute`] — commit a substitution: the internal
//!   netlist mutates and the affected words are updated in place.
//!   Every `full_resim_every_n` commits the engine re-bases with a full
//!   [`simulate`] pass, bounding any drift a long mutation chain could
//!   accumulate through the incrementally maintained fan-out lists.
//!
//! # Scratch views for worker threads
//!
//! The engine is a plain value: `Clone` gives an independent **scratch
//! view** (own netlist, own words, own overlay), and the type is both
//! `Send` and `Sync`, so the deterministic worker pool in
//! `tdals-core::par` can
//! hand every worker its own clone of a shared base — the DCGWO seeding
//! phase mutates one scratch per population member — or share one base
//! immutably for [`DeltaSim::preview`] scoring. Nothing in here uses
//! interior mutability, which is what makes the parallel and sequential
//! scoring paths bit-identical by construction.
//!
//! # Examples
//!
//! ```
//! use tdals_netlist::{Netlist, SignalRef};
//! use tdals_netlist::cell::{Cell, CellFunc, Drive};
//! use tdals_sim::{simulate, DeltaSim, Patterns, SimWords};
//!
//! let mut n = Netlist::new("or");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let g = n.add_gate("u", Cell::new(CellFunc::Or2, Drive::X1),
//!                    vec![a.into(), b.into()])?;
//! n.add_output("y", g.into());
//!
//! let patterns = Patterns::exhaustive(2);
//! let delta = DeltaSim::new(n.clone(), &patterns);
//!
//! // Score `y := a` without re-simulating the whole circuit.
//! let view = delta.preview(g, a.into());
//!
//! // Bit-identical to mutating and fully re-simulating.
//! let mut mutated = n.clone();
//! mutated.substitute(g, a.into())?;
//! let full = simulate(&mutated, &patterns);
//! assert_eq!(view.po_word(0, 0), SimWords::po_word(&full, 0, 0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use tdals_netlist::{GateId, Netlist, NetlistError, SignalRef};

use crate::block::SimdWidth;
use crate::engine::{simulate, simulate_with_width, SimResult};
use crate::patterns::Patterns;
use crate::view::{mask_tail, masked_signal_word, raw_signal_word, SimWords};

/// Sentinel for "gate not in the overlay".
const NO_SLOT: u32 = u32::MAX;

/// Counters describing how much work one cone re-evaluation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Gates whose words were recomputed and found changed.
    pub changed: usize,
    /// Gates recomputed but bit-identical to before (wavefront damped).
    pub damped: usize,
}

impl DeltaStats {
    /// Total gates re-evaluated (changed + damped).
    pub fn reevaluated(&self) -> usize {
        self.changed + self.damped
    }
}

/// Incremental simulation state: a netlist, its simulated words, and
/// the fan-out lists needed to chase a mutation's transitive cone.
#[derive(Debug, Clone)]
pub struct DeltaSim {
    netlist: Netlist,
    patterns: Patterns,
    /// Gate-major storage, same layout and tail-mask discipline as
    /// [`SimResult`].
    values: Vec<u64>,
    word_count: usize,
    vector_count: usize,
    tail_mask: u64,
    /// `fanouts[g]` = gates reading `g`'s output (kept current across
    /// commits; PO readers are resolved through the netlist).
    fanouts: Vec<Vec<GateId>>,
    /// Commits since the last full re-simulation.
    commits_since_rebase: usize,
    /// Re-base (full resim + fan-out rebuild) period; 0 disables.
    full_resim_every_n: usize,
    /// Block width of the cone-re-evaluation and re-base kernels.
    /// A throughput knob only: words are bit-identical at every width.
    simd: SimdWidth,
    /// Lifetime counters across all commits.
    commit_stats: DeltaStats,
    full_resims: usize,
}

impl DeltaSim {
    /// Simulates `netlist` once and prepares for incremental updates.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.input_count()` differs from the netlist's
    /// primary input count.
    pub fn new(netlist: Netlist, patterns: &Patterns) -> DeltaSim {
        let sim = simulate(&netlist, patterns);
        DeltaSim::from_result(netlist, patterns.clone(), sim)
    }

    /// Wraps an existing simulation result (which must describe
    /// `netlist` on `patterns`) without re-simulating.
    ///
    /// # Panics
    ///
    /// Panics if the result's word geometry does not match the netlist
    /// and patterns.
    pub fn from_result(netlist: Netlist, patterns: Patterns, sim: SimResult) -> DeltaSim {
        assert_eq!(
            sim.values.len(),
            netlist.gate_count() * sim.word_count,
            "simulation result must cover every gate of the netlist"
        );
        assert_eq!(
            sim.vector_count,
            patterns.vector_count(),
            "simulation result must cover the stimulus"
        );
        let fanouts = netlist.fanout_lists();
        DeltaSim {
            word_count: sim.word_count,
            vector_count: sim.vector_count,
            tail_mask: sim.tail_mask,
            values: sim.values,
            netlist,
            patterns,
            fanouts,
            commits_since_rebase: 0,
            full_resim_every_n: 0,
            simd: SimdWidth::auto(),
            commit_stats: DeltaStats::default(),
            full_resims: 0,
        }
    }

    /// Sets the block width of the incremental kernels and any re-base
    /// simulations. Width never changes results — only how many words
    /// one inner-loop trip evaluates — so the already-simulated state
    /// stays valid as-is. Returns `self` for builder-style chaining.
    pub fn with_simd_width(mut self, width: SimdWidth) -> DeltaSim {
        self.simd = width;
        self
    }

    /// Current block width of the kernels.
    pub fn simd_width(&self) -> SimdWidth {
        self.simd
    }

    /// Sets the re-base period: after every `n` committed substitutions
    /// the engine discards its incremental state and re-simulates from
    /// scratch. `0` (the default) never re-bases. Returns `self` for
    /// builder-style chaining.
    pub fn with_full_resim_every(mut self, n: usize) -> DeltaSim {
        self.full_resim_every_n = n;
        self
    }

    /// Current re-base period (0 = never).
    pub fn full_resim_every(&self) -> usize {
        self.full_resim_every_n
    }

    /// The netlist in its current (post-commit) state.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Consumes the engine, returning the current netlist.
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// The stimulus shared by every evaluation.
    pub fn patterns(&self) -> &Patterns {
        &self.patterns
    }

    /// Lifetime counters over all committed substitutions.
    pub fn commit_stats(&self) -> DeltaStats {
        self.commit_stats
    }

    /// How many full re-simulations the re-base schedule has triggered.
    pub fn full_resims(&self) -> usize {
        self.full_resims
    }

    /// Snapshot of the current state as an owned [`SimResult`]
    /// (O(gates × words) copy; use the [`SimWords`] queries when a
    /// snapshot is not required).
    pub fn to_sim_result(&self) -> SimResult {
        SimResult {
            vector_count: self.vector_count,
            word_count: self.word_count,
            values: self.values.clone(),
            po_drivers: self.netlist.outputs().map(|(_, d)| d).collect(),
            tail_mask: self.tail_mask,
        }
    }

    /// Scores the substitution `target := switch` without committing:
    /// re-evaluates the target's affected fan-out cone into an overlay
    /// and returns a view that reads overlay-then-base.
    ///
    /// The view is bit-identical to `simulate(&mutated, patterns)` where
    /// `mutated` is the current netlist after `substitute(target,
    /// switch)` — property-tested in `tests/delta_sim.rs`.
    ///
    /// # Panics
    ///
    /// Panics if `switch` is a gate with id ≥ `target` (which would
    /// break the topological id invariant; the optimizers draw switches
    /// from the target's transitive fan-in, so this cannot happen on
    /// their path).
    pub fn preview(&self, target: GateId, switch: SignalRef) -> DeltaView<'_> {
        if let SignalRef::Gate(s) = switch {
            assert!(
                s < target,
                "switch {s} must precede target {target} in id order"
            );
        }
        let mut slot = vec![NO_SLOT; self.netlist.gate_count()];
        let mut words: Vec<u64> = Vec::new();
        let mut stats = DeltaStats::default();
        self.propagate(target, switch, &mut slot, &mut words, &mut stats);
        let m = tdals_obs::metrics();
        m.delta_previews.incr();
        m.delta_cone_gates.record(stats.changed as u64);
        DeltaView {
            base: self,
            target,
            switch,
            slot,
            words,
            stats,
        }
    }

    /// Commits the substitution `target := switch`: rewrites the
    /// internal netlist (exactly like [`Netlist::substitute`]), updates
    /// the affected words in place, and maintains the fan-out lists.
    /// Returns the number of rewritten fan-in/PO references.
    ///
    /// Every [`full_resim_every`](DeltaSim::full_resim_every) commits,
    /// the engine re-bases with a full simulation instead.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::FaninOrder`] if `switch` is a gate with
    /// id ≥ `target`; the state is unchanged in that case.
    pub fn substitute(&mut self, target: GateId, switch: SignalRef) -> Result<usize, NetlistError> {
        if let SignalRef::Gate(s) = switch {
            if s >= target {
                return Err(NetlistError::FaninOrder {
                    gate: target,
                    fanin: s,
                });
            }
        }
        self.commits_since_rebase += 1;
        if self.full_resim_every_n > 0 && self.commits_since_rebase >= self.full_resim_every_n {
            // Re-base: mutate, then rebuild everything from scratch.
            let rewritten = self.netlist.substitute(target, switch)?;
            let sim = simulate_with_width(&self.netlist, &self.patterns, self.simd);
            self.values = sim.values;
            self.fanouts = self.netlist.fanout_lists();
            self.commits_since_rebase = 0;
            self.full_resims += 1;
            tdals_obs::metrics().delta_rebases.incr();
            return Ok(rewritten);
        }

        // Incremental path: re-evaluate the cone into an overlay, then
        // merge. (The overlay indirection keeps the propagation code
        // shared with `preview`.)
        let mut slot = vec![NO_SLOT; self.netlist.gate_count()];
        let mut words: Vec<u64> = Vec::new();
        let mut stats = DeltaStats::default();
        self.propagate(target, switch, &mut slot, &mut words, &mut stats);
        self.commit_stats.changed += stats.changed;
        self.commit_stats.damped += stats.damped;
        let m = tdals_obs::metrics();
        m.delta_commits.incr();
        m.delta_cone_gates.record(stats.changed as u64);

        let rewritten = self.netlist.substitute(target, switch)?;
        for (g, &s) in slot.iter().enumerate() {
            if s != NO_SLOT {
                let src = s as usize * self.word_count;
                let dst = g * self.word_count;
                self.values[dst..dst + self.word_count]
                    .copy_from_slice(&words[src..src + self.word_count]);
            }
        }
        // Fan-out maintenance: every gate reader of `target` now reads
        // `switch` instead. (PO readers live in the netlist's output
        // table and need no bookkeeping here.)
        let readers = std::mem::take(&mut self.fanouts[target.index()]);
        if let SignalRef::Gate(s) = switch {
            let list = &mut self.fanouts[s.index()];
            for r in readers {
                if !list.contains(&r) {
                    list.push(r);
                }
            }
            list.sort_unstable();
        }
        Ok(rewritten)
    }

    /// Event-driven cone re-evaluation shared by `preview` and
    /// `substitute` — the width dispatch over the monomorphized
    /// [`DeltaSim::propagate_blocks`] kernels.
    fn propagate(
        &self,
        target: GateId,
        switch: SignalRef,
        slot: &mut [u32],
        words: &mut Vec<u64>,
        stats: &mut DeltaStats,
    ) {
        match self.simd {
            SimdWidth::W1 => self.propagate_blocks::<1>(target, switch, slot, words, stats),
            SimdWidth::W4 => self.propagate_blocks::<4>(target, switch, slot, words, stats),
            SimdWidth::W8 => self.propagate_blocks::<8>(target, switch, slot, words, stats),
        }
    }

    /// Walks the fan-out of `target` in topological id order,
    /// recomputing each reached gate under the pending substitution;
    /// gates whose recomputed words equal their current words do not
    /// propagate further. The inner loop evaluates whole `[u64; W]`
    /// blocks with the tail mask folded into the final block, then a
    /// scalar pass covers the `word_count % W` remainder.
    fn propagate_blocks<const W: usize>(
        &self,
        target: GateId,
        switch: SignalRef,
        slot: &mut [u32],
        words: &mut Vec<u64>,
        stats: &mut DeltaStats,
    ) {
        let wc = self.word_count;
        let n = self.netlist.gate_count();
        // Pending-flag scan instead of a priority queue: fan-outs
        // always have larger ids than their drivers, so one ascending
        // pass over the id space evaluates every affected gate after
        // all of its fan-ins have settled.
        let mut pending = vec![false; n];
        let mut lo = n;
        for &reader in &self.fanouts[target.index()] {
            pending[reader.index()] = true;
            lo = lo.min(reader.index());
        }

        // Per-pin source resolved once per gate, not once per word:
        // either a constant word or an offset into the base/overlay
        // storage.
        enum Pin {
            Const(u64),
            Base(usize),
            Overlay(usize),
        }
        let mut pins: [Pin; 3] = [Pin::Const(0), Pin::Const(0), Pin::Const(0)];
        let mut fanin_blocks = [[0u64; W]; 3];
        let mut fanin_words = [0u64; 3];
        let full = wc - wc % W;
        let mut scratch = vec![0u64; wc];
        for i in lo..n {
            if !pending[i] {
                continue;
            }
            let id = GateId::new(i);
            let gate = self.netlist.gate(id);
            let cell = gate.cell();
            let arity = cell.arity();
            for (pin, &fanin) in gate.fanins().iter().enumerate() {
                // The pending substitution: readers of `target` see
                // `switch` instead.
                let src = if fanin == SignalRef::Gate(target) {
                    switch
                } else {
                    fanin
                };
                pins[pin] = match src {
                    SignalRef::Const0 => Pin::Const(0),
                    SignalRef::Const1 => Pin::Const(u64::MAX),
                    SignalRef::Gate(g) if slot[g.index()] != NO_SLOT => {
                        Pin::Overlay(slot[g.index()] as usize * wc)
                    }
                    SignalRef::Gate(g) => Pin::Base(g.index() * wc),
                };
            }
            let base = id.index() * wc;
            let mut changed = false;
            let mut w = 0;
            while w < full {
                for (pin, resolved) in pins[..arity].iter().enumerate() {
                    fanin_blocks[pin] = match resolved {
                        Pin::Const(c) => [*c; W],
                        Pin::Base(off) => block_from(&self.values, off + w),
                        Pin::Overlay(off) => block_from(words, off + w),
                    };
                }
                let mut out = cell.eval_block::<W>(&fanin_blocks[..arity]);
                if w + W == wc {
                    out[W - 1] &= self.tail_mask;
                }
                for (lane, &word) in out.iter().enumerate() {
                    changed |= word != self.values[base + w + lane];
                }
                scratch[w..w + W].copy_from_slice(&out);
                w += W;
            }
            for w in full..wc {
                for (pin, resolved) in pins[..arity].iter().enumerate() {
                    fanin_words[pin] = match resolved {
                        Pin::Const(c) => *c,
                        Pin::Base(off) => self.values[off + w],
                        Pin::Overlay(off) => words[off + w],
                    };
                }
                let out = mask_tail(cell.eval_word(&fanin_words[..arity]), w, wc, self.tail_mask);
                scratch[w] = out;
                changed |= out != self.values[base + w];
            }
            if changed {
                stats.changed += 1;
                slot[i] = u32::try_from(words.len() / wc).expect("overlay fits u32");
                words.extend_from_slice(&scratch);
                for &reader in &self.fanouts[i] {
                    pending[reader.index()] = true;
                }
            } else {
                // Damped: downstream gates would recompute identical
                // words, so the wavefront stops here.
                stats.damped += 1;
            }
        }
    }
}

/// Copies `W` consecutive words starting at `off` into an owned block.
#[inline]
fn block_from<const W: usize>(storage: &[u64], off: usize) -> [u64; W] {
    let mut block = [0u64; W];
    block.copy_from_slice(&storage[off..off + W]);
    block
}

impl SimWords for DeltaSim {
    fn vector_count(&self) -> usize {
        self.vector_count
    }

    fn word_count(&self) -> usize {
        self.word_count
    }

    fn output_count(&self) -> usize {
        self.netlist.output_count()
    }

    fn tail_mask(&self) -> u64 {
        self.tail_mask
    }

    fn signal_word(&self, signal: SignalRef, w: usize) -> u64 {
        masked_signal_word(&self.values, self.word_count, self.tail_mask, signal, w)
    }

    fn po_word(&self, po: usize, w: usize) -> u64 {
        self.signal_word(self.netlist.output_driver(po), w)
    }

    fn signal_block(&self, signal: SignalRef, w0: usize, out: &mut [u64]) {
        match signal {
            SignalRef::Const0 => out.fill(0),
            SignalRef::Const1 => out.fill(u64::MAX),
            SignalRef::Gate(id) => {
                let base = id.index() * self.word_count + w0;
                out.copy_from_slice(&self.values[base..base + out.len()]);
            }
        }
        // Stored words are tail-zeroed; clip the constant expansions.
        if w0 + out.len() == self.word_count {
            if let Some(last) = out.last_mut() {
                *last &= self.tail_mask;
            }
        }
    }

    fn po_block(&self, po: usize, w0: usize, out: &mut [u64]) {
        self.signal_block(self.netlist.output_driver(po), w0, out);
    }
}

/// A scored-but-uncommitted substitution: overlay words for the
/// re-evaluated cone over the base [`DeltaSim`] words.
///
/// Answers every [`SimWords`] query exactly as a full simulation of the
/// mutated netlist would, including primary outputs whose driver was
/// the substituted gate.
#[derive(Debug)]
pub struct DeltaView<'a> {
    base: &'a DeltaSim,
    target: GateId,
    switch: SignalRef,
    /// Gate → overlay row (NO_SLOT when the gate kept its base words).
    slot: Vec<u32>,
    /// Overlay rows, `word_count` words each.
    words: Vec<u64>,
    stats: DeltaStats,
}

impl DeltaView<'_> {
    /// The substitution this view scores.
    pub fn lac(&self) -> (GateId, SignalRef) {
        (self.target, self.switch)
    }

    /// Work counters for this cone re-evaluation.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    #[inline]
    fn raw_word(&self, signal: SignalRef, w: usize) -> u64 {
        if let SignalRef::Gate(g) = signal {
            let s = self.slot[g.index()];
            if s != NO_SLOT {
                return self.words[s as usize * self.base.word_count + w];
            }
        }
        raw_signal_word(&self.base.values, self.base.word_count, signal, w)
    }
}

impl SimWords for DeltaView<'_> {
    fn vector_count(&self) -> usize {
        self.base.vector_count
    }

    fn word_count(&self) -> usize {
        self.base.word_count
    }

    fn output_count(&self) -> usize {
        self.base.netlist.output_count()
    }

    fn tail_mask(&self) -> u64 {
        self.base.tail_mask
    }

    fn signal_word(&self, signal: SignalRef, w: usize) -> u64 {
        mask_tail(
            self.raw_word(signal, w),
            w,
            self.base.word_count,
            self.base.tail_mask,
        )
    }

    fn po_word(&self, po: usize, w: usize) -> u64 {
        // The committed substitution would rewrite PO drivers too.
        let mut driver = self.base.netlist.output_driver(po);
        if driver == SignalRef::Gate(self.target) {
            driver = self.switch;
        }
        self.signal_word(driver, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::cell::{Cell, CellFunc, Drive};

    fn x1(func: CellFunc) -> Cell {
        Cell::new(func, Drive::X1)
    }

    /// The worker-pool contract (see the module docs): scratch views
    /// clone and cross threads. A regression here — say an `Rc` or a
    /// `RefCell` slipping into the engine — would break every parallel
    /// evaluation path in `tdals-core`, so pin it at the source.
    #[test]
    fn engine_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeltaSim>();
        assert_send_sync::<DeltaView<'_>>();
        assert_send_sync::<SimResult>();
        assert_send_sync::<Patterns>();
        assert_send_sync::<crate::ErrorEvaluator>();
    }

    /// a, b, c → chain with an AND-masked tail: g1 = a & b,
    /// g2 = g1 | c, g3 = g2 & c, outputs g2 and g3.
    fn chain() -> (Netlist, GateId, GateId) {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n
            .add_gate("g1", x1(CellFunc::And2), vec![a.into(), b.into()])
            .expect("gate");
        let g2 = n
            .add_gate("g2", x1(CellFunc::Or2), vec![g1.into(), c.into()])
            .expect("gate");
        let g3 = n
            .add_gate("g3", x1(CellFunc::And2), vec![g2.into(), c.into()])
            .expect("gate");
        n.add_output("y2", g2.into());
        n.add_output("y3", g3.into());
        (n, g1, g2)
    }

    fn assert_view_matches_full(netlist: &Netlist, patterns: &Patterns, t: GateId, s: SignalRef) {
        let delta = DeltaSim::new(netlist.clone(), patterns);
        let view = delta.preview(t, s);
        let mut mutated = netlist.clone();
        mutated.substitute(t, s).expect("legal substitution");
        let full = simulate(&mutated, patterns);
        for po in 0..SimWords::output_count(&full) {
            for w in 0..SimWords::word_count(&full) {
                assert_eq!(
                    view.po_word(po, w),
                    SimWords::po_word(&full, po, w),
                    "po {po} word {w} after {t} := {s}"
                );
            }
        }
    }

    #[test]
    fn preview_matches_full_resim() {
        let (n, g1, g2) = chain();
        let p = Patterns::exhaustive(3);
        for (t, s) in [
            (g1, SignalRef::Const0),
            (g1, SignalRef::Const1),
            (g2, SignalRef::Const1),
            (g2, SignalRef::Gate(g1)),
        ] {
            assert_view_matches_full(&n, &p, t, s);
        }
    }

    #[test]
    fn preview_matches_on_unaligned_tail() {
        // 70 vectors: two words, the second with a 6-bit tail.
        let (n, g1, _) = chain();
        let p = Patterns::random(3, 70, 5);
        assert_view_matches_full(&n, &p, g1, SignalRef::Const1);
    }

    #[test]
    fn damping_stops_the_wavefront() {
        // g2 = g1 | c; substituting g1 := 0 changes g2 only where
        // c = 0 and a & b = 1. With c tied to 1 in the stimulus region,
        // an OR with Const1 damps instantly — emulate by substituting a
        // gate with an identical-valued signal.
        let mut n = Netlist::new("damp");
        let a = n.add_input("a");
        let buf = n
            .add_gate("buf", x1(CellFunc::Buf), vec![a.into()])
            .expect("gate");
        let inv = n
            .add_gate("inv", x1(CellFunc::Inv), vec![buf.into()])
            .expect("gate");
        let out = n
            .add_gate("out", x1(CellFunc::Inv), vec![inv.into()])
            .expect("gate");
        n.add_output("y", out.into());
        let p = Patterns::exhaustive(1);
        let delta = DeltaSim::new(n, &p);
        // buf duplicates a: substituting buf := a changes nothing, so
        // the single reader recomputes identical words and damps.
        let view = delta.preview(buf, a.into());
        assert_eq!(view.stats().changed, 0);
        assert_eq!(view.stats().damped, 1);
    }

    #[test]
    fn commit_matches_full_resim_over_a_chain() {
        let (n, g1, g2) = chain();
        let p = Patterns::random(3, 100, 9);
        let mut delta = DeltaSim::new(n.clone(), &p);
        let mut reference = n;
        for (t, s) in [(g2, SignalRef::Gate(g1)), (g1, SignalRef::Const1)] {
            delta.substitute(t, s).expect("legal");
            reference.substitute(t, s).expect("legal");
            let full = simulate(&reference, &p);
            for po in 0..SimWords::output_count(&full) {
                for w in 0..SimWords::word_count(&full) {
                    assert_eq!(
                        SimWords::po_word(&delta, po, w),
                        SimWords::po_word(&full, po, w)
                    );
                }
            }
        }
        assert_eq!(delta.netlist(), &reference);
    }

    #[test]
    fn rebase_schedule_triggers_full_resims() {
        let (n, g1, g2) = chain();
        let p = Patterns::exhaustive(3);
        let mut delta = DeltaSim::new(n, &p).with_full_resim_every(2);
        delta.substitute(g2, SignalRef::Gate(g1)).expect("legal");
        assert_eq!(delta.full_resims(), 0);
        delta.substitute(g1, SignalRef::Const0).expect("legal");
        assert_eq!(delta.full_resims(), 1, "second commit re-bases");
    }

    #[test]
    fn illegal_switch_is_rejected_without_state_change() {
        let (n, g1, g2) = chain();
        let p = Patterns::exhaustive(3);
        let mut delta = DeltaSim::new(n.clone(), &p);
        let err = delta.substitute(g1, SignalRef::Gate(g2)).unwrap_err();
        assert!(matches!(err, NetlistError::FaninOrder { .. }));
        assert_eq!(delta.netlist(), &n);
    }

    #[test]
    fn to_sim_result_round_trips() {
        let (n, g1, _) = chain();
        let p = Patterns::random(3, 80, 3);
        let mut delta = DeltaSim::new(n, &p);
        delta.substitute(g1, SignalRef::Const1).expect("legal");
        let snap = delta.to_sim_result();
        let full = simulate(delta.netlist(), &p);
        for po in 0..SimWords::output_count(&full) {
            for w in 0..SimWords::word_count(&full) {
                assert_eq!(snap.po_word(po, w), SimWords::po_word(&full, po, w));
            }
        }
    }
}

//! Bit-parallel netlist evaluation.

use tdals_netlist::{GateId, Netlist, SignalRef};

use crate::block::SimdWidth;
use crate::patterns::Patterns;
use crate::view::{
    masked_signal_word, raw_signal_block, raw_signal_word, zero_tail_words, SimWords,
};

/// Simulated values of every gate output for one stimulus batch.
///
/// Produced by [`simulate`]; word `w` of gate `g` carries 64 samples of
/// `g`'s output. Primary-output values are resolved through the PO
/// drivers captured at simulation time, so a `SimResult` stays valid even
/// if the netlist is mutated afterwards (it describes the circuit as it
/// was).
///
/// # Examples
///
/// ```
/// use tdals_netlist::{Netlist, SignalRef};
/// use tdals_netlist::cell::{Cell, CellFunc, Drive};
/// use tdals_sim::{simulate, Patterns};
///
/// let mut n = Netlist::new("xor");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let x = n.add_gate("u", Cell::new(CellFunc::Xor2, Drive::X1),
///                    vec![a.into(), b.into()])?;
/// n.add_output("y", x.into());
///
/// let patterns = Patterns::exhaustive(2);
/// let result = simulate(&n, &patterns);
/// // Vectors are 00, 01, 10, 11 -> y = 0, 1, 1, 0.
/// assert_eq!(result.po_word(0, 0) & 0xF, 0b0110);
/// # Ok::<(), tdals_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SimResult {
    pub(crate) vector_count: usize,
    pub(crate) word_count: usize,
    /// Gate-major storage: `values[g * word_count + w]`.
    pub(crate) values: Vec<u64>,
    pub(crate) po_drivers: Vec<SignalRef>,
    pub(crate) tail_mask: u64,
}

impl SimResult {
    /// Number of vectors simulated.
    pub fn vector_count(&self) -> usize {
        self.vector_count
    }

    /// Number of words per signal.
    pub fn word_count(&self) -> usize {
        self.word_count
    }

    /// Number of primary outputs captured.
    pub fn output_count(&self) -> usize {
        self.po_drivers.len()
    }

    /// Word `w` of gate `id`'s output samples.
    ///
    /// # Panics
    ///
    /// Panics if `id` or `w` is out of range.
    #[inline]
    pub fn gate_word(&self, id: GateId, w: usize) -> u64 {
        self.values[id.index() * self.word_count + w]
    }

    /// All words of gate `id`'s output samples.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate_words(&self, id: GateId) -> &[u64] {
        let base = id.index() * self.word_count;
        &self.values[base..base + self.word_count]
    }

    /// Words of an arbitrary signal (constants expand to all-0/all-1
    /// within the valid tail).
    pub fn signal_word(&self, signal: SignalRef, w: usize) -> u64 {
        masked_signal_word(&self.values, self.word_count, self.tail_mask, signal, w)
    }

    /// Word `w` of primary output `po`.
    ///
    /// # Panics
    ///
    /// Panics if `po` or `w` is out of range.
    pub fn po_word(&self, po: usize, w: usize) -> u64 {
        self.signal_word(self.po_drivers[po], w)
    }

    /// Mask of valid bits in the final word.
    pub fn tail_mask(&self) -> u64 {
        self.tail_mask
    }

    /// Counts vectors on which the two signals differ.
    pub fn diff_count(&self, a: SignalRef, b: SignalRef) -> usize {
        let mut diff = 0usize;
        for w in 0..self.word_count {
            diff += (self.signal_word(a, w) ^ self.signal_word(b, w)).count_ones() as usize;
        }
        diff
    }

    /// Fraction of vectors on which the two signals agree — the paper's
    /// *similarity* ("the percentage of cycles when output of target gate
    /// holds the same value with output of each gate").
    pub fn similarity(&self, a: SignalRef, b: SignalRef) -> f64 {
        1.0 - self.diff_count(a, b) as f64 / self.vector_count as f64
    }
}

impl SimWords for SimResult {
    fn vector_count(&self) -> usize {
        self.vector_count
    }

    fn word_count(&self) -> usize {
        self.word_count
    }

    fn output_count(&self) -> usize {
        self.po_drivers.len()
    }

    fn tail_mask(&self) -> u64 {
        self.tail_mask
    }

    fn signal_word(&self, signal: SignalRef, w: usize) -> u64 {
        SimResult::signal_word(self, signal, w)
    }

    fn po_word(&self, po: usize, w: usize) -> u64 {
        SimResult::po_word(self, po, w)
    }

    fn signal_block(&self, signal: SignalRef, w0: usize, out: &mut [u64]) {
        match signal {
            SignalRef::Const0 => out.fill(0),
            SignalRef::Const1 => out.fill(u64::MAX),
            SignalRef::Gate(id) => {
                let base = id.index() * self.word_count + w0;
                out.copy_from_slice(&self.values[base..base + out.len()]);
            }
        }
        // Stored gate words are tail-zeroed already; this clips the
        // constant expansions the same way the per-word path does.
        if w0 + out.len() == self.word_count {
            if let Some(last) = out.last_mut() {
                *last &= self.tail_mask;
            }
        }
    }

    fn po_block(&self, po: usize, w0: usize, out: &mut [u64]) {
        self.signal_block(self.po_drivers[po], w0, out);
    }
}

/// Simulates every gate of `netlist` on the given stimulus at the
/// default block width ([`SimdWidth::auto`]).
///
/// Gates are evaluated in id order, which the netlist's topological id
/// invariant guarantees is a valid evaluation order. Dangling gates are
/// simulated too — their values feed similarity estimation.
///
/// # Panics
///
/// Panics if `patterns.input_count()` differs from the netlist's primary
/// input count.
pub fn simulate(netlist: &Netlist, patterns: &Patterns) -> SimResult {
    simulate_with_width(netlist, patterns, SimdWidth::auto())
}

/// [`simulate`] at an explicit block width.
///
/// The width selects the inner-loop block size of the gate kernels and
/// nothing else: results are **bit-identical at every width** (the ops
/// are pure bitwise functions of the same words — property-tested in
/// `crates/sim/tests/blockwise.rs` across every tail residue class).
///
/// # Panics
///
/// Panics if `patterns.input_count()` differs from the netlist's primary
/// input count.
pub fn simulate_with_width(netlist: &Netlist, patterns: &Patterns, width: SimdWidth) -> SimResult {
    match width {
        SimdWidth::W1 => simulate_blocks::<1>(netlist, patterns),
        SimdWidth::W4 => simulate_blocks::<4>(netlist, patterns),
        SimdWidth::W8 => simulate_blocks::<8>(netlist, patterns),
    }
}

/// The monomorphized engine: evaluates whole `[u64; W]` blocks in the
/// inner loop (straight-line bitwise ops LLVM can vectorize), then
/// finishes the `word_count % W` remainder one word at a time. The tail
/// mask is applied once at the end, to the final word of every gate,
/// via the shared [`zero_tail_words`] rule.
fn simulate_blocks<const W: usize>(netlist: &Netlist, patterns: &Patterns) -> SimResult {
    assert_eq!(
        patterns.input_count(),
        netlist.input_count(),
        "stimulus width must match primary input count"
    );
    let word_count = patterns.word_count();
    let gate_count = netlist.gate_count();
    let mut values = vec![0u64; gate_count * word_count];

    // Primary inputs copy their stimulus words.
    for (pi_idx, &pi) in netlist.inputs().iter().enumerate() {
        let base = pi.index() * word_count;
        values[base..base + word_count].copy_from_slice(patterns.input_words(pi_idx));
    }

    let full = word_count - word_count % W;
    let mut fanin_blocks = [[0u64; W]; 3];
    let mut fanin_words = [0u64; 3];
    for (id, gate) in netlist.iter() {
        if gate.is_input() {
            continue;
        }
        let cell = gate.cell();
        let arity = cell.arity();
        let base = id.index() * word_count;
        let mut w = 0;
        while w < full {
            for (pin, &fanin) in gate.fanins().iter().enumerate() {
                fanin_blocks[pin] = raw_signal_block::<W>(&values, word_count, fanin, w);
            }
            let out = cell.eval_block::<W>(&fanin_blocks[..arity]);
            values[base + w..base + w + W].copy_from_slice(&out);
            w += W;
        }
        for w in full..word_count {
            for (pin, &fanin) in gate.fanins().iter().enumerate() {
                fanin_words[pin] = raw_signal_word(&values, word_count, fanin, w);
            }
            values[base + w] = cell.eval_word(&fanin_words[..arity]);
        }
    }

    // Zero the invalid tail bits of every gate so popcounts stay exact.
    let tail = patterns.tail_mask();
    zero_tail_words(&mut values, word_count, tail);

    SimResult {
        vector_count: patterns.vector_count(),
        word_count,
        values,
        po_drivers: netlist.outputs().map(|(_, d)| d).collect(),
        tail_mask: tail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdals_netlist::cell::{Cell, CellFunc, Drive};

    fn x1(func: CellFunc) -> Cell {
        Cell::new(func, Drive::X1)
    }

    fn full_adder() -> Netlist {
        let mut n = Netlist::new("fa");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let cin = n.add_input("cin");
        let s1 = n
            .add_gate("s1", x1(CellFunc::Xor2), vec![a.into(), b.into()])
            .expect("gate");
        let sum = n
            .add_gate("sum", x1(CellFunc::Xor2), vec![s1.into(), cin.into()])
            .expect("gate");
        let carry = n
            .add_gate(
                "carry",
                x1(CellFunc::Maj3),
                vec![a.into(), b.into(), cin.into()],
            )
            .expect("gate");
        n.add_output("sum", sum.into());
        n.add_output("cout", carry.into());
        n
    }

    #[test]
    fn full_adder_truth_table() {
        let n = full_adder();
        let p = Patterns::exhaustive(3);
        let r = simulate(&n, &p);
        for v in 0..8usize {
            let a = v & 1;
            let b = v >> 1 & 1;
            let c = v >> 2 & 1;
            let sum = (a + b + c) & 1;
            let cout = (a + b + c) >> 1;
            assert_eq!((r.po_word(0, 0) >> v & 1) as usize, sum, "sum at {v}");
            assert_eq!((r.po_word(1, 0) >> v & 1) as usize, cout, "cout at {v}");
        }
    }

    #[test]
    fn constants_propagate() {
        let mut n = Netlist::new("c");
        let a = n.add_input("a");
        let g = n
            .add_gate("u", x1(CellFunc::And2), vec![a.into(), SignalRef::Const1])
            .expect("gate");
        n.add_output("y", g.into());
        n.add_output("k", SignalRef::Const1);
        let p = Patterns::exhaustive(1);
        let r = simulate(&n, &p);
        assert_eq!(r.po_word(0, 0) & 0b11, 0b10); // y = a
        assert_eq!(r.po_word(1, 0) & 0b11, 0b11); // k = 1 on all valid bits
    }

    #[test]
    fn tail_bits_are_masked() {
        let mut n = Netlist::new("inv");
        let a = n.add_input("a");
        let g = n
            .add_gate("u", x1(CellFunc::Inv), vec![a.into()])
            .expect("gate");
        n.add_output("y", g.into());
        let p = Patterns::random(1, 10, 3);
        let r = simulate(&n, &p);
        // INV of mostly-zero tail would set high bits without masking.
        assert_eq!(r.po_word(0, 0) & !p.tail_mask(), 0);
        assert_eq!(r.gate_word(g, 0) & !p.tail_mask(), 0);
    }

    #[test]
    fn similarity_bounds_and_self() {
        let n = full_adder();
        let p = Patterns::random(3, 500, 11);
        let r = simulate(&n, &p);
        for (id, _) in n.iter() {
            assert_eq!(r.similarity(id.into(), id.into()), 1.0);
            let s = r.similarity(id.into(), SignalRef::Const0);
            assert!((0.0..=1.0).contains(&s));
            let s1 = r.similarity(id.into(), SignalRef::Const1);
            assert!((s + s1 - 1.0).abs() < 1e-9, "complementary similarities");
        }
    }

    #[test]
    fn simulation_matches_bool_reference() {
        // Cross-check word-parallel evaluation against gate-by-gate
        // boolean evaluation on random vectors.
        let n = full_adder();
        let p = Patterns::random(3, 100, 17);
        let r = simulate(&n, &p);
        for v in 0..p.vector_count() {
            let mut vals = vec![false; n.gate_count()];
            for (pi_idx, &pi) in n.inputs().iter().enumerate() {
                vals[pi.index()] = p.bit(pi_idx, v);
            }
            for (id, gate) in n.iter() {
                if gate.is_input() {
                    continue;
                }
                let ins: Vec<bool> = gate
                    .fanins()
                    .iter()
                    .map(|f| match f {
                        SignalRef::Const0 => false,
                        SignalRef::Const1 => true,
                        SignalRef::Gate(s) => vals[s.index()],
                    })
                    .collect();
                vals[id.index()] = gate.cell().eval_bool(&ins);
                assert_eq!(
                    r.gate_word(id, v / 64) >> (v % 64) & 1 == 1,
                    vals[id.index()],
                    "gate {id} vector {v}"
                );
            }
        }
    }
}

//! Input stimulus for Monte-Carlo logic simulation.
//!
//! The paper estimates circuit error and signal similarities with VECBEE,
//! a Monte-Carlo batch simulator, using 10⁵ sampled input vectors. This
//! module generates the equivalent stimulus in bit-parallel form: each
//! `u64` word carries 64 input samples, so one pass over the netlist
//! simulates 64 vectors at once.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A batch of input vectors, packed 64 per word.
///
/// Word layout is input-major: `word(i, w)` holds samples
/// `64·w .. 64·w+63` of input `i`. When the vector count is not a
/// multiple of 64, the unused high bits of the final word are zero and
/// excluded from all statistics via [`Patterns::tail_mask`].
///
/// # Examples
///
/// ```
/// use tdals_sim::Patterns;
///
/// let p = Patterns::random(8, 1000, 42);
/// assert_eq!(p.input_count(), 8);
/// assert_eq!(p.vector_count(), 1000);
/// assert_eq!(p.word_count(), 16); // ceil(1000 / 64)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Patterns {
    input_count: usize,
    vector_count: usize,
    word_count: usize,
    /// Input-major storage: `words[i * word_count + w]`.
    words: Vec<u64>,
}

impl Patterns {
    /// Draws `vector_count` uniform random vectors over `input_count`
    /// inputs from a seeded generator (the paper assumes a uniform input
    /// distribution for both ER and NMED).
    ///
    /// # Panics
    ///
    /// Panics if `vector_count` is zero.
    pub fn random(input_count: usize, vector_count: usize, seed: u64) -> Patterns {
        assert!(vector_count > 0, "need at least one vector");
        let word_count = vector_count.div_ceil(64);
        let mut rng = StdRng::seed_from_u64(seed);
        // Fill whole words branch-free (one RNG draw per word — the
        // draw order is part of the pattern-reproducibility contract),
        // then clip every input's tail through the same shared rule the
        // simulation engines use.
        let mut words = Vec::with_capacity(input_count * word_count);
        for _ in 0..input_count * word_count {
            words.push(rng.gen::<u64>());
        }
        crate::view::zero_tail_words(&mut words, word_count, tail_mask(vector_count));
        Patterns {
            input_count,
            vector_count,
            word_count,
            words,
        }
    }

    /// Enumerates all `2^input_count` input vectors (exact error metrics
    /// for small circuits).
    ///
    /// # Panics
    ///
    /// Panics if `input_count` exceeds 24 (16M vectors), a guard against
    /// accidental blow-up.
    pub fn exhaustive(input_count: usize) -> Patterns {
        assert!(
            input_count <= 24,
            "exhaustive patterns limited to 24 inputs"
        );
        let vector_count = 1usize << input_count;
        let word_count = vector_count.div_ceil(64);
        let mut words = vec![0u64; input_count * word_count];
        for v in 0..vector_count {
            for i in 0..input_count {
                if v >> i & 1 == 1 {
                    words[i * word_count + v / 64] |= 1u64 << (v % 64);
                }
            }
        }
        Patterns {
            input_count,
            vector_count,
            word_count,
            words,
        }
    }

    /// Number of inputs covered by this stimulus.
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Number of vectors in the batch.
    pub fn vector_count(&self) -> usize {
        self.vector_count
    }

    /// Number of 64-bit words per input.
    pub fn word_count(&self) -> usize {
        self.word_count
    }

    /// Word `w` of input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `w` is out of range.
    #[inline]
    pub fn word(&self, i: usize, w: usize) -> u64 {
        assert!(i < self.input_count && w < self.word_count);
        self.words[i * self.word_count + w]
    }

    /// All words of input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn input_words(&self, i: usize) -> &[u64] {
        &self.words[i * self.word_count..(i + 1) * self.word_count]
    }

    /// Mask selecting the valid bits of the final word.
    pub fn tail_mask(&self) -> u64 {
        tail_mask(self.vector_count)
    }

    /// Value of input `i` in vector `v` (slow path for tests/tooling).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `v` is out of range.
    pub fn bit(&self, i: usize, v: usize) -> bool {
        assert!(v < self.vector_count);
        self.word(i, v / 64) >> (v % 64) & 1 == 1
    }
}

/// Mask with the low `vector_count % 64` bits set (all ones when the
/// count is word-aligned).
pub(crate) fn tail_mask(vector_count: usize) -> u64 {
    match vector_count % 64 {
        0 => u64::MAX,
        r => (1u64 << r) - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Patterns::random(4, 256, 7);
        let b = Patterns::random(4, 256, 7);
        let c = Patterns::random(4, 256, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tail_bits_are_zero() {
        let p = Patterns::random(3, 70, 1);
        assert_eq!(p.word_count(), 2);
        for i in 0..3 {
            assert_eq!(p.word(i, 1) & !p.tail_mask(), 0);
        }
    }

    #[test]
    fn exhaustive_counts() {
        let p = Patterns::exhaustive(3);
        assert_eq!(p.vector_count(), 8);
        // Each input is true in exactly half the vectors.
        for i in 0..3 {
            let ones: u32 = p.input_words(i).iter().map(|w| w.count_ones()).sum();
            assert_eq!(ones, 4, "input {i}");
        }
        // Vector v encodes v in binary.
        for v in 0..8 {
            for i in 0..3 {
                assert_eq!(p.bit(i, v), v >> i & 1 == 1);
            }
        }
    }

    #[test]
    fn random_bits_look_uniform() {
        let p = Patterns::random(1, 64 * 100, 99);
        let ones: u32 = p.input_words(0).iter().map(|w| w.count_ones()).sum();
        let frac = f64::from(ones) / 6400.0;
        assert!((0.45..0.55).contains(&frac), "ones fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one vector")]
    fn zero_vectors_rejected() {
        let _ = Patterns::random(2, 0, 0);
    }
}

//! # tdals-sim
//!
//! Bit-parallel Monte-Carlo logic simulation and error estimation — the
//! workspace's substitute for VECBEE, the "versatile
//! efficiency–accuracy configurable batch error estimation" engine the
//! paper uses to measure circuit error and output similarities.
//!
//! Four pieces:
//!
//! * [`Patterns`] — packed random or exhaustive input stimulus;
//! * [`simulate`] / [`SimResult`] — evaluate every gate 64 vectors at a
//!   time; similarity queries ([`SimResult::similarity`]) drive the
//!   paper's switch-gate selection;
//! * [`DeltaSim`] / [`DeltaView`] — incremental cone re-simulation:
//!   score or commit a single-gate substitution by re-evaluating only
//!   its transitive fan-out, bit-identical to a full [`simulate`];
//! * [`ErrorMetric`], [`error_rate`], [`nmed`], [`ErrorEvaluator`] —
//!   the ER (Eq. 1) and NMED (Eq. 2) constraint metrics, generic over
//!   the [`SimWords`] view trait so full and incremental results mix;
//! * [`SimdWidth`] / [`simulate_with_width`] — SIMD block width of the
//!   gate kernels (`[u64; W]`, W ∈ {1, 4, 8}): a pure throughput knob,
//!   results are bit-identical at every width.
//!
//! # Examples
//!
//! ```
//! use tdals_netlist::{Netlist, SignalRef};
//! use tdals_netlist::cell::{Cell, CellFunc, Drive};
//! use tdals_sim::{ErrorEvaluator, ErrorMetric, Patterns};
//!
//! // y = a | b, approximated by y = a.
//! let mut n = Netlist::new("or");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let g = n.add_gate("u", Cell::new(CellFunc::Or2, Drive::X1),
//!                    vec![a.into(), b.into()])?;
//! n.add_output("y", g.into());
//!
//! let mut approx = n.clone();
//! approx.substitute(g, a.into())?;
//!
//! let eval = ErrorEvaluator::new(&n, Patterns::exhaustive(2), ErrorMetric::ErrorRate);
//! // Differs only on (a,b) = (0,1): ER = 1/4.
//! assert!((eval.error_of(&approx) - 0.25).abs() < 1e-12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod block;
mod delta;
mod engine;
mod metrics;
mod metrics_ext;
mod patterns;
mod view;

pub use block::{ParseSimdWidthError, SimdWidth, ALL_WIDTHS};
pub use delta::{DeltaSim, DeltaStats, DeltaView};
pub use engine::{simulate, simulate_with_width, SimResult};
pub use metrics::{error_rate, nmed, po_flip_rates, ErrorEvaluator, ErrorMetric};
pub use metrics_ext::{
    bit_flip_rate, mean_relative_error, med, outputs_identical, worst_case_error_distance,
};
pub use patterns::Patterns;
pub use view::SimWords;

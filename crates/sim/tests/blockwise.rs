//! Cross-width equivalence of the blockwise simulation kernels.
//!
//! The SIMD block width (`SimdWidth`) restructures the gate-eval inner
//! loops but must never change a single stored bit. These tests pin
//! that invariant at the `tdals-sim` layer, word for word, including
//! the masked tail word:
//!
//! * explicit enumeration of every interesting `vector_count` residue
//!   class modulo `64 * W` (aligned, one-over, one-under, full-word
//!   tails, ragged tails) — the cases where the blocked main loop and
//!   the scalar remainder loop split differently per width;
//! * proptest-generated random netlists (every cell function, constant
//!   pins, shared fanins) against random vector counts.
//!
//! `tdals-sim` sits below `tdals-circuits`, so the netlists here are
//! hand-grown from the cell library rather than loaded benchmarks.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdals_netlist::cell::{Cell, Drive, ALL_FUNCS};
use tdals_netlist::{Netlist, SignalRef};
use tdals_sim::{simulate_with_width, Patterns, SimResult, SimdWidth, ALL_WIDTHS};

/// Grows a random netlist: `inputs` PIs, then `gates` gates whose
/// functions cycle through the whole cell library and whose fanins are
/// drawn from everything already defined (plus the occasional
/// constant), then every sink-less signal is tied off as a PO so no
/// gate escapes comparison.
fn random_netlist(inputs: usize, gates: usize, seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut n = Netlist::new(format!("rand_{seed:x}"));
    let mut signals: Vec<SignalRef> = Vec::new();
    for i in 0..inputs {
        signals.push(n.add_input(format!("i{i}")).into());
    }
    for g in 0..gates {
        let func = ALL_FUNCS[g % ALL_FUNCS.len()];
        let arity = func.arity();
        let fanins: Vec<SignalRef> = (0..arity)
            .map(|_| match rng.gen_range(0..10) {
                0 => SignalRef::Const0,
                1 => SignalRef::Const1,
                _ => signals[rng.gen_range(0..signals.len())],
            })
            .collect();
        let id = n
            .add_gate(format!("g{g}"), Cell::new(func, Drive::X1), fanins)
            .expect("arity matches function");
        signals.push(id.into());
    }
    // Expose every gate: ~the last few as named POs, the rest through
    // one wide XOR-chain-free observation list (each its own PO).
    for (po, sig) in signals.iter().enumerate().skip(inputs) {
        n.add_output(format!("o{po}"), *sig);
    }
    n.add_output("k0", SignalRef::Const0);
    n.add_output("k1", SignalRef::Const1);
    n
}

/// Full-storage comparison through the public API: every gate's word
/// slice, every PO word, and the metadata that frames them.
fn assert_bit_identical(scalar: &SimResult, wide: &SimResult, n: &Netlist, label: &str) {
    assert_eq!(scalar.vector_count(), wide.vector_count(), "{label}");
    assert_eq!(scalar.word_count(), wide.word_count(), "{label}");
    assert_eq!(scalar.tail_mask(), wide.tail_mask(), "{label}");
    for (id, _) in n.iter() {
        assert_eq!(
            scalar.gate_words(id),
            wide.gate_words(id),
            "{label}: gate {} diverged",
            n.gate(id).name()
        );
    }
    for po in 0..n.output_count() {
        for w in 0..scalar.word_count() {
            assert_eq!(
                scalar.po_word(po, w),
                wide.po_word(po, w),
                "{label}: PO {po} word {w} diverged"
            );
        }
    }
}

/// Every residue class of `vector_count` modulo the block span that
/// exercises a distinct main-loop/remainder-loop split at some width:
/// block-aligned counts, one vector either side, full-word tails, and
/// single-bit tails, for spans of one and two blocks at each width.
fn edge_vector_counts() -> Vec<usize> {
    let mut counts = vec![1, 63, 64, 65];
    for width in ALL_WIDTHS {
        let span = 64 * width.lanes();
        for blocks in [1usize, 2] {
            let base = span * blocks;
            counts.extend([base - 1, base, base + 1, base + 63, base + 64, base + 65]);
        }
    }
    counts.sort_unstable();
    counts.dedup();
    counts
}

#[test]
fn explicit_tail_residues_agree_at_every_width() {
    let n = random_netlist(5, 40, 0x5EED);
    for vectors in edge_vector_counts() {
        let p = Patterns::random(n.input_count(), vectors, 0xF00D ^ vectors as u64);
        let scalar = simulate_with_width(&n, &p, SimdWidth::W1);
        // The final word's unused bits must be zeroed, not garbage —
        // metrics count them via popcount.
        let tail = scalar.tail_mask();
        for (id, _) in n.iter() {
            let last = *scalar.gate_words(id).last().expect("at least one word");
            assert_eq!(last & !tail, 0, "unmasked tail bits at vectors={vectors}");
        }
        for w in [SimdWidth::W4, SimdWidth::W8] {
            let wide = simulate_with_width(&n, &p, w);
            assert_bit_identical(&scalar, &wide, &n, &format!("W{w} vectors={vectors}"));
        }
    }
}

#[test]
fn exhaustive_patterns_agree_at_every_width() {
    // Exhaustive stimulus has its own tail shape (vector_count = 2^k).
    let n = random_netlist(4, 24, 0xE4);
    for inputs_used in [4usize] {
        let p = Patterns::exhaustive(inputs_used);
        let scalar = simulate_with_width(&n, &p, SimdWidth::W1);
        for w in [SimdWidth::W4, SimdWidth::W8] {
            let wide = simulate_with_width(&n, &p, w);
            assert_bit_identical(&scalar, &wide, &n, &format!("W{w} exhaustive"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random netlist × random ragged vector count: the blocked kernels
    /// must reproduce the scalar reference exactly.
    #[test]
    fn random_netlists_agree_at_every_width(
        seed in 0u64..1 << 32,
        inputs in 1usize..8,
        gates in 1usize..60,
        vectors in 1usize..1200,
    ) {
        let n = random_netlist(inputs, gates, seed);
        let p = Patterns::random(n.input_count(), vectors, seed.rotate_left(17));
        let scalar = simulate_with_width(&n, &p, SimdWidth::W1);
        for w in [SimdWidth::W4, SimdWidth::W8] {
            let wide = simulate_with_width(&n, &p, w);
            assert_bit_identical(&scalar, &wide, &n, &format!("W{w} seed={seed:#x} vectors={vectors}"));
        }
    }
}

//! Smoke tests for the `tdals` command-line tool: benchmark export,
//! reporting, and a miniature end-to-end flow over real files.

use std::process::Command;

fn tdals() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tdals"))
}

#[test]
fn list_names_every_benchmark() {
    let out = tdals().arg("list").output().expect("run tdals list");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    for name in ["Cavlc", "c6288", "Sqrt", "Adder16"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn bench_emits_parseable_verilog() {
    let out = tdals()
        .args(["bench", "--name", "Max16"])
        .output()
        .expect("run tdals bench");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    let netlist = tdals::netlist::verilog::parse(&text).expect("emitted Verilog parses");
    assert_eq!(netlist.input_count(), 32);
    assert_eq!(netlist.output_count(), 16);
}

#[test]
fn report_summarizes_netlist() {
    let out = tdals()
        .args(["report", "--input", "bench:Adder16"])
        .output()
        .expect("run tdals report");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("CPD"));
    assert!(text.contains("critical path"));
}

#[test]
fn flow_writes_feasible_netlist() {
    let dir = std::env::temp_dir().join(format!("tdals-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let out_path = dir.join("approx.v");
    let out = tdals()
        .args([
            "flow",
            "--input",
            "bench:Max16",
            "--metric",
            "nmed",
            "--bound",
            "0.0244",
            "--population",
            "8",
            "--iterations",
            "4",
            "--vectors",
            "1024",
            "--output",
            out_path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run tdals flow");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&out_path).expect("output written");
    let netlist = tdals::netlist::verilog::parse(&text).expect("valid Verilog");
    netlist.check_invariants().expect("valid netlist");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_arguments_fail_with_usage() {
    let out = tdals()
        .args(["flow", "--metric", "nmed"])
        .output()
        .expect("run tdals");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "stderr: {err}");
}

#[test]
fn flow_with_method_and_progress_streams_events() {
    let out = tdals()
        .args([
            "flow",
            "--input",
            "bench:Max16",
            "--metric",
            "nmed",
            "--bound",
            "0.0244",
            "--method",
            "hedals",
            "--progress",
            "--iterations",
            "3",
            "--vectors",
            "512",
        ])
        .output()
        .expect("run tdals flow");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("[HEDALS] start"), "stderr: {err}");
    assert!(err.contains("iter"), "stderr: {err}");
    assert!(err.contains("post-opt:"), "stderr: {err}");
    // The approximate netlist still lands on stdout, parseable.
    let text = String::from_utf8(out.stdout).expect("utf8");
    tdals::netlist::verilog::parse(&text).expect("emitted Verilog parses");
}

#[test]
fn invalid_bounds_are_rejected_without_usage_dump() {
    for bad in ["NaN", "-0.1", "1.5", "oops"] {
        let out = tdals()
            .args([
                "flow",
                "--input",
                "bench:Max16",
                "--metric",
                "nmed",
                "--bound",
                bad,
            ])
            .output()
            .expect("run tdals flow");
        assert!(!out.status.success(), "bound {bad} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--bound"), "bound {bad}: {err}");
        assert!(
            !err.contains("usage:"),
            "bound {bad} is a semantic error, not a usage error: {err}"
        );
    }
}

#[test]
fn unknown_benchmark_is_a_proper_error() {
    let out = tdals()
        .args(["report", "--input", "bench:NoSuchCircuit"])
        .output()
        .expect("run tdals report");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown benchmark `NoSuchCircuit`"), "{err}");
    assert!(err.contains("tdals list"), "points at the list: {err}");
    assert!(!err.contains("usage:"), "no usage dump: {err}");
}

#[test]
fn unknown_method_is_a_proper_error() {
    let out = tdals()
        .args([
            "flow",
            "--input",
            "bench:Max16",
            "--metric",
            "nmed",
            "--bound",
            "0.02",
            "--method",
            "annealer",
        ])
        .output()
        .expect("run tdals flow");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown method `annealer`"), "{err}");
}

#[test]
fn threads_zero_is_a_proper_error() {
    let out = tdals()
        .args([
            "flow",
            "--input",
            "bench:Max16",
            "--metric",
            "nmed",
            "--bound",
            "0.02",
            "--threads",
            "0",
        ])
        .output()
        .expect("run tdals flow");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--threads"), "{err}");
    assert!(err.contains("1 or more"), "{err}");
    assert!(
        !err.contains("usage:"),
        "a bad thread count is a semantic error, not a usage error: {err}"
    );
}

#[test]
fn threads_non_numeric_is_a_proper_error() {
    let out = tdals()
        .args([
            "flow",
            "--input",
            "bench:Max16",
            "--metric",
            "nmed",
            "--bound",
            "0.02",
            "--threads",
            "four",
        ])
        .output()
        .expect("run tdals flow");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--threads: `four` is not a number"), "{err}");
    assert!(!err.contains("usage:"), "no usage dump: {err}");
}

#[test]
fn serve_batch_total_threads_zero_is_a_proper_error() {
    let out = tdals()
        .args([
            "serve-batch",
            "--manifest",
            "does_not_matter.json",
            "--total-threads",
            "0",
        ])
        .output()
        .expect("run tdals serve-batch");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--total-threads"), "{err}");
    assert!(err.contains("1 or more"), "{err}");
    assert!(
        !err.contains("usage:"),
        "semantic error, no usage dump: {err}"
    );
}

#[test]
fn serve_batch_requires_a_manifest() {
    let out = tdals()
        .args(["serve-batch"])
        .output()
        .expect("run tdals serve-batch");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--manifest is required"), "{err}");
    assert!(
        err.contains("usage"),
        "a missing option earns the usage dump: {err}"
    );
}

#[test]
fn serve_batch_rejects_bad_manifests_without_usage_dump() {
    let dir = std::env::temp_dir().join(format!("tdals-cli-manifest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("bad.json");
    let check = |content: &str, needle: &str| {
        std::fs::write(&path, content).expect("write manifest");
        let out = tdals()
            .args(["serve-batch", "--manifest", path.to_str().expect("utf8")])
            .output()
            .expect("run tdals serve-batch");
        assert!(!out.status.success(), "manifest {content:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "manifest {content:?}: {err}");
        assert!(!err.contains("usage:"), "no usage dump: {err}");
    };
    check("{ not json", "not valid JSON");
    check(r#"{"jobs": []}"#, "empty");
    check(
        r#"{"jobs": [{"circuit": "bench:Max16", "metric": "er", "bound": 0.05,
                      "method": "annealer"}]}"#,
        "unknown method `annealer`",
    );
    check(
        r#"{"jobs": [{"circuit": "bench:Max16", "metric": "er", "bound": 0.05,
                      "method": "dcgwo", "threads": 0}]}"#,
        "0 worker threads",
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flow_output_is_identical_across_thread_counts() {
    // The CLI-level face of the equivalence guarantee: the emitted
    // Verilog is byte-identical whether the flow ran on 1 worker or 4.
    let dir = std::env::temp_dir().join(format!("tdals-cli-threads-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let run = |threads: &str, file: &str| -> String {
        let out_path = dir.join(file);
        let out = tdals()
            .args([
                "flow",
                "--input",
                "bench:Int2float",
                "--metric",
                "er",
                "--bound",
                "0.05",
                "--population",
                "6",
                "--iterations",
                "3",
                "--vectors",
                "512",
                "--threads",
                threads,
                "--output",
                out_path.to_str().expect("utf8 path"),
            ])
            .output()
            .expect("run tdals flow");
        assert!(
            out.status.success(),
            "threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(&out_path).expect("output written")
    };
    let sequential = run("1", "seq.v");
    let parallel = run("4", "par.v");
    assert_eq!(sequential, parallel, "emitted Verilog diverged");
    std::fs::remove_dir_all(&dir).ok();
}

//! End-to-end integration tests: the full Fig. 2 flow and all baseline
//! methods on real benchmark circuits, spanning every crate in the
//! workspace.

use tdals::baselines::{run_method, Method, MethodConfig, ALL_METHODS};
use tdals::circuits::Benchmark;
use tdals::core::{run_flow, EvalContext, FlowConfig};
use tdals::netlist::verilog;
use tdals::sim::{ErrorMetric, Patterns};
use tdals::sta::{analyze, TimingConfig};

fn quick_flow(metric: ErrorMetric, bound: f64) -> FlowConfig {
    let mut cfg = FlowConfig::paper_defaults(metric, bound);
    cfg.vectors = 1024;
    cfg.optimizer.population = 10;
    cfg.optimizer.iterations = 6;
    cfg
}

#[test]
fn flow_on_arithmetic_benchmark() {
    let accurate = Benchmark::Max16.build();
    let cfg = quick_flow(ErrorMetric::Nmed, 0.0244);
    let result = run_flow(&accurate, &cfg);

    assert!(result.error <= 0.0244 + 1e-12, "error {}", result.error);
    assert!(result.ratio_cpd <= 1.0 + 1e-9, "ratio {}", result.ratio_cpd);
    assert!(result.area <= result.area_con + 1e-9);
    result
        .netlist
        .check_invariants()
        .expect("valid final netlist");

    // The final netlist must be dangling-free (post-opt swept it).
    assert!(result.netlist.live_mask().iter().all(|&l| l));
}

#[test]
fn flow_on_random_control_benchmark() {
    let accurate = Benchmark::C880.build();
    let mut cfg = quick_flow(ErrorMetric::ErrorRate, 0.05);
    cfg.optimizer.population = 12;
    cfg.optimizer.iterations = 10;
    cfg.optimizer.seed = 2;
    let result = run_flow(&accurate, &cfg);

    assert!(result.error <= 0.05 + 1e-12);
    assert!(result.ratio_cpd <= 1.0 + 1e-9);
    assert!(
        result.ratio_cpd < 1.0,
        "a 5% ER budget must buy some delay on c880 (got {})",
        result.ratio_cpd
    );
}

#[test]
fn final_netlist_survives_verilog_round_trip() {
    let accurate = Benchmark::Int2float.build();
    let cfg = quick_flow(ErrorMetric::Nmed, 0.02);
    let result = run_flow(&accurate, &cfg);

    let text = verilog::to_verilog(&result.netlist);
    let reparsed = verilog::parse(&text).expect("emitted Verilog parses");
    reparsed.check_invariants().expect("valid reparse");
    assert_eq!(reparsed.output_count(), accurate.output_count());

    // Function must be preserved exactly by serialization.
    let patterns = Patterns::random(accurate.input_count(), 512, 9);
    let a = tdals::sim::simulate(&result.netlist, &patterns);
    let b = tdals::sim::simulate(&reparsed, &patterns);
    for po in 0..reparsed.output_count() {
        for w in 0..patterns.word_count() {
            assert_eq!(a.po_word(po, w), b.po_word(po, w));
        }
    }
}

#[test]
fn all_methods_produce_feasible_circuits_on_c880() {
    let accurate = Benchmark::C880.build();
    let patterns = Patterns::random(accurate.input_count(), 1024, 42);
    let ctx = EvalContext::new(
        &accurate,
        patterns,
        ErrorMetric::ErrorRate,
        TimingConfig::default(),
        0.8,
    );
    let cfg = MethodConfig {
        population: 8,
        iterations: 4,
        level_we: 0.1,
        seed: 5,
    };
    for method in ALL_METHODS {
        let result = run_method(&ctx, method, 0.05, None, &cfg);
        assert!(
            result.error <= 0.05 + 1e-12,
            "{method}: error {}",
            result.error
        );
        assert!(
            result.area <= ctx.area_ori() + 1e-9,
            "{method}: area {}",
            result.area
        );
        assert!(result.ratio_cpd <= 1.0 + 1e-9, "{method}");
    }
}

#[test]
fn dcgwo_beats_single_chase_on_timing() {
    // The paper's central ablation claim: under identical budgets and
    // seeds, the double-chase hierarchy finds at least as much critical
    // path delay reduction as the traditional single-chase GWO.
    let accurate = Benchmark::Adder16.build();
    let patterns = Patterns::random(accurate.input_count(), 1024, 17);
    let ctx = EvalContext::new(
        &accurate,
        patterns,
        ErrorMetric::Nmed,
        TimingConfig::default(),
        0.8,
    );
    // Average over seeds: individual runs are stochastic, the paper's
    // claim is about expected behaviour.
    let mut ours_sum = 0.0;
    let mut gwo_sum = 0.0;
    for seed in [23u64, 24, 25] {
        let cfg = MethodConfig {
            population: 24,
            iterations: 32,
            level_we: 0.2,
            seed,
        };
        ours_sum += run_method(&ctx, Method::Dcgwo, 0.0244, None, &cfg).ratio_cpd;
        gwo_sum += run_method(&ctx, Method::SingleChaseGwo, 0.0244, None, &cfg).ratio_cpd;
    }
    assert!(
        ours_sum <= gwo_sum + 0.03,
        "ours avg {} vs single-chase avg {}",
        ours_sum / 3.0,
        gwo_sum / 3.0
    );
    // Sanity vs the area-driven greedy flow: same ballpark even at this
    // reduced effort (greedy evaluates ~10x more candidate LACs here).
    let cfg = MethodConfig {
        population: 24,
        iterations: 32,
        level_we: 0.2,
        seed: 23,
    };
    let greedy = run_method(&ctx, Method::VecbeeSasimi, 0.0244, None, &cfg);
    assert!(
        ours_sum / 3.0 <= greedy.ratio_cpd + 0.3,
        "ours avg {} vs greedy {}",
        ours_sum / 3.0,
        greedy.ratio_cpd
    );
}

#[test]
fn tighter_error_budget_never_helps_timing() {
    // Stochastic trajectories wobble at quick-test effort, so compare
    // seed averages with a small tolerance.
    let accurate = Benchmark::Max16.build();
    let mut tight_sum = 0.0;
    let mut loose_sum = 0.0;
    let seeds = [1u64, 2, 3, 4, 5, 6];
    for seed in seeds {
        let mut tight_cfg = quick_flow(ErrorMetric::Nmed, 0.0048);
        tight_cfg.optimizer.seed = seed;
        let mut loose_cfg = quick_flow(ErrorMetric::Nmed, 0.0244);
        loose_cfg.optimizer.seed = seed;
        tight_sum += run_flow(&accurate, &tight_cfg).ratio_cpd;
        loose_sum += run_flow(&accurate, &loose_cfg).ratio_cpd;
    }
    assert!(
        loose_sum <= tight_sum + 0.15,
        "loose avg {} vs tight avg {}",
        loose_sum / seeds.len() as f64,
        tight_sum / seeds.len() as f64
    );
}

#[test]
fn bigger_area_budget_never_hurts_timing() {
    let accurate = Benchmark::Adder16.build();
    let base = quick_flow(ErrorMetric::Nmed, 0.0244);
    let area_ori = {
        let report = analyze(&accurate, &TimingConfig::default());
        let _ = report;
        accurate.area_live()
    };
    let mut small = base.clone();
    small.area_con = Some(area_ori * 0.8);
    let mut large = base;
    large.area_con = Some(area_ori * 1.2);
    let rs = run_flow(&accurate, &small);
    let rl = run_flow(&accurate, &large);
    assert!(
        rl.cpd_fac <= rs.cpd_fac + 1e-9,
        "large-budget {} vs small-budget {}",
        rl.cpd_fac,
        rs.cpd_fac
    );
}

#[test]
fn optimizer_history_is_complete_and_monotone_in_constraint() {
    let accurate = Benchmark::Max16.build();
    let cfg = quick_flow(ErrorMetric::Nmed, 0.02);
    let result = run_flow(&accurate, &cfg);
    assert_eq!(result.optimizer.history.len(), cfg.optimizer.iterations);
    let mut prev = 0.0;
    for h in &result.optimizer.history {
        assert!(h.constraint >= prev);
        prev = h.constraint;
        assert!(h.best_fitness >= 1.0 - 1e-9);
    }
}

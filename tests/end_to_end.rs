//! End-to-end integration tests: the full Fig. 2 flow and all baseline
//! methods on real benchmark circuits, spanning every crate in the
//! workspace.

use tdals::baselines::{Method, MethodConfig, ALL_METHODS};
use tdals::circuits::Benchmark;
use tdals::core::api::{Dcgwo, Flow, FlowOutcome};
use tdals::core::EvalContext;
use tdals::netlist::{verilog, Netlist};
use tdals::sim::{ErrorMetric, Patterns};
use tdals::sta::{analyze, TimingConfig};

fn quick_dcgwo(metric: ErrorMetric) -> Dcgwo {
    Dcgwo::paper_for(metric).quick(10, 6)
}

fn quick_flow(accurate: &Netlist, metric: ErrorMetric, bound: f64, dcgwo: Dcgwo) -> FlowOutcome {
    Flow::for_netlist(accurate)
        .metric(metric)
        .error_bound(bound)
        .vectors(1024)
        .optimizer(dcgwo)
        .run()
        .expect("valid session")
}

#[test]
fn flow_on_arithmetic_benchmark() {
    let accurate = Benchmark::Max16.build();
    let result = quick_flow(
        &accurate,
        ErrorMetric::Nmed,
        0.0244,
        quick_dcgwo(ErrorMetric::Nmed),
    );

    assert!(result.error <= 0.0244 + 1e-12, "error {}", result.error);
    assert!(result.ratio_cpd <= 1.0 + 1e-9, "ratio {}", result.ratio_cpd);
    assert!(result.area <= result.area_con + 1e-9);
    result
        .netlist
        .check_invariants()
        .expect("valid final netlist");

    // The final netlist must be dangling-free (post-opt swept it).
    assert!(result.netlist.live_mask().iter().all(|&l| l));
}

#[test]
fn flow_on_random_control_benchmark() {
    let accurate = Benchmark::C880.build();
    let mut dcgwo = Dcgwo::paper_for(ErrorMetric::ErrorRate).quick(12, 10);
    dcgwo.config_mut().seed = 2;
    let result = quick_flow(&accurate, ErrorMetric::ErrorRate, 0.05, dcgwo);

    assert!(result.error <= 0.05 + 1e-12);
    assert!(result.ratio_cpd <= 1.0 + 1e-9);
    assert!(
        result.ratio_cpd < 1.0,
        "a 5% ER budget must buy some delay on c880 (got {})",
        result.ratio_cpd
    );
}

#[test]
fn final_netlist_survives_verilog_round_trip() {
    let accurate = Benchmark::Int2float.build();
    let result = quick_flow(
        &accurate,
        ErrorMetric::Nmed,
        0.02,
        quick_dcgwo(ErrorMetric::Nmed),
    );

    let text = verilog::to_verilog(&result.netlist);
    let reparsed = verilog::parse(&text).expect("emitted Verilog parses");
    reparsed.check_invariants().expect("valid reparse");
    assert_eq!(reparsed.output_count(), accurate.output_count());

    // Function must be preserved exactly by serialization.
    let patterns = Patterns::random(accurate.input_count(), 512, 9);
    let a = tdals::sim::simulate(&result.netlist, &patterns);
    let b = tdals::sim::simulate(&reparsed, &patterns);
    for po in 0..reparsed.output_count() {
        for w in 0..patterns.word_count() {
            assert_eq!(a.po_word(po, w), b.po_word(po, w));
        }
    }
}

#[test]
fn all_methods_produce_feasible_circuits_on_c880() {
    let accurate = Benchmark::C880.build();
    let patterns = Patterns::random(accurate.input_count(), 1024, 42);
    let ctx = EvalContext::new(
        &accurate,
        patterns,
        ErrorMetric::ErrorRate,
        TimingConfig::default(),
        0.8,
    );
    let cfg = MethodConfig::default()
        .with_population(8)
        .with_iterations(4)
        .with_level_we(0.1)
        .with_seed(5);
    for method in ALL_METHODS {
        let result = Flow::for_context(&ctx)
            .error_bound(0.05)
            .optimizer(method.optimizer(&cfg))
            .run()
            .expect("valid session");
        assert!(
            result.error <= 0.05 + 1e-12,
            "{method}: error {}",
            result.error
        );
        assert!(
            result.area <= ctx.area_ori() + 1e-9,
            "{method}: area {}",
            result.area
        );
        assert!(result.ratio_cpd <= 1.0 + 1e-9, "{method}");
    }
}

#[test]
fn dcgwo_beats_single_chase_on_timing() {
    // The paper's central ablation claim: under identical budgets and
    // seeds, the double-chase hierarchy finds at least as much critical
    // path delay reduction as the traditional single-chase GWO.
    let accurate = Benchmark::Adder16.build();
    let patterns = Patterns::random(accurate.input_count(), 1024, 17);
    let ctx = EvalContext::new(
        &accurate,
        patterns,
        ErrorMetric::Nmed,
        TimingConfig::default(),
        0.8,
    );
    // Average over seeds: individual runs are stochastic, the paper's
    // claim is about expected behaviour.
    let run = |method: Method, cfg: &MethodConfig| {
        Flow::for_context(&ctx)
            .error_bound(0.0244)
            .optimizer(method.optimizer(cfg))
            .run()
            .expect("valid session")
    };
    let mut ours_sum = 0.0;
    let mut gwo_sum = 0.0;
    for seed in [23u64, 24, 25] {
        let cfg = MethodConfig::default()
            .with_population(24)
            .with_iterations(32)
            .with_level_we(0.2)
            .with_seed(seed);
        ours_sum += run(Method::Dcgwo, &cfg).ratio_cpd;
        gwo_sum += run(Method::SingleChaseGwo, &cfg).ratio_cpd;
    }
    assert!(
        ours_sum <= gwo_sum + 0.03,
        "ours avg {} vs single-chase avg {}",
        ours_sum / 3.0,
        gwo_sum / 3.0
    );
    // Sanity vs the area-driven greedy flow: same ballpark even at this
    // reduced effort (greedy evaluates ~10x more candidate LACs here).
    let cfg = MethodConfig::default()
        .with_population(24)
        .with_iterations(32)
        .with_level_we(0.2)
        .with_seed(23);
    let greedy = run(Method::VecbeeSasimi, &cfg);
    assert!(
        ours_sum / 3.0 <= greedy.ratio_cpd + 0.3,
        "ours avg {} vs greedy {}",
        ours_sum / 3.0,
        greedy.ratio_cpd
    );
}

#[test]
fn tighter_error_budget_never_helps_timing() {
    // Stochastic trajectories wobble at quick-test effort, so compare
    // seed averages with a small tolerance.
    let accurate = Benchmark::Max16.build();
    let mut tight_sum = 0.0;
    let mut loose_sum = 0.0;
    let seeds = [1u64, 2, 3, 4, 5, 6];
    for seed in seeds {
        let mut dcgwo = quick_dcgwo(ErrorMetric::Nmed);
        dcgwo.config_mut().seed = seed;
        tight_sum += quick_flow(&accurate, ErrorMetric::Nmed, 0.0048, dcgwo.clone()).ratio_cpd;
        loose_sum += quick_flow(&accurate, ErrorMetric::Nmed, 0.0244, dcgwo).ratio_cpd;
    }
    assert!(
        loose_sum <= tight_sum + 0.15,
        "loose avg {} vs tight avg {}",
        loose_sum / seeds.len() as f64,
        tight_sum / seeds.len() as f64
    );
}

#[test]
fn bigger_area_budget_never_hurts_timing() {
    let accurate = Benchmark::Adder16.build();
    let area_ori = {
        let report = analyze(&accurate, &TimingConfig::default());
        let _ = report;
        accurate.area_live()
    };
    let run_with_area = |area_con: f64| {
        Flow::for_netlist(&accurate)
            .metric(ErrorMetric::Nmed)
            .error_bound(0.0244)
            .vectors(1024)
            .area_constraint(area_con)
            .optimizer(quick_dcgwo(ErrorMetric::Nmed))
            .run()
            .expect("valid session")
    };
    let rs = run_with_area(area_ori * 0.8);
    let rl = run_with_area(area_ori * 1.2);
    assert!(
        rl.cpd_fac <= rs.cpd_fac + 1e-9,
        "large-budget {} vs small-budget {}",
        rl.cpd_fac,
        rs.cpd_fac
    );
}

#[test]
fn optimizer_history_is_complete_and_monotone_in_constraint() {
    let accurate = Benchmark::Max16.build();
    let dcgwo = quick_dcgwo(ErrorMetric::Nmed);
    let iterations = dcgwo.config().iterations;
    let result = quick_flow(&accurate, ErrorMetric::Nmed, 0.02, dcgwo);
    assert_eq!(result.history().len(), iterations);
    let mut prev = 0.0;
    for h in result.history() {
        assert!(h.constraint >= prev);
        prev = h.constraint;
        assert!(h.best_fitness >= 1.0 - 1e-9);
    }
}
